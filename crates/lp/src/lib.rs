//! A dense two-phase simplex linear-programming solver.
//!
//! The VLP workspace needs an LP solver that exposes **both primal
//! solutions and dual values**: the Dantzig-Wolfe column-generation
//! algorithm of §4.3 prices new columns against the duals of the
//! restricted master program. Mature Rust LP crates are thin on dual
//! extraction, so this crate implements the classic textbook machinery
//! from scratch:
//!
//! * [`LinearProgram`] — a small modelling API (minimization,
//!   non-negative variables, `≤ / = / ≥` constraints);
//! * a dense tableau simplex with Dantzig pricing and a Bland-rule
//!   fallback for anti-cycling;
//! * two phases: artificial variables establish feasibility, then the
//!   true objective is optimized;
//! * [`Solution`] carries the optimum, the primal point, and one dual
//!   value per constraint.
//!
//! The solver targets the problem sizes that arise in this workspace
//! (up to a few thousand rows/columns, dense arithmetic); it is not a
//! general sparse industrial solver.
//!
//! # Example
//!
//! ```
//! use lpsolve::{LinearProgram, Relation};
//!
//! // min -x0 - 2*x1  s.t.  x0 + x1 <= 4,  x1 <= 3,  x >= 0.
//! let mut lp = LinearProgram::new(2);
//! lp.set_objective(&[(0, -1.0), (1, -2.0)])?;
//! lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 4.0)?;
//! lp.add_constraint(&[(1, 1.0)], Relation::Le, 3.0)?;
//! let sol = lp.solve()?;
//! assert!((sol.objective - (-7.0)).abs() < 1e-9);
//! assert!((sol.x[0] - 1.0).abs() < 1e-9);
//! assert!((sol.x[1] - 3.0).abs() < 1e-9);
//! # Ok::<(), lpsolve::LpError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
mod incremental;
mod problem;
mod simplex;

pub use error::LpError;
pub use incremental::{ColumnSpec, IncrementalLp, ResolveStats};
pub use problem::{Constraint, LinearProgram, Relation, Solution};
pub use simplex::metrics;
