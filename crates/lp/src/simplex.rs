//! Dense two-phase tableau simplex.
//!
//! Internal module; the public entry points are
//! [`LinearProgram::solve`](crate::LinearProgram::solve) (one-shot
//! solves) and [`IncrementalLp`](crate::IncrementalLp) (persistent,
//! warm-started solves built on the same tableau machinery).
//!
//! The implementation is the classic textbook method:
//!
//! 1. normalize every row to a non-negative right-hand side;
//! 2. add a slack (`≤`) or surplus (`≥`) column per row, plus an
//!    artificial column for `=` and `≥` rows;
//! 3. **phase 1** minimizes the sum of artificials from the trivial
//!    slack/artificial basis — a positive optimum proves infeasibility;
//! 4. **phase 2** re-prices with the true objective (artificials barred
//!    from entering) and iterates to optimality;
//! 5. duals are read off the reduced costs of each row's slack or
//!    artificial column.
//!
//! Pricing is Dantzig (most negative reduced cost) with a switch to
//! Bland's rule late in the iteration budget to guarantee termination
//! under degeneracy.
//!
//! The tableau carries an explicit artificial-column bitmap (not a
//! column-index threshold) so that structural columns appended *after*
//! assembly — the warm-started master's generated columns — price and
//! pivot like any original column.

// Dense numeric kernels below index several parallel arrays in one
// loop; iterator rewrites would obscure the linear-algebra intent.
#![allow(clippy::needless_range_loop)]

use crate::error::LpError;
use crate::problem::{Constraint, LinearProgram, Relation, Solution};

/// Telemetry metric names recorded by this module (via
/// [`vlp_obs::global`]). Counted locally in the pivot loop and flushed
/// once per solve, so instrumentation adds no per-pivot locking.
pub mod metrics {
    /// Counter: total calls to the solver (cold and warm alike).
    pub const SOLVES: &str = "lpsolve.simplex.solves";
    /// Counter: pivots across both phases (incl. artificial drive-out).
    pub const PIVOTS: &str = "lpsolve.simplex.pivots";
    /// Counter: periodic + phase-boundary refactorizations.
    pub const REFACTORIZATIONS: &str = "lpsolve.simplex.refactorizations";
    /// Counter: phase-1 simplex iterations.
    pub const PHASE1_ITERATIONS: &str = "lpsolve.simplex.phase1_iterations";
    /// Counter: phase-2 simplex iterations.
    pub const PHASE2_ITERATIONS: &str = "lpsolve.simplex.phase2_iterations";
    /// Timer: wall-clock time of each solve.
    pub const SOLVE_TIME: &str = "lpsolve.simplex.solve";
    /// Counter: warm-started `IncrementalLp::resolve` calls that reused
    /// the previous optimal basis.
    pub const WARM_RESOLVES: &str = "lpsolve.warm.resolves";
    /// Counter: cold solves performed by the incremental engine (first
    /// solves and fallbacks after a failed warm attempt).
    pub const WARM_COLD_SOLVES: &str = "lpsolve.warm.cold_solves";
    /// Counter: warm resolves that skipped a phase 1 a cold solve would
    /// have run (the problem has artificial columns).
    pub const WARM_PHASE1_SKIPPED: &str = "lpsolve.warm.phase1_skipped";
    /// Counter: pivots spent inside warm-started resolves.
    pub const WARM_PIVOTS: &str = "lpsolve.warm.pivots";
    /// Counter: columns appended to live warm bases.
    pub const WARM_COLUMNS_ADDED: &str = "lpsolve.warm.columns_added";
}

/// Per-solve event tallies, flushed to the global registry at the end
/// of each solve.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SolveStats {
    pub(crate) pivots: u64,
    pub(crate) refactorizations: u64,
    pub(crate) phase1_iterations: u64,
    pub(crate) phase2_iterations: u64,
}

impl SolveStats {
    pub(crate) fn flush(&self) {
        let reg = vlp_obs::global();
        reg.incr(metrics::SOLVES, 1);
        reg.incr(metrics::PIVOTS, self.pivots);
        reg.incr(metrics::REFACTORIZATIONS, self.refactorizations);
        reg.incr(metrics::PHASE1_ITERATIONS, self.phase1_iterations);
        reg.incr(metrics::PHASE2_ITERATIONS, self.phase2_iterations);
    }
}

/// Pivot tolerance: entries smaller than this are treated as zero.
pub(crate) const EPS: f64 = 1e-9;
/// Phase-1 objective above this value declares infeasibility.
const FEAS_TOL: f64 = 1e-6;
/// Anti-degeneracy right-hand-side perturbation unit. Problems in this
/// workspace carry many homogeneous rows (`a·x ≤ 0`), whose all-slack
/// starting basis is maximally degenerate and stalls the simplex; a
/// deterministic, row-indexed perturbation of the rhs breaks every tie
/// while changing the optimum by at most `m · PERTURB` — far below the
/// solution tolerances used by callers.
const PERTURB: f64 = 1e-10;

/// Minimum magnitude accepted for a ratio-test pivot element. Pivoting
/// on smaller entries amplifies round-off by their reciprocal and was
/// observed to corrupt long runs on degenerate Geo-I programs.
const PIVOT_TOL: f64 = 1e-7;
/// Refactorize (rebuild the tableau from the original data by
/// Gauss-Jordan on the current basis) every this many pivots to purge
/// accumulated floating-point drift.
const REFACTOR_EVERY: usize = 150;

/// A dense simplex tableau with an attached reduced-cost row.
#[derive(Debug, Clone)]
pub(crate) struct Tableau {
    /// Number of constraint rows.
    pub(crate) m: usize,
    /// Total number of columns (structural + slack/surplus + artificial
    /// + appended structural).
    pub(crate) cols: usize,
    /// Row-major data, each row has `cols + 1` entries (last = rhs).
    pub(crate) data: Vec<f64>,
    /// Pristine copy of `data` as assembled (basis = identity on the
    /// initial slack/artificial columns); used for refactorization.
    /// Appended columns extend it with their original coefficients.
    pub(crate) orig: Vec<f64>,
    /// Reduced-cost row, `cols` entries.
    pub(crate) reduced: Vec<f64>,
    /// Current objective value of the phase being optimized.
    pub(crate) objective: f64,
    /// Basic column of each row.
    pub(crate) basis: Vec<usize>,
    /// Whether each column is currently basic (kept in lock-step with
    /// `basis`); basic columns must never re-enter — their reduced
    /// costs are zero by construction and any negative value is pure
    /// round-off drift, but pivoting on such a column corrupts the
    /// basis bookkeeping catastrophically.
    pub(crate) in_basis: Vec<bool>,
    /// Whether each column is an artificial (phase-1-only) column.
    /// A bitmap rather than an index threshold so structural columns
    /// can be appended after assembly.
    pub(crate) is_artificial: Vec<bool>,
    /// Number of artificial columns.
    pub(crate) n_artificial: usize,
}

impl Tableau {
    fn row(&self, i: usize) -> &[f64] {
        let w = self.cols + 1;
        &self.data[i * w..(i + 1) * w]
    }

    pub(crate) fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * (self.cols + 1) + j]
    }

    pub(crate) fn rhs(&self, i: usize) -> f64 {
        self.at(i, self.cols)
    }

    /// Whether the problem carries artificial columns (i.e. a cold
    /// solve must run phase 1).
    pub(crate) fn has_artificials(&self) -> bool {
        self.n_artificial > 0
    }

    /// Performs a pivot on `(row, col)`: normalizes the pivot row and
    /// eliminates `col` from all other rows and the reduced-cost row.
    pub(crate) fn pivot(&mut self, row: usize, col: usize) {
        let w = self.cols + 1;
        let pivot_val = self.at(row, col);
        debug_assert!(pivot_val.abs() > EPS, "pivot on a numerically zero entry");
        let inv = 1.0 / pivot_val;
        for j in 0..w {
            self.data[row * w + j] *= inv;
        }
        // Re-read the normalized pivot row once to avoid aliasing.
        let pivot_row: Vec<f64> = self.row(row).to_vec();
        for i in 0..self.m {
            if i == row {
                continue;
            }
            let factor = self.at(i, col);
            if factor.abs() <= EPS {
                continue;
            }
            for j in 0..w {
                self.data[i * w + j] -= factor * pivot_row[j];
            }
            self.data[i * w + col] = 0.0; // exact zero by construction
        }
        let factor = self.reduced[col];
        if factor.abs() > EPS {
            for (j, r) in self.reduced.iter_mut().enumerate() {
                *r -= factor * pivot_row[j];
            }
            self.objective += factor * pivot_row[self.cols];
            self.reduced[col] = 0.0;
        }
        self.in_basis[self.basis[row]] = false;
        self.in_basis[col] = true;
        self.basis[row] = col;
    }

    /// Recomputes the reduced-cost row and objective for cost vector `c`
    /// (dense over all columns).
    pub(crate) fn reprice(&mut self, c: &[f64]) {
        let mut reduced = c.to_vec();
        let mut objective = 0.0;
        for i in 0..self.m {
            let cb = c[self.basis[i]];
            if cb == 0.0 {
                continue;
            }
            objective += cb * self.rhs(i);
            let w = self.cols + 1;
            for j in 0..self.cols {
                reduced[j] -= cb * self.data[i * w + j];
            }
        }
        self.reduced = reduced;
        self.objective = objective;
    }

    /// Chooses the entering column: Dantzig by default, Bland when
    /// `bland` is set. Artificial columns never enter when
    /// `bar_artificial` is set. Returns `None` at optimality.
    pub(crate) fn entering(&self, bland: bool, bar_artificial: bool) -> Option<usize> {
        if bland {
            (0..self.cols).find(|&j| {
                !(self.in_basis[j] || bar_artificial && self.is_artificial[j])
                    && self.reduced[j] < -EPS
            })
        } else {
            let mut best: Option<(usize, f64)> = None;
            for j in 0..self.cols {
                if bar_artificial && self.is_artificial[j] {
                    continue;
                }
                let r = self.reduced[j];
                if !self.in_basis[j] && r < -EPS && best.is_none_or(|(_, br)| r < br) {
                    best = Some((j, r));
                }
            }
            best.map(|(j, _)| j)
        }
    }

    /// Ratio test for entering column `col`. Returns the leaving row, or
    /// `None` if the column is unbounded.
    ///
    /// Only entries above [`PIVOT_TOL`] qualify as pivots. Among rows
    /// whose ratios tie (within `EPS`), Bland mode picks the smallest
    /// basic column index (anti-cycling); otherwise the numerically
    /// largest pivot element wins, with a preference for expelling
    /// artificial columns.
    pub(crate) fn leaving(&self, col: usize, bland: bool) -> Option<usize> {
        let mut best: Option<(usize, f64, f64)> = None; // (row, ratio, pivot)
        for i in 0..self.m {
            let a = self.at(i, col);
            if a > PIVOT_TOL {
                let ratio = self.rhs(i).max(0.0) / a;
                let better = match best {
                    None => true,
                    Some((bi, br, bp)) => {
                        if ratio < br - EPS {
                            true
                        } else if ratio > br + EPS {
                            false
                        } else if bland {
                            self.basis[i] < self.basis[bi]
                        } else {
                            let bi_art = self.is_artificial[self.basis[bi]];
                            let i_art = self.is_artificial[self.basis[i]];
                            (i_art && !bi_art) || (i_art == bi_art && a > bp)
                        }
                    }
                };
                if better {
                    best = Some((i, ratio, a));
                }
            }
        }
        best.map(|(i, _, _)| i)
    }

    /// Rebuilds the tableau from the pristine matrix for the current
    /// basis via Gauss-Jordan with partial pivoting, then re-prices.
    /// Returns `false` (leaving the tableau untouched) if the basis
    /// matrix is numerically singular.
    pub(crate) fn refactor(&mut self, c: &[f64]) -> bool {
        let m = self.m;
        let w = self.cols + 1;
        // Augmented system [B | A b]: width m + w.
        let aw = m + w;
        let mut mat = vec![0.0; m * aw];
        for i in 0..m {
            for (bpos, &bcol) in self.basis.iter().enumerate() {
                mat[i * aw + bpos] = self.orig[i * w + bcol];
            }
            mat[i * aw + m..i * aw + m + w].copy_from_slice(&self.orig[i * w..(i + 1) * w]);
        }
        // Reduce the B block to the identity.
        for col in 0..m {
            let mut piv = col;
            let mut best = mat[col * aw + col].abs();
            for r in col + 1..m {
                let v = mat[r * aw + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-11 {
                return false;
            }
            if piv != col {
                for j in 0..aw {
                    mat.swap(col * aw + j, piv * aw + j);
                }
            }
            let inv = 1.0 / mat[col * aw + col];
            for j in 0..aw {
                mat[col * aw + j] *= inv;
            }
            let pivot_row: Vec<f64> = mat[col * aw..(col + 1) * aw].to_vec();
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = mat[r * aw + col];
                if f != 0.0 {
                    for j in 0..aw {
                        mat[r * aw + j] -= f * pivot_row[j];
                    }
                }
            }
        }
        // The B block is now exactly the identity, so row r carries
        // `e_r` in B-position r: its basic column is still `basis[r]`
        // (column r of B). Row swaps reordered intermediate states
        // only; the final correspondence is fixed by the identity.
        for i in 0..m {
            self.data[i * w..(i + 1) * w].copy_from_slice(&mat[i * aw + m..(i + 1) * aw]);
        }
        self.reprice(c);
        true
    }

    /// Runs simplex iterations until optimality, unboundedness, or the
    /// iteration limit. `c` is the active cost vector (needed for the
    /// periodic refactorization). Iterations, pivots, and
    /// refactorizations are tallied into `stats`; `phase1` selects
    /// which per-phase iteration counter they land in.
    pub(crate) fn optimize(
        &mut self,
        c: &[f64],
        bar_artificial: bool,
        stats: &mut SolveStats,
        phase1: bool,
    ) -> Result<(), LpError> {
        let budget = 200 * (self.m + self.cols) + 20_000;
        let bland_after = budget / 2;
        for iter in 0..budget {
            if iter > 0 && iter % REFACTOR_EVERY == 0 {
                self.refactor(c);
                stats.refactorizations += 1;
            }
            if phase1 {
                stats.phase1_iterations += 1;
            } else {
                stats.phase2_iterations += 1;
            }
            let bland = iter >= bland_after;
            let Some(col) = self.entering(bland, bar_artificial) else {
                return Ok(());
            };
            let Some(row) = self.leaving(col, bland) else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
            stats.pivots += 1;
        }
        Err(LpError::IterationLimit)
    }

    /// Appends structural columns to a live tableau, keeping the
    /// current basis (and therefore primal feasibility) intact.
    ///
    /// `new_cols[c]` holds the *normalized* (row-flip applied) original
    /// coefficients of column `c`, dense over the `m` rows. `init_col`
    /// maps each row to its assembly-time identity column (slack for
    /// `≤`, artificial otherwise): since `orig[:, init_col[i]] = e_i`,
    /// the current `data[:, init_col[i]]` is column `i` of `B⁻¹`, which
    /// lets the basis representation `B⁻¹ a` of each new column be
    /// accumulated without factorizing anything.
    pub(crate) fn append_columns(&mut self, new_cols: &[Vec<f64>], init_col: &[usize]) {
        let b = new_cols.len();
        if b == 0 {
            return;
        }
        let m = self.m;
        let w = self.cols + 1;
        let nw = w + b;
        // Basis representation of each new column: B⁻¹ a.
        let mut rep = vec![0.0; m * b];
        for (c, a) in new_cols.iter().enumerate() {
            debug_assert_eq!(a.len(), m, "appended column must be dense over rows");
            for (i, &ai) in a.iter().enumerate() {
                if ai != 0.0 {
                    let col = init_col[i];
                    for r in 0..m {
                        rep[r * b + c] += ai * self.data[r * w + col];
                    }
                }
            }
        }
        // Widen the row-major stores: existing columns, new columns,
        // then rhs.
        let mut data = vec![0.0; m * nw];
        let mut orig = vec![0.0; m * nw];
        for i in 0..m {
            data[i * nw..i * nw + self.cols].copy_from_slice(&self.data[i * w..i * w + self.cols]);
            orig[i * nw..i * nw + self.cols].copy_from_slice(&self.orig[i * w..i * w + self.cols]);
            for c in 0..b {
                data[i * nw + self.cols + c] = rep[i * b + c];
                orig[i * nw + self.cols + c] = new_cols[c][i];
            }
            data[i * nw + nw - 1] = self.data[i * w + w - 1];
            orig[i * nw + nw - 1] = self.orig[i * w + w - 1];
        }
        self.data = data;
        self.orig = orig;
        self.cols += b;
        self.reduced.resize(self.cols, 0.0);
        self.in_basis.resize(self.cols, false);
        self.is_artificial.resize(self.cols, false);
    }
}

/// Normalized row data after sign-flipping to a non-negative rhs.
struct NormRow {
    coeffs: Vec<(usize, f64)>,
    relation: Relation,
    rhs: f64,
    flipped: bool,
}

/// An assembled tableau plus the row metadata needed for dual
/// extraction and column appends.
pub(crate) struct Assembly {
    pub(crate) t: Tableau,
    /// Per row, the column carrying `+e_i` at zero cost in `orig`
    /// (slack for `≤`, artificial for `=`/`≥`). Used both for dual
    /// extraction and to read `B⁻¹` out of the live tableau.
    pub(crate) ref_col: Vec<usize>,
    /// Whether each row was sign-flipped during normalization.
    pub(crate) flipped: Vec<bool>,
}

/// Normalizes `constraints` and assembles the initial tableau
/// (slack/artificial starting basis, perturbed homogeneous rows).
pub(crate) fn assemble(n: usize, constraints: &[Constraint]) -> Assembly {
    let rows: Vec<NormRow> = constraints
        .iter()
        .map(|c| {
            if c.rhs < 0.0 {
                NormRow {
                    coeffs: c.coeffs.iter().map(|&(i, v)| (i, -v)).collect(),
                    relation: match c.relation {
                        Relation::Le => Relation::Ge,
                        Relation::Eq => Relation::Eq,
                        Relation::Ge => Relation::Le,
                    },
                    rhs: -c.rhs,
                    flipped: true,
                }
            } else {
                NormRow {
                    coeffs: c.coeffs.clone(),
                    relation: c.relation,
                    rhs: c.rhs,
                    flipped: false,
                }
            }
        })
        .collect();
    let m = rows.len();

    // Column layout: structural | slack/surplus | artificial.
    let mut slack_col = vec![usize::MAX; m];
    let mut next = n;
    for (i, r) in rows.iter().enumerate() {
        if !matches!(r.relation, Relation::Eq) {
            slack_col[i] = next;
            next += 1;
        }
    }
    let first_artificial = next;
    let mut art_col = vec![usize::MAX; m];
    for (i, r) in rows.iter().enumerate() {
        if !matches!(r.relation, Relation::Le) {
            art_col[i] = next;
            next += 1;
        }
    }
    let cols = next;

    // Assemble the tableau.
    let w = cols + 1;
    let mut data = vec![0.0; m * w];
    let mut basis = vec![0usize; m];
    for (i, r) in rows.iter().enumerate() {
        for &(j, v) in &r.coeffs {
            data[i * w + j] += v;
        }
        match r.relation {
            Relation::Le => {
                data[i * w + slack_col[i]] = 1.0;
                basis[i] = slack_col[i];
            }
            Relation::Ge => {
                data[i * w + slack_col[i]] = -1.0;
                data[i * w + art_col[i]] = 1.0;
                basis[i] = art_col[i];
            }
            Relation::Eq => {
                data[i * w + art_col[i]] = 1.0;
                basis[i] = art_col[i];
            }
        }
        // Perturb homogeneous inequality rows towards the interior
        // (see PERTURB above); equality rows and rows with structural
        // rhs stay exact so that consistent equality systems remain
        // exactly feasible. Kept positive so rhs stays ≥ 0 for phase 1.
        let perturb = if r.rhs == 0.0 && !matches!(r.relation, Relation::Eq) {
            PERTURB * (i + 1) as f64
        } else {
            0.0
        };
        data[i * w + cols] = r.rhs + perturb;
    }
    let mut in_basis = vec![false; cols];
    for &b in &basis {
        in_basis[b] = true;
    }
    let mut is_artificial = vec![false; cols];
    for a in is_artificial.iter_mut().skip(first_artificial) {
        *a = true;
    }
    let t = Tableau {
        m,
        cols,
        orig: data.clone(),
        data,
        reduced: vec![0.0; cols],
        objective: 0.0,
        basis,
        in_basis,
        is_artificial,
        n_artificial: cols - first_artificial,
    };
    let ref_col: Vec<usize> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| match r.relation {
            Relation::Le => slack_col[i],
            _ => art_col[i],
        })
        .collect();
    let flipped: Vec<bool> = rows.iter().map(|r| r.flipped).collect();
    Assembly {
        t,
        ref_col,
        flipped,
    }
}

/// Phase 1: minimizes the sum of artificials from the slack/artificial
/// starting basis, then drives remaining basic artificials out where
/// possible. Call only when the tableau has artificial columns.
pub(crate) fn run_phase1(t: &mut Tableau, stats: &mut SolveStats) -> Result<(), LpError> {
    let mut c1 = vec![0.0; t.cols];
    for (j, c) in c1.iter_mut().enumerate() {
        if t.is_artificial[j] {
            *c = 1.0;
        }
    }
    t.reprice(&c1);
    t.optimize(&c1, false, stats, true)?;
    if t.objective > FEAS_TOL {
        return Err(LpError::Infeasible);
    }
    // Drive basic artificials out of the basis where possible.
    for i in 0..t.m {
        if t.is_artificial[t.basis[i]] {
            if let Some(j) = (0..t.cols).find(|&j| !t.is_artificial[j] && t.at(i, j).abs() > 1e-7) {
                t.pivot(i, j);
                stats.pivots += 1;
            }
            // Otherwise the row is redundant; the artificial stays
            // basic at value zero and is barred from re-entering.
        }
    }
    Ok(())
}

/// Phase 2: re-prices with the true objective `c` (from a freshly
/// refactorized basis when possible) and optimizes to the minimum.
pub(crate) fn run_phase2(
    t: &mut Tableau,
    c: &[f64],
    stats: &mut SolveStats,
) -> Result<(), LpError> {
    if t.refactor(c) {
        stats.refactorizations += 1;
    } else {
        t.reprice(c);
    }
    t.optimize(c, true, stats, false)
}

/// Canonicalizes an optimal tableau: refactorizes the final basis so
/// the reported numbers are a pure function of `(orig, basis, c)` —
/// independent of the pivot path that reached the basis. If the cleaned
/// reduced costs re-expose an improving column (round-off was hiding
/// it), optimization resumes, bounded to a few rounds.
///
/// This is what lets a warm-started resolve and a cold solve that land
/// on the same optimal basis return bit-identical solutions.
pub(crate) fn canonical_finish(
    t: &mut Tableau,
    c: &[f64],
    stats: &mut SolveStats,
) -> Result<(), LpError> {
    for _ in 0..5 {
        if !t.refactor(c) {
            // Numerically singular basis: keep the pivoted data.
            return Ok(());
        }
        stats.refactorizations += 1;
        if t.entering(false, true).is_none() {
            return Ok(());
        }
        t.optimize(c, true, stats, false)?;
    }
    Ok(())
}

/// Reads the solution out of an optimized tableau. `col_to_var` maps a
/// tableau column back to its structural variable (identity for plain
/// solves; splices appended columns for the incremental engine).
pub(crate) fn extract_solution(
    t: &Tableau,
    ref_col: &[usize],
    flipped: &[bool],
    n_vars: usize,
    col_to_var: impl Fn(usize) -> Option<usize>,
) -> Solution {
    let mut x = vec![0.0; n_vars];
    for i in 0..t.m {
        if let Some(v) = col_to_var(t.basis[i]) {
            x[v] = t.rhs(i);
        }
    }
    // Duals: y_i = −r(reference column of row i) where the reference
    // column has +e_i and zero cost; flip back rows normalized during
    // assembly.
    let mut duals = vec![0.0; t.m];
    for i in 0..t.m {
        let y = -t.reduced[ref_col[i]];
        duals[i] = if flipped[i] { -y } else { y };
    }
    Solution {
        objective: t.objective,
        x,
        duals,
    }
}

/// Solves `lp` and returns the optimum with primal and dual values.
pub(crate) fn solve(lp: &LinearProgram) -> Result<Solution, LpError> {
    let _span = vlp_obs::global().start(metrics::SOLVE_TIME);
    let mut stats = SolveStats::default();
    let result = solve_inner(lp, &mut stats);
    stats.flush();
    result
}

fn solve_inner(lp: &LinearProgram, stats: &mut SolveStats) -> Result<Solution, LpError> {
    let n = lp.n_vars();
    let Assembly {
        mut t,
        ref_col,
        flipped,
    } = assemble(n, lp.constraints());

    // Phase 1 (skipped when no artificial columns exist, i.e. all rows
    // are `≤` with rhs ≥ 0).
    if t.has_artificials() {
        run_phase1(&mut t, stats)?;
    }

    // Phase 2: the true objective.
    let mut c2 = vec![0.0; t.cols];
    c2[..n].copy_from_slice(lp.objective());
    run_phase2(&mut t, &c2, stats)?;
    // Canonical finish: refactorize at the optimum so the reported
    // solution is a pure function of (problem data, final basis),
    // independent of the pivot path. This is what lets a cold solve and
    // an [`crate::IncrementalLp`] warm resolve that land on the same
    // basis return bit-identical answers.
    canonical_finish(&mut t, &c2, stats)?;

    Ok(extract_solution(&t, &ref_col, &flipped, n, |j| {
        (j < n).then_some(j)
    }))
}

#[cfg(test)]
mod tests {
    use crate::problem::{LinearProgram, Relation};
    use crate::LpError;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn simple_le_problem() {
        // min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
        // Classic Hillier example: optimum -36 at (2, 6).
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, -3.0), (1, -5.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 4.0).unwrap();
        lp.add_constraint(&[(1, 2.0)], Relation::Le, 12.0).unwrap();
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, -36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn equality_constraints_need_phase_one() {
        // min x + y s.t. x + y = 2, x - y = 0 → x = y = 1, obj 2.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 1.0), (1, 1.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0)
            .unwrap();
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Eq, 0.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, 2.0);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 1.0);
    }

    #[test]
    fn ge_constraints() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 → (4, 0)? check: obj 8 at
        // (4,0); (1,3) gives 11. Optimum 8.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 2.0), (1, 3.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 4.0)
            .unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0).unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, 8.0);
        assert_close(s.x[0], 4.0);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x - y <= -1 with min x (x,y>=0) → x=0, y>=1 feasible, obj 0.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 1.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Le, -1.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, 0.0);
        assert!(s.x[1] >= 1.0 - 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[(0, -1.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 0.0).unwrap();
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 1.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, 0.0);
        assert_close(s.x[0] + s.x[1], 1.0);
    }

    #[test]
    fn duals_satisfy_strong_duality_le() {
        // Strong duality: c'x* = y'b at the optimum.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, -3.0), (1, -5.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 4.0).unwrap();
        lp.add_constraint(&[(1, 2.0)], Relation::Le, 12.0).unwrap();
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let s = lp.solve().unwrap();
        let yb: f64 = s.duals[0] * 4.0 + s.duals[1] * 12.0 + s.duals[2] * 18.0;
        assert_close(yb, s.objective);
        // Minimization with ≤ rows: duals are non-positive.
        for &y in &s.duals {
            assert!(y <= 1e-9);
        }
    }

    #[test]
    fn duals_satisfy_strong_duality_mixed() {
        // min 2x + 3y + z s.t. x + y + z = 3, x - y >= 1, z <= 1.
        let mut lp = LinearProgram::new(3);
        lp.set_objective(&[(0, 2.0), (1, 3.0), (2, 1.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Eq, 3.0)
            .unwrap();
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Ge, 1.0)
            .unwrap();
        lp.add_constraint(&[(2, 1.0)], Relation::Le, 1.0).unwrap();
        let s = lp.solve().unwrap();
        let yb = s.duals[0] * 3.0 + s.duals[1] * 1.0 + s.duals[2] * 1.0;
        assert_close(yb, s.objective);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Klee-Minty-flavoured degenerate rows: many redundant copies.
        let mut lp = LinearProgram::new(3);
        lp.set_objective(&[(0, -1.0), (1, -1.0), (2, -1.0)])
            .unwrap();
        for _ in 0..5 {
            lp.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Le, 1.0)
                .unwrap();
        }
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0).unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, -1.0);
    }

    #[test]
    fn redundant_equality_rows_are_tolerated() {
        // Same equality twice: phase 1 leaves one artificial basic at 0.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 1.0), (1, 2.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 1.0)
            .unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 1.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, 1.0);
        assert_close(s.x[0], 1.0);
    }

    #[test]
    fn no_constraints_zero_objective() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 5.0)]).unwrap();
        let s = lp.solve().unwrap();
        // min 5x with x >= 0 and nothing else: x = 0.
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn transportation_problem() {
        // 2 supplies (10, 20), 2 demands (15, 15), costs [[1,4],[2,1]].
        // Variables x00 x01 x10 x11. Optimum: x00=10, x10=5, x11=15 →
        // 10*1 + 5*2 + 15*1 = 35.
        let mut lp = LinearProgram::new(4);
        lp.set_objective(&[(0, 1.0), (1, 4.0), (2, 2.0), (3, 1.0)])
            .unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 10.0)
            .unwrap();
        lp.add_constraint(&[(2, 1.0), (3, 1.0)], Relation::Eq, 20.0)
            .unwrap();
        lp.add_constraint(&[(0, 1.0), (2, 1.0)], Relation::Eq, 15.0)
            .unwrap();
        lp.add_constraint(&[(1, 1.0), (3, 1.0)], Relation::Eq, 15.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, 35.0);
    }
}
