//! Dense two-phase tableau simplex.
//!
//! Internal module; the public entry point is
//! [`LinearProgram::solve`](crate::LinearProgram::solve).
//!
//! The implementation is the classic textbook method:
//!
//! 1. normalize every row to a non-negative right-hand side;
//! 2. add a slack (`≤`) or surplus (`≥`) column per row, plus an
//!    artificial column for `=` and `≥` rows;
//! 3. **phase 1** minimizes the sum of artificials from the trivial
//!    slack/artificial basis — a positive optimum proves infeasibility;
//! 4. **phase 2** re-prices with the true objective (artificials barred
//!    from entering) and iterates to optimality;
//! 5. duals are read off the reduced costs of each row's slack or
//!    artificial column.
//!
//! Pricing is Dantzig (most negative reduced cost) with a switch to
//! Bland's rule late in the iteration budget to guarantee termination
//! under degeneracy.

// Dense numeric kernels below index several parallel arrays in one
// loop; iterator rewrites would obscure the linear-algebra intent.
#![allow(clippy::needless_range_loop)]

use crate::error::LpError;
use crate::problem::{LinearProgram, Relation, Solution};

/// Telemetry metric names recorded by this module (via
/// [`vlp_obs::global`]). Counted locally in the pivot loop and flushed
/// once per solve, so instrumentation adds no per-pivot locking.
pub mod metrics {
    /// Counter: total calls to the solver.
    pub const SOLVES: &str = "lpsolve.simplex.solves";
    /// Counter: pivots across both phases (incl. artificial drive-out).
    pub const PIVOTS: &str = "lpsolve.simplex.pivots";
    /// Counter: periodic + phase-boundary refactorizations.
    pub const REFACTORIZATIONS: &str = "lpsolve.simplex.refactorizations";
    /// Counter: phase-1 simplex iterations.
    pub const PHASE1_ITERATIONS: &str = "lpsolve.simplex.phase1_iterations";
    /// Counter: phase-2 simplex iterations.
    pub const PHASE2_ITERATIONS: &str = "lpsolve.simplex.phase2_iterations";
    /// Timer: wall-clock time of each solve.
    pub const SOLVE_TIME: &str = "lpsolve.simplex.solve";
}

/// Per-solve event tallies, flushed to the global registry at the end
/// of [`solve`].
#[derive(Default)]
struct SolveStats {
    pivots: u64,
    refactorizations: u64,
    phase1_iterations: u64,
    phase2_iterations: u64,
}

impl SolveStats {
    fn flush(&self) {
        let reg = vlp_obs::global();
        reg.incr(metrics::SOLVES, 1);
        reg.incr(metrics::PIVOTS, self.pivots);
        reg.incr(metrics::REFACTORIZATIONS, self.refactorizations);
        reg.incr(metrics::PHASE1_ITERATIONS, self.phase1_iterations);
        reg.incr(metrics::PHASE2_ITERATIONS, self.phase2_iterations);
    }
}

/// Pivot tolerance: entries smaller than this are treated as zero.
const EPS: f64 = 1e-9;
/// Phase-1 objective above this value declares infeasibility.
const FEAS_TOL: f64 = 1e-6;
/// Anti-degeneracy right-hand-side perturbation unit. Problems in this
/// workspace carry many homogeneous rows (`a·x ≤ 0`), whose all-slack
/// starting basis is maximally degenerate and stalls the simplex; a
/// deterministic, row-indexed perturbation of the rhs breaks every tie
/// while changing the optimum by at most `m · PERTURB` — far below the
/// solution tolerances used by callers.
const PERTURB: f64 = 1e-10;

/// Minimum magnitude accepted for a ratio-test pivot element. Pivoting
/// on smaller entries amplifies round-off by their reciprocal and was
/// observed to corrupt long runs on degenerate Geo-I programs.
const PIVOT_TOL: f64 = 1e-7;
/// Refactorize (rebuild the tableau from the original data by
/// Gauss-Jordan on the current basis) every this many pivots to purge
/// accumulated floating-point drift.
const REFACTOR_EVERY: usize = 150;

/// A dense simplex tableau with an attached reduced-cost row.
struct Tableau {
    /// Number of constraint rows.
    m: usize,
    /// Total number of columns (structural + slack/surplus + artificial).
    cols: usize,
    /// Row-major data, each row has `cols + 1` entries (last = rhs).
    data: Vec<f64>,
    /// Pristine copy of `data` as assembled (basis = identity on the
    /// initial slack/artificial columns); used for refactorization.
    orig: Vec<f64>,
    /// Reduced-cost row, `cols` entries.
    reduced: Vec<f64>,
    /// Current objective value of the phase being optimized.
    objective: f64,
    /// Basic column of each row.
    basis: Vec<usize>,
    /// Whether each column is currently basic (kept in lock-step with
    /// `basis`); basic columns must never re-enter — their reduced
    /// costs are zero by construction and any negative value is pure
    /// round-off drift, but pivoting on such a column corrupts the
    /// basis bookkeeping catastrophically.
    in_basis: Vec<bool>,
    /// First artificial column index (columns ≥ this are artificial).
    first_artificial: usize,
}

impl Tableau {
    fn row(&self, i: usize) -> &[f64] {
        let w = self.cols + 1;
        &self.data[i * w..(i + 1) * w]
    }

    fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * (self.cols + 1) + j]
    }

    fn rhs(&self, i: usize) -> f64 {
        self.at(i, self.cols)
    }

    /// Performs a pivot on `(row, col)`: normalizes the pivot row and
    /// eliminates `col` from all other rows and the reduced-cost row.
    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.cols + 1;
        let pivot_val = self.at(row, col);
        debug_assert!(pivot_val.abs() > EPS, "pivot on a numerically zero entry");
        let inv = 1.0 / pivot_val;
        for j in 0..w {
            self.data[row * w + j] *= inv;
        }
        // Re-read the normalized pivot row once to avoid aliasing.
        let pivot_row: Vec<f64> = self.row(row).to_vec();
        for i in 0..self.m {
            if i == row {
                continue;
            }
            let factor = self.at(i, col);
            if factor.abs() <= EPS {
                continue;
            }
            for j in 0..w {
                self.data[i * w + j] -= factor * pivot_row[j];
            }
            self.data[i * w + col] = 0.0; // exact zero by construction
        }
        let factor = self.reduced[col];
        if factor.abs() > EPS {
            for (j, r) in self.reduced.iter_mut().enumerate() {
                *r -= factor * pivot_row[j];
            }
            self.objective += factor * pivot_row[self.cols];
            self.reduced[col] = 0.0;
        }
        self.in_basis[self.basis[row]] = false;
        self.in_basis[col] = true;
        self.basis[row] = col;
    }

    /// Recomputes the reduced-cost row and objective for cost vector `c`
    /// (dense over all columns).
    fn reprice(&mut self, c: &[f64]) {
        let mut reduced = c.to_vec();
        let mut objective = 0.0;
        for i in 0..self.m {
            let cb = c[self.basis[i]];
            if cb == 0.0 {
                continue;
            }
            objective += cb * self.rhs(i);
            let w = self.cols + 1;
            for j in 0..self.cols {
                reduced[j] -= cb * self.data[i * w + j];
            }
        }
        self.reduced = reduced;
        self.objective = objective;
    }

    /// Chooses the entering column: Dantzig by default, Bland when
    /// `bland` is set. Artificial columns never enter when
    /// `bar_artificial` is set. Returns `None` at optimality.
    fn entering(&self, bland: bool, bar_artificial: bool) -> Option<usize> {
        let limit = if bar_artificial {
            self.first_artificial
        } else {
            self.cols
        };
        if bland {
            (0..limit).find(|&j| !self.in_basis[j] && self.reduced[j] < -EPS)
        } else {
            let mut best: Option<(usize, f64)> = None;
            for j in 0..limit {
                let r = self.reduced[j];
                if !self.in_basis[j] && r < -EPS && best.is_none_or(|(_, br)| r < br) {
                    best = Some((j, r));
                }
            }
            best.map(|(j, _)| j)
        }
    }

    /// Ratio test for entering column `col`. Returns the leaving row, or
    /// `None` if the column is unbounded.
    ///
    /// Only entries above [`PIVOT_TOL`] qualify as pivots. Among rows
    /// whose ratios tie (within `EPS`), Bland mode picks the smallest
    /// basic column index (anti-cycling); otherwise the numerically
    /// largest pivot element wins, with a preference for expelling
    /// artificial columns.
    fn leaving(&self, col: usize, bland: bool) -> Option<usize> {
        let mut best: Option<(usize, f64, f64)> = None; // (row, ratio, pivot)
        for i in 0..self.m {
            let a = self.at(i, col);
            if a > PIVOT_TOL {
                let ratio = self.rhs(i).max(0.0) / a;
                let better = match best {
                    None => true,
                    Some((bi, br, bp)) => {
                        if ratio < br - EPS {
                            true
                        } else if ratio > br + EPS {
                            false
                        } else if bland {
                            self.basis[i] < self.basis[bi]
                        } else {
                            let bi_art = self.basis[bi] >= self.first_artificial;
                            let i_art = self.basis[i] >= self.first_artificial;
                            (i_art && !bi_art) || (i_art == bi_art && a > bp)
                        }
                    }
                };
                if better {
                    best = Some((i, ratio, a));
                }
            }
        }
        best.map(|(i, _, _)| i)
    }

    /// Rebuilds the tableau from the pristine matrix for the current
    /// basis via Gauss-Jordan with partial pivoting, then re-prices.
    /// Returns `false` (leaving the tableau untouched) if the basis
    /// matrix is numerically singular.
    fn refactor(&mut self, c: &[f64]) -> bool {
        let m = self.m;
        let w = self.cols + 1;
        // Augmented system [B | A b]: width m + w.
        let aw = m + w;
        let mut mat = vec![0.0; m * aw];
        for i in 0..m {
            for (bpos, &bcol) in self.basis.iter().enumerate() {
                mat[i * aw + bpos] = self.orig[i * w + bcol];
            }
            mat[i * aw + m..i * aw + m + w].copy_from_slice(&self.orig[i * w..(i + 1) * w]);
        }
        // Reduce the B block to the identity.
        for col in 0..m {
            let mut piv = col;
            let mut best = mat[col * aw + col].abs();
            for r in col + 1..m {
                let v = mat[r * aw + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-11 {
                return false;
            }
            if piv != col {
                for j in 0..aw {
                    mat.swap(col * aw + j, piv * aw + j);
                }
            }
            let inv = 1.0 / mat[col * aw + col];
            for j in 0..aw {
                mat[col * aw + j] *= inv;
            }
            let pivot_row: Vec<f64> = mat[col * aw..(col + 1) * aw].to_vec();
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = mat[r * aw + col];
                if f != 0.0 {
                    for j in 0..aw {
                        mat[r * aw + j] -= f * pivot_row[j];
                    }
                }
            }
        }
        // The B block is now exactly the identity, so row r carries
        // `e_r` in B-position r: its basic column is still `basis[r]`
        // (column r of B). Row swaps reordered intermediate states
        // only; the final correspondence is fixed by the identity.
        for i in 0..m {
            self.data[i * w..(i + 1) * w].copy_from_slice(&mat[i * aw + m..(i + 1) * aw]);
        }
        self.reprice(c);
        true
    }

    /// Runs simplex iterations until optimality, unboundedness, or the
    /// iteration limit. `c` is the active cost vector (needed for the
    /// periodic refactorization). Iterations, pivots, and
    /// refactorizations are tallied into `stats`; `phase1` selects
    /// which per-phase iteration counter they land in.
    fn optimize(
        &mut self,
        c: &[f64],
        bar_artificial: bool,
        stats: &mut SolveStats,
        phase1: bool,
    ) -> Result<(), LpError> {
        let budget = 200 * (self.m + self.cols) + 20_000;
        let bland_after = budget / 2;
        for iter in 0..budget {
            if iter > 0 && iter % REFACTOR_EVERY == 0 {
                self.refactor(c);
                stats.refactorizations += 1;
            }
            if phase1 {
                stats.phase1_iterations += 1;
            } else {
                stats.phase2_iterations += 1;
            }
            let bland = iter >= bland_after;
            let Some(col) = self.entering(bland, bar_artificial) else {
                return Ok(());
            };
            let Some(row) = self.leaving(col, bland) else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
            stats.pivots += 1;
        }
        Err(LpError::IterationLimit)
    }
}

/// Normalized row data after sign-flipping to a non-negative rhs.
struct NormRow {
    coeffs: Vec<(usize, f64)>,
    relation: Relation,
    rhs: f64,
    flipped: bool,
}

/// Solves `lp` and returns the optimum with primal and dual values.
pub(crate) fn solve(lp: &LinearProgram) -> Result<Solution, LpError> {
    let _span = vlp_obs::global().start(metrics::SOLVE_TIME);
    let mut stats = SolveStats::default();
    let result = solve_inner(lp, &mut stats);
    stats.flush();
    result
}

fn solve_inner(lp: &LinearProgram, stats: &mut SolveStats) -> Result<Solution, LpError> {
    let n = lp.n_vars();
    let rows: Vec<NormRow> = lp
        .constraints()
        .iter()
        .map(|c| {
            if c.rhs < 0.0 {
                NormRow {
                    coeffs: c.coeffs.iter().map(|&(i, v)| (i, -v)).collect(),
                    relation: match c.relation {
                        Relation::Le => Relation::Ge,
                        Relation::Eq => Relation::Eq,
                        Relation::Ge => Relation::Le,
                    },
                    rhs: -c.rhs,
                    flipped: true,
                }
            } else {
                NormRow {
                    coeffs: c.coeffs.clone(),
                    relation: c.relation,
                    rhs: c.rhs,
                    flipped: false,
                }
            }
        })
        .collect();
    let m = rows.len();

    // Column layout: structural | slack/surplus | artificial.
    let mut slack_col = vec![usize::MAX; m];
    let mut next = n;
    for (i, r) in rows.iter().enumerate() {
        if !matches!(r.relation, Relation::Eq) {
            slack_col[i] = next;
            next += 1;
        }
    }
    let first_artificial = next;
    let mut art_col = vec![usize::MAX; m];
    for (i, r) in rows.iter().enumerate() {
        if !matches!(r.relation, Relation::Le) {
            art_col[i] = next;
            next += 1;
        }
    }
    let cols = next;

    // Assemble the tableau.
    let w = cols + 1;
    let mut data = vec![0.0; m * w];
    let mut basis = vec![0usize; m];
    for (i, r) in rows.iter().enumerate() {
        for &(j, v) in &r.coeffs {
            data[i * w + j] += v;
        }
        match r.relation {
            Relation::Le => {
                data[i * w + slack_col[i]] = 1.0;
                basis[i] = slack_col[i];
            }
            Relation::Ge => {
                data[i * w + slack_col[i]] = -1.0;
                data[i * w + art_col[i]] = 1.0;
                basis[i] = art_col[i];
            }
            Relation::Eq => {
                data[i * w + art_col[i]] = 1.0;
                basis[i] = art_col[i];
            }
        }
        // Perturb homogeneous inequality rows towards the interior
        // (see PERTURB above); equality rows and rows with structural
        // rhs stay exact so that consistent equality systems remain
        // exactly feasible. Kept positive so rhs stays ≥ 0 for phase 1.
        let perturb = if r.rhs == 0.0 && !matches!(r.relation, Relation::Eq) {
            PERTURB * (i + 1) as f64
        } else {
            0.0
        };
        data[i * w + cols] = r.rhs + perturb;
    }
    let mut in_basis = vec![false; cols];
    for &b in &basis {
        in_basis[b] = true;
    }
    let mut t = Tableau {
        m,
        cols,
        orig: data.clone(),
        data,
        reduced: vec![0.0; cols],
        objective: 0.0,
        basis,
        in_basis,
        first_artificial,
    };

    // Phase 1: minimize the sum of artificials (skipped when no
    // artificial columns exist, i.e. all rows are `≤` with rhs ≥ 0).
    if first_artificial < cols {
        let mut c1 = vec![0.0; cols];
        for c in c1.iter_mut().skip(first_artificial) {
            *c = 1.0;
        }
        t.reprice(&c1);
        t.optimize(&c1, false, stats, true)?;
        if t.objective > FEAS_TOL {
            return Err(LpError::Infeasible);
        }
        // Drive basic artificials out of the basis where possible.
        for i in 0..m {
            if t.basis[i] >= first_artificial {
                if let Some(j) = (0..first_artificial).find(|&j| t.at(i, j).abs() > 1e-7) {
                    t.pivot(i, j);
                    stats.pivots += 1;
                }
                // Otherwise the row is redundant; the artificial stays
                // basic at value zero and is barred from re-entering.
            }
        }
    }

    // Phase 2: the true objective, from a freshly refactorized basis.
    let mut c2 = vec![0.0; cols];
    c2[..n].copy_from_slice(lp.objective());
    if t.refactor(&c2) {
        stats.refactorizations += 1;
    } else {
        t.reprice(&c2);
    }
    t.optimize(&c2, true, stats, false)?;

    // Extract the primal point.
    let mut x = vec![0.0; n];
    for i in 0..m {
        if t.basis[i] < n {
            x[t.basis[i]] = t.rhs(i);
        }
    }

    // Extract duals: y_i = −r(reference column of row i) where the
    // reference column has +e_i and zero cost (slack for `≤`,
    // artificial for `=`/`≥`); flip back rows normalized above.
    let mut duals = vec![0.0; m];
    for (i, r) in rows.iter().enumerate() {
        let ref_col = match r.relation {
            Relation::Le => slack_col[i],
            _ => art_col[i],
        };
        let y = -t.reduced[ref_col];
        duals[i] = if r.flipped { -y } else { y };
    }

    Ok(Solution {
        objective: t.objective,
        x,
        duals,
    })
}

#[cfg(test)]
mod tests {
    use crate::problem::{LinearProgram, Relation};
    use crate::LpError;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn simple_le_problem() {
        // min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
        // Classic Hillier example: optimum -36 at (2, 6).
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, -3.0), (1, -5.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 4.0).unwrap();
        lp.add_constraint(&[(1, 2.0)], Relation::Le, 12.0).unwrap();
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, -36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn equality_constraints_need_phase_one() {
        // min x + y s.t. x + y = 2, x - y = 0 → x = y = 1, obj 2.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 1.0), (1, 1.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0)
            .unwrap();
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Eq, 0.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, 2.0);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 1.0);
    }

    #[test]
    fn ge_constraints() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 → (4, 0)? check: obj 8 at
        // (4,0); (1,3) gives 11. Optimum 8.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 2.0), (1, 3.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 4.0)
            .unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0).unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, 8.0);
        assert_close(s.x[0], 4.0);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x - y <= -1 with min x (x,y>=0) → x=0, y>=1 feasible, obj 0.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 1.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Le, -1.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, 0.0);
        assert!(s.x[1] >= 1.0 - 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[(0, -1.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 0.0).unwrap();
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 1.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, 0.0);
        assert_close(s.x[0] + s.x[1], 1.0);
    }

    #[test]
    fn duals_satisfy_strong_duality_le() {
        // Strong duality: c'x* = y'b at the optimum.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, -3.0), (1, -5.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 4.0).unwrap();
        lp.add_constraint(&[(1, 2.0)], Relation::Le, 12.0).unwrap();
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let s = lp.solve().unwrap();
        let yb: f64 = s.duals[0] * 4.0 + s.duals[1] * 12.0 + s.duals[2] * 18.0;
        assert_close(yb, s.objective);
        // Minimization with ≤ rows: duals are non-positive.
        for &y in &s.duals {
            assert!(y <= 1e-9);
        }
    }

    #[test]
    fn duals_satisfy_strong_duality_mixed() {
        // min 2x + 3y + z s.t. x + y + z = 3, x - y >= 1, z <= 1.
        let mut lp = LinearProgram::new(3);
        lp.set_objective(&[(0, 2.0), (1, 3.0), (2, 1.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Eq, 3.0)
            .unwrap();
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Ge, 1.0)
            .unwrap();
        lp.add_constraint(&[(2, 1.0)], Relation::Le, 1.0).unwrap();
        let s = lp.solve().unwrap();
        let yb = s.duals[0] * 3.0 + s.duals[1] * 1.0 + s.duals[2] * 1.0;
        assert_close(yb, s.objective);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Klee-Minty-flavoured degenerate rows: many redundant copies.
        let mut lp = LinearProgram::new(3);
        lp.set_objective(&[(0, -1.0), (1, -1.0), (2, -1.0)])
            .unwrap();
        for _ in 0..5 {
            lp.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Le, 1.0)
                .unwrap();
        }
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0).unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, -1.0);
    }

    #[test]
    fn redundant_equality_rows_are_tolerated() {
        // Same equality twice: phase 1 leaves one artificial basic at 0.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 1.0), (1, 2.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 1.0)
            .unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 1.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, 1.0);
        assert_close(s.x[0], 1.0);
    }

    #[test]
    fn no_constraints_zero_objective() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 5.0)]).unwrap();
        let s = lp.solve().unwrap();
        // min 5x with x >= 0 and nothing else: x = 0.
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn transportation_problem() {
        // 2 supplies (10, 20), 2 demands (15, 15), costs [[1,4],[2,1]].
        // Variables x00 x01 x10 x11. Optimum: x00=10, x10=5, x11=15 →
        // 10*1 + 5*2 + 15*1 = 35.
        let mut lp = LinearProgram::new(4);
        lp.set_objective(&[(0, 1.0), (1, 4.0), (2, 2.0), (3, 1.0)])
            .unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 10.0)
            .unwrap();
        lp.add_constraint(&[(2, 1.0), (3, 1.0)], Relation::Eq, 20.0)
            .unwrap();
        lp.add_constraint(&[(0, 1.0), (2, 1.0)], Relation::Eq, 15.0)
            .unwrap();
        lp.add_constraint(&[(1, 1.0), (3, 1.0)], Relation::Eq, 15.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective, 35.0);
    }
}
