//! Modelling API: variables, constraints, objective.

use crate::error::LpError;
use crate::simplex;

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// A single linear constraint `a·x {≤,=,≥} b` with sparse coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices are unique.
    pub coeffs: Vec<(usize, f64)>,
    /// Direction of the constraint.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// The result of a successful solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal objective value (minimization).
    pub objective: f64,
    /// Optimal values of the decision variables.
    pub x: Vec<f64>,
    /// One dual value per constraint, in insertion order.
    ///
    /// Sign convention: duals are the values `y = c_B B⁻¹` of the
    /// equality-standard-form problem mapped back to the original rows,
    /// so for a minimization problem a binding `≤` constraint has
    /// `y ≤ 0` and a binding `≥` constraint has `y ≥ 0` (up to
    /// degeneracy). The Lagrangian identity
    /// `objective = Σ_i y_i · rhs_i + Σ_j reduced_cost_j · x_j` holds.
    pub duals: Vec<f64>,
}

/// A linear program in minimization form with non-negative variables.
///
/// Upper bounds on variables are expressed as explicit `≤` constraints,
/// which keeps the solver simple and the duals uniform.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    n_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates a program over `n_vars` non-negative variables with a
    /// zero objective.
    pub fn new(n_vars: usize) -> Self {
        Self {
            n_vars,
            objective: vec![0.0; n_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints added so far.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The constraints added so far, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Sets the minimization objective from sparse `(index, coeff)`
    /// pairs. Unmentioned variables keep coefficient zero; mentioning an
    /// index twice accumulates.
    ///
    /// # Errors
    ///
    /// [`LpError::UnknownVariable`] for an out-of-range index,
    /// [`LpError::NonFiniteValue`] for NaN/infinite coefficients.
    pub fn set_objective(&mut self, coeffs: &[(usize, f64)]) -> Result<(), LpError> {
        self.objective = vec![0.0; self.n_vars];
        for &(i, c) in coeffs {
            if i >= self.n_vars {
                return Err(LpError::UnknownVariable {
                    index: i,
                    n_vars: self.n_vars,
                });
            }
            if !c.is_finite() {
                return Err(LpError::NonFiniteValue);
            }
            self.objective[i] += c;
        }
        Ok(())
    }

    /// Dense view of the objective vector.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Adds the constraint `Σ coeffs ⋅ x {relation} rhs`.
    ///
    /// Duplicate indices in `coeffs` accumulate.
    ///
    /// # Errors
    ///
    /// [`LpError::UnknownVariable`] for an out-of-range index,
    /// [`LpError::NonFiniteValue`] for NaN/infinite values.
    pub fn add_constraint(
        &mut self,
        coeffs: &[(usize, f64)],
        relation: Relation,
        rhs: f64,
    ) -> Result<usize, LpError> {
        if !rhs.is_finite() {
            return Err(LpError::NonFiniteValue);
        }
        let mut seen: Vec<(usize, f64)> = Vec::with_capacity(coeffs.len());
        for &(i, c) in coeffs {
            if i >= self.n_vars {
                return Err(LpError::UnknownVariable {
                    index: i,
                    n_vars: self.n_vars,
                });
            }
            if !c.is_finite() {
                return Err(LpError::NonFiniteValue);
            }
            if let Some(slot) = seen.iter_mut().find(|(j, _)| *j == i) {
                slot.1 += c;
            } else {
                seen.push((i, c));
            }
        }
        let id = self.constraints.len();
        self.constraints.push(Constraint {
            coeffs: seen,
            relation,
            rhs,
        });
        Ok(id)
    }

    /// Solves the program with the two-phase dense simplex method.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] if no feasible point exists;
    /// * [`LpError::Unbounded`] if the minimum is −∞;
    /// * [`LpError::IterationLimit`] on pathological numerical behaviour;
    /// * [`LpError::FaultInjected`] under an active chaos failpoint
    ///   scope whose schedule fires `lp.solve.fault` — the hook
    ///   resilience harnesses use to script solver outages
    ///   deterministically (see `vlp_obs::failpoint`).
    pub fn solve(&self) -> Result<Solution, LpError> {
        if vlp_obs::failpoint::should_fail(vlp_obs::failpoint::site::LP_SOLVE) {
            return Err(LpError::FaultInjected);
        }
        simplex::solve(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_accumulates_duplicates() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 1.0), (0, 2.0)]).unwrap();
        assert_eq!(lp.objective(), &[3.0, 0.0]);
    }

    #[test]
    fn constraint_accumulates_duplicates() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[(1, 1.0), (1, 1.5)], Relation::Le, 2.0)
            .unwrap();
        assert_eq!(lp.constraints()[0].coeffs, vec![(1, 2.5)]);
    }

    #[test]
    fn rejects_unknown_variable() {
        let mut lp = LinearProgram::new(1);
        assert!(matches!(
            lp.set_objective(&[(3, 1.0)]),
            Err(LpError::UnknownVariable {
                index: 3,
                n_vars: 1
            })
        ));
        assert!(matches!(
            lp.add_constraint(&[(9, 1.0)], Relation::Eq, 0.0),
            Err(LpError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let mut lp = LinearProgram::new(1);
        assert_eq!(
            lp.set_objective(&[(0, f64::NAN)]),
            Err(LpError::NonFiniteValue)
        );
        assert_eq!(
            lp.add_constraint(&[(0, 1.0)], Relation::Le, f64::INFINITY),
            Err(LpError::NonFiniteValue)
        );
    }
}
