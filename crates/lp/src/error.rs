//! Error type for LP modelling and solving.

use std::error::Error;
use std::fmt;

/// Error produced while building or solving a [`crate::LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpError {
    /// A coefficient referenced a variable index that does not exist.
    UnknownVariable {
        /// The offending variable index.
        index: usize,
        /// The number of variables in the program.
        n_vars: usize,
    },
    /// A coefficient or right-hand side was NaN or infinite.
    NonFiniteValue,
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective can be decreased without bound.
    Unbounded,
    /// The simplex iteration limit was exceeded (numerical trouble or
    /// severe degeneracy beyond what Bland's rule resolves in the
    /// allotted budget).
    IterationLimit,
    /// A structural mutation (new constraint row) was attempted on an
    /// [`crate::IncrementalLp`] after its first solve; the warm basis
    /// owns the row structure. Call
    /// [`crate::IncrementalLp::invalidate`] first to unfreeze.
    StructureFrozen,
    /// A deterministic chaos failpoint (`vlp_obs::failpoint`) injected
    /// this failure; the solve never ran. Only possible under an
    /// active fault-injection scope — production paths never see it.
    FaultInjected,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownVariable { index, n_vars } => {
                write!(
                    f,
                    "variable index {index} out of range for {n_vars} variables"
                )
            }
            LpError::NonFiniteValue => write!(f, "coefficient or bound is NaN or infinite"),
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded below"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::StructureFrozen => write!(
                f,
                "constraint rows are frozen after the first solve; call invalidate() first"
            ),
            LpError::FaultInjected => write!(f, "solver failure injected by a chaos failpoint"),
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::UnknownVariable {
            index: 5,
            n_vars: 2
        }
        .to_string()
        .contains('5'));
    }
}
