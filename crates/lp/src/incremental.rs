//! A persistent, warm-startable simplex engine.
//!
//! [`IncrementalLp`] owns its tableau and basis *across* solves, which
//! is exactly the structure column generation needs (§4.3):
//!
//! * **Objective changes** ([`IncrementalLp::set_objective`] then
//!   [`resolve`](IncrementalLp::resolve)): the constraint rows — and
//!   therefore the feasible region and the current basic point — are
//!   untouched, so the previous optimal basis stays primal-feasible
//!   and the resolve re-prices and runs phase-2 pivots only. Phase 1
//!   is skipped entirely. This is the pricing-subproblem pattern: the
//!   polytope `Λ_l` never changes, only `c_l − π` does.
//! * **Column additions** ([`add_columns`](IncrementalLp::add_columns)
//!   then `resolve`): new columns enter non-basic at zero, so the old
//!   basis remains primal-feasible (a dual-feasible warm start in the
//!   column-generation sense — only the new columns need pricing in).
//!   This is the restricted-master pattern: the master only ever
//!   *gains* columns.
//!
//! Every resolve ends with a **canonical finish** (a refactorization of
//! the final basis): the reported solution is a pure function of the
//! problem data and the final basis, independent of the pivot path
//! that reached it. A warm resolve and a cold solve landing on the same
//! optimal basis therefore return bit-identical solutions, which is
//! what makes warm-started column generation reproducible against its
//! cold baseline.
//!
//! Any numerical failure on the warm path (singular refactorization,
//! iteration limit) silently falls back to a cold solve of the same
//! data, so callers see cold-solve semantics with warm-solve speed.

use std::time::{Duration, Instant};

use crate::error::LpError;
use crate::problem::{Constraint, LinearProgram, Relation, Solution};
use crate::simplex::{
    self, assemble, canonical_finish, extract_solution, metrics, run_phase1, run_phase2,
    SolveStats, Tableau,
};

/// What the most recent [`IncrementalLp::resolve`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolveStats {
    /// Whether the resolve reused the previous optimal basis. `false`
    /// for first solves and for warm attempts that fell back to cold.
    pub warm: bool,
    /// Whether a phase 1 that a cold solve would have run was skipped
    /// (the problem has artificial columns and the resolve was warm).
    pub phase1_skipped: bool,
    /// Simplex pivots performed (all phases, including any wasted warm
    /// attempt before a fallback).
    pub pivots: u64,
    /// Phase-1 iterations performed.
    pub phase1_iterations: u64,
    /// Phase-2 iterations performed.
    pub phase2_iterations: u64,
    /// Wall-clock time of the resolve.
    pub duration: Duration,
}

/// One column to append to a live program: its objective coefficient
/// and sparse `(row, coefficient)` entries.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Objective coefficient of the new variable.
    pub cost: f64,
    /// Sparse constraint-row entries `(row index, coefficient)`;
    /// duplicate rows accumulate.
    pub entries: Vec<(usize, f64)>,
}

/// Warm state carried between resolves: the live tableau plus the
/// bookkeeping to map tableau columns back to variables.
#[derive(Debug, Clone)]
struct WarmState {
    t: Tableau,
    ref_col: Vec<usize>,
    flipped: Vec<bool>,
    /// Structural variable count at assembly time (variables added
    /// later live in appended tableau columns).
    n_assembled: usize,
    /// Tableau column index where appended variables start.
    appended_at: usize,
}

impl WarmState {
    fn var_to_col(&self, v: usize) -> usize {
        if v < self.n_assembled {
            v
        } else {
            self.appended_at + (v - self.n_assembled)
        }
    }

    fn col_to_var(&self, j: usize) -> Option<usize> {
        if j < self.n_assembled {
            Some(j)
        } else if j >= self.appended_at {
            Some(self.n_assembled + (j - self.appended_at))
        } else {
            None
        }
    }
}

/// A linear program (minimization, non-negative variables) whose solver
/// state persists across solves. See the module docs for the two warm
/// patterns; rows are frozen after the first solve, columns and the
/// objective are not.
///
/// # Examples
///
/// ```
/// use lpsolve::{IncrementalLp, Relation};
///
/// // minimize x₀ + 2x₁  s.t.  x₀ + x₁ ≥ 1
/// let mut lp = IncrementalLp::new(2);
/// lp.set_objective(&[(0, 1.0), (1, 2.0)])?;
/// lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 1.0)?;
/// let cold = lp.resolve()?;
/// assert_eq!(cold.objective, 1.0); // all mass on the cheap variable
///
/// // Re-pricing after an objective change warm-starts from the
/// // previous basis: no phase 1, usually few (or zero) pivots.
/// lp.set_objective(&[(0, 3.0), (1, 2.0)])?;
/// let warm = lp.resolve()?;
/// assert_eq!(warm.objective, 2.0); // mass moved to x₁
/// assert!(lp.last_stats().warm);
/// # Ok::<(), lpsolve::LpError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalLp {
    n_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    warm: Option<WarmState>,
    last_stats: ResolveStats,
}

impl IncrementalLp {
    /// Creates a program over `n_vars` non-negative variables with a
    /// zero objective.
    pub fn new(n_vars: usize) -> Self {
        Self {
            n_vars,
            objective: vec![0.0; n_vars],
            constraints: Vec::new(),
            warm: None,
            last_stats: ResolveStats::default(),
        }
    }

    /// Clones problem data (not solver state) out of a
    /// [`LinearProgram`].
    pub fn from_program(lp: &LinearProgram) -> Self {
        Self {
            n_vars: lp.n_vars(),
            objective: lp.objective().to_vec(),
            constraints: lp.constraints().to_vec(),
            warm: None,
            last_stats: ResolveStats::default(),
        }
    }

    /// Number of decision variables (original plus appended columns).
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraint rows.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Statistics for the most recent [`resolve`](Self::resolve).
    pub fn last_stats(&self) -> ResolveStats {
        self.last_stats
    }

    /// Drops the warm state: the next resolve is a cold solve.
    pub fn invalidate(&mut self) {
        self.warm = None;
    }

    /// Replaces the minimization objective from sparse `(index, coeff)`
    /// pairs. Unmentioned variables get coefficient zero; mentioning an
    /// index twice accumulates. Keeps the warm basis — objective
    /// changes never invalidate primal feasibility.
    ///
    /// # Errors
    ///
    /// [`LpError::UnknownVariable`] for an out-of-range index,
    /// [`LpError::NonFiniteValue`] for NaN/infinite coefficients.
    pub fn set_objective(&mut self, coeffs: &[(usize, f64)]) -> Result<(), LpError> {
        for &(i, c) in coeffs {
            if i >= self.n_vars {
                return Err(LpError::UnknownVariable {
                    index: i,
                    n_vars: self.n_vars,
                });
            }
            if !c.is_finite() {
                return Err(LpError::NonFiniteValue);
            }
        }
        self.objective.fill(0.0);
        for &(i, c) in coeffs {
            self.objective[i] += c;
        }
        Ok(())
    }

    /// Adds the constraint `Σ coeffs ⋅ x {relation} rhs`. Rows can only
    /// be added before the first solve — afterwards the basis owns the
    /// row structure.
    ///
    /// # Errors
    ///
    /// [`LpError::StructureFrozen`] after the first solve, otherwise
    /// the same validation errors as
    /// [`LinearProgram::add_constraint`].
    pub fn add_constraint(
        &mut self,
        coeffs: &[(usize, f64)],
        relation: Relation,
        rhs: f64,
    ) -> Result<usize, LpError> {
        if self.warm.is_some() {
            return Err(LpError::StructureFrozen);
        }
        if !rhs.is_finite() {
            return Err(LpError::NonFiniteValue);
        }
        let mut seen: Vec<(usize, f64)> = Vec::with_capacity(coeffs.len());
        for &(i, c) in coeffs {
            if i >= self.n_vars {
                return Err(LpError::UnknownVariable {
                    index: i,
                    n_vars: self.n_vars,
                });
            }
            if !c.is_finite() {
                return Err(LpError::NonFiniteValue);
            }
            if let Some(slot) = seen.iter_mut().find(|(j, _)| *j == i) {
                slot.1 += c;
            } else {
                seen.push((i, c));
            }
        }
        let id = self.constraints.len();
        self.constraints.push(Constraint {
            coeffs: seen,
            relation,
            rhs,
        });
        Ok(id)
    }

    /// Appends one column (a new non-negative variable); see
    /// [`add_columns`](Self::add_columns). Returns the new variable's
    /// index.
    ///
    /// # Errors
    ///
    /// Same as [`add_columns`](Self::add_columns).
    pub fn add_column(&mut self, cost: f64, entries: &[(usize, f64)]) -> Result<usize, LpError> {
        let v = self.n_vars;
        self.add_columns(std::slice::from_ref(&ColumnSpec {
            cost,
            entries: entries.to_vec(),
        }))?;
        Ok(v)
    }

    /// Appends a batch of columns (new non-negative variables). If a
    /// warm basis exists it is extended in place: the new columns enter
    /// non-basic at zero, the old basis stays primal-feasible, and the
    /// next [`resolve`](Self::resolve) only needs to price them in.
    ///
    /// # Errors
    ///
    /// [`LpError::UnknownVariable`] for a row index out of range (the
    /// variant's fields carry the row count), [`LpError::NonFiniteValue`]
    /// for NaN/infinite values. On error nothing is modified.
    pub fn add_columns(&mut self, cols: &[ColumnSpec]) -> Result<(), LpError> {
        let m = self.constraints.len();
        for spec in cols {
            if !spec.cost.is_finite() {
                return Err(LpError::NonFiniteValue);
            }
            for &(row, v) in &spec.entries {
                if row >= m {
                    return Err(LpError::UnknownVariable {
                        index: row,
                        n_vars: m,
                    });
                }
                if !v.is_finite() {
                    return Err(LpError::NonFiniteValue);
                }
            }
        }
        // Dense per-row accumulation (duplicate rows add up), shared by
        // the problem definition and the tableau append.
        let mut dense_cols: Vec<Vec<f64>> = Vec::with_capacity(cols.len());
        for spec in cols {
            let v = self.n_vars;
            self.n_vars += 1;
            self.objective.push(spec.cost);
            let mut dense = vec![0.0; m];
            for &(row, val) in &spec.entries {
                dense[row] += val;
            }
            for (row, &val) in dense.iter().enumerate() {
                if val != 0.0 {
                    self.constraints[row].coeffs.push((v, val));
                }
            }
            dense_cols.push(dense);
        }
        if let Some(ws) = self.warm.as_mut() {
            // Normalize to the tableau's sign convention (rows flipped
            // to non-negative rhs during assembly).
            for (i, dense) in dense_cols
                .iter_mut()
                .flat_map(|d| d.iter_mut().enumerate().collect::<Vec<_>>())
            {
                if ws.flipped[i] {
                    *dense = -*dense;
                }
            }
            ws.t.append_columns(&dense_cols, &ws.ref_col);
            vlp_obs::global().incr(metrics::WARM_COLUMNS_ADDED, cols.len() as u64);
        }
        Ok(())
    }

    /// Solves the program, reusing the previous optimal basis when one
    /// exists. The first call (or any call after
    /// [`invalidate`](Self::invalidate)) is a cold two-phase solve;
    /// later calls warm-start: objective changes re-price the old basis
    /// (no phase 1), appended columns price in on top of it. Any warm
    /// numerical failure falls back to a cold solve transparently.
    ///
    /// # Example
    ///
    /// ```
    /// use lpsolve::{IncrementalLp, Relation};
    ///
    /// // minimize 2x₀ + x₁  s.t.  x₀ + x₁ ≥ 1
    /// let mut lp = IncrementalLp::new(2);
    /// lp.set_objective(&[(0, 2.0), (1, 1.0)])?;
    /// lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 1.0)?;
    /// let cold = lp.resolve()?;
    /// assert_eq!(cold.objective, 1.0);
    /// assert!(!lp.last_stats().warm); // first solve is cold
    ///
    /// let warm = lp.resolve()?; // nothing changed: zero-pivot re-price
    /// assert_eq!(warm.objective, 1.0);
    /// assert!(lp.last_stats().warm);
    /// # Ok::<(), lpsolve::LpError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Same failure modes as [`LinearProgram::solve`], plus
    /// [`LpError::FaultInjected`] under an active chaos failpoint
    /// scope whose schedule fires `lp.resolve.fault` (the warm state
    /// is left untouched, so a retried resolve behaves as if the
    /// injected failure never happened).
    pub fn resolve(&mut self) -> Result<Solution, LpError> {
        if vlp_obs::failpoint::should_fail(vlp_obs::failpoint::site::LP_RESOLVE) {
            return Err(LpError::FaultInjected);
        }
        let started = Instant::now();
        let mut stats = SolveStats::default();
        let mut rs = ResolveStats::default();
        let result = match self.warm.take() {
            Some(ws) => match Self::resolve_warm(&self.objective, ws, &mut stats) {
                Ok((sol, ws)) => {
                    rs.warm = true;
                    rs.phase1_skipped = ws.t.has_artificials();
                    self.warm = Some(ws);
                    Ok(sol)
                }
                // The warm attempt hit numerical trouble; its pivots
                // stay in the tally (they were real work) but the
                // answer comes from a fresh cold solve.
                Err(_) => self.resolve_cold(&mut stats),
            },
            None => self.resolve_cold(&mut stats),
        };
        rs.pivots = stats.pivots;
        rs.phase1_iterations = stats.phase1_iterations;
        rs.phase2_iterations = stats.phase2_iterations;
        rs.duration = started.elapsed();
        self.last_stats = rs;
        let reg = vlp_obs::global();
        stats.flush();
        reg.record_duration(metrics::SOLVE_TIME, rs.duration);
        if rs.warm {
            reg.incr(metrics::WARM_RESOLVES, 1);
            reg.incr(metrics::WARM_PIVOTS, stats.pivots);
            if rs.phase1_skipped {
                reg.incr(metrics::WARM_PHASE1_SKIPPED, 1);
            }
        } else {
            reg.incr(metrics::WARM_COLD_SOLVES, 1);
        }
        result
    }

    /// Dense cost vector over all tableau columns (zero on
    /// slack/surplus/artificial columns).
    fn dense_cost(objective: &[f64], ws: &WarmState) -> Vec<f64> {
        let mut c = vec![0.0; ws.t.cols];
        for (v, &cv) in objective.iter().enumerate() {
            c[ws.var_to_col(v)] = cv;
        }
        c
    }

    fn resolve_warm(
        objective: &[f64],
        mut ws: WarmState,
        stats: &mut SolveStats,
    ) -> Result<(Solution, WarmState), LpError> {
        let c = Self::dense_cost(objective, &ws);
        // The previous resolve left the tableau canonically
        // refactorized, so re-pricing against it is numerically clean;
        // the optimize loop refactorizes periodically regardless.
        ws.t.reprice(&c);
        ws.t.optimize(&c, true, stats, false)?;
        canonical_finish(&mut ws.t, &c, stats)?;
        let sol = extract_solution(&ws.t, &ws.ref_col, &ws.flipped, objective.len(), |j| {
            ws.col_to_var(j)
        });
        Ok((sol, ws))
    }

    fn resolve_cold(&mut self, stats: &mut SolveStats) -> Result<Solution, LpError> {
        let n = self.n_vars;
        let simplex::Assembly {
            mut t,
            ref_col,
            flipped,
        } = assemble(n, &self.constraints);
        if t.has_artificials() {
            run_phase1(&mut t, stats)?;
        }
        let mut c = vec![0.0; t.cols];
        c[..n].copy_from_slice(&self.objective);
        run_phase2(&mut t, &c, stats)?;
        canonical_finish(&mut t, &c, stats)?;
        let sol = extract_solution(&t, &ref_col, &flipped, n, |j| (j < n).then_some(j));
        self.warm = Some(WarmState {
            appended_at: t.cols,
            n_assembled: n,
            t,
            ref_col,
            flipped,
        });
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    /// min -3x - 5y over the Hillier polytope; optimum -36 at (2, 6).
    fn hillier() -> IncrementalLp {
        let mut lp = IncrementalLp::new(2);
        lp.set_objective(&[(0, -3.0), (1, -5.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 4.0).unwrap();
        lp.add_constraint(&[(1, 2.0)], Relation::Le, 12.0).unwrap();
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0)
            .unwrap();
        lp
    }

    #[test]
    fn first_solve_matches_linear_program() {
        let mut inc = hillier();
        let s = inc.resolve().unwrap();
        assert_close(s.objective, -36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
        assert!(!inc.last_stats().warm);
        assert!(inc.last_stats().pivots > 0);
    }

    #[test]
    fn objective_change_resolves_warm_to_cold_answer() {
        let mut inc = hillier();
        inc.resolve().unwrap();
        // New objective over the same polytope: min -x (x to its bound).
        inc.set_objective(&[(0, -1.0)]).unwrap();
        let warm = inc.resolve().unwrap();
        assert!(inc.last_stats().warm);
        let mut cold = LinearProgram::new(2);
        cold.set_objective(&[(0, -1.0)]).unwrap();
        cold.add_constraint(&[(0, 1.0)], Relation::Le, 4.0).unwrap();
        cold.add_constraint(&[(1, 2.0)], Relation::Le, 12.0)
            .unwrap();
        cold.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let cs = cold.solve().unwrap();
        assert_close(warm.objective, cs.objective);
        // Dual objectives agree too (the optimal value is unique even
        // when the dual point is not).
        let rhs = [4.0, 12.0, 18.0];
        let warm_yb: f64 = warm.duals.iter().zip(rhs).map(|(y, b)| y * b).sum();
        let cold_yb: f64 = cs.duals.iter().zip(rhs).map(|(y, b)| y * b).sum();
        assert_close(warm_yb, warm.objective);
        assert_close(cold_yb, cs.objective);
    }

    #[test]
    fn warm_resolve_skips_phase_one_on_equality_rows() {
        // Probability simplex: phase 1 needed cold, skipped warm.
        let mut inc = IncrementalLp::new(3);
        inc.set_objective(&[(0, 3.0), (1, 1.0), (2, 2.0)]).unwrap();
        inc.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Eq, 1.0)
            .unwrap();
        let s = inc.resolve().unwrap();
        assert_close(s.objective, 1.0);
        assert!(inc.last_stats().phase1_iterations > 0);
        inc.set_objective(&[(0, 1.0), (1, 5.0), (2, 4.0)]).unwrap();
        let s2 = inc.resolve().unwrap();
        assert_close(s2.objective, 1.0);
        assert_close(s2.x[0], 1.0);
        let stats = inc.last_stats();
        assert!(stats.warm);
        assert!(stats.phase1_skipped);
        assert_eq!(stats.phase1_iterations, 0);
    }

    #[test]
    fn added_column_prices_in_warm() {
        // Simplex over {a, b} with costs (2, 3): optimum 2. Add a
        // cheaper column c with cost 1: optimum moves to 1.
        let mut inc = IncrementalLp::new(2);
        inc.set_objective(&[(0, 2.0), (1, 3.0)]).unwrap();
        inc.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 1.0)
            .unwrap();
        let s = inc.resolve().unwrap();
        assert_close(s.objective, 2.0);
        let v = inc.add_column(1.0, &[(0, 1.0)]).unwrap();
        assert_eq!(v, 2);
        let s2 = inc.resolve().unwrap();
        assert!(inc.last_stats().warm);
        assert_close(s2.objective, 1.0);
        assert_close(s2.x[2], 1.0);
        assert_close(s2.x[0], 0.0);
    }

    #[test]
    fn added_column_matches_cold_rebuild() {
        // Master-like program: coupling row + convexity row; add a
        // batch of columns warm and compare against a cold solve of the
        // full program.
        let mut inc = IncrementalLp::new(2);
        inc.set_objective(&[(0, 5.0), (1, 4.0)]).unwrap();
        inc.add_constraint(&[(0, 0.3), (1, 0.9)], Relation::Eq, 0.6)
            .unwrap();
        inc.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 1.0)
            .unwrap();
        inc.resolve().unwrap();
        inc.add_columns(&[
            ColumnSpec {
                cost: 2.0,
                entries: vec![(0, 0.6), (1, 1.0)],
            },
            ColumnSpec {
                cost: 7.0,
                entries: vec![(0, 1.4), (1, 1.0)],
            },
        ])
        .unwrap();
        let warm = inc.resolve().unwrap();
        assert!(inc.last_stats().warm);

        let mut cold = LinearProgram::new(4);
        cold.set_objective(&[(0, 5.0), (1, 4.0), (2, 2.0), (3, 7.0)])
            .unwrap();
        cold.add_constraint(&[(0, 0.3), (1, 0.9), (2, 0.6), (3, 1.4)], Relation::Eq, 0.6)
            .unwrap();
        cold.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)], Relation::Eq, 1.0)
            .unwrap();
        let cs = cold.solve().unwrap();
        assert_close(warm.objective, cs.objective);
        for (w, c) in warm.x.iter().zip(&cs.x) {
            assert_close(*w, *c);
        }
    }

    #[test]
    fn rows_freeze_after_first_solve() {
        let mut inc = hillier();
        inc.resolve().unwrap();
        assert_eq!(
            inc.add_constraint(&[(0, 1.0)], Relation::Le, 1.0)
                .unwrap_err(),
            LpError::StructureFrozen
        );
        // invalidate() unfreezes (next solve is cold anyway).
        inc.invalidate();
        inc.add_constraint(&[(0, 1.0)], Relation::Le, 1.0).unwrap();
        let s = inc.resolve().unwrap();
        assert_close(s.x[0], 1.0);
    }

    #[test]
    fn unbounded_objective_change_is_reported() {
        let mut inc = IncrementalLp::new(2);
        inc.set_objective(&[(0, 1.0)]).unwrap();
        inc.add_constraint(&[(0, 1.0)], Relation::Le, 5.0).unwrap();
        inc.resolve().unwrap();
        // y is unconstrained above; minimizing -y is unbounded.
        inc.set_objective(&[(1, -1.0)]).unwrap();
        assert_eq!(inc.resolve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn infeasible_cold_solve_is_reported() {
        let mut inc = IncrementalLp::new(1);
        inc.add_constraint(&[(0, 1.0)], Relation::Le, 1.0).unwrap();
        inc.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(inc.resolve().unwrap_err(), LpError::Infeasible);
        // No warm state was stored; a repeat call still reports it.
        assert_eq!(inc.resolve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn from_program_round_trips() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, -3.0), (1, -5.0)]).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 4.0).unwrap();
        lp.add_constraint(&[(1, 2.0)], Relation::Le, 12.0).unwrap();
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let mut inc = IncrementalLp::from_program(&lp);
        let a = lp.solve().unwrap();
        let b = inc.resolve().unwrap();
        assert_close(a.objective, b.objective);
    }

    #[test]
    fn repeated_resolves_are_stable() {
        // Re-resolving without any change must keep returning the same
        // optimum (and take zero pivots once optimal).
        let mut inc = hillier();
        let first = inc.resolve().unwrap();
        for _ in 0..3 {
            let again = inc.resolve().unwrap();
            assert_eq!(again.objective.to_bits(), first.objective.to_bits());
            assert_eq!(inc.last_stats().pivots, 0);
        }
    }
}
