//! Property-based tests for the simplex solver.

use lpsolve::{LinearProgram, Relation};
use proptest::prelude::*;

proptest! {
    /// Box problems have the closed-form optimum
    /// `Σ_i min(0, c_i · u_i)` (each variable goes to its bound or 0).
    #[test]
    fn box_problem_matches_closed_form(
        cs in prop::collection::vec(-10.0f64..10.0, 1..8),
        us in prop::collection::vec(0.1f64..5.0, 8),
    ) {
        let n = cs.len();
        let mut lp = LinearProgram::new(n);
        let obj: Vec<(usize, f64)> = cs.iter().copied().enumerate().collect();
        lp.set_objective(&obj).unwrap();
        for (i, &u) in us.iter().enumerate().take(n) {
            lp.add_constraint(&[(i, 1.0)], Relation::Le, u).unwrap();
        }
        let s = lp.solve().unwrap();
        let want: f64 = cs.iter().zip(&us).map(|(&c, &u)| (c * u).min(0.0)).sum();
        prop_assert!((s.objective - want).abs() < 1e-6, "{} vs {}", s.objective, want);
    }

    /// Minimizing over the probability simplex picks the smallest cost.
    #[test]
    fn simplex_constraint_picks_min_cost(
        cs in prop::collection::vec(-5.0f64..5.0, 2..10),
    ) {
        let n = cs.len();
        let mut lp = LinearProgram::new(n);
        let obj: Vec<(usize, f64)> = cs.iter().copied().enumerate().collect();
        lp.set_objective(&obj).unwrap();
        let ones: Vec<(usize, f64)> = (0..n).map(|i| (i, 1.0)).collect();
        lp.add_constraint(&ones, Relation::Eq, 1.0).unwrap();
        let s = lp.solve().unwrap();
        let want = cs.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!((s.objective - want).abs() < 1e-6);
        // Primal point stays on the simplex.
        let total: f64 = s.x.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        prop_assert!(s.x.iter().all(|&v| v >= -1e-9));
    }

    /// Strong duality holds on random feasible bounded problems:
    /// the program `min c·x` over a random polytope that always contains
    /// the box `[0, 1]^n` (rhs ≥ row-sum of positive coefficients).
    #[test]
    fn strong_duality_on_random_feasible_problems(
        seed_rows in prop::collection::vec(
            prop::collection::vec(-3.0f64..3.0, 3), 1..6),
        cs in prop::collection::vec(-4.0f64..4.0, 3),
    ) {
        let n = 3;
        let mut lp = LinearProgram::new(n);
        let obj: Vec<(usize, f64)> = cs.iter().copied().enumerate().collect();
        lp.set_objective(&obj).unwrap();
        let mut rhss = Vec::new();
        for row in &seed_rows {
            // rhs chosen so x = 0 is feasible: rhs = |max(0, ...)| + 1.
            let rhs = row.iter().map(|v| v.max(0.0)).sum::<f64>().max(0.0) + 1.0;
            let coeffs: Vec<(usize, f64)> = row.iter().copied().enumerate().collect();
            lp.add_constraint(&coeffs, Relation::Le, rhs).unwrap();
            rhss.push(rhs);
        }
        // Bound the feasible set so the problem cannot be unbounded.
        for i in 0..n {
            lp.add_constraint(&[(i, 1.0)], Relation::Le, 10.0).unwrap();
            rhss.push(10.0);
        }
        let s = lp.solve().unwrap();
        let yb: f64 = s.duals.iter().zip(&rhss).map(|(y, b)| y * b).sum();
        prop_assert!((yb - s.objective).abs() < 1e-5,
            "duality gap: y'b = {yb}, obj = {}", s.objective);
        // Feasibility of the reported primal point.
        for (ci, row) in seed_rows.iter().enumerate() {
            let lhs: f64 = row.iter().zip(&s.x).map(|(a, x)| a * x).sum();
            prop_assert!(lhs <= rhss[ci] + 1e-6);
        }
    }

    /// The reported primal point is always feasible and achieves the
    /// reported objective, for random transportation-style problems
    /// (which exercise phase 1 heavily).
    #[test]
    fn transportation_consistency(
        supply in prop::collection::vec(1.0f64..20.0, 2..4),
        demand_frac in prop::collection::vec(0.05f64..1.0, 2..4),
        costs in prop::collection::vec(0.0f64..9.0, 16),
    ) {
        let ns = supply.len();
        let nd = demand_frac.len();
        let total: f64 = supply.iter().sum();
        // Normalize demand to match total supply (balanced problem).
        let dsum: f64 = demand_frac.iter().sum();
        let demand: Vec<f64> = demand_frac.iter().map(|f| f / dsum * total).collect();
        let n = ns * nd;
        let mut lp = LinearProgram::new(n);
        let obj: Vec<(usize, f64)> = (0..n).map(|k| (k, costs[k % costs.len()])).collect();
        lp.set_objective(&obj).unwrap();
        for (s_i, s_amt) in supply.iter().enumerate() {
            let row: Vec<(usize, f64)> = (0..nd).map(|d| (s_i * nd + d, 1.0)).collect();
            lp.add_constraint(&row, Relation::Eq, *s_amt).unwrap();
        }
        for (d_i, d_amt) in demand.iter().enumerate() {
            let row: Vec<(usize, f64)> = (0..ns).map(|s| (s * nd + d_i, 1.0)).collect();
            lp.add_constraint(&row, Relation::Eq, *d_amt).unwrap();
        }
        let sol = lp.solve().unwrap();
        let achieved: f64 = (0..n).map(|k| sol.x[k] * costs[k % costs.len()]).sum();
        prop_assert!((achieved - sol.objective).abs() < 1e-5);
        // Row sums match supplies.
        for (s_i, s_amt) in supply.iter().enumerate() {
            let got: f64 = (0..nd).map(|d| sol.x[s_i * nd + d]).sum();
            prop_assert!((got - s_amt).abs() < 1e-5);
        }
    }
}
