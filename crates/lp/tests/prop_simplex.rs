//! Property-based tests for the simplex solver.

use lpsolve::{ColumnSpec, IncrementalLp, LinearProgram, Relation};
use proptest::prelude::*;

/// A random constraint row for the warm-start properties: dense
/// coefficients plus a rhs that collapses to exactly `0.0` for roughly
/// a third of the rows, so homogeneous (and hence degenerate-at-origin)
/// rows are always part of the mix.
fn arb_rows(n: usize) -> impl Strategy<Value = Vec<(Vec<f64>, f64)>> {
    prop::collection::vec(
        (
            prop::collection::vec(-3.0f64..3.0, n),
            (-4.0f64..4.0).prop_map(|r| r.max(0.0)),
        ),
        1..6,
    )
}

/// Builds the same program twice: once as a cold [`LinearProgram`],
/// once as an [`IncrementalLp`]. Rows are `≤` with rhs ≥ 0, so `x = 0`
/// is always feasible.
fn build_pair(
    n: usize,
    rows: &[(Vec<f64>, f64)],
    boxed: bool,
    obj: &[f64],
) -> (LinearProgram, IncrementalLp, Vec<f64>) {
    let sparse_obj: Vec<(usize, f64)> = obj.iter().copied().enumerate().collect();
    let mut cold = LinearProgram::new(n);
    let mut warm = IncrementalLp::new(n);
    cold.set_objective(&sparse_obj).unwrap();
    warm.set_objective(&sparse_obj).unwrap();
    let mut rhss = Vec::new();
    for (coeffs, rhs) in rows {
        let sparse: Vec<(usize, f64)> = coeffs.iter().copied().enumerate().collect();
        cold.add_constraint(&sparse, Relation::Le, *rhs).unwrap();
        warm.add_constraint(&sparse, Relation::Le, *rhs).unwrap();
        rhss.push(*rhs);
    }
    if boxed {
        for i in 0..n {
            cold.add_constraint(&[(i, 1.0)], Relation::Le, 10.0)
                .unwrap();
            warm.add_constraint(&[(i, 1.0)], Relation::Le, 10.0)
                .unwrap();
        }
        rhss.extend(std::iter::repeat_n(10.0, n));
    }
    (cold, warm, rhss)
}

proptest! {
    /// Box problems have the closed-form optimum
    /// `Σ_i min(0, c_i · u_i)` (each variable goes to its bound or 0).
    #[test]
    fn box_problem_matches_closed_form(
        cs in prop::collection::vec(-10.0f64..10.0, 1..8),
        us in prop::collection::vec(0.1f64..5.0, 8),
    ) {
        let n = cs.len();
        let mut lp = LinearProgram::new(n);
        let obj: Vec<(usize, f64)> = cs.iter().copied().enumerate().collect();
        lp.set_objective(&obj).unwrap();
        for (i, &u) in us.iter().enumerate().take(n) {
            lp.add_constraint(&[(i, 1.0)], Relation::Le, u).unwrap();
        }
        let s = lp.solve().unwrap();
        let want: f64 = cs.iter().zip(&us).map(|(&c, &u)| (c * u).min(0.0)).sum();
        prop_assert!((s.objective - want).abs() < 1e-6, "{} vs {}", s.objective, want);
    }

    /// Minimizing over the probability simplex picks the smallest cost.
    #[test]
    fn simplex_constraint_picks_min_cost(
        cs in prop::collection::vec(-5.0f64..5.0, 2..10),
    ) {
        let n = cs.len();
        let mut lp = LinearProgram::new(n);
        let obj: Vec<(usize, f64)> = cs.iter().copied().enumerate().collect();
        lp.set_objective(&obj).unwrap();
        let ones: Vec<(usize, f64)> = (0..n).map(|i| (i, 1.0)).collect();
        lp.add_constraint(&ones, Relation::Eq, 1.0).unwrap();
        let s = lp.solve().unwrap();
        let want = cs.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!((s.objective - want).abs() < 1e-6);
        // Primal point stays on the simplex.
        let total: f64 = s.x.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        prop_assert!(s.x.iter().all(|&v| v >= -1e-9));
    }

    /// Strong duality holds on random feasible bounded problems:
    /// the program `min c·x` over a random polytope that always contains
    /// the box `[0, 1]^n` (rhs ≥ row-sum of positive coefficients).
    #[test]
    fn strong_duality_on_random_feasible_problems(
        seed_rows in prop::collection::vec(
            prop::collection::vec(-3.0f64..3.0, 3), 1..6),
        cs in prop::collection::vec(-4.0f64..4.0, 3),
    ) {
        let n = 3;
        let mut lp = LinearProgram::new(n);
        let obj: Vec<(usize, f64)> = cs.iter().copied().enumerate().collect();
        lp.set_objective(&obj).unwrap();
        let mut rhss = Vec::new();
        for row in &seed_rows {
            // rhs chosen so x = 0 is feasible: rhs = |max(0, ...)| + 1.
            let rhs = row.iter().map(|v| v.max(0.0)).sum::<f64>().max(0.0) + 1.0;
            let coeffs: Vec<(usize, f64)> = row.iter().copied().enumerate().collect();
            lp.add_constraint(&coeffs, Relation::Le, rhs).unwrap();
            rhss.push(rhs);
        }
        // Bound the feasible set so the problem cannot be unbounded.
        for i in 0..n {
            lp.add_constraint(&[(i, 1.0)], Relation::Le, 10.0).unwrap();
            rhss.push(10.0);
        }
        let s = lp.solve().unwrap();
        let yb: f64 = s.duals.iter().zip(&rhss).map(|(y, b)| y * b).sum();
        prop_assert!((yb - s.objective).abs() < 1e-5,
            "duality gap: y'b = {yb}, obj = {}", s.objective);
        // Feasibility of the reported primal point.
        for (ci, row) in seed_rows.iter().enumerate() {
            let lhs: f64 = row.iter().zip(&s.x).map(|(a, x)| a * x).sum();
            prop_assert!(lhs <= rhss[ci] + 1e-6);
        }
    }

    /// The reported primal point is always feasible and achieves the
    /// reported objective, for random transportation-style problems
    /// (which exercise phase 1 heavily).
    #[test]
    fn transportation_consistency(
        supply in prop::collection::vec(1.0f64..20.0, 2..4),
        demand_frac in prop::collection::vec(0.05f64..1.0, 2..4),
        costs in prop::collection::vec(0.0f64..9.0, 16),
    ) {
        let ns = supply.len();
        let nd = demand_frac.len();
        let total: f64 = supply.iter().sum();
        // Normalize demand to match total supply (balanced problem).
        let dsum: f64 = demand_frac.iter().sum();
        let demand: Vec<f64> = demand_frac.iter().map(|f| f / dsum * total).collect();
        let n = ns * nd;
        let mut lp = LinearProgram::new(n);
        let obj: Vec<(usize, f64)> = (0..n).map(|k| (k, costs[k % costs.len()])).collect();
        lp.set_objective(&obj).unwrap();
        for (s_i, s_amt) in supply.iter().enumerate() {
            let row: Vec<(usize, f64)> = (0..nd).map(|d| (s_i * nd + d, 1.0)).collect();
            lp.add_constraint(&row, Relation::Eq, *s_amt).unwrap();
        }
        for (d_i, d_amt) in demand.iter().enumerate() {
            let row: Vec<(usize, f64)> = (0..ns).map(|s| (s * nd + d_i, 1.0)).collect();
            lp.add_constraint(&row, Relation::Eq, *d_amt).unwrap();
        }
        let sol = lp.solve().unwrap();
        let achieved: f64 = (0..n).map(|k| sol.x[k] * costs[k % costs.len()]).sum();
        prop_assert!((achieved - sol.objective).abs() < 1e-5);
        // Row sums match supplies.
        for (s_i, s_amt) in supply.iter().enumerate() {
            let got: f64 = (0..nd).map(|d| sol.x[s_i * nd + d]).sum();
            prop_assert!((got - s_amt).abs() < 1e-5);
        }
    }

    /// After an objective change, a warm `resolve()` must agree with a
    /// cold `LinearProgram::solve` of the same data: same optimum, same
    /// dual objective (`y·b`, which is unique even when the dual point
    /// is not), same primal feasibility — on random polytopes that
    /// include homogeneous rows (rhs = 0), so the warm basis is
    /// routinely degenerate at the origin.
    #[test]
    fn warm_objective_change_matches_cold(
        rows in arb_rows(3),
        obj1 in prop::collection::vec(-4.0f64..4.0, 3),
        obj2 in prop::collection::vec(-4.0f64..4.0, 3),
    ) {
        let n = 3;
        let (mut cold, mut warm, rhss) = build_pair(n, &rows, true, &obj1);
        warm.resolve().unwrap();
        // Swap objectives on both and solve again.
        let sparse2: Vec<(usize, f64)> = obj2.iter().copied().enumerate().collect();
        cold.set_objective(&sparse2).unwrap();
        warm.set_objective(&sparse2).unwrap();
        let cs = cold.solve().unwrap();
        let ws = warm.resolve().unwrap();
        prop_assert!(warm.last_stats().warm);
        prop_assert_eq!(warm.last_stats().phase1_iterations, 0);
        prop_assert!((ws.objective - cs.objective).abs() < 1e-6,
            "warm {} vs cold {}", ws.objective, cs.objective);
        // Strong duality holds for both reported dual vectors.
        let w_yb: f64 = ws.duals.iter().zip(&rhss).map(|(y, b)| y * b).sum();
        let c_yb: f64 = cs.duals.iter().zip(&rhss).map(|(y, b)| y * b).sum();
        prop_assert!((w_yb - ws.objective).abs() < 1e-5);
        prop_assert!((c_yb - cs.objective).abs() < 1e-5);
        // The warm primal point is feasible.
        for ((coeffs, rhs), _) in rows.iter().zip(0..) {
            let lhs: f64 = coeffs.iter().zip(&ws.x).map(|(a, x)| a * x).sum();
            prop_assert!(lhs <= rhs + 1e-6);
        }
        prop_assert!(ws.x.iter().all(|&v| v >= -1e-9));
    }

    /// Without box bounds the problem may be unbounded; whatever the
    /// cold solver decides (optimum or error), the warm resolve must
    /// report the same outcome.
    #[test]
    fn warm_resolve_matches_cold_error_kinds(
        rows in arb_rows(3),
        obj1 in prop::collection::vec(-4.0f64..4.0, 3),
        obj2 in prop::collection::vec(-4.0f64..4.0, 3),
    ) {
        let n = 3;
        let (mut cold, mut warm, _) = build_pair(n, &rows, false, &obj1);
        // The first solves must already agree.
        let first_cold = cold.solve();
        let first_warm = warm.resolve();
        match (&first_cold, &first_warm) {
            (Ok(a), Ok(b)) => prop_assert!((a.objective - b.objective).abs() < 1e-6),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            other => prop_assert!(false, "first solve disagrees: {:?}", other),
        }
        let sparse2: Vec<(usize, f64)> = obj2.iter().copied().enumerate().collect();
        cold.set_objective(&sparse2).unwrap();
        warm.set_objective(&sparse2).unwrap();
        match (cold.solve(), warm.resolve()) {
            (Ok(a), Ok(b)) => prop_assert!((a.objective - b.objective).abs() < 1e-6,
                "warm {} vs cold {}", b.objective, a.objective),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            other => prop_assert!(false, "second solve disagrees: {:?}", other),
        }
    }

    /// Appending columns to a live solver matches a cold solve of the
    /// widened program, including through homogeneous equality rows
    /// (which force phase 1 on the cold side).
    #[test]
    fn warm_added_columns_match_cold_rebuild(
        rows in arb_rows(3),
        obj in prop::collection::vec(-4.0f64..4.0, 3),
        new_cost in -4.0f64..4.0,
        new_col in prop::collection::vec(-2.0f64..2.0, 1..6),
    ) {
        let n = 3;
        let (_, mut warm, _) = build_pair(n, &rows, true, &obj);
        warm.resolve().unwrap();
        let m = warm.n_constraints();
        let entries: Vec<(usize, f64)> = new_col
            .iter()
            .copied()
            .enumerate()
            .map(|(r, v)| (r % m, v))
            .collect();
        warm.add_columns(&[ColumnSpec { cost: new_cost, entries: entries.clone() }]).unwrap();
        // The new column has no box row in either program, so both may
        // now be unbounded — outcomes must match either way.
        let warm_result = warm.resolve();

        // Cold rebuild of the widened program (duplicate row entries in
        // `entries` accumulate, mirroring `add_columns`).
        let mut cold = LinearProgram::new(n + 1);
        let mut sparse_obj: Vec<(usize, f64)> = obj.iter().copied().enumerate().collect();
        sparse_obj.push((n, new_cost));
        cold.set_objective(&sparse_obj).unwrap();
        // Mirror every row of the warm program — the new column's
        // entries may hit the box rows too.
        let extra_for = |r: usize| -> f64 {
            entries.iter().filter(|(row, _)| *row == r).map(|(_, v)| v).sum()
        };
        for (r, (coeffs, rhs)) in rows.iter().enumerate() {
            let mut sparse: Vec<(usize, f64)> = coeffs.iter().copied().enumerate().collect();
            let extra = extra_for(r);
            if extra != 0.0 {
                sparse.push((n, extra));
            }
            cold.add_constraint(&sparse, Relation::Le, *rhs).unwrap();
        }
        for i in 0..n {
            let mut sparse = vec![(i, 1.0)];
            let extra = extra_for(rows.len() + i);
            if extra != 0.0 {
                sparse.push((n, extra));
            }
            cold.add_constraint(&sparse, Relation::Le, 10.0).unwrap();
        }
        match (cold.solve(), warm_result) {
            (Ok(cs), Ok(ws)) => {
                prop_assert!((ws.objective - cs.objective).abs() < 1e-6,
                    "warm {} vs cold {}", ws.objective, cs.objective);
                for (w, c) in ws.x.iter().zip(&cs.x) {
                    prop_assert!((w - c).abs() < 1e-5);
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            other => prop_assert!(false, "outcomes disagree: {:?}", other),
        }
    }
}
