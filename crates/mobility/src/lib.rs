//! Network-constrained vehicle mobility: trace generation and prior
//! estimation.
//!
//! The paper's simulation (§5.1) is driven by the CRAWDAD Rome taxi
//! dataset — 290 cabs' GPS trajectories over 30 days — from which it
//! derives (a) per-vehicle location priors `f_P`, (b) a task prior
//! `f_Q`, and (c) time-stamped trajectories for learning the HMM
//! transition matrix (§3.2.2(b), footnote 4). That dataset is not
//! redistributable, so this crate *generates* equivalent inputs: each
//! vehicle performs a network-constrained random walk (continuous
//! motion along edges, randomized turns at connections, optional
//! attraction towards the map centre reproducing the downtown-skewed
//! heat map of Fig. 9), sampled at a configurable reporting period.
//!
//! Everything downstream — discretization, priors, mechanisms, attacks
//! — consumes only the outputs of this crate, so swapping in the real
//! dataset would be a pure I/O exercise.
//!
//! # Example
//!
//! ```
//! use mobility::{estimate_prior, generate_trace, TraceConfig};
//! use roadnet::generators;
//! use vlp_core::Discretization;
//!
//! let graph = generators::grid(2, 2, 0.5, true);
//! let cfg = TraceConfig { reports: 50, ..TraceConfig::default() };
//! let trace = generate_trace(&graph, &cfg, 7);
//! assert_eq!(trace.locations.len(), 50);
//!
//! // A smoothed location prior f_P estimated from the trace.
//! let disc = Discretization::new(&graph, 0.25);
//! let prior = estimate_prior(&graph, &disc, &[trace], 0.1).expect("on-map trace");
//! let total: f64 = (0..disc.len()).map(|i| prior.get(i)).sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod priors;
pub mod traces;
pub mod trips;

pub use priors::{estimate_prior, interval_trace};
pub use traces::{generate_fleet, generate_trace, subsample, TraceConfig, VehicleTrace};
pub use trips::{generate_trip_trace, TripConfig};
