//! Network-constrained random-walk trace generation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use roadnet::{EdgeId, Location, RoadGraph};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic vehicle simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of location reports to record.
    pub reports: usize,
    /// Seconds between consecutive reports (the CRAWDAD cabs report
    /// every ~7 s; the paper's Fig. 15 sweeps 70–105 s by
    /// subsampling).
    pub report_period_secs: f64,
    /// Vehicle speed in km/h (held constant; city traffic averages
    /// 20–40 km/h).
    pub speed_kmh: f64,
    /// Probability mass pulling turn decisions towards the map centre:
    /// `0.0` = unbiased uniform turns, `1.0` = always pick the
    /// centre-most successor. Reproduces downtown-concentrated priors.
    pub center_bias: f64,
    /// Probability of avoiding an immediate U-turn when alternatives
    /// exist (real vehicles rarely reverse onto the anti-parallel
    /// segment).
    pub u_turn_avoidance: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            reports: 200,
            report_period_secs: 7.0,
            speed_kmh: 30.0,
            center_bias: 0.3,
            u_turn_avoidance: 0.9,
        }
    }
}

/// One vehicle's recorded trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleTrace {
    /// Recorded on-road locations, one per report.
    pub locations: Vec<Location>,
    /// Timestamps in seconds, aligned with `locations`.
    pub timestamps: Vec<f64>,
}

impl VehicleTrace {
    /// Number of reports in the trace.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Total path distance driven between first and last report,
    /// assuming constant speed (km).
    pub fn path_distance(&self, cfg: &TraceConfig) -> f64 {
        if self.timestamps.len() < 2 {
            return 0.0;
        }
        let secs = self.timestamps.last().unwrap() - self.timestamps[0];
        secs / 3600.0 * cfg.speed_kmh
    }
}

/// Simulates one vehicle and records its location every
/// `report_period_secs`.
///
/// The vehicle starts on a seeded random edge and drives at constant
/// speed; at each connection it chooses an outgoing edge uniformly,
/// modulated by `center_bias` (preferring successors that lead towards
/// the map's centroid) and `u_turn_avoidance`.
///
/// # Panics
///
/// Panics if the graph has no edges or the configuration is degenerate
/// (non-positive speed, period, or zero reports).
pub fn generate_trace(graph: &RoadGraph, cfg: &TraceConfig, seed: u64) -> VehicleTrace {
    assert!(graph.edge_count() > 0, "graph has no edges");
    assert!(cfg.speed_kmh > 0.0, "speed must be positive");
    assert!(
        cfg.report_period_secs > 0.0,
        "report period must be positive"
    );
    assert!(cfg.reports > 0, "need at least one report");
    let mut rng = StdRng::seed_from_u64(seed);
    // Map centroid for the centre bias.
    let (cx, cy) = {
        let n = graph.node_count() as f64;
        let sx: f64 = graph.nodes().iter().map(|v| v.x).sum();
        let sy: f64 = graph.nodes().iter().map(|v| v.y).sum();
        (sx / n, sy / n)
    };
    let mut edge = EdgeId(rng.random_range(0..graph.edge_count()));
    // Remaining distance to the edge end (paper's x coordinate).
    let mut x = rng.random_range(0.0..graph.edge(edge).length());
    let step_km = cfg.speed_kmh * cfg.report_period_secs / 3600.0;
    let mut locations = Vec::with_capacity(cfg.reports);
    let mut timestamps = Vec::with_capacity(cfg.reports);
    for r in 0..cfg.reports {
        locations.push(Location::new(edge, x));
        timestamps.push(r as f64 * cfg.report_period_secs);
        // Advance by one reporting period.
        let mut remaining = step_km;
        while remaining > 0.0 {
            if x > remaining {
                x -= remaining;
                remaining = 0.0;
            } else {
                remaining -= x;
                let node = graph.edge(edge).end();
                let choices = graph.out_edges(node);
                assert!(
                    !choices.is_empty(),
                    "vehicle stuck at dead-end connection {node}"
                );
                edge = pick_edge(graph, choices, edge, (cx, cy), cfg, &mut rng);
                x = graph.edge(edge).length();
            }
        }
    }
    VehicleTrace {
        locations,
        timestamps,
    }
}

/// Chooses the next edge at a connection.
fn pick_edge(
    graph: &RoadGraph,
    choices: &[EdgeId],
    current: EdgeId,
    centre: (f64, f64),
    cfg: &TraceConfig,
    rng: &mut StdRng,
) -> EdgeId {
    // Filter out the immediate U-turn with probability u_turn_avoidance.
    let cur = graph.edge(current);
    let mut candidates: Vec<EdgeId> = choices.to_vec();
    if candidates.len() > 1 && rng.random_range(0.0..1.0) < cfg.u_turn_avoidance {
        candidates.retain(|&e| {
            let cand = graph.edge(e);
            !(cand.end() == cur.start() && cand.start() == cur.end())
        });
        if candidates.is_empty() {
            candidates = choices.to_vec();
        }
    }
    if candidates.len() > 1 && rng.random_range(0.0..1.0) < cfg.center_bias {
        // Pick the successor whose endpoint is closest to the centre.
        let dist_to_centre = |e: EdgeId| {
            let v = graph.node(graph.edge(e).end());
            ((v.x - centre.0).powi(2) + (v.y - centre.1).powi(2)).sqrt()
        };
        return *candidates
            .iter()
            .min_by(|&&a, &&b| {
                dist_to_centre(a)
                    .partial_cmp(&dist_to_centre(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("candidates is non-empty");
    }
    candidates[rng.random_range(0..candidates.len())]
}

/// Simulates a fleet of vehicles with per-vehicle seeds derived from
/// `base_seed`.
pub fn generate_fleet(
    graph: &RoadGraph,
    cfg: &TraceConfig,
    n_vehicles: usize,
    base_seed: u64,
) -> Vec<VehicleTrace> {
    (0..n_vehicles)
        .map(|v| {
            generate_trace(
                graph,
                cfg,
                base_seed.wrapping_add(v as u64).wrapping_mul(0x9E37_79B9),
            )
        })
        .collect()
}

/// Keeps every `n`-th report — the paper's footnote 4: "to create a
/// trajectory with the report time interval equal to 7n, we take 1
/// sample from every n reports".
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn subsample(trace: &VehicleTrace, n: usize) -> VehicleTrace {
    assert!(n > 0, "subsample step must be positive");
    VehicleTrace {
        locations: trace.locations.iter().copied().step_by(n).collect(),
        timestamps: trace.timestamps.iter().copied().step_by(n).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators;

    #[test]
    fn trace_has_requested_length_and_valid_locations() {
        let g = generators::downtown(4, 4, 0.25);
        let cfg = TraceConfig {
            reports: 50,
            ..TraceConfig::default()
        };
        let t = generate_trace(&g, &cfg, 42);
        assert_eq!(t.len(), 50);
        for loc in &t.locations {
            let e = g.edge(loc.edge());
            assert!(loc.to_end() >= 0.0 && loc.to_end() <= e.length() + 1e-9);
        }
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let g = generators::grid(3, 3, 0.3, true);
        let cfg = TraceConfig::default();
        assert_eq!(generate_trace(&g, &cfg, 7), generate_trace(&g, &cfg, 7));
        assert_ne!(
            generate_trace(&g, &cfg, 7).locations,
            generate_trace(&g, &cfg, 8).locations
        );
    }

    #[test]
    fn consecutive_reports_are_close() {
        // At 30 km/h and 7 s period, consecutive reports are ≤ ~0.06 km
        // apart along the road, hence ≤ that straight-line too.
        let g = generators::grid(4, 4, 0.5, true);
        let cfg = TraceConfig {
            reports: 100,
            ..TraceConfig::default()
        };
        let t = generate_trace(&g, &cfg, 3);
        let step = cfg.speed_kmh * cfg.report_period_secs / 3600.0;
        for w in t.locations.windows(2) {
            assert!(w[0].euclidean(w[1], &g) <= step + 1e-9);
        }
    }

    #[test]
    fn center_bias_concentrates_mass() {
        let g = generators::rome_like(3, 8, 1.0, 5);
        let biased_cfg = TraceConfig {
            reports: 2000,
            center_bias: 0.6,
            ..TraceConfig::default()
        };
        let unbiased_cfg = TraceConfig {
            reports: 2000,
            center_bias: 0.0,
            ..TraceConfig::default()
        };
        let mean_radius = |t: &VehicleTrace| {
            t.locations
                .iter()
                .map(|l| {
                    let (x, y) = l.point(&g);
                    (x * x + y * y).sqrt()
                })
                .sum::<f64>()
                / t.len() as f64
        };
        let biased: f64 = (0..5)
            .map(|s| mean_radius(&generate_trace(&g, &biased_cfg, s)))
            .sum::<f64>()
            / 5.0;
        let unbiased: f64 = (0..5)
            .map(|s| mean_radius(&generate_trace(&g, &unbiased_cfg, s)))
            .sum::<f64>()
            / 5.0;
        assert!(
            biased < unbiased,
            "biased walks should stay closer to the centre: {biased} vs {unbiased}"
        );
    }

    #[test]
    fn fleet_produces_distinct_vehicles() {
        let g = generators::grid(3, 3, 0.4, true);
        let fleet = generate_fleet(&g, &TraceConfig::default(), 5, 99);
        assert_eq!(fleet.len(), 5);
        assert_ne!(fleet[0].locations, fleet[1].locations);
    }

    #[test]
    fn subsample_stretches_period() {
        let g = generators::grid(3, 3, 0.4, true);
        let cfg = TraceConfig {
            reports: 30,
            ..TraceConfig::default()
        };
        let t = generate_trace(&g, &cfg, 1);
        let s = subsample(&t, 10);
        assert_eq!(s.len(), 3);
        assert!((s.timestamps[1] - s.timestamps[0] - 70.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "subsample step must be positive")]
    fn subsample_rejects_zero() {
        let g = generators::grid(2, 2, 0.4, true);
        let t = generate_trace(&g, &TraceConfig::default(), 0);
        subsample(&t, 0);
    }

    #[test]
    fn path_distance_matches_speed() {
        let g = generators::grid(3, 3, 0.4, true);
        let cfg = TraceConfig {
            reports: 11,
            report_period_secs: 36.0,
            speed_kmh: 10.0,
            ..TraceConfig::default()
        };
        let t = generate_trace(&g, &cfg, 2);
        // 10 intervals of 36 s at 10 km/h = 1 km.
        assert!((t.path_distance(&cfg) - 1.0).abs() < 1e-9);
    }
}
