//! Origin-destination trip mobility: vehicles drive *to places*.
//!
//! The random walk of [`crate::traces`] matches aimless cruising; real
//! taxi traces alternate between purposeful trips (shortest path to a
//! destination) and dwelling at the destination. This model draws
//! destinations from a spatial attraction distribution, follows the
//! shortest road path, dwells, and repeats — producing traces whose
//! priors concentrate at attractions and whose transitions are strongly
//! directional, a tougher setting for the HMM adversary model.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use roadnet::{EdgeId, Location, NodeId, RoadGraph, ShortestPathTree, TreeDirection};

use crate::traces::VehicleTrace;

/// Parameters of the trip-based simulator.
#[derive(Debug, Clone)]
pub struct TripConfig {
    /// Number of location reports to record.
    pub reports: usize,
    /// Seconds between consecutive reports.
    pub report_period_secs: f64,
    /// Vehicle speed in km/h.
    pub speed_kmh: f64,
    /// Mean dwell time at a destination, in reports (geometric).
    pub mean_dwell_reports: f64,
    /// Attraction weight per node: destinations are drawn
    /// proportionally. Empty = uniform over nodes.
    pub attraction: Vec<f64>,
}

impl Default for TripConfig {
    fn default() -> Self {
        Self {
            reports: 300,
            report_period_secs: 7.0,
            speed_kmh: 30.0,
            mean_dwell_reports: 4.0,
            attraction: Vec::new(),
        }
    }
}

/// Simulates one vehicle running destination-directed trips.
///
/// # Panics
///
/// Panics if the graph has no edges, the configuration is degenerate,
/// or `attraction` is non-empty but does not match the node count.
pub fn generate_trip_trace(graph: &RoadGraph, cfg: &TripConfig, seed: u64) -> VehicleTrace {
    assert!(graph.edge_count() > 0, "graph has no edges");
    assert!(cfg.reports > 0, "need at least one report");
    assert!(
        cfg.speed_kmh > 0.0 && cfg.report_period_secs > 0.0,
        "degenerate kinematics"
    );
    if !cfg.attraction.is_empty() {
        assert_eq!(
            cfg.attraction.len(),
            graph.node_count(),
            "attraction dimension mismatch"
        );
        assert!(
            cfg.attraction.iter().all(|w| w.is_finite() && *w >= 0.0)
                && cfg.attraction.iter().sum::<f64>() > 0.0,
            "attraction weights must be non-negative with positive mass"
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let pick_destination = |rng: &mut StdRng| -> NodeId {
        if cfg.attraction.is_empty() {
            NodeId(rng.random_range(0..graph.node_count()))
        } else {
            let total: f64 = cfg.attraction.iter().sum();
            let mut u = rng.random_range(0.0..total);
            for (i, &w) in cfg.attraction.iter().enumerate() {
                u -= w;
                if u <= 0.0 {
                    return NodeId(i);
                }
            }
            NodeId(graph.node_count() - 1)
        }
    };

    // Start on a random edge.
    let mut edge = EdgeId(rng.random_range(0..graph.edge_count()));
    let mut x = rng.random_range(0.0..graph.edge(edge).length());
    let step_km = cfg.speed_kmh * cfg.report_period_secs / 3600.0;

    // Current trip: shortest-path tree towards the destination node.
    let mut dest = pick_destination(&mut rng);
    let mut to_dest = ShortestPathTree::build(graph, dest, TreeDirection::In);
    let mut dwell_left = 0usize;

    let mut locations = Vec::with_capacity(cfg.reports);
    let mut timestamps = Vec::with_capacity(cfg.reports);
    for r in 0..cfg.reports {
        locations.push(Location::new(edge, x));
        timestamps.push(r as f64 * cfg.report_period_secs);
        if dwell_left > 0 {
            dwell_left -= 1;
            continue;
        }
        let mut remaining = step_km;
        while remaining > 0.0 {
            if x > remaining {
                x -= remaining;
                remaining = 0.0;
            } else {
                remaining -= x;
                let node = graph.edge(edge).end();
                if node == dest {
                    // Arrived: dwell, then pick the next trip.
                    dwell_left = sample_geometric(cfg.mean_dwell_reports, &mut rng);
                    loop {
                        let next = pick_destination(&mut rng);
                        if next != node {
                            dest = next;
                            break;
                        }
                    }
                    to_dest = ShortestPathTree::build(graph, dest, TreeDirection::In);
                    remaining = 0.0;
                    // Park just before the connection on the same edge.
                    x = f64::EPSILON;
                    continue;
                }
                // Follow the shortest path towards the destination.
                let eid = to_dest
                    .via_edge(node)
                    .unwrap_or_else(|| graph.out_edges(node)[0]);
                edge = eid;
                x = graph.edge(edge).length();
            }
        }
    }
    VehicleTrace {
        locations,
        timestamps,
    }
}

/// Geometric dwell sampler with the given mean (in reports).
fn sample_geometric(mean: f64, rng: &mut StdRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (1.0 + mean);
    let mut n = 0usize;
    while rng.random_range(0.0..1.0) > p && n < 10_000 {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators;

    fn setup() -> RoadGraph {
        generators::grid(4, 4, 0.4, true)
    }

    #[test]
    fn trip_trace_has_requested_length_and_stays_on_map() {
        let g = setup();
        let t = generate_trip_trace(&g, &TripConfig::default(), 5);
        assert_eq!(t.len(), 300);
        for loc in &t.locations {
            let e = g.edge(loc.edge());
            assert!(loc.to_end() >= 0.0 && loc.to_end() <= e.length() + 1e-9);
        }
    }

    #[test]
    fn trip_trace_is_deterministic_per_seed() {
        let g = setup();
        let cfg = TripConfig::default();
        assert_eq!(
            generate_trip_trace(&g, &cfg, 9),
            generate_trip_trace(&g, &cfg, 9)
        );
        assert_ne!(
            generate_trip_trace(&g, &cfg, 9).locations,
            generate_trip_trace(&g, &cfg, 10).locations
        );
    }

    #[test]
    fn attraction_concentrates_visits() {
        let g = setup();
        // All attraction mass on node 0 (corner at the origin).
        let mut attraction = vec![0.001; g.node_count()];
        attraction[0] = 10.0;
        let cfg = TripConfig {
            reports: 600,
            attraction,
            mean_dwell_reports: 8.0,
            ..TripConfig::default()
        };
        let t = generate_trip_trace(&g, &cfg, 11);
        let corner = g.node(NodeId(0));
        let near_corner = t
            .locations
            .iter()
            .filter(|l| {
                let (x, y) = l.point(&g);
                ((x - corner.x).powi(2) + (y - corner.y).powi(2)).sqrt() < 0.5
            })
            .count();
        let uniform_cfg = TripConfig {
            reports: 600,
            mean_dwell_reports: 8.0,
            ..TripConfig::default()
        };
        let u = generate_trip_trace(&g, &uniform_cfg, 11);
        let near_uniform = u
            .locations
            .iter()
            .filter(|l| {
                let (x, y) = l.point(&g);
                ((x - corner.x).powi(2) + (y - corner.y).powi(2)).sqrt() < 0.5
            })
            .count();
        assert!(
            near_corner > near_uniform,
            "attraction must pull visits: {near_corner} vs {near_uniform}"
        );
    }

    #[test]
    fn consecutive_reports_respect_speed() {
        let g = setup();
        let cfg = TripConfig {
            reports: 200,
            ..TripConfig::default()
        };
        let t = generate_trip_trace(&g, &cfg, 3);
        let step = cfg.speed_kmh * cfg.report_period_secs / 3600.0;
        for w in t.locations.windows(2) {
            assert!(w[0].euclidean(w[1], &g) <= step + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "attraction dimension mismatch")]
    fn rejects_misdimensioned_attraction() {
        let g = setup();
        let cfg = TripConfig {
            attraction: vec![1.0; 3],
            ..TripConfig::default()
        };
        generate_trip_trace(&g, &cfg, 0);
    }
}
