//! Prior estimation from traces (§5.1: "estimate each cab's prior
//! probability distribution f_P based on its own records").

use roadnet::RoadGraph;
use vlp_core::{Discretization, Prior};

use crate::traces::VehicleTrace;

/// Estimates an interval-level prior from one or more traces by
/// histogramming reports into intervals, with additive smoothing
/// `alpha` (so that the posterior attack stays well-defined on
/// intervals the vehicle never visited).
///
/// Returns `None` if no report could be located (e.g. traces from a
/// different map).
pub fn estimate_prior(
    graph: &RoadGraph,
    disc: &Discretization,
    traces: &[VehicleTrace],
    alpha: f64,
) -> Option<Prior> {
    let mut counts = vec![alpha; disc.len()];
    let mut located = 0usize;
    for t in traces {
        for &loc in &t.locations {
            if let Some(k) = disc.locate(graph, loc) {
                counts[k] += 1.0;
                located += 1;
            }
        }
    }
    if located == 0 {
        return None;
    }
    Prior::from_weights(&counts)
}

/// Converts a trace into the interval-index sequence the HMM attack
/// consumes. Reports that cannot be located are dropped.
pub fn interval_trace(
    graph: &RoadGraph,
    disc: &Discretization,
    trace: &VehicleTrace,
) -> Vec<usize> {
    trace
        .locations
        .iter()
        .filter_map(|&loc| disc.locate(graph, loc))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{generate_trace, TraceConfig};
    use roadnet::generators;

    #[test]
    fn prior_concentrates_where_the_vehicle_drives() {
        let g = generators::grid(3, 3, 0.4, true);
        let disc = Discretization::new(&g, 0.2);
        let cfg = TraceConfig {
            reports: 500,
            ..TraceConfig::default()
        };
        let t = generate_trace(&g, &cfg, 17);
        let p = estimate_prior(&g, &disc, std::slice::from_ref(&t), 0.0).unwrap();
        // Mass sums to one and the visited interval has positive mass.
        let s: f64 = p.as_slice().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        let k0 = disc.locate(&g, t.locations[0]).unwrap();
        assert!(p.get(k0) > 0.0);
    }

    #[test]
    fn smoothing_avoids_zero_mass() {
        let g = generators::grid(3, 3, 0.4, true);
        let disc = Discretization::new(&g, 0.2);
        let cfg = TraceConfig {
            reports: 5,
            ..TraceConfig::default()
        };
        let t = generate_trace(&g, &cfg, 17);
        let p = estimate_prior(&g, &disc, &[t], 0.5).unwrap();
        assert!(p.as_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn no_locatable_reports_returns_none() {
        let g = generators::grid(3, 3, 0.4, true);
        let disc = Discretization::new(&g, 0.2);
        let empty = VehicleTrace {
            locations: vec![],
            timestamps: vec![],
        };
        assert!(estimate_prior(&g, &disc, &[empty], 0.0).is_none());
    }

    #[test]
    fn interval_trace_is_dense_and_in_range() {
        let g = generators::downtown(3, 3, 0.3);
        let disc = Discretization::new(&g, 0.15);
        let cfg = TraceConfig {
            reports: 100,
            ..TraceConfig::default()
        };
        let t = generate_trace(&g, &cfg, 23);
        let seq = interval_trace(&g, &disc, &t);
        assert_eq!(seq.len(), 100);
        assert!(seq.iter().all(|&k| k < disc.len()));
    }

    #[test]
    fn consecutive_intervals_are_near() {
        // With a 7 s period at 30 km/h, consecutive interval indices
        // should be within a couple of hops on the auxiliary graph.
        let g = generators::grid(3, 3, 0.4, true);
        let disc = Discretization::new(&g, 0.1);
        let aux = vlp_core::AuxiliaryGraph::build(&g, &disc);
        let cfg = TraceConfig {
            reports: 200,
            ..TraceConfig::default()
        };
        let t = generate_trace(&g, &cfg, 31);
        let seq = interval_trace(&g, &disc, &t);
        for w in seq.windows(2) {
            let d = aux.distance(w[0], w[1]).min(aux.distance(w[1], w[0]));
            assert!(d <= 0.3 + 1e-9, "jump of {d} km between reports");
        }
    }
}
