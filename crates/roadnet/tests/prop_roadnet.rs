//! Property-based tests for the road-network substrate.

use proptest::prelude::*;
use roadnet::{
    distance, generators, Location, NodeDistances, NodeId, RoadGraph, ShortestPathTree,
    TreeDirection,
};

/// A strategy producing random strongly connected maps from the
/// generator family.
fn arb_graph() -> impl Strategy<Value = RoadGraph> {
    prop_oneof![
        (2usize..5, 2usize..5, 0.2f64..0.8)
            .prop_map(|(nx, ny, s)| generators::grid(nx, ny, s, true)),
        (3usize..6, 3usize..6, 0.2f64..0.5).prop_map(|(nx, ny, s)| generators::downtown(nx, ny, s)),
        (4usize..12, 1.0f64..3.0, 0u64..100).prop_map(|(n, e, seed)| generators::rural(n, e, seed)),
        (1usize..3, 3usize..7, 0.3f64..0.8, 0u64..100)
            .prop_map(|(r, s, g, seed)| generators::rome_like(r, s, g, seed)),
    ]
}

/// A random location on a given graph, chosen by edge index fraction
/// and offset fraction.
fn location_on(graph: &RoadGraph, edge_frac: f64, x_frac: f64) -> Location {
    let e = ((graph.edge_count() as f64 - 1.0) * edge_frac).round() as usize;
    let edge = graph.edges()[e];
    Location::new(
        edge.id(),
        (edge.length() * x_frac).clamp(0.0, edge.length()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated maps are strongly connected, so every travel distance
    /// is finite and zero exactly on the diagonal.
    #[test]
    fn distances_are_finite_and_identity_holds(
        graph in arb_graph(),
        ef in 0.0f64..1.0,
        xf in 0.0f64..1.0,
    ) {
        let dists = NodeDistances::all_pairs(&graph);
        let p = location_on(&graph, ef, xf);
        prop_assert_eq!(distance::travel_distance(&graph, &dists, p, p), 0.0);
        for v in graph.nodes() {
            for w in graph.nodes() {
                let d = dists.get(v.id(), w.id());
                prop_assert!(d.is_finite());
                if v.id() == w.id() {
                    prop_assert_eq!(d, 0.0);
                } else {
                    prop_assert!(d > 0.0);
                }
            }
        }
    }

    /// Node-to-node distances obey the triangle inequality.
    #[test]
    fn node_distances_obey_triangle_inequality(graph in arb_graph()) {
        let dists = NodeDistances::all_pairs(&graph);
        let n = graph.node_count().min(8);
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    let direct = dists.get(NodeId(a), NodeId(c));
                    let via = dists.get(NodeId(a), NodeId(b)) + dists.get(NodeId(b), NodeId(c));
                    prop_assert!(direct <= via + 1e-9);
                }
            }
        }
    }

    /// Location-level travel distance obeys the triangle inequality.
    #[test]
    fn location_distances_obey_triangle_inequality(
        graph in arb_graph(),
        fr in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 3),
    ) {
        let dists = NodeDistances::all_pairs(&graph);
        let pts: Vec<Location> =
            fr.iter().map(|&(e, x)| location_on(&graph, e, x)).collect();
        let d = |a: Location, b: Location| distance::travel_distance(&graph, &dists, a, b);
        prop_assert!(d(pts[0], pts[2]) <= d(pts[0], pts[1]) + d(pts[1], pts[2]) + 1e-9);
    }

    /// `d_min` is symmetric and bounded by each directed distance.
    #[test]
    fn d_min_is_symmetric_lower_envelope(
        graph in arb_graph(),
        e1 in 0.0f64..1.0, x1 in 0.0f64..1.0,
        e2 in 0.0f64..1.0, x2 in 0.0f64..1.0,
    ) {
        let dists = NodeDistances::all_pairs(&graph);
        let p = location_on(&graph, e1, x1);
        let q = location_on(&graph, e2, x2);
        let m1 = distance::travel_distance_min(&graph, &dists, p, q);
        let m2 = distance::travel_distance_min(&graph, &dists, q, p);
        prop_assert!((m1 - m2).abs() < 1e-12);
        prop_assert!(m1 <= distance::travel_distance(&graph, &dists, p, q) + 1e-12);
        prop_assert!(m1 <= distance::travel_distance(&graph, &dists, q, p) + 1e-12);
    }

    /// SPT distances agree with the all-pairs matrix and reconstructed
    /// paths have matching lengths.
    #[test]
    fn spt_paths_match_their_distances(graph in arb_graph(), root_frac in 0.0f64..1.0) {
        let root = NodeId(((graph.node_count() as f64 - 1.0) * root_frac).round() as usize);
        let dists = NodeDistances::all_pairs(&graph);
        let out = ShortestPathTree::build(&graph, root, TreeDirection::Out);
        let inn = ShortestPathTree::build(&graph, root, TreeDirection::In);
        for v in graph.nodes() {
            prop_assert!((out.distance(v.id()) - dists.get(root, v.id())).abs() < 1e-9);
            prop_assert!((inn.distance(v.id()) - dists.get(v.id(), root)).abs() < 1e-9);
            if let Some(path) = out.path_edges_on(&graph, v.id()) {
                let len: f64 = path.iter().map(|&e| graph.edge(e).length()).sum();
                prop_assert!((len - out.distance(v.id())).abs() < 1e-9);
                // Path edges chain correctly from the root.
                if let Some(first) = path.first() {
                    prop_assert_eq!(graph.edge(*first).start(), root);
                }
                if let Some(last) = path.last() {
                    prop_assert_eq!(graph.edge(*last).end(), v.id());
                }
            }
        }
    }

    /// RNT round trip preserves every structural statistic.
    #[test]
    fn rnt_round_trip_is_structure_preserving(graph in arb_graph()) {
        let mut buf = Vec::new();
        roadnet::io::save_rnt(&graph, &mut buf).expect("serialize");
        let back = roadnet::io::load_rnt(buf.as_slice()).expect("parse");
        prop_assert_eq!(back.node_count(), graph.node_count());
        prop_assert_eq!(back.edge_count(), graph.edge_count());
        prop_assert!((back.total_length() - graph.total_length()).abs() < 1e-9);
        prop_assert!((back.one_way_fraction() - graph.one_way_fraction()).abs() < 1e-12);
    }
}
