//! The weighted directed road graph `G = (V, E)` of §3.1.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::GraphError;

/// Identifier of a connection (vertex) in a [`RoadGraph`].
///
/// Connections are the points where roads intersect, furcate, join, or
/// change direction; they split roads into road segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the raw index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a directed road segment (edge) in a [`RoadGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Returns the raw index of this edge.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A connection in the road network, with planar coordinates.
///
/// Coordinates are in kilometres and exist so that 2-D-plane baselines
/// (which measure Euclidean distance) and plotting can use the same map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    /// East–west coordinate in kilometres.
    pub x: f64,
    /// North–south coordinate in kilometres.
    pub y: f64,
}

impl Node {
    /// Returns this node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Euclidean distance in kilometres to another node.
    pub fn euclidean(&self, other: &Node) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A directed road segment `e = (v_e^s, v_e^e)` with weight `w_e`.
///
/// Vehicles can only travel from [`Edge::start`] to [`Edge::end`]; a
/// two-way road is represented by two anti-parallel edges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    id: EdgeId,
    start: NodeId,
    end: NodeId,
    length: f64,
}

impl Edge {
    /// Returns this edge's identifier.
    pub fn id(&self) -> EdgeId {
        self.id
    }

    /// The starting connection `v_e^s`.
    pub fn start(&self) -> NodeId {
        self.start
    }

    /// The ending connection `v_e^e`.
    pub fn end(&self) -> NodeId {
        self.end
    }

    /// The weight `w_e`: traveling distance from start to end, in km.
    pub fn length(&self) -> f64 {
        self.length
    }
}

/// A validated weighted directed road graph.
///
/// Construct one with [`RoadGraphBuilder`]. Once built, a `RoadGraph` is
/// immutable; all algorithms in this workspace borrow it.
///
/// # Example
///
/// ```
/// use roadnet::RoadGraphBuilder;
///
/// let mut b = RoadGraphBuilder::new();
/// let a = b.add_node(0.0, 0.0);
/// let c = b.add_node(1.0, 0.0);
/// b.add_edge(a, c, 1.0)?;
/// b.add_edge(c, a, 1.0)?;
/// let graph = b.build()?;
/// assert_eq!(graph.node_count(), 2);
/// assert_eq!(graph.edge_count(), 2);
/// # Ok::<(), roadnet::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// `out_edges[v]` lists edges whose start is `v`.
    out_edges: Vec<Vec<EdgeId>>,
    /// `in_edges[v]` lists edges whose end is `v`.
    in_edges: Vec<Vec<EdgeId>>,
}

impl RoadGraph {
    /// Number of connections `|V|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of road segments `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All connections, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All road segments, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this graph.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// Edges leaving `v` (vehicles at `v` may continue onto these).
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out_edges[v.0]
    }

    /// Edges arriving at `v`.
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.in_edges[v.0]
    }

    /// Total length of all road segments, in kilometres.
    pub fn total_length(&self) -> f64 {
        self.edges.iter().map(Edge::length).sum()
    }

    /// Planar coordinates of an on-edge position, interpolated linearly
    /// between the segment's endpoints.
    ///
    /// `x` is the remaining distance to the edge's ending connection, as
    /// in [`crate::Location`].
    pub fn point_on_edge(&self, edge: EdgeId, x: f64) -> (f64, f64) {
        let e = self.edge(edge);
        let s = self.node(e.start());
        let t = self.node(e.end());
        // Fraction of the way from start to end.
        let frac = if e.length() > 0.0 {
            ((e.length() - x) / e.length()).clamp(0.0, 1.0)
        } else {
            0.0
        };
        (s.x + frac * (t.x - s.x), s.y + frac * (t.y - s.y))
    }

    /// Whether every connection can reach every other connection.
    ///
    /// Strong connectivity is required for travel distances to be finite
    /// everywhere; generators in this crate always produce strongly
    /// connected maps.
    pub fn is_strongly_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let n = self.node_count();
        let reach = |adj: &dyn Fn(usize) -> Vec<usize>| -> usize {
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            let mut count = 1;
            while let Some(v) = stack.pop() {
                for w in adj(v) {
                    if !seen[w] {
                        seen[w] = true;
                        count += 1;
                        stack.push(w);
                    }
                }
            }
            count
        };
        let fwd = |v: usize| {
            self.out_edges[v]
                .iter()
                .map(|&e| self.edges[e.0].end.0)
                .collect::<Vec<_>>()
        };
        let bwd = |v: usize| {
            self.in_edges[v]
                .iter()
                .map(|&e| self.edges[e.0].start.0)
                .collect::<Vec<_>>()
        };
        reach(&fwd) == n && reach(&bwd) == n
    }

    /// Fraction of road segments that have no anti-parallel twin, i.e.
    /// the share of one-way street directions in the map.
    ///
    /// The paper's Region B (downtown) has a much higher one-way share
    /// than Region A (rural); this measure lets tests assert that the
    /// synthetic substitutes preserve the contrast.
    pub fn one_way_fraction(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        let mut pairs = std::collections::HashSet::new();
        for e in &self.edges {
            pairs.insert((e.start.0, e.end.0));
        }
        let one_way = self
            .edges
            .iter()
            .filter(|e| !pairs.contains(&(e.end.0, e.start.0)))
            .count();
        one_way as f64 / self.edges.len() as f64
    }
}

/// Incremental, validating builder for [`RoadGraph`].
#[derive(Debug, Clone, Default)]
pub struct RoadGraphBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl RoadGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a connection at planar coordinates `(x, y)` (kilometres) and
    /// returns its id.
    pub fn add_node(&mut self, x: f64, y: f64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { id, x, y });
        id
    }

    /// Adds a directed road segment from `start` to `end` with traveling
    /// distance `length` (kilometres) and returns its id.
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownNode`] if either endpoint has not been added;
    /// * [`GraphError::NonPositiveLength`] if `length` is not a finite
    ///   positive number;
    /// * [`GraphError::SelfLoop`] if `start == end` (a road that starts
    ///   and ends at the same connection carries no positional
    ///   information and is rejected).
    pub fn add_edge(
        &mut self,
        start: NodeId,
        end: NodeId,
        length: f64,
    ) -> Result<EdgeId, GraphError> {
        if start.0 >= self.nodes.len() {
            return Err(GraphError::UnknownNode(start));
        }
        if end.0 >= self.nodes.len() {
            return Err(GraphError::UnknownNode(end));
        }
        if !(length.is_finite() && length > 0.0) {
            return Err(GraphError::NonPositiveLength { start, end, length });
        }
        if start == end {
            return Err(GraphError::SelfLoop(start));
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            id,
            start,
            end,
            length,
        });
        Ok(id)
    }

    /// Adds a two-way road: two anti-parallel segments of equal length.
    ///
    /// Returns the pair `(forward, backward)` of edge ids.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoadGraphBuilder::add_edge`].
    pub fn add_two_way(
        &mut self,
        a: NodeId,
        b: NodeId,
        length: f64,
    ) -> Result<(EdgeId, EdgeId), GraphError> {
        let fwd = self.add_edge(a, b, length)?;
        let bwd = self.add_edge(b, a, length)?;
        Ok((fwd, bwd))
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] if no nodes were added.
    pub fn build(self) -> Result<RoadGraph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut out_edges = vec![Vec::new(); self.nodes.len()];
        let mut in_edges = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            out_edges[e.start.0].push(e.id);
            in_edges[e.end.0].push(e.id);
        }
        Ok(RoadGraph {
            nodes: self.nodes,
            edges: self.edges,
            out_edges,
            in_edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(1.0, 0.0);
        let v2 = b.add_node(0.0, 1.0);
        b.add_edge(v0, v1, 1.0).unwrap();
        b.add_edge(v1, v2, 1.5).unwrap();
        b.add_edge(v2, v0, 1.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for (i, e) in g.edges().iter().enumerate() {
            assert_eq!(e.id().index(), i);
        }
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = triangle();
        for e in g.edges() {
            assert!(g.out_edges(e.start()).contains(&e.id()));
            assert!(g.in_edges(e.end()).contains(&e.id()));
        }
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        let err = b.add_edge(v0, NodeId(7), 1.0).unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode(NodeId(7))));
    }

    #[test]
    fn rejects_bad_length() {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(1.0, 0.0);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                b.add_edge(v0, v1, bad),
                Err(GraphError::NonPositiveLength { .. })
            ));
        }
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        assert!(matches!(
            b.add_edge(v0, v0, 1.0),
            Err(GraphError::SelfLoop(_))
        ));
    }

    #[test]
    fn rejects_empty_graph() {
        assert!(matches!(
            RoadGraphBuilder::new().build(),
            Err(GraphError::Empty)
        ));
    }

    #[test]
    fn directed_cycle_is_strongly_connected() {
        assert!(triangle().is_strongly_connected());
    }

    #[test]
    fn dangling_node_is_not_strongly_connected() {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(1.0, 0.0);
        b.add_node(2.0, 0.0); // unreachable
        b.add_two_way(v0, v1, 1.0).unwrap();
        let g = b.build().unwrap();
        assert!(!g.is_strongly_connected());
    }

    #[test]
    fn one_way_fraction_counts_unpaired_edges() {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(1.0, 0.0);
        let v2 = b.add_node(2.0, 0.0);
        b.add_two_way(v0, v1, 1.0).unwrap();
        b.add_edge(v1, v2, 1.0).unwrap();
        b.add_edge(v2, v0, 2.0).unwrap();
        let g = b.build().unwrap();
        assert!((g.one_way_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn point_on_edge_interpolates() {
        let g = triangle();
        // Edge 0 runs from (0,0) to (1,0), length 1.0. x = remaining
        // distance to end, so x = 0.25 sits 0.75 of the way along.
        let (px, py) = g.point_on_edge(EdgeId(0), 0.25);
        assert!((px - 0.75).abs() < 1e-12);
        assert!(py.abs() < 1e-12);
    }

    #[test]
    fn total_length_sums_weights() {
        assert!((triangle().total_length() - 3.7).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let g = triangle();
        let json = serde_json::to_string(&g).unwrap();
        let back: RoadGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
