//! Synthetic road-map generators.
//!
//! The paper evaluates on two real maps: Rome (trace-driven simulation,
//! §5.1) and Glassboro, NJ (pilot study, §5.2, with a sparse rural Region
//! A and a dense one-way-heavy downtown Region B). Those maps are not
//! redistributable, so this module generates synthetic maps that
//! reproduce the *topological contrasts* the experiments depend on:
//! segment density, one-way share, and a downtown-skewed structure.
//!
//! Every generator returns a strongly connected [`RoadGraph`] (verified
//! by debug assertions), so travel distances are finite everywhere.

// Dense numeric kernels below index several parallel arrays in one
// loop; iterator rewrites would obscure the linear-algebra intent.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::graph::{NodeId, RoadGraph, RoadGraphBuilder};

/// Rectangular grid of `nx × ny` connections spaced `spacing` km apart.
///
/// With `two_way = true` every street is bidirectional. With
/// `two_way = false` interior rows and columns alternate direction
/// (Manhattan style) while the perimeter stays two-way so the map
/// remains strongly connected.
///
/// # Panics
///
/// Panics if `nx < 2`, `ny < 2`, or `spacing` is not positive.
pub fn grid(nx: usize, ny: usize, spacing: f64, two_way: bool) -> RoadGraph {
    assert!(nx >= 2 && ny >= 2, "grid needs at least 2x2 connections");
    assert!(spacing > 0.0, "spacing must be positive");
    let mut b = RoadGraphBuilder::new();
    let mut ids = vec![vec![NodeId(0); nx]; ny];
    for (j, row) in ids.iter_mut().enumerate() {
        for (i, slot) in row.iter_mut().enumerate() {
            *slot = b.add_node(i as f64 * spacing, j as f64 * spacing);
        }
    }
    // Horizontal streets.
    for j in 0..ny {
        let boundary = j == 0 || j == ny - 1;
        for i in 0..nx - 1 {
            let (a, c) = (ids[j][i], ids[j][i + 1]);
            if two_way || boundary {
                b.add_two_way(a, c, spacing).expect("valid grid edge");
            } else if j % 2 == 0 {
                b.add_edge(a, c, spacing).expect("valid grid edge");
            } else {
                b.add_edge(c, a, spacing).expect("valid grid edge");
            }
        }
    }
    // Vertical streets.
    for i in 0..nx {
        let boundary = i == 0 || i == nx - 1;
        for j in 0..ny - 1 {
            let (a, c) = (ids[j][i], ids[j + 1][i]);
            if two_way || boundary {
                b.add_two_way(a, c, spacing).expect("valid grid edge");
            } else if i % 2 == 0 {
                b.add_edge(a, c, spacing).expect("valid grid edge");
            } else {
                b.add_edge(c, a, spacing).expect("valid grid edge");
            }
        }
    }
    let g = b.build().expect("grid is non-empty");
    debug_assert!(g.is_strongly_connected());
    g
}

/// Dense downtown map: a one-way-heavy Manhattan grid.
///
/// Matches the paper's Region B (Glassboro downtown): "road segments are
/// densely distributed, with more one-way streets".
pub fn downtown(nx: usize, ny: usize, spacing: f64) -> RoadGraph {
    grid(nx, ny, spacing, false)
}

/// Sparse rural map: randomly scattered connections joined by a
/// two-way spanning tree plus a few shortcut roads.
///
/// Matches the paper's Region A: "road segments are sparsely
/// distributed, with less one-way streets" (this generator produces
/// none).
///
/// `n` is the number of connections, `extent` the side length of the
/// square region in km, and `seed` makes the map reproducible.
///
/// # Panics
///
/// Panics if `n < 2` or `extent` is not positive.
pub fn rural(n: usize, extent: f64, seed: u64) -> RoadGraph {
    assert!(n >= 2, "rural map needs at least 2 connections");
    assert!(extent > 0.0, "extent must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = RoadGraphBuilder::new();
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random_range(0.0..extent), rng.random_range(0.0..extent)))
        .collect();
    let ids: Vec<NodeId> = pts.iter().map(|&(x, y)| b.add_node(x, y)).collect();
    let dist = |a: usize, c: usize| -> f64 {
        let (ax, ay) = pts[a];
        let (cx, cy) = pts[c];
        ((ax - cx).powi(2) + (ay - cy).powi(2)).sqrt()
    };
    // Prim-style nearest-neighbour spanning tree: country roads tend to
    // connect each settlement to its closest already-connected one.
    let mut in_tree = vec![false; n];
    in_tree[0] = true;
    let mut roads: Vec<(usize, usize)> = Vec::new();
    for _ in 1..n {
        let mut best = (f64::INFINITY, 0usize, 0usize);
        for a in 0..n {
            if !in_tree[a] {
                continue;
            }
            for c in 0..n {
                if in_tree[c] {
                    continue;
                }
                let d = dist(a, c);
                if d < best.0 {
                    best = (d, a, c);
                }
            }
        }
        in_tree[best.2] = true;
        roads.push((best.1, best.2));
    }
    // A few shortcuts (~15% of n) between random close-ish pairs.
    let shortcuts = (n / 7).max(1);
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < shortcuts && attempts < 50 * shortcuts {
        attempts += 1;
        let a = rng.random_range(0..n);
        let c = rng.random_range(0..n);
        if a == c || roads.contains(&(a, c)) || roads.contains(&(c, a)) {
            continue;
        }
        roads.push((a, c));
        added += 1;
    }
    for (a, c) in roads {
        // Rural roads meander: 10–30% longer than the crow flies.
        let wiggle = 1.0 + rng.random_range(0.1..0.3);
        b.add_two_way(ids[a], ids[c], dist(a, c) * wiggle)
            .expect("valid rural edge");
    }
    let g = b.build().expect("rural map is non-empty");
    debug_assert!(g.is_strongly_connected());
    g
}

/// Rome-like map: concentric ring roads joined by radial avenues, with
/// a dense historic centre and sparse suburbs.
///
/// The innermost ring is one-way (circulation around a historic centre),
/// outer rings and radials are two-way. Ring `k` (0-based, `rings`
/// total) sits at radius `(k + 1) * ring_gap` km and every ring carries
/// `spokes` connections, so areal connection density falls off as `1/r`
/// with distance from the centre — mirroring the heat map of Fig. 9
/// where "taxi cabs are more likely located in downtown than in the
/// suburbs".
///
/// # Panics
///
/// Panics if `rings == 0`, `spokes < 3`, or `ring_gap` is not positive.
pub fn rome_like(rings: usize, spokes: usize, ring_gap: f64, seed: u64) -> RoadGraph {
    assert!(rings >= 1, "need at least one ring");
    assert!(spokes >= 3, "need at least three spokes");
    assert!(ring_gap > 0.0, "ring gap must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = RoadGraphBuilder::new();
    let centre = b.add_node(0.0, 0.0);
    let mut ring_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(rings);
    for k in 0..rings {
        let radius = (k + 1) as f64 * ring_gap;
        let count = spokes;
        let _ = k;
        let mut nodes = Vec::with_capacity(count);
        for s in 0..count {
            let jitter = rng.random_range(-0.05..0.05) * ring_gap;
            let theta = 2.0 * std::f64::consts::PI * s as f64 / count as f64;
            nodes.push(b.add_node(
                (radius + jitter) * theta.cos(),
                (radius + jitter) * theta.sin(),
            ));
        }
        ring_nodes.push(nodes);
    }
    // Ring roads: arc length between consecutive nodes.
    for (k, nodes) in ring_nodes.iter().enumerate() {
        let radius = (k + 1) as f64 * ring_gap;
        let count = nodes.len();
        let arc = 2.0 * std::f64::consts::PI * radius / count as f64;
        for s in 0..count {
            let a = nodes[s];
            let c = nodes[(s + 1) % count];
            if k == 0 {
                // One-way circulation on the inner ring.
                b.add_edge(a, c, arc).expect("valid ring edge");
            } else {
                b.add_two_way(a, c, arc).expect("valid ring edge");
            }
        }
    }
    // Radials: centre to inner ring, then ring k to ring k+1 at matching
    // angles (every node of ring k has a counterpart on ring k+1 at
    // index s * (k+2) / (k+1) rounded).
    for &v in &ring_nodes[0] {
        b.add_two_way(centre, v, ring_gap).expect("valid radial");
    }
    for k in 0..rings - 1 {
        let inner = &ring_nodes[k];
        let outer = &ring_nodes[k + 1];
        for (s, &v) in inner.iter().enumerate() {
            let t = s * outer.len() / inner.len();
            // Radial roads wander slightly.
            let len = ring_gap * (1.0 + rng.random_range(0.0..0.15));
            b.add_two_way(v, outer[t], len).expect("valid radial");
        }
    }
    let g = b.build().expect("rome-like map is non-empty");
    debug_assert!(g.is_strongly_connected());
    g
}

/// Irregular Manhattan downtown: every street is one-way with
/// alternating directions, and block sizes vary (jittered street
/// coordinates), so parallel detours are never the same length.
///
/// This is the topology regime where travel distance is most sensitive
/// to obfuscation — reporting one block over forces a loop whose length
/// differs from the displacement. If the alternating pattern fails to
/// be strongly connected for the given dimensions, the outer ring is
/// upgraded to two-way as a fallback.
///
/// # Panics
///
/// Panics if `nx < 3`, `ny < 3`, or `spacing` is not positive.
pub fn manhattan_irregular(nx: usize, ny: usize, spacing: f64, seed: u64) -> RoadGraph {
    assert!(
        nx >= 3 && ny >= 3,
        "manhattan grid needs at least 3x3 connections"
    );
    assert!(spacing > 0.0, "spacing must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    // Jittered street coordinates (monotone, ±30% block variation).
    let coords = |n: usize, rng: &mut StdRng| -> Vec<f64> {
        let mut v = Vec::with_capacity(n);
        let mut acc = 0.0;
        v.push(0.0);
        for _ in 1..n {
            acc += spacing * rng.random_range(0.7..1.3);
            v.push(acc);
        }
        v
    };
    let xs = coords(nx, &mut rng);
    let ys = coords(ny, &mut rng);
    let build = |two_way_ring: bool| -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let mut ids = vec![vec![NodeId(0); nx]; ny];
        for (j, row) in ids.iter_mut().enumerate() {
            for (i, slot) in row.iter_mut().enumerate() {
                *slot = b.add_node(xs[i], ys[j]);
            }
        }
        for j in 0..ny {
            for i in 0..nx - 1 {
                let (a, c) = (ids[j][i], ids[j][i + 1]);
                let len = xs[i + 1] - xs[i];
                let ring = two_way_ring && (j == 0 || j == ny - 1);
                if ring {
                    b.add_two_way(a, c, len).expect("valid street");
                } else if j % 2 == 0 {
                    b.add_edge(a, c, len).expect("valid street");
                } else {
                    b.add_edge(c, a, len).expect("valid street");
                }
            }
        }
        for i in 0..nx {
            for j in 0..ny - 1 {
                let (a, c) = (ids[j][i], ids[j + 1][i]);
                let len = ys[j + 1] - ys[j];
                let ring = two_way_ring && (i == 0 || i == nx - 1);
                if ring {
                    b.add_two_way(a, c, len).expect("valid street");
                } else if i % 2 == 0 {
                    b.add_edge(a, c, len).expect("valid street");
                } else {
                    b.add_edge(c, a, len).expect("valid street");
                }
            }
        }
        b.build().expect("manhattan grid is non-empty")
    };
    let g = build(false);
    if g.is_strongly_connected() {
        g
    } else {
        let g = build(true);
        debug_assert!(g.is_strongly_connected());
        g
    }
}

/// The pilot study's Region A stand-in: a small, sparse rural map
/// (~8 km of two-way road over a 1.2 km square).
///
/// Deterministic (fixed seed) so experiment outputs are reproducible.
pub fn campus_region_a() -> RoadGraph {
    rural(8, 1.2, 0xA)
}

/// The pilot study's Region B stand-in: a dense downtown grid with
/// alternating one-way streets (~14 km of road over a 1 km square —
/// nearly double Region A's segment density, with a ~35 % one-way
/// share).
pub fn campus_region_b() -> RoadGraph {
    downtown(5, 5, 0.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts() {
        let g = grid(3, 4, 0.5, true);
        assert_eq!(g.node_count(), 12);
        // 2-way: 2 * (horizontal (3-1)*4 + vertical 3*(4-1)) = 2*17 = 34.
        assert_eq!(g.edge_count(), 34);
        assert!(g.is_strongly_connected());
        assert_eq!(g.one_way_fraction(), 0.0);
    }

    #[test]
    fn downtown_has_one_way_streets_and_connectivity() {
        let g = downtown(6, 6, 0.2);
        assert!(g.is_strongly_connected());
        assert!(
            g.one_way_fraction() > 0.2,
            "downtown should be one-way heavy"
        );
    }

    #[test]
    fn rural_is_two_way_and_connected() {
        let g = rural(20, 5.0, 42);
        assert!(g.is_strongly_connected());
        assert_eq!(g.one_way_fraction(), 0.0);
        assert_eq!(g.node_count(), 20);
    }

    #[test]
    fn rural_is_deterministic_per_seed() {
        assert_eq!(rural(15, 4.0, 7), rural(15, 4.0, 7));
        assert_ne!(rural(15, 4.0, 7), rural(15, 4.0, 8));
    }

    #[test]
    fn rome_like_density_gradient() {
        let g = rome_like(3, 6, 1.0, 1);
        assert!(g.is_strongly_connected());
        // Node density: count nodes within 1.5 km vs beyond.
        let near = g
            .nodes()
            .iter()
            .filter(|n| (n.x * n.x + n.y * n.y).sqrt() < 1.5)
            .count();
        let far = g.node_count() - near;
        // Inner area (π·1.5² ≈ 7 km²) holds `near` nodes; outer annulus
        // (π·(3.2²−1.5²) ≈ 25 km²) holds `far`. Density must be higher
        // inside.
        assert!(near as f64 / 7.0 > far as f64 / 25.0);
    }

    #[test]
    fn rome_like_inner_ring_is_one_way() {
        let g = rome_like(2, 5, 1.0, 3);
        assert!(g.one_way_fraction() > 0.0);
    }

    #[test]
    fn campus_regions_contrast() {
        let a = campus_region_a();
        let b = campus_region_b();
        assert!(a.is_strongly_connected());
        assert!(b.is_strongly_connected());
        // Region B: denser segments (per km of extent) and more one-way.
        assert!(b.one_way_fraction() > a.one_way_fraction());
        let density = |g: &RoadGraph, extent: f64| g.edge_count() as f64 / (extent * extent);
        assert!(density(&b, 1.1) > density(&a, 3.0));
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn grid_rejects_degenerate() {
        grid(1, 5, 1.0, true);
    }
}
