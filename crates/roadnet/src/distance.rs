//! Travel distances between on-edge locations (§3.1, Eq. 1 and 8–11).
//!
//! The directed travel distance `d_G(p, q)` splits into two cases:
//!
//! * **C1** — `p` and `q` are on different segments, or on the same
//!   segment with `p` *not* behind `q`: the vehicle must first reach the
//!   end of its own segment, drive node-to-node to the start of `q`'s
//!   segment, then cover `q`'s segment up to `q` (Eq. 9);
//! * **C2** — same segment and `p` behind `q` (`x_p ≥ x_q`): the vehicle
//!   drives straight down the segment (Eq. 10).

use crate::graph::{NodeId, RoadGraph};
use crate::location::Location;
use crate::shortest_path::NodeDistances;

/// A source of node-to-node travel distances, so [`travel_distance_via`]
/// can run against either the dense all-pairs matrix or a sparse
/// (per-neighborhood) distance table.
pub trait NodeMetric {
    /// Travel distance from connection `s` to connection `t`
    /// (`f64::INFINITY` when unreachable).
    fn node_dist(&self, s: NodeId, t: NodeId) -> f64;
}

impl NodeMetric for NodeDistances {
    fn node_dist(&self, s: NodeId, t: NodeId) -> f64 {
        self.get(s, t)
    }
}

/// Directed shortest traveling distance `d_G(p, q)` from `p` to `q`.
///
/// Requires the all-pairs node distances of the same graph. Returns
/// `f64::INFINITY` when `q` is unreachable from `p`.
///
/// # Example
///
/// ```
/// use roadnet::{generators, distance, Location, NodeDistances};
///
/// let g = generators::grid(2, 2, 1.0, true);
/// let d = NodeDistances::all_pairs(&g);
/// let p = Location::new(g.edges()[0].id(), 0.5);
/// assert_eq!(distance::travel_distance(&g, &d, p, p), 0.0);
/// ```
pub fn travel_distance(graph: &RoadGraph, dists: &NodeDistances, p: Location, q: Location) -> f64 {
    travel_distance_via(graph, dists, p, q)
}

/// [`travel_distance`] generalized over the node-distance source: the
/// same Eq. 9/10 case split, so any [`NodeMetric`] that agrees with the
/// all-pairs matrix on the consulted node pair produces bit-identical
/// results.
pub fn travel_distance_via<M: NodeMetric>(
    graph: &RoadGraph,
    dists: &M,
    p: Location,
    q: Location,
) -> f64 {
    if p.edge() == q.edge() && p.to_end() >= q.to_end() {
        // C2: p is behind q on the same directed segment (Eq. 10).
        return p.to_end() - q.to_end();
    }
    // C1 (Eq. 9): p -> end of e(p) -> start of e(q) -> q.
    let ep = graph.edge(p.edge());
    let eq = graph.edge(q.edge());
    let mid = dists.node_dist(ep.end(), eq.start());
    if !mid.is_finite() {
        return f64::INFINITY;
    }
    p.to_end() + mid + (eq.length() - q.to_end())
}

/// Bidirectional shortest traveling distance
/// `d_G^min(p, q) = min{d_G(p, q), d_G(q, p)}` (Eq. 1) — the measure the
/// paper's Geo-I definition uses to compare locations.
pub fn travel_distance_min(
    graph: &RoadGraph,
    dists: &NodeDistances,
    p: Location,
    q: Location,
) -> f64 {
    travel_distance(graph, dists, p, q).min(travel_distance(graph, dists, q, p))
}

/// Estimated traveling-distance distortion
/// `Δd_G(p, p̃; q) = |d_G(p, q) − d_G(p̃, q)|` (Eq. 8) — the per-task
/// quality loss incurred by reporting `p̃` instead of `p`.
///
/// Infinite inputs are propagated: if either distance is infinite the
/// distortion is infinite (obfuscating onto an unreachable segment is
/// maximally damaging).
pub fn distortion(
    graph: &RoadGraph,
    dists: &NodeDistances,
    p: Location,
    p_tilde: Location,
    q: Location,
) -> f64 {
    let d_true = travel_distance(graph, dists, p, q);
    let d_obf = travel_distance(graph, dists, p_tilde, q);
    if !d_true.is_finite() || !d_obf.is_finite() {
        return f64::INFINITY;
    }
    (d_true - d_obf).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeId, RoadGraphBuilder};

    /// Two-node, two-edge loop: e0 = v0->v1 (len 2), e1 = v1->v0 (len 3).
    fn loop2() -> (RoadGraph, NodeDistances) {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(2.0, 0.0);
        b.add_edge(v0, v1, 2.0).unwrap();
        b.add_edge(v1, v0, 3.0).unwrap();
        let g = b.build().unwrap();
        let d = NodeDistances::all_pairs(&g);
        (g, d)
    }

    #[test]
    fn same_edge_behind_is_direct() {
        let (g, d) = loop2();
        // p at x=1.5 (0.5 km along e0), q at x=0.5 (1.5 km along e0).
        let p = Location::new(EdgeId(0), 1.5);
        let q = Location::new(EdgeId(0), 0.5);
        assert!((travel_distance(&g, &d, p, q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_edge_ahead_must_loop() {
        let (g, d) = loop2();
        let p = Location::new(EdgeId(0), 0.5);
        let q = Location::new(EdgeId(0), 1.5);
        // p -> v1 (0.5) -> v0 via e1 (3.0) -> q (2.0 - 1.5 = 0.5): 4.0.
        assert!((travel_distance(&g, &d, p, q) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cross_edge_uses_node_distance() {
        let (g, d) = loop2();
        let p = Location::new(EdgeId(0), 0.5);
        let q = Location::new(EdgeId(1), 1.0);
        // p -> v1 (0.5), v1 is start of e1 (0.0), then 3.0 - 1.0 = 2.0.
        assert!((travel_distance(&g, &d, p, q) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let (g, d) = loop2();
        let p = Location::new(EdgeId(0), 0.7);
        assert_eq!(travel_distance(&g, &d, p, p), 0.0);
    }

    #[test]
    fn min_distance_picks_shorter_direction() {
        let (g, d) = loop2();
        let p = Location::new(EdgeId(0), 1.5);
        let q = Location::new(EdgeId(0), 0.5);
        // Forward p->q = 1.0; backward q->p = 0.5 + 3.0 + 0.5 = 4.0.
        assert!((travel_distance_min(&g, &d, p, q) - 1.0).abs() < 1e-12);
        // d_min is symmetric.
        assert_eq!(
            travel_distance_min(&g, &d, p, q),
            travel_distance_min(&g, &d, q, p)
        );
    }

    #[test]
    fn distortion_matches_definition() {
        let (g, d) = loop2();
        let p = Location::new(EdgeId(0), 1.5);
        let pt = Location::new(EdgeId(0), 0.5);
        let q = Location::new(EdgeId(1), 1.5);
        let want = (travel_distance(&g, &d, p, q) - travel_distance(&g, &d, pt, q)).abs();
        assert_eq!(distortion(&g, &d, p, pt, q), want);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(1.0, 0.0);
        let v2 = b.add_node(2.0, 0.0);
        b.add_edge(v0, v1, 1.0).unwrap();
        b.add_edge(v1, v0, 1.0).unwrap();
        b.add_edge(v1, v2, 1.0).unwrap(); // v2 is a sink
        let g = b.build().unwrap();
        let d = NodeDistances::all_pairs(&g);
        let p = Location::new(EdgeId(2), 0.2); // on the sink edge
        let q = Location::new(EdgeId(0), 0.5);
        assert!(travel_distance(&g, &d, p, q).is_infinite());
        assert!(distortion(&g, &d, q, p, q).is_infinite());
    }

    #[test]
    fn triangle_inequality_on_loop() {
        let (g, d) = loop2();
        let pts = [
            Location::new(EdgeId(0), 0.4),
            Location::new(EdgeId(0), 1.8),
            Location::new(EdgeId(1), 0.9),
            Location::new(EdgeId(1), 2.4),
        ];
        for &a in &pts {
            for &b in &pts {
                for &c in &pts {
                    let direct = travel_distance(&g, &d, a, c);
                    let via = travel_distance(&g, &d, a, b) + travel_distance(&g, &d, b, c);
                    assert!(direct <= via + 1e-9, "triangle violated: {direct} > {via}");
                }
            }
        }
    }
}
