//! Map composition: translate, merge, and connect road graphs.
//!
//! Real study areas are rarely one homogeneous fabric — the paper's
//! pilot town contains a rural west and a gridded downtown. This module
//! builds such maps from generator output: [`translate`] repositions a
//! map, [`merge`] disjointly unions two maps, and [`connect`] adds a
//! two-way road between a node of each part.

use crate::graph::{NodeId, RoadGraph, RoadGraphBuilder};
use crate::GraphError;

/// Returns a copy of `graph` with all coordinates shifted by
/// `(dx, dy)` kilometres. Topology and lengths are unchanged.
pub fn translate(graph: &RoadGraph, dx: f64, dy: f64) -> RoadGraph {
    let mut b = RoadGraphBuilder::new();
    for v in graph.nodes() {
        b.add_node(v.x + dx, v.y + dy);
    }
    for e in graph.edges() {
        b.add_edge(e.start(), e.end(), e.length())
            .expect("copying a valid edge");
    }
    b.build().expect("non-empty copy")
}

/// Disjoint union of two maps: `b`'s node ids are offset by
/// `a.node_count()`. Returns the merged graph and the id offset (add it
/// to a node id from `b` to address the same node in the result).
pub fn merge(a: &RoadGraph, b: &RoadGraph) -> (RoadGraph, usize) {
    let offset = a.node_count();
    let mut out = RoadGraphBuilder::new();
    for v in a.nodes() {
        out.add_node(v.x, v.y);
    }
    for v in b.nodes() {
        out.add_node(v.x, v.y);
    }
    for e in a.edges() {
        out.add_edge(e.start(), e.end(), e.length())
            .expect("valid edge from a");
    }
    for e in b.edges() {
        out.add_edge(
            NodeId(e.start().index() + offset),
            NodeId(e.end().index() + offset),
            e.length(),
        )
        .expect("valid edge from b");
    }
    (out.build().expect("non-empty merge"), offset)
}

/// Adds a two-way connector road between two existing nodes and returns
/// the new graph. `length` defaults to the Euclidean distance between
/// the nodes when `None` (with a 15 % meander factor).
///
/// # Errors
///
/// [`GraphError::UnknownNode`] if either node id is out of range;
/// [`GraphError::SelfLoop`] if they coincide.
pub fn connect(
    graph: &RoadGraph,
    a: NodeId,
    b: NodeId,
    length: Option<f64>,
) -> Result<RoadGraph, GraphError> {
    if a.index() >= graph.node_count() {
        return Err(GraphError::UnknownNode(a));
    }
    if b.index() >= graph.node_count() {
        return Err(GraphError::UnknownNode(b));
    }
    if a == b {
        return Err(GraphError::SelfLoop(a));
    }
    let mut out = RoadGraphBuilder::new();
    for v in graph.nodes() {
        out.add_node(v.x, v.y);
    }
    for e in graph.edges() {
        out.add_edge(e.start(), e.end(), e.length())
            .expect("valid edge copy");
    }
    let len = match length {
        Some(l) => l,
        None => graph.node(a).euclidean(graph.node(b)) * 1.15,
    };
    out.add_two_way(a, b, len)?;
    Ok(out.build().expect("non-empty graph"))
}

/// Convenience: place `west` and `east` side by side (`east` shifted
/// right so the maps do not overlap, plus `gap` km) and join them with
/// a two-way connector between their mutually nearest nodes.
pub fn town(west: &RoadGraph, east: &RoadGraph, gap: f64) -> RoadGraph {
    let west_max_x = west
        .nodes()
        .iter()
        .map(|v| v.x)
        .fold(f64::NEG_INFINITY, f64::max);
    let east_min_x = east
        .nodes()
        .iter()
        .map(|v| v.x)
        .fold(f64::INFINITY, f64::min);
    let shifted = translate(east, west_max_x - east_min_x + gap, 0.0);
    let (merged, offset) = merge(west, &shifted);
    // Nearest pair across the seam.
    let mut best = (NodeId(0), NodeId(offset), f64::INFINITY);
    for v in &merged.nodes()[..offset] {
        for w in &merged.nodes()[offset..] {
            let d = v.euclidean(w);
            if d < best.2 {
                best = (v.id(), w.id(), d);
            }
        }
    }
    connect(&merged, best.0, best.1, None).expect("nearest pair is a valid connector")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn translate_moves_coordinates_only() {
        let g = generators::grid(2, 2, 0.5, true);
        let t = translate(&g, 3.0, -1.0);
        assert_eq!(t.edge_count(), g.edge_count());
        assert!((t.nodes()[0].x - 3.0).abs() < 1e-12);
        assert!((t.nodes()[0].y + 1.0).abs() < 1e-12);
        assert!((t.total_length() - g.total_length()).abs() < 1e-12);
    }

    #[test]
    fn merge_is_disjoint() {
        let a = generators::grid(2, 2, 0.5, true);
        let b = generators::grid(3, 2, 0.4, true);
        let (m, off) = merge(&a, &b);
        assert_eq!(off, a.node_count());
        assert_eq!(m.node_count(), a.node_count() + b.node_count());
        assert_eq!(m.edge_count(), a.edge_count() + b.edge_count());
        // Without a connector the union is not strongly connected.
        assert!(!m.is_strongly_connected());
    }

    #[test]
    fn connect_restores_strong_connectivity() {
        let a = generators::grid(2, 2, 0.5, true);
        let b = generators::grid(2, 2, 0.5, true);
        let (m, off) = merge(&a, &translate(&b, 2.0, 0.0));
        let joined = connect(&m, NodeId(1), NodeId(off), None).unwrap();
        assert!(joined.is_strongly_connected());
        assert_eq!(joined.edge_count(), m.edge_count() + 2);
    }

    #[test]
    fn connect_rejects_bad_nodes() {
        let g = generators::grid(2, 2, 0.5, true);
        assert!(matches!(
            connect(&g, NodeId(0), NodeId(99), None),
            Err(GraphError::UnknownNode(_))
        ));
        assert!(matches!(
            connect(&g, NodeId(1), NodeId(1), None),
            Err(GraphError::SelfLoop(_))
        ));
    }

    #[test]
    fn town_builds_a_connected_two_district_map() {
        let west = generators::rural(6, 1.0, 3);
        let east = generators::downtown(4, 4, 0.25);
        let t = town(&west, &east, 0.5);
        assert!(t.is_strongly_connected());
        assert_eq!(t.node_count(), west.node_count() + east.node_count());
        // Mixed one-way share: strictly between the two parts' shares.
        let f = t.one_way_fraction();
        assert!(f > 0.0 && f < east.one_way_fraction());
    }
}
