//! Error types for road-graph construction.

use std::error::Error;
use std::fmt;

use crate::graph::NodeId;

/// Error produced while building or validating a [`crate::RoadGraph`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge referenced a node id that has not been added.
    UnknownNode(NodeId),
    /// An edge length was zero, negative, or non-finite.
    NonPositiveLength {
        /// Starting connection of the offending edge.
        start: NodeId,
        /// Ending connection of the offending edge.
        end: NodeId,
        /// The rejected length.
        length: f64,
    },
    /// An edge started and ended at the same connection.
    SelfLoop(NodeId),
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(v) => write!(f, "edge references unknown node {v}"),
            GraphError::NonPositiveLength { start, end, length } => write!(
                f,
                "edge {start}->{end} has non-positive or non-finite length {length}"
            ),
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v} is not allowed"),
            GraphError::Empty => write!(f, "road graph must contain at least one node"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<GraphError> = vec![
            GraphError::UnknownNode(NodeId(3)),
            GraphError::NonPositiveLength {
                start: NodeId(0),
                end: NodeId(1),
                length: -2.0,
            },
            GraphError::SelfLoop(NodeId(5)),
            GraphError::Empty,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
