//! Map persistence: JSON snapshots and a line-oriented interchange
//! format.
//!
//! Real deployments load municipal road data rather than synthesizing
//! maps, so `roadnet` ships two formats:
//!
//! * **JSON** — the full [`RoadGraph`] via serde, lossless
//!   ([`save_json`] / [`load_json`]);
//! * **RNT** ("road network text") — a minimal, diff-friendly format a
//!   script can emit from OpenStreetMap extracts:
//!
//!   ```text
//!   # comment
//!   node <id> <x_km> <y_km>
//!   edge <from> <to> <length_km> [oneway]
//!   ```
//!
//!   Node ids must be dense (0..n in any order); `edge` without
//!   `oneway` produces both directions.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use crate::graph::{NodeId, RoadGraph, RoadGraphBuilder};
use crate::GraphError;

/// Error loading or saving a map.
#[derive(Debug)]
#[non_exhaustive]
pub enum MapIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// A line of the text format could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed data violated graph invariants.
    Graph(GraphError),
}

impl fmt::Display for MapIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapIoError::Io(e) => write!(f, "i/o error: {e}"),
            MapIoError::Json(e) => write!(f, "json error: {e}"),
            MapIoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            MapIoError::Graph(e) => write!(f, "invalid map: {e}"),
        }
    }
}

impl std::error::Error for MapIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapIoError::Io(e) => Some(e),
            MapIoError::Json(e) => Some(e),
            MapIoError::Graph(e) => Some(e),
            MapIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for MapIoError {
    fn from(e: std::io::Error) -> Self {
        MapIoError::Io(e)
    }
}

impl From<serde_json::Error> for MapIoError {
    fn from(e: serde_json::Error) -> Self {
        MapIoError::Json(e)
    }
}

impl From<GraphError> for MapIoError {
    fn from(e: GraphError) -> Self {
        MapIoError::Graph(e)
    }
}

/// Writes the graph as pretty-printed JSON.
///
/// # Errors
///
/// I/O and serialization failures as [`MapIoError`].
pub fn save_json<W: Write>(graph: &RoadGraph, mut writer: W) -> Result<(), MapIoError> {
    serde_json::to_writer_pretty(&mut writer, graph)?;
    writer.write_all(b"\n")?;
    Ok(())
}

/// Reads a graph from JSON produced by [`save_json`].
///
/// # Errors
///
/// I/O and deserialization failures as [`MapIoError`].
pub fn load_json<R: Read>(reader: R) -> Result<RoadGraph, MapIoError> {
    Ok(serde_json::from_reader(reader)?)
}

/// Writes the graph in the RNT text format. Anti-parallel edge pairs of
/// equal length collapse into a single two-way `edge` line.
///
/// # Errors
///
/// I/O failures as [`MapIoError`].
pub fn save_rnt<W: Write>(graph: &RoadGraph, mut writer: W) -> Result<(), MapIoError> {
    writeln!(
        writer,
        "# roadnet map: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    )?;
    for v in graph.nodes() {
        writeln!(writer, "node {} {} {}", v.id().index(), v.x, v.y)?;
    }
    // Detect two-way pairs so the output stays compact.
    let mut emitted = vec![false; graph.edge_count()];
    for e in graph.edges() {
        if emitted[e.id().index()] {
            continue;
        }
        emitted[e.id().index()] = true;
        let twin = graph
            .out_edges(e.end())
            .iter()
            .map(|&id| graph.edge(id))
            .find(|t| {
                t.end() == e.start()
                    && (t.length() - e.length()).abs() < 1e-12
                    && !emitted[t.id().index()]
            });
        if let Some(t) = twin {
            emitted[t.id().index()] = true;
            writeln!(
                writer,
                "edge {} {} {}",
                e.start().index(),
                e.end().index(),
                e.length()
            )?;
        } else {
            writeln!(
                writer,
                "edge {} {} {} oneway",
                e.start().index(),
                e.end().index(),
                e.length()
            )?;
        }
    }
    Ok(())
}

/// Parses the RNT text format.
///
/// # Errors
///
/// [`MapIoError::Parse`] with a line number for malformed input;
/// [`MapIoError::Graph`] if the parsed map violates graph invariants.
pub fn load_rnt<R: Read>(reader: R) -> Result<RoadGraph, MapIoError> {
    let reader = BufReader::new(reader);
    let mut nodes: Vec<(usize, f64, f64)> = Vec::new();
    let mut edges: Vec<(usize, usize, f64, bool)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let parse_f = |s: &str, what: &str| -> Result<f64, MapIoError> {
            s.parse().map_err(|_| MapIoError::Parse {
                line: lineno,
                message: format!("invalid {what}: {s}"),
            })
        };
        let parse_u = |s: &str, what: &str| -> Result<usize, MapIoError> {
            s.parse().map_err(|_| MapIoError::Parse {
                line: lineno,
                message: format!("invalid {what}: {s}"),
            })
        };
        match parts.as_slice() {
            ["node", id, x, y] => {
                nodes.push((parse_u(id, "node id")?, parse_f(x, "x")?, parse_f(y, "y")?));
            }
            ["edge", from, to, len] => {
                edges.push((
                    parse_u(from, "from")?,
                    parse_u(to, "to")?,
                    parse_f(len, "length")?,
                    false,
                ));
            }
            ["edge", from, to, len, "oneway"] => {
                edges.push((
                    parse_u(from, "from")?,
                    parse_u(to, "to")?,
                    parse_f(len, "length")?,
                    true,
                ));
            }
            _ => {
                return Err(MapIoError::Parse {
                    line: lineno,
                    message: format!("unrecognized record: {line}"),
                })
            }
        }
    }
    // Node ids must be a permutation of 0..n.
    let n = nodes.len();
    let mut coords = vec![None; n];
    for (id, x, y) in nodes {
        if id >= n || coords[id].is_some() {
            return Err(MapIoError::Parse {
                line: 0,
                message: format!("node ids must be dense and unique; offending id {id}"),
            });
        }
        coords[id] = Some((x, y));
    }
    let mut b = RoadGraphBuilder::new();
    for c in coords {
        let (x, y) = c.expect("checked dense above");
        b.add_node(x, y);
    }
    for (from, to, len, oneway) in edges {
        if from >= n || to >= n {
            return Err(MapIoError::Parse {
                line: 0,
                message: format!("edge endpoint out of range: {from}->{to}"),
            });
        }
        if oneway {
            b.add_edge(NodeId(from), NodeId(to), len)?;
        } else {
            b.add_two_way(NodeId(from), NodeId(to), len)?;
        }
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn json_round_trip() {
        let g = generators::downtown(3, 3, 0.3);
        let mut buf = Vec::new();
        save_json(&g, &mut buf).unwrap();
        let back = load_json(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn rnt_round_trip_preserves_structure() {
        let g = generators::rome_like(2, 4, 0.3, 5);
        let mut buf = Vec::new();
        save_rnt(&g, &mut buf).unwrap();
        let back = load_rnt(buf.as_slice()).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert!((back.total_length() - g.total_length()).abs() < 1e-9);
        assert_eq!(back.is_strongly_connected(), g.is_strongly_connected());
        assert!((back.one_way_fraction() - g.one_way_fraction()).abs() < 1e-12);
    }

    #[test]
    fn rnt_parses_hand_written_map() {
        let text = "# tiny\n\
                    node 0 0.0 0.0\n\
                    node 1 1.0 0.0\n\
                    node 2 1.0 1.0\n\
                    edge 0 1 1.0\n\
                    edge 1 2 1.0 oneway\n\
                    edge 2 0 1.5 oneway\n";
        let g = load_rnt(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 4); // one two-way pair + two one-ways
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn rnt_rejects_malformed_lines() {
        for bad in [
            "node 0 0.0",        // missing y
            "node zero 0.0 0.0", // bad id
            "edge 0 1",          // missing length
            "edge 0 1 1.0 both", // bad flag
            "street 0 1 1.0",    // unknown record
        ] {
            let text = format!("node 0 0.0 0.0\nnode 1 1.0 0.0\n{bad}\n");
            assert!(
                matches!(load_rnt(text.as_bytes()), Err(MapIoError::Parse { .. })),
                "accepted: {bad}"
            );
        }
    }

    #[test]
    fn rnt_rejects_sparse_node_ids() {
        let text = "node 0 0.0 0.0\nnode 5 1.0 0.0\nedge 0 5 1.0\n";
        assert!(load_rnt(text.as_bytes()).is_err());
    }

    #[test]
    fn rnt_rejects_out_of_range_edges() {
        let text = "node 0 0.0 0.0\nnode 1 1.0 0.0\nedge 0 7 1.0\n";
        assert!(load_rnt(text.as_bytes()).is_err());
    }

    #[test]
    fn rnt_rejects_graph_violations() {
        let text = "node 0 0.0 0.0\nnode 1 1.0 0.0\nedge 0 1 -2.0\n";
        assert!(matches!(
            load_rnt(text.as_bytes()),
            Err(MapIoError::Graph(_))
        ));
    }

    #[test]
    fn display_of_errors_is_informative() {
        let e = MapIoError::Parse {
            line: 7,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
