//! On-edge locations `p = (e, x)` (§3.1).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::graph::{EdgeId, RoadGraph};

/// A position on a road segment.
///
/// Following §3.1, a location is the ordered pair `(e, x)` where `e` is
/// the directed segment the vehicle or task is on and `x ∈ (0, w_e]` is
/// the *remaining traveling distance to the segment's ending connection*
/// `v_e^e`. Larger `x` means the position is closer to the segment's
/// start.
///
/// # Example
///
/// ```
/// use roadnet::{EdgeId, Location};
///
/// let p = Location::new(EdgeId(2), 0.35);
/// assert_eq!(p.edge(), EdgeId(2));
/// assert_eq!(p.to_end(), 0.35);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Location {
    edge: EdgeId,
    /// Remaining travel distance to the ending connection of `edge`.
    x: f64,
}

impl Location {
    /// Creates a location on `edge` with remaining distance `x` to its
    /// ending connection.
    ///
    /// The caller is responsible for ensuring `0 ≤ x ≤ w_e`; use
    /// [`Location::validated`] to check against a graph.
    pub fn new(edge: EdgeId, x: f64) -> Self {
        Self { edge, x }
    }

    /// Creates a location, clamping `x` into `[0, w_e]` for the given
    /// graph. Returns `None` if `edge` is out of range or `x` is not
    /// finite.
    pub fn validated(graph: &RoadGraph, edge: EdgeId, x: f64) -> Option<Self> {
        if edge.index() >= graph.edge_count() || !x.is_finite() {
            return None;
        }
        let w = graph.edge(edge).length();
        Some(Self {
            edge,
            x: x.clamp(0.0, w),
        })
    }

    /// The segment this location lies on (`e(p)` in the paper).
    pub fn edge(self) -> EdgeId {
        self.edge
    }

    /// Remaining traveling distance to the segment's ending connection
    /// (`x_p` in the paper).
    pub fn to_end(self) -> f64 {
        self.x
    }

    /// Traveling distance already covered from the segment's starting
    /// connection, i.e. `w_e − x`.
    pub fn from_start(self, graph: &RoadGraph) -> f64 {
        graph.edge(self.edge).length() - self.x
    }

    /// Planar coordinates of this location on the given graph.
    pub fn point(self, graph: &RoadGraph) -> (f64, f64) {
        graph.point_on_edge(self.edge, self.x)
    }

    /// Euclidean (straight-line) distance in kilometres between two
    /// locations on the same graph — the metric the 2-D-plane baseline
    /// of §5.1 uses in place of travel distance.
    pub fn euclidean(self, other: Location, graph: &RoadGraph) -> f64 {
        let (ax, ay) = self.point(graph);
        let (bx, by) = other.point(graph);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, x={:.4})", self.edge, self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadGraphBuilder;

    fn line_graph() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(2.0, 0.0);
        b.add_two_way(v0, v1, 2.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn from_start_complements_to_end() {
        let g = line_graph();
        let p = Location::new(EdgeId(0), 0.5);
        assert!((p.from_start(&g) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn validated_clamps_into_range() {
        let g = line_graph();
        let p = Location::validated(&g, EdgeId(0), 5.0).unwrap();
        assert!((p.to_end() - 2.0).abs() < 1e-12);
        let q = Location::validated(&g, EdgeId(0), -1.0).unwrap();
        assert_eq!(q.to_end(), 0.0);
    }

    #[test]
    fn validated_rejects_bad_input() {
        let g = line_graph();
        assert!(Location::validated(&g, EdgeId(9), 0.1).is_none());
        assert!(Location::validated(&g, EdgeId(0), f64::NAN).is_none());
    }

    #[test]
    fn point_respects_direction() {
        let g = line_graph();
        // Edge 0 goes (0,0) -> (2,0); x = 0.5 from the end => 1.5 along.
        let (px, _) = Location::new(EdgeId(0), 0.5).point(&g);
        assert!((px - 1.5).abs() < 1e-12);
        // Edge 1 goes (2,0) -> (0,0); x = 0.5 from the end => at 0.5.
        let (qx, _) = Location::new(EdgeId(1), 0.5).point(&g);
        assert!((qx - 0.5).abs() < 1e-12);
    }

    #[test]
    fn euclidean_between_antiparallel_points() {
        let g = line_graph();
        let p = Location::new(EdgeId(0), 1.0); // at (1, 0)
        let q = Location::new(EdgeId(1), 1.0); // at (1, 0) too
        assert!(p.euclidean(q, &g) < 1e-12);
    }
}
