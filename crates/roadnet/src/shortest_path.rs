//! Dijkstra shortest paths, shortest-path trees, and all-pairs distances.
//!
//! The paper's constraint-reduction algorithm (Algorithm 1) builds, for
//! every vertex `u'_i` of the auxiliary graph, two shortest-path trees:
//! *SPT-Out(i)* (all paths leave `u'_i`) and *SPT-In(i)* (all paths end at
//! `u'_i`). [`ShortestPathTree`] supports both through
//! [`TreeDirection`]; the In tree is a Dijkstra run over the reversed
//! graph.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{EdgeId, NodeId, RoadGraph};

/// Telemetry metric names recorded by the shortest-path machinery.
pub mod metrics {
    /// Counter: Dijkstra runs (`ShortestPathTree::build` calls).
    pub const DIJKSTRA_RUNS: &str = "roadnet.dijkstra.runs";
    /// Counter: total nodes settled (popped with a final distance)
    /// across all Dijkstra runs.
    pub const SETTLED_NODES: &str = "roadnet.dijkstra.settled_nodes";
}

/// Whether a shortest-path tree is rooted as a source or a sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeDirection {
    /// Paths lead *from* the root to every other node (SPT-Out).
    Out,
    /// Paths lead from every node *to* the root (SPT-In).
    In,
}

/// Max-heap entry ordered so the smallest distance pops first.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the min distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A shortest-path tree rooted at one connection.
///
/// Stores, for each node, the travel distance to/from the root and the
/// tree edge through which the shortest path passes, enabling path
/// reconstruction. Unreachable nodes have infinite distance and no
/// parent.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    root: NodeId,
    direction: TreeDirection,
    dist: Vec<f64>,
    /// For `Out`: the edge entering node `v` on the root→v path.
    /// For `In`: the edge leaving node `v` on the v→root path.
    via: Vec<Option<EdgeId>>,
}

impl ShortestPathTree {
    /// Runs Dijkstra from (`Out`) or towards (`In`) `root`.
    pub fn build(graph: &RoadGraph, root: NodeId, direction: TreeDirection) -> Self {
        let n = graph.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut via: Vec<Option<EdgeId>> = vec![None; n];
        let mut settled = vec![false; n];
        let mut heap = BinaryHeap::new();
        dist[root.0] = 0.0;
        heap.push(HeapEntry {
            dist: 0.0,
            node: root.0,
        });
        let mut settled_count = 0u64;
        while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
            if settled[v] {
                continue;
            }
            settled[v] = true;
            settled_count += 1;
            let edges: &[EdgeId] = match direction {
                TreeDirection::Out => graph.out_edges(NodeId(v)),
                TreeDirection::In => graph.in_edges(NodeId(v)),
            };
            for &eid in edges {
                let e = graph.edge(eid);
                let w = match direction {
                    TreeDirection::Out => e.end().0,
                    TreeDirection::In => e.start().0,
                };
                let nd = d + e.length();
                if nd < dist[w] {
                    dist[w] = nd;
                    via[w] = Some(eid);
                    heap.push(HeapEntry { dist: nd, node: w });
                }
            }
        }
        let obs = vlp_obs::global();
        obs.incr(metrics::DIJKSTRA_RUNS, 1);
        obs.incr(metrics::SETTLED_NODES, settled_count);
        Self {
            root,
            direction,
            dist,
            via,
        }
    }

    /// The root connection of this tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The direction this tree was built with.
    pub fn direction(&self) -> TreeDirection {
        self.direction
    }

    /// Travel distance between the root and `v` (root→v for `Out`,
    /// v→root for `In`). Infinite if unreachable.
    pub fn distance(&self, v: NodeId) -> f64 {
        self.dist[v.0]
    }

    /// Whether `v` is reachable in this tree's direction.
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.dist[v.0].is_finite()
    }

    /// The tree edge through which the shortest path passes at `v`:
    /// for an `Out` tree the edge *entering* `v` on the root→v path,
    /// for an `In` tree the edge *leaving* `v` on the v→root path.
    /// `None` for the root or unreachable nodes.
    pub fn via_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.via[v.0]
    }

    /// The sequence of edges on the shortest path between the root and
    /// `v`, ordered along the direction of travel (borrowing the graph
    /// for edge-endpoint lookups — the tree does not store the graph).
    /// Empty if `v` is the root; `None` if unreachable.
    pub fn path_edges_on(&self, graph: &RoadGraph, v: NodeId) -> Option<Vec<EdgeId>> {
        if !self.is_reachable(v) {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = v.0;
        let mut guard = 0usize;
        while cur != self.root.0 {
            let eid = self.via[cur]?;
            edges.push(eid);
            let e = graph.edge(eid);
            cur = match self.direction {
                TreeDirection::Out => e.start().0,
                TreeDirection::In => e.end().0,
            };
            guard += 1;
            if guard > graph.edge_count() + 1 {
                return None; // corrupted tree; avoid infinite loop
            }
        }
        if self.direction == TreeDirection::Out {
            edges.reverse();
        }
        Some(edges)
    }
}

/// Reusable per-thread Dijkstra working memory: one distance array, one
/// settled bitmap, and one heap, reset (not reallocated) between runs.
/// The relaxation loop in [`DijkstraScratch::run_out`] mirrors
/// [`ShortestPathTree::build`] operation for operation, so the distances
/// it produces are bit-identical to a fresh tree build.
struct DijkstraScratch {
    dist: Vec<f64>,
    settled: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
}

impl DijkstraScratch {
    fn new(n: usize) -> Self {
        Self {
            dist: vec![f64::INFINITY; n],
            settled: vec![false; n],
            heap: BinaryHeap::new(),
        }
    }

    /// Out-direction Dijkstra from `s`, leaving the distances in
    /// `self.dist`. Returns the number of settled nodes.
    fn run_out(&mut self, graph: &RoadGraph, s: usize) -> u64 {
        self.dist.iter_mut().for_each(|d| *d = f64::INFINITY);
        self.settled.iter_mut().for_each(|x| *x = false);
        self.heap.clear();
        self.dist[s] = 0.0;
        self.heap.push(HeapEntry { dist: 0.0, node: s });
        let mut settled_count = 0u64;
        while let Some(HeapEntry { dist: d, node: v }) = self.heap.pop() {
            if self.settled[v] {
                continue;
            }
            self.settled[v] = true;
            settled_count += 1;
            for &eid in graph.out_edges(NodeId(v)) {
                let e = graph.edge(eid);
                let w = e.end().0;
                let nd = d + e.length();
                if nd < self.dist[w] {
                    self.dist[w] = nd;
                    self.heap.push(HeapEntry { dist: nd, node: w });
                }
            }
        }
        settled_count
    }
}

/// Which distance a bounded Dijkstra exploration measures.
///
/// `Out`/`In` mirror [`TreeDirection`]; `Undirected` treats every
/// directed edge as traversable both ways at its length, which computes
/// the *metric closure* `d̂` of the bidirectional distance
/// `d_min(u, v) = min{d(u→v), d(v→u)}`: any directed path is an
/// undirected walk (so `d̂ ≤` any chain of `d_min` hops), and every
/// undirected hop across an edge `u→v` costs at least `d_min(u, v)` (so
/// chains of `d_min` reach `d̂`). `d̂` is symmetric and satisfies the
/// triangle inequality even though `d_min` itself does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BallMetric {
    /// Directed distances from the root (`d_G(root, ·)`).
    Out,
    /// Directed distances towards the root (`d_G(·, root)`).
    In,
    /// Metric-closure distances `d̂(root, ·)` (see enum docs).
    Undirected,
}

/// Relaxes the neighbors of `v` (at distance `d`) under `metric`,
/// operation-for-operation identical to [`ShortestPathTree::build`] for
/// `Out`/`In` so settled distances stay bit-identical to full runs.
fn relax_neighbors(
    graph: &RoadGraph,
    metric: BallMetric,
    v: usize,
    d: f64,
    dist: &mut [f64],
    heap: &mut BinaryHeap<HeapEntry>,
) {
    let mut step = |eid: EdgeId, forward: bool| {
        let e = graph.edge(eid);
        let w = if forward { e.end().0 } else { e.start().0 };
        let nd = d + e.length();
        if nd < dist[w] {
            dist[w] = nd;
            heap.push(HeapEntry { dist: nd, node: w });
        }
    };
    match metric {
        BallMetric::Out => {
            for &eid in graph.out_edges(NodeId(v)) {
                step(eid, true);
            }
        }
        BallMetric::In => {
            for &eid in graph.in_edges(NodeId(v)) {
                step(eid, false);
            }
        }
        BallMetric::Undirected => {
            for &eid in graph.out_edges(NodeId(v)) {
                step(eid, true);
            }
            for &eid in graph.in_edges(NodeId(v)) {
                step(eid, false);
            }
        }
    }
}

/// Radius-bounded single-source Dijkstra: every node whose distance
/// from (or to, or metric-closure-from — see [`BallMetric`]) `root` is
/// at most `radius`, with its exact distance, in settling order
/// (ascending distance, ties by ascending node id).
///
/// The run stops at the first heap pop beyond `radius`, so its cost is
/// proportional to the ball, not the graph. Settled distances are
/// bit-identical to an unbounded run over the same metric (the bounded
/// run performs an exact prefix of the unbounded run's operations);
/// with `radius = ∞` it settles every reachable node.
pub fn bounded_ball(
    graph: &RoadGraph,
    root: NodeId,
    radius: f64,
    metric: BallMetric,
) -> Vec<(NodeId, f64)> {
    assert!(radius >= 0.0, "ball radius must be non-negative");
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    let mut ball = Vec::new();
    dist[root.0] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: root.0,
    });
    while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
        if d > radius {
            break;
        }
        if settled[v] {
            continue;
        }
        settled[v] = true;
        ball.push((NodeId(v), d));
        relax_neighbors(graph, metric, v, d, &mut dist, &mut heap);
    }
    let obs = vlp_obs::global();
    obs.incr(metrics::DIJKSTRA_RUNS, 1);
    obs.incr(metrics::SETTLED_NODES, ball.len() as u64);
    ball
}

/// Distances from `root` to each of `targets` under `metric`, by a
/// Dijkstra run that terminates as soon as every target is settled (so
/// clustered targets cost a ball around them, not a full sweep).
/// Unreachable targets come back infinite. Settled distances are
/// bit-identical to an unbounded run (exact operation prefix).
pub fn distances_to_targets(
    graph: &RoadGraph,
    root: NodeId,
    targets: &[NodeId],
    metric: BallMetric,
) -> Vec<f64> {
    let n = graph.node_count();
    let mut is_target = vec![false; n];
    let mut remaining = 0usize;
    for t in targets {
        if !is_target[t.0] {
            is_target[t.0] = true;
            remaining += 1;
        }
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    let mut settled_count = 0u64;
    dist[root.0] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: root.0,
    });
    while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
        if remaining == 0 {
            break;
        }
        if settled[v] {
            continue;
        }
        settled[v] = true;
        settled_count += 1;
        if is_target[v] {
            remaining -= 1;
        }
        relax_neighbors(graph, metric, v, d, &mut dist, &mut heap);
    }
    let obs = vlp_obs::global();
    obs.incr(metrics::DIJKSTRA_RUNS, 1);
    obs.incr(metrics::SETTLED_NODES, settled_count);
    targets.iter().map(|t| dist[t.0]).collect()
}

/// All-pairs node-to-node travel distances (`d_G` restricted to `V`).
///
/// Built by running Dijkstra from every connection; the road graphs in
/// this workspace have at most a few thousand connections, for which the
/// dense `O(|V|²)` matrix is the right trade-off.
#[derive(Debug, Clone)]
pub struct NodeDistances {
    n: usize,
    /// Row-major: `dist[s * n + t]` = travel distance s→t.
    dist: Vec<f64>,
}

impl NodeDistances {
    /// Computes travel distances between all ordered pairs of
    /// connections, fanning the independent per-source Dijkstra runs
    /// across the available cores. Each source row is computed by
    /// exactly the same float operations regardless of thread count, so
    /// the result is byte-identical to [`Self::all_pairs_serial`].
    pub fn all_pairs(graph: &RoadGraph) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::all_pairs_with_threads(graph, threads)
    }

    /// Single-threaded [`Self::all_pairs`] (the deterministic
    /// reference the parallel build is tested against).
    pub fn all_pairs_serial(graph: &RoadGraph) -> Self {
        Self::all_pairs_with_threads(graph, 1)
    }

    fn all_pairs_with_threads(graph: &RoadGraph, threads: usize) -> Self {
        let n = graph.node_count();
        if n == 0 {
            return Self {
                n,
                dist: Vec::new(),
            };
        }
        let mut dist = vec![f64::INFINITY; n * n];
        let chunk = n.div_ceil(threads.max(1).min(n));
        let mut settled_total = 0u64;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (t, rows) in dist.chunks_mut(chunk * n).enumerate() {
                let lo = t * chunk;
                handles.push(scope.spawn(move || {
                    let mut scratch = DijkstraScratch::new(n);
                    let mut settled = 0u64;
                    for (off, row) in rows.chunks_mut(n).enumerate() {
                        settled += scratch.run_out(graph, lo + off);
                        row.copy_from_slice(&scratch.dist);
                    }
                    settled
                }));
            }
            for h in handles {
                settled_total += h.join().expect("all-pairs thread panicked");
            }
        });
        // One flush for the whole build (same counter totals as n
        // individual tree builds, and deterministic across thread
        // counts).
        let obs = vlp_obs::global();
        obs.incr(metrics::DIJKSTRA_RUNS, n as u64);
        obs.incr(metrics::SETTLED_NODES, settled_total);
        Self { n, dist }
    }

    /// Travel distance from connection `s` to connection `t`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn get(&self, s: NodeId, t: NodeId) -> f64 {
        assert!(s.0 < self.n && t.0 < self.n, "node id out of range");
        self.dist[s.0 * self.n + t.0]
    }

    /// Number of connections covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadGraphBuilder;

    /// 4-cycle with asymmetric distances:
    /// v0 -> v1 -> v2 -> v3 -> v0, lengths 1, 2, 3, 4.
    fn ring() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_node(i as f64, 0.0)).collect();
        b.add_edge(v[0], v[1], 1.0).unwrap();
        b.add_edge(v[1], v[2], 2.0).unwrap();
        b.add_edge(v[2], v[3], 3.0).unwrap();
        b.add_edge(v[3], v[0], 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn out_tree_distances_follow_cycle() {
        let g = ring();
        let t = ShortestPathTree::build(&g, NodeId(0), TreeDirection::Out);
        assert_eq!(t.distance(NodeId(0)), 0.0);
        assert_eq!(t.distance(NodeId(1)), 1.0);
        assert_eq!(t.distance(NodeId(2)), 3.0);
        assert_eq!(t.distance(NodeId(3)), 6.0);
    }

    #[test]
    fn in_tree_is_reverse_of_out() {
        let g = ring();
        let t = ShortestPathTree::build(&g, NodeId(0), TreeDirection::In);
        // v1 -> v0 must go v1->v2->v3->v0 = 2+3+4 = 9.
        assert_eq!(t.distance(NodeId(1)), 9.0);
        assert_eq!(t.distance(NodeId(3)), 4.0);
    }

    #[test]
    fn path_edges_reconstructs_out_path() {
        let g = ring();
        let t = ShortestPathTree::build(&g, NodeId(0), TreeDirection::Out);
        let path = t.path_edges_on(&g, NodeId(2)).unwrap();
        assert_eq!(path, vec![EdgeId(0), EdgeId(1)]);
        // Path length equals tree distance.
        let len: f64 = path.iter().map(|&e| g.edge(e).length()).sum();
        assert_eq!(len, t.distance(NodeId(2)));
    }

    #[test]
    fn path_edges_reconstructs_in_path() {
        let g = ring();
        let t = ShortestPathTree::build(&g, NodeId(0), TreeDirection::In);
        let path = t.path_edges_on(&g, NodeId(2)).unwrap();
        // v2 -> root(v0): edges (2,3), (3,0), ordered along travel.
        assert_eq!(path, vec![EdgeId(2), EdgeId(3)]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(1.0, 0.0);
        b.add_edge(v0, v1, 1.0).unwrap();
        let g = b.build().unwrap();
        let t = ShortestPathTree::build(&g, NodeId(1), TreeDirection::Out);
        assert!(!t.is_reachable(NodeId(0)));
        assert!(t.path_edges_on(&g, NodeId(0)).is_none());
    }

    #[test]
    fn all_pairs_matches_single_source() {
        let g = ring();
        let m = NodeDistances::all_pairs(&g);
        for s in 0..4 {
            let t = ShortestPathTree::build(&g, NodeId(s), TreeDirection::Out);
            for v in 0..4 {
                assert_eq!(m.get(NodeId(s), NodeId(v)), t.distance(NodeId(v)));
            }
        }
    }

    #[test]
    fn all_pairs_parallel_is_byte_identical_to_serial() {
        // Larger irregular graph: a ring plus chords with irrational
        // lengths, so float round-off would expose any change in
        // operation order between the serial and parallel builds.
        let mut b = RoadGraphBuilder::new();
        let n = 37;
        let v: Vec<_> = (0..n).map(|i| b.add_node(i as f64, 0.0)).collect();
        for i in 0..n {
            b.add_edge(v[i], v[(i + 1) % n], 1.0 + (i as f64) * 0.137)
                .unwrap();
            b.add_edge(v[i], v[(i + 7) % n], 2.0 + (i as f64).sqrt())
                .unwrap();
        }
        let g = b.build().unwrap();
        let serial = NodeDistances::all_pairs_serial(&g);
        let parallel = NodeDistances::all_pairs(&g);
        for s in 0..n {
            for t in 0..n {
                let a = serial.get(NodeId(s), NodeId(t));
                let b = parallel.get(NodeId(s), NodeId(t));
                assert_eq!(a.to_bits(), b.to_bits(), "({s},{t}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn all_pairs_asymmetry() {
        let g = ring();
        let m = NodeDistances::all_pairs(&g);
        assert_eq!(m.get(NodeId(0), NodeId(1)), 1.0);
        assert_eq!(m.get(NodeId(1), NodeId(0)), 9.0);
    }

    #[test]
    fn dijkstra_records_runs_and_settled_nodes() {
        let g = ring();
        let obs = vlp_obs::global();
        let runs = obs.counter(metrics::DIJKSTRA_RUNS);
        let settled = obs.counter(metrics::SETTLED_NODES);
        let _ = ShortestPathTree::build(&g, NodeId(0), TreeDirection::Out);
        // Lower bounds only: other tests run Dijkstra concurrently.
        assert!(obs.counter(metrics::DIJKSTRA_RUNS) > runs);
        assert!(obs.counter(metrics::SETTLED_NODES) >= settled + 4);
    }

    #[test]
    fn bounded_ball_is_a_prefix_of_the_full_run() {
        let g = ring();
        let t = ShortestPathTree::build(&g, NodeId(0), TreeDirection::Out);
        let ball = bounded_ball(&g, NodeId(0), 3.0, BallMetric::Out);
        // v0 at 0, v1 at 1, v2 at 3; v3 (dist 6) is beyond the radius.
        assert_eq!(ball.len(), 3);
        for &(v, d) in &ball {
            assert_eq!(d.to_bits(), t.distance(v).to_bits());
        }
        assert!(ball.iter().all(|&(v, _)| v != NodeId(3)));
        // Radius ∞ settles everything, in ascending-distance order.
        let all = bounded_ball(&g, NodeId(0), f64::INFINITY, BallMetric::Out);
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn undirected_ball_is_symmetric_metric_closure() {
        let g = ring();
        // d̂(v0, v3): the single edge v3->v0 (length 4) beats the
        // directed route v0->v1->v2->v3 (length 6).
        let from0 = bounded_ball(&g, NodeId(0), f64::INFINITY, BallMetric::Undirected);
        let from3 = bounded_ball(&g, NodeId(3), f64::INFINITY, BallMetric::Undirected);
        let d03 = from0.iter().find(|(v, _)| *v == NodeId(3)).unwrap().1;
        let d30 = from3.iter().find(|(v, _)| *v == NodeId(0)).unwrap().1;
        assert_eq!(d03, 4.0);
        assert_eq!(d03.to_bits(), d30.to_bits());
    }

    #[test]
    fn targeted_distances_match_all_pairs() {
        let g = ring();
        let m = NodeDistances::all_pairs(&g);
        let targets = [NodeId(2), NodeId(0), NodeId(2)];
        for s in 0..4 {
            let d = distances_to_targets(&g, NodeId(s), &targets, BallMetric::Out);
            assert_eq!(d.len(), targets.len());
            for (i, &t) in targets.iter().enumerate() {
                assert_eq!(d[i].to_bits(), m.get(NodeId(s), t).to_bits());
            }
        }
    }

    #[test]
    fn targeted_distances_flag_unreachable_targets() {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(1.0, 0.0);
        b.add_edge(v0, v1, 1.0).unwrap();
        let g = b.build().unwrap();
        let d = distances_to_targets(&g, NodeId(1), &[NodeId(0)], BallMetric::Out);
        assert!(d[0].is_infinite());
    }

    #[test]
    fn path_to_root_is_empty() {
        let g = ring();
        let t = ShortestPathTree::build(&g, NodeId(2), TreeDirection::Out);
        assert_eq!(
            t.path_edges_on(&g, NodeId(2)).unwrap(),
            Vec::<EdgeId>::new()
        );
    }
}
