//! Road-network substrate for vehicle-based spatial crowdsourcing.
//!
//! This crate models a road map as a *weighted directed graph*
//! `G = (V, E)` exactly as in §3.1 of the paper: connections (`V`) split
//! roads into directed *road segments* (`E`), each segment `e` carrying a
//! weight `w_e` interpreted as its traveling distance. Vehicles and tasks
//! live *on edges*, at positions `p = (e, x)` where `x ∈ (0, w_e]` is the
//! remaining travel distance from `p` to the segment's ending connection.
//!
//! Provided here:
//!
//! * [`RoadGraph`] — the graph itself, with validated construction via
//!   [`RoadGraphBuilder`];
//! * [`Location`] — an on-edge position;
//! * [`travel_distance`](distance::travel_distance) and friends — the
//!   directed travel distance `d_G(p, q)` (cases C1/C2, Eq. 9–10), the
//!   bidirectional `d_min` (Eq. 1), and the estimated traveling-distance
//!   distortion `Δd_G` (Eq. 8/11);
//! * [Dijkstra shortest paths](shortest_path) including the SPT-Out /
//!   SPT-In trees used by the paper's constraint-reduction algorithm;
//! * [synthetic map generators](generators) standing in for the Rome and
//!   Glassboro maps of the paper's evaluation;
//! * [map persistence](io): lossless JSON snapshots plus a minimal text
//!   interchange format for importing real road data;
//! * [map composition](compose): translate, merge, and connect maps
//!   into multi-district study areas;
//! * [map partitioning](partition): split a map into strongly
//!   connected geographic region shards for per-region mechanism
//!   serving.
//!
//! # Example
//!
//! ```
//! use roadnet::{generators, Location, NodeDistances};
//!
//! let graph = generators::grid(3, 3, 0.5, true);
//! let dists = NodeDistances::all_pairs(&graph);
//! let p = Location::new(graph.edges()[0].id(), 0.25);
//! let q = Location::new(graph.edges()[5].id(), 0.10);
//! let d = roadnet::distance::travel_distance(&graph, &dists, p, q);
//! assert!(d.is_finite());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod compose;
pub mod distance;
mod error;
pub mod generators;
mod graph;
pub mod io;
mod location;
pub mod partition;
pub mod shortest_path;

pub use error::GraphError;
pub use graph::{Edge, EdgeId, Node, NodeId, RoadGraph, RoadGraphBuilder};
pub use location::Location;
pub use partition::{Partition, RegionShard};
pub use shortest_path::{
    bounded_ball, distances_to_targets, BallMetric, NodeDistances, ShortestPathTree, TreeDirection,
};
