//! Region sharding: partition a road graph into strongly connected
//! geographic shards.
//!
//! A city-scale serving layer cannot solve one mechanism over the whole
//! map — the D-VLP solve is superlinear in the interval count, and a
//! vehicle's obfuscation only needs to be indistinguishable within its
//! local area (the protection radius `r` is a few kilometres, not the
//! map diameter). [`Partition::by_bands`] splits the map into `n`
//! vertical geographic bands of near-equal node count; each band keeps
//! the road segments internal to it and becomes an independent
//! [`RegionShard`] with its own [`RoadGraph`].
//!
//! Dropping the segments that cross a band boundary can disconnect a
//! band (one-way grids are particularly prone), and every downstream
//! consumer — discretization, interval distances, Geo-I constraints —
//! needs finite intra-shard distances. The partition therefore
//! *repairs* each shard: it computes the shard's strongly connected
//! components and joins every secondary component to the largest one
//! with a two-way connector road between their mutually nearest nodes
//! (the same 15 % meander factor as [`crate::compose::connect`]). The
//! connectors are a modelling choice, not map data; their count is
//! reported per shard so callers can judge the distortion.
//!
//! Mappings are kept in both directions: global node/edge → owning
//! shard, and shard-local node → global node. [`Partition::to_local`]
//! translates an on-edge [`Location`] into the owning shard's
//! coordinate space (cross-boundary locations resolve to `None`; snap
//! them to an endpoint first via [`Partition::shard_of_edge`]).

use crate::graph::{EdgeId, NodeId, RoadGraph, RoadGraphBuilder};
use crate::location::Location;

/// One geographic shard of a partitioned road graph.
#[derive(Debug, Clone)]
pub struct RegionShard {
    /// The shard's own strongly connected road graph.
    graph: RoadGraph,
    /// Shard-local node id → global node id.
    nodes: Vec<NodeId>,
    /// Two-way connector roads added to restore strong connectivity
    /// (count of *connector pairs*, not directed edges).
    connectors: usize,
}

impl RegionShard {
    /// The shard's road graph (strongly connected by construction).
    pub fn graph(&self) -> &RoadGraph {
        &self.graph
    }

    /// Global node ids of this shard, indexed by local node id.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The global node id behind a shard-local node id.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range for this shard.
    pub fn to_global(&self, local: NodeId) -> NodeId {
        self.nodes[local.index()]
    }

    /// Number of two-way connector roads added during repair.
    pub fn connector_count(&self) -> usize {
        self.connectors
    }
}

/// A partition of a road graph into geographic [`RegionShard`]s, with
/// global ↔ local mappings.
#[derive(Debug, Clone)]
pub struct Partition {
    shards: Vec<RegionShard>,
    /// Global node id → shard index.
    node_shard: Vec<usize>,
    /// Global node id → local node id within its shard.
    node_local: Vec<NodeId>,
    /// Global edge id → `(shard, local edge)` for intra-shard edges.
    edge_map: Vec<Option<(usize, EdgeId)>>,
    /// Global edge id → home shard (start node's shard for
    /// cross-boundary edges).
    edge_shard: Vec<usize>,
    /// Global ids of the dropped cross-boundary edges.
    cross_edges: Vec<EdgeId>,
}

impl Partition {
    /// Partitions `graph` into `n_shards` vertical bands of near-equal
    /// node count (split on the x coordinate, ties broken by y then
    /// id), keeping intra-band segments and repairing each band to
    /// strong connectivity.
    ///
    /// # Example
    ///
    /// ```
    /// use roadnet::{generators, Partition};
    ///
    /// let graph = generators::grid(3, 4, 0.4, true);
    /// let partition = Partition::by_bands(&graph, 2);
    /// assert_eq!(partition.shards().len(), 2);
    /// // Bands cover every node exactly once …
    /// let nodes: usize = partition
    ///     .shards()
    ///     .iter()
    ///     .map(|s| s.graph().node_count())
    ///     .sum();
    /// assert_eq!(nodes, graph.node_count());
    /// // … and each band is near-equal in size.
    /// for shard in partition.shards() {
    ///     assert!(shard.graph().node_count() >= graph.node_count() / 2 - 1);
    /// }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `n_shards == 0` or the graph has fewer than
    /// `2 · n_shards` nodes (a shard needs at least two nodes to carry
    /// a road segment).
    pub fn by_bands(graph: &RoadGraph, n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        let n = graph.node_count();
        assert!(
            n >= 2 * n_shards,
            "{n} nodes cannot fill {n_shards} shards with >= 2 nodes each"
        );
        // Geographic order: west to east.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by(|&a, &b| {
            let (va, vb) = (&graph.nodes()[a], &graph.nodes()[b]);
            va.x.total_cmp(&vb.x)
                .then(va.y.total_cmp(&vb.y))
                .then(a.cmp(&b))
        });
        // Near-equal band sizes: the first `n % n_shards` bands get one
        // extra node.
        let base = n / n_shards;
        let extra = n % n_shards;
        let mut node_shard = vec![0usize; n];
        let mut node_local = vec![NodeId(0); n];
        let mut members: Vec<Vec<usize>> = Vec::with_capacity(n_shards);
        let mut cursor = 0;
        for s in 0..n_shards {
            let size = base + usize::from(s < extra);
            let band = &order[cursor..cursor + size];
            for (local, &g) in band.iter().enumerate() {
                node_shard[g] = s;
                node_local[g] = NodeId(local);
            }
            members.push(band.to_vec());
            cursor += size;
        }
        // Distribute intra-band edges; record the rest as cross edges.
        let mut builders: Vec<RoadGraphBuilder> = members
            .iter()
            .map(|band| {
                let mut b = RoadGraphBuilder::new();
                for &g in band {
                    let v = &graph.nodes()[g];
                    b.add_node(v.x, v.y);
                }
                b
            })
            .collect();
        let mut local_edges: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); n_shards];
        let mut edge_map = vec![None; graph.edge_count()];
        let mut edge_shard = vec![0usize; graph.edge_count()];
        let mut cross_edges = Vec::new();
        for e in graph.edges() {
            let (s_start, s_end) = (node_shard[e.start().index()], node_shard[e.end().index()]);
            edge_shard[e.id().index()] = s_start;
            if s_start == s_end {
                let a = node_local[e.start().index()];
                let b = node_local[e.end().index()];
                let id = builders[s_start]
                    .add_edge(a, b, e.length())
                    .expect("intra-shard copy of a valid edge");
                edge_map[e.id().index()] = Some((s_start, id));
                local_edges[s_start].push((a.index(), b.index(), e.length()));
            } else {
                cross_edges.push(e.id());
            }
        }
        // Repair and finalize each shard.
        let shards = members
            .into_iter()
            .zip(builders)
            .zip(local_edges)
            .map(|((band, mut b), edges)| {
                let coords: Vec<(f64, f64)> = band
                    .iter()
                    .map(|&g| (graph.nodes()[g].x, graph.nodes()[g].y))
                    .collect();
                let connectors = repair_connectivity(&mut b, &coords, &edges);
                let shard_graph = b.build().expect("shard bands are non-empty");
                debug_assert!(shard_graph.is_strongly_connected());
                RegionShard {
                    graph: shard_graph,
                    nodes: band.into_iter().map(NodeId).collect(),
                    connectors,
                }
            })
            .collect();
        Self {
            shards,
            node_shard,
            node_local,
            edge_map,
            edge_shard,
            cross_edges,
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the partition holds no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shards, indexed by shard id.
    pub fn shards(&self) -> &[RegionShard] {
        &self.shards
    }

    /// One shard by index.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn shard(&self, s: usize) -> &RegionShard {
        &self.shards[s]
    }

    /// The shard owning a global node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the partitioned graph.
    pub fn shard_of_node(&self, v: NodeId) -> usize {
        self.node_shard[v.index()]
    }

    /// The local id of a global node within its shard.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the partitioned graph.
    pub fn to_local_node(&self, v: NodeId) -> NodeId {
        self.node_local[v.index()]
    }

    /// The home shard of a global edge: the shard holding it intact,
    /// or the shard of its starting connection for cross-boundary
    /// edges (a vehicle mid-segment still "belongs" to its origin
    /// region).
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an edge of the partitioned graph.
    pub fn shard_of_edge(&self, e: EdgeId) -> usize {
        self.edge_shard[e.index()]
    }

    /// Translates an on-edge location into its owning shard's
    /// coordinates. Returns `None` when the location lies on a dropped
    /// cross-boundary segment (use [`Self::shard_of_edge`] to pick the
    /// home shard and snap to one of its intervals instead).
    ///
    /// # Panics
    ///
    /// Panics if the location's edge is not part of the partitioned
    /// graph.
    pub fn to_local(&self, p: Location) -> Option<(usize, Location)> {
        let (shard, local_edge) = self.edge_map[p.edge().index()]?;
        Some((shard, Location::new(local_edge, p.to_end())))
    }

    /// Global ids of the segments dropped because they cross a band
    /// boundary.
    pub fn cross_edges(&self) -> &[EdgeId] {
        &self.cross_edges
    }
}

/// Joins all strongly connected components of the partially built
/// shard into the largest one with two-way connector roads between
/// nearest node pairs. Returns the number of connector pairs added.
fn repair_connectivity(
    b: &mut RoadGraphBuilder,
    coords: &[(f64, f64)],
    edges: &[(usize, usize, f64)],
) -> usize {
    let comp = strongly_connected_components(coords.len(), edges);
    let n_comps = 1 + comp.iter().copied().max().unwrap_or(0);
    if n_comps <= 1 {
        return 0;
    }
    // Hub: the largest component.
    let mut sizes = vec![0usize; n_comps];
    for &c in &comp {
        sizes[c] += 1;
    }
    let hub = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(c, &s)| (s, std::cmp::Reverse(c)))
        .map(|(c, _)| c)
        .expect("at least one component");
    let mut added = 0;
    for c in 0..n_comps {
        if c == hub {
            continue;
        }
        // Nearest pair between the hub and component `c`.
        let mut best = (0usize, 0usize, f64::INFINITY);
        for (i, &(xi, yi)) in coords.iter().enumerate() {
            if comp[i] != hub {
                continue;
            }
            for (j, &(xj, yj)) in coords.iter().enumerate() {
                if comp[j] != c {
                    continue;
                }
                let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let length = (best.2 * 1.15).max(1e-3);
        b.add_two_way(NodeId(best.0), NodeId(best.1), length)
            .expect("connector endpoints are distinct shard nodes");
        added += 1;
    }
    added
}

/// Kosaraju's algorithm over an edge list; returns a component index
/// per node. Iterative DFS keeps deep one-way chains off the call
/// stack.
fn strongly_connected_components(n: usize, edges: &[(usize, usize, f64)]) -> Vec<usize> {
    let mut out = vec![Vec::new(); n];
    let mut inc = vec![Vec::new(); n];
    for &(a, b, _) in edges {
        out[a].push(b);
        inc[b].push(a);
    }
    // Pass 1: finish order on the forward graph.
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for root in 0..n {
        if seen[root] {
            continue;
        }
        // Stack of (node, next-child cursor).
        let mut stack = vec![(root, 0usize)];
        seen[root] = true;
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            if let Some(&w) = out[v].get(*cursor) {
                *cursor += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    // Pass 2: reverse-graph DFS in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for &root in order.iter().rev() {
        if comp[root] != usize::MAX {
            continue;
        }
        let mut stack = vec![root];
        comp[root] = next;
        while let Some(v) = stack.pop() {
            for &w in &inc[v] {
                if comp[w] == usize::MAX {
                    comp[w] = next;
                    stack.push(w);
                }
            }
        }
        next += 1;
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compose, generators};

    #[test]
    fn bands_cover_all_nodes_with_balanced_sizes() {
        let g = generators::grid(4, 4, 0.4, true);
        let p = Partition::by_bands(&g, 3);
        assert_eq!(p.len(), 3);
        let total: usize = p.shards().iter().map(|s| s.graph().node_count()).sum();
        assert_eq!(total, g.node_count());
        let sizes: Vec<usize> = p.shards().iter().map(|s| s.graph().node_count()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn every_shard_is_strongly_connected() {
        for g in [
            generators::grid(4, 4, 0.4, true),
            generators::downtown(4, 4, 0.25),
            generators::rural(8, 1.0, 5),
        ] {
            let p = Partition::by_bands(&g, 2);
            for s in p.shards() {
                assert!(s.graph().is_strongly_connected());
            }
        }
    }

    #[test]
    fn node_mappings_round_trip() {
        let g = generators::grid(4, 3, 0.4, true);
        let p = Partition::by_bands(&g, 2);
        for v in g.nodes() {
            let s = p.shard_of_node(v.id());
            let local = p.to_local_node(v.id());
            assert_eq!(p.shard(s).to_global(local), v.id());
            let lv = &p.shard(s).graph().nodes()[local.index()];
            assert_eq!((lv.x, lv.y), (v.x, v.y));
        }
    }

    #[test]
    fn intra_shard_edges_keep_their_length_and_cross_edges_are_reported() {
        let g = generators::grid(4, 4, 0.4, true);
        let p = Partition::by_bands(&g, 2);
        let mut intact = 0;
        for e in g.edges() {
            match p.to_local(Location::new(e.id(), e.length() / 2.0)) {
                Some((s, local)) => {
                    intact += 1;
                    let le = p.shard(s).graph().edge(local.edge());
                    assert!((le.length() - e.length()).abs() < 1e-12);
                    assert_eq!(local.to_end(), e.length() / 2.0);
                }
                None => assert!(p.cross_edges().contains(&e.id())),
            }
        }
        assert!(intact > 0);
        assert!(!p.cross_edges().is_empty(), "a 2-band grid must be cut");
        assert_eq!(intact + p.cross_edges().len(), g.edge_count());
    }

    #[test]
    fn cross_edges_home_to_their_start_shard() {
        let g = generators::grid(4, 4, 0.4, true);
        let p = Partition::by_bands(&g, 2);
        for &e in p.cross_edges() {
            let edge = g.edge(e);
            assert_eq!(p.shard_of_edge(e), p.shard_of_node(edge.start()));
        }
    }

    #[test]
    fn two_district_town_splits_on_the_seam() {
        let west = generators::rural(6, 1.0, 3);
        let east = generators::downtown(4, 4, 0.25);
        let town = compose::town(&west, &east, 0.5);
        let p = Partition::by_bands(&town, 2);
        // Bands split west-to-east: the westmost node lands in shard 0,
        // the eastmost in shard 1, and both shards stay usable.
        let westmost = town
            .nodes()
            .iter()
            .min_by(|a, b| a.x.total_cmp(&b.x))
            .unwrap()
            .id();
        let eastmost = town
            .nodes()
            .iter()
            .max_by(|a, b| a.x.total_cmp(&b.x))
            .unwrap()
            .id();
        assert_eq!(p.shard_of_node(westmost), 0);
        assert_eq!(p.shard_of_node(eastmost), 1);
        assert!(p.cross_edges().len() < town.edge_count() / 2);
        for s in p.shards() {
            assert!(s.graph().is_strongly_connected());
        }
    }

    #[test]
    fn one_way_ring_band_needs_connectors() {
        // A one-way square ring: any 2-band cut severs both directions
        // of travel, so each band must be repaired.
        let mut b = RoadGraphBuilder::new();
        let v: Vec<NodeId> = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
            .iter()
            .map(|&(x, y)| b.add_node(x, y))
            .collect();
        for i in 0..4 {
            b.add_edge(v[i], v[(i + 1) % 4], 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let p = Partition::by_bands(&g, 2);
        assert!(p.shards().iter().any(|s| s.connector_count() > 0));
        for s in p.shards() {
            assert!(s.graph().is_strongly_connected());
            assert_eq!(s.graph().node_count(), 2);
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let g = generators::downtown(4, 4, 0.3);
        let a = Partition::by_bands(&g, 3);
        let b = Partition::by_bands(&g, 3);
        for (sa, sb) in a.shards().iter().zip(b.shards()) {
            assert_eq!(sa.nodes(), sb.nodes());
            assert_eq!(sa.graph().edge_count(), sb.graph().edge_count());
        }
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn too_many_shards_panic() {
        let g = generators::grid(2, 2, 0.5, true);
        Partition::by_bands(&g, 3);
    }
}
