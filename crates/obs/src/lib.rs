//! Workspace-wide solver telemetry.
//!
//! `vlp-obs` gives the solver crates a zero-external-dependency way to
//! report what they did: monotonic **counters** (simplex pivots,
//! Dijkstra runs), wall-clock **timers** with min/max/mean aggregation
//! (solve spans, pricing rounds), and numeric **series** (the
//! column-generation objective/dual-bound histories).
//!
//! Everything hangs off a [`Registry`]. Call sites can either take an
//! explicit `&Registry` or record into the process-wide [`global()`]
//! registry; both are cheap (one short mutex lock per *aggregated*
//! event — hot loops count locally and record once per solve). All
//! recording methods take `&self`, so a registry can be shared across
//! `std::thread::scope` workers like the column-generation pricing
//! fan-out.
//!
//! Snapshots serialize through `serde_json` with a stable schema (see
//! [`SCHEMA_VERSION`] and [`schema::validate_snapshot`]):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "run_id": "bench-smoke-seed42",
//!   "counters": {"lpsolve.simplex.pivots": 1290},
//!   "timers": {"cg.solve": {"count": 1, "total_ns": 52031, "min_ns": 52031,
//!                            "max_ns": 52031, "mean_ns": 52031.0}},
//!   "series": {"cg.master_objective": [1.25, 1.18, 1.17]}
//! }
//! ```
//!
//! Counters and series are deterministic for a deterministic workload;
//! timer values are wall-clock and excluded from reproducibility
//! comparisons.
//!
//! The crate also hosts [`failpoint`], the workspace's deterministic
//! fault-injection subsystem: seeded, schedule-driven failpoints that
//! the serving layer scripts (`chaos.*` metric families land in the
//! same registry), so resilience is tested with the same
//! reproducibility guarantees as performance.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use serde_json::{json, Map, Value};

pub mod failpoint;
pub mod schema;

/// Version of the snapshot JSON layout. Bump when the shape of the
/// emitted document changes incompatibly.
///
/// v2: bench artifacts gained the per-quality-tier breakdown
/// (`service.tier.*` counters and the benches' per-tier ETDD series).
pub const SCHEMA_VERSION: u64 = 2;

/// Aggregated wall-clock statistics for one timer metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerStat {
    /// Number of recorded spans.
    pub count: u64,
    /// Sum of span durations in nanoseconds.
    pub total_ns: u64,
    /// Shortest recorded span in nanoseconds.
    pub min_ns: u64,
    /// Longest recorded span in nanoseconds.
    pub max_ns: u64,
}

impl TimerStat {
    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Mean span duration in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct State {
    run_id: String,
    counters: BTreeMap<String, u64>,
    timers: BTreeMap<String, TimerStat>,
    series: BTreeMap<String, Vec<f64>>,
}

/// A sink for telemetry events.
///
/// All methods take `&self`; interior state lives behind a single
/// mutex, so a registry can be shared freely across scoped threads.
#[derive(Default)]
pub struct Registry {
    state: Mutex<State>,
}

impl Registry {
    /// An empty registry with an empty run id.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Labels the registry's next snapshot. Pass something derived from
    /// the workload seed (not the clock) when the artifact must be
    /// reproducible.
    pub fn set_run_id(&self, run_id: impl Into<String>) {
        self.lock().run_id = run_id.into();
    }

    /// Adds `by` to the named monotonic counter, creating it at zero.
    pub fn incr(&self, name: &str, by: u64) {
        let mut state = self.lock();
        *state.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Records one wall-clock span of `duration` under `name`.
    pub fn record_duration(&self, name: &str, duration: Duration) {
        let ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        let mut state = self.lock();
        state
            .timers
            .entry(name.to_string())
            .or_insert(TimerStat {
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            })
            .record(ns);
    }

    /// Appends `value` to the named series (e.g. a per-iteration
    /// objective history).
    pub fn push(&self, name: &str, value: f64) {
        self.lock()
            .series
            .entry(name.to_string())
            .or_default()
            .push(value);
    }

    /// Appends every element of `values` to the named series.
    pub fn extend(&self, name: &str, values: &[f64]) {
        self.lock()
            .series
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(values);
    }

    /// Starts a scoped timer; the span is recorded when the guard
    /// drops.
    #[must_use = "the span is recorded when the returned guard drops"]
    pub fn start(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard {
            registry: self,
            name: name.to_string(),
            started: Instant::now(),
        }
    }

    /// Times `f` as one span under `name` and returns its result.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _span = self.start(name);
        f()
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Aggregated statistics of a timer, if any span was recorded.
    pub fn timer(&self, name: &str) -> Option<TimerStat> {
        self.lock().timers.get(name).copied()
    }

    /// A copy of the named series (empty when nothing was pushed).
    pub fn series(&self, name: &str) -> Vec<f64> {
        self.lock().series.get(name).cloned().unwrap_or_default()
    }

    /// Clears all metrics and the run id.
    pub fn reset(&self) {
        *self.lock() = State::default();
    }

    /// Serializes the registry to the stable snapshot schema.
    pub fn snapshot(&self) -> Value {
        let state = self.lock();
        let mut counters = Map::new();
        for (name, value) in &state.counters {
            counters.insert(name.clone(), Value::from(*value));
        }
        let mut timers = Map::new();
        for (name, stat) in &state.timers {
            timers.insert(
                name.clone(),
                json!({
                    "count": (stat.count),
                    "total_ns": (stat.total_ns),
                    "min_ns": (stat.min_ns),
                    "max_ns": (stat.max_ns),
                    "mean_ns": (stat.mean_ns()),
                }),
            );
        }
        let mut series = Map::new();
        for (name, values) in &state.series {
            series.insert(
                name.clone(),
                Value::Array(values.iter().map(|&v| Value::from(v)).collect()),
            );
        }
        json!({
            "schema_version": (SCHEMA_VERSION),
            "run_id": (state.run_id.as_str()),
            "counters": (Value::Object(counters)),
            "timers": (Value::Object(timers)),
            "series": (Value::Object(series)),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // Recording never panics while holding the lock, so poisoning
        // can only come from a panicking *caller* thread; telemetry
        // should survive that.
        self.state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// Records one timer span on drop; created by [`Registry::start`].
pub struct SpanGuard<'a> {
    registry: &'a Registry,
    name: String,
    started: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.registry
            .record_duration(&self.name, self.started.elapsed());
    }
}

/// The process-wide registry used by instrumented hot paths that are
/// not handed an explicit one.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_isolated() {
        let reg = Registry::new();
        assert_eq!(reg.counter("a"), 0);
        reg.incr("a", 1);
        reg.incr("a", 41);
        reg.incr("b", 7);
        assert_eq!(reg.counter("a"), 42);
        assert_eq!(reg.counter("b"), 7);
    }

    #[test]
    fn timer_aggregates_min_max_mean() {
        let reg = Registry::new();
        reg.record_duration("t", Duration::from_nanos(100));
        reg.record_duration("t", Duration::from_nanos(300));
        let stat = reg.timer("t").unwrap();
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total_ns, 400);
        assert_eq!(stat.min_ns, 100);
        assert_eq!(stat.max_ns, 300);
        assert!((stat.mean_ns() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let reg = Registry::new();
        {
            let _span = reg.start("scoped");
        }
        let stat = reg.timer("scoped").unwrap();
        assert_eq!(stat.count, 1);
        assert!(stat.min_ns <= stat.max_ns);
        let out = reg.time("timed", || 7);
        assert_eq!(out, 7);
        assert_eq!(reg.timer("timed").unwrap().count, 1);
    }

    #[test]
    fn series_preserve_push_order() {
        let reg = Registry::new();
        reg.push("s", 3.0);
        reg.push("s", 1.0);
        reg.extend("s", &[2.0, 4.0]);
        assert_eq!(reg.series("s"), vec![3.0, 1.0, 2.0, 4.0]);
    }

    #[test]
    fn snapshot_matches_schema_and_round_trips() {
        let reg = Registry::new();
        reg.set_run_id("test-run");
        reg.incr("pivots", 12);
        reg.record_duration("solve", Duration::from_micros(5));
        reg.push("objective", 1.5);
        let snap = reg.snapshot();
        schema::validate_snapshot(&snap).unwrap();
        let text = serde_json::to_string_pretty(&snap).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back["run_id"].as_str(), Some("test-run"));
        assert_eq!(back["counters"]["pivots"].as_u64(), Some(12));
        assert_eq!(back["timers"]["solve"]["count"].as_u64(), Some(1));
    }

    #[test]
    fn concurrent_recording_from_scoped_threads() {
        // Mirrors the column-generation pricing fan-out: several scoped
        // workers record into one shared registry.
        let reg = Registry::new();
        let threads = 8;
        let per_thread = 250;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let reg = &reg;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        reg.incr("work.items", 1);
                        reg.push(&format!("thread.{t}"), i as f64);
                        reg.record_duration("work.span", Duration::from_nanos(10));
                    }
                });
            }
        });
        assert_eq!(reg.counter("work.items"), (threads * per_thread) as u64);
        assert_eq!(
            reg.timer("work.span").unwrap().count,
            (threads * per_thread) as u64
        );
        for t in 0..threads {
            assert_eq!(reg.series(&format!("thread.{t}")).len(), per_thread);
        }
        schema::validate_snapshot(&reg.snapshot()).unwrap();
    }

    #[test]
    fn reset_clears_everything() {
        let reg = Registry::new();
        reg.set_run_id("x");
        reg.incr("c", 1);
        reg.push("s", 1.0);
        reg.reset();
        assert_eq!(reg.counter("c"), 0);
        assert!(reg.series("s").is_empty());
        assert_eq!(reg.snapshot()["run_id"].as_str(), Some(""));
    }

    #[test]
    fn global_registry_is_shared() {
        global().incr("obs.test.global", 5);
        assert!(global().counter("obs.test.global") >= 5);
    }
}
