//! Validation of the snapshot JSON layout.
//!
//! CI runs this against `artifacts/bench_smoke.json` so schema drift is
//! caught by the pipeline, not by downstream dashboards.

use serde_json::Value;

use crate::SCHEMA_VERSION;

/// Checks that `snapshot` conforms to the current snapshot schema.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_snapshot(snapshot: &Value) -> Result<(), String> {
    let root = snapshot
        .as_object()
        .ok_or_else(|| "snapshot root must be an object".to_string())?;

    for key in ["schema_version", "run_id", "counters", "timers", "series"] {
        if !root.contains_key(key) {
            return Err(format!("snapshot is missing required key `{key}`"));
        }
    }

    let version = root
        .get("schema_version")
        .and_then(Value::as_u64)
        .ok_or_else(|| "`schema_version` must be an unsigned integer".to_string())?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema_version {version}, expected {SCHEMA_VERSION}"
        ));
    }

    root.get("run_id")
        .and_then(Value::as_str)
        .ok_or_else(|| "`run_id` must be a string".to_string())?;

    let counters = root
        .get("counters")
        .and_then(Value::as_object)
        .ok_or_else(|| "`counters` must be an object".to_string())?;
    for (name, value) in counters.iter() {
        if value.as_u64().is_none() {
            return Err(format!(
                "counter `{name}` must be an unsigned integer, got {value}"
            ));
        }
    }

    let timers = root
        .get("timers")
        .and_then(Value::as_object)
        .ok_or_else(|| "`timers` must be an object".to_string())?;
    for (name, value) in timers.iter() {
        let stat = value
            .as_object()
            .ok_or_else(|| format!("timer `{name}` must be an object"))?;
        let field = |key: &str| {
            stat.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("timer `{name}` field `{key}` must be an unsigned integer"))
        };
        let count = field("count")?;
        let total = field("total_ns")?;
        let min = field("min_ns")?;
        let max = field("max_ns")?;
        stat.get("mean_ns")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("timer `{name}` field `mean_ns` must be a number"))?;
        if count == 0 {
            return Err(format!("timer `{name}` has zero recorded spans"));
        }
        if min > max {
            return Err(format!("timer `{name}` has min_ns {min} > max_ns {max}"));
        }
        if total < max {
            return Err(format!(
                "timer `{name}` has total_ns {total} < max_ns {max}"
            ));
        }
    }

    let series = root
        .get("series")
        .and_then(Value::as_object)
        .ok_or_else(|| "`series` must be an object".to_string())?;
    for (name, value) in series.iter() {
        let items = value
            .as_array()
            .ok_or_else(|| format!("series `{name}` must be an array"))?;
        for (i, item) in items.iter().enumerate() {
            if item.as_f64().is_none() {
                return Err(format!("series `{name}`[{i}] must be a number, got {item}"));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn valid() -> Value {
        json!({
            "schema_version": 1,
            "run_id": "r",
            "counters": {"c": 3},
            "timers": {"t": {"count": 2, "total_ns": 10, "min_ns": 4,
                              "max_ns": 6, "mean_ns": 5.0}},
            "series": {"s": [1.0, 2.5]}
        })
    }

    #[test]
    fn accepts_valid_snapshot() {
        validate_snapshot(&valid()).unwrap();
    }

    #[test]
    fn rejects_missing_key_and_bad_version() {
        let err = validate_snapshot(&json!({"run_id": "r"})).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");

        let mut snap = valid();
        if let Value::Object(map) = &mut snap {
            map.insert("schema_version".into(), Value::from(99u64));
        }
        let err = validate_snapshot(&snap).unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
    }

    #[test]
    fn rejects_malformed_sections() {
        let bad_counter = json!({
            "schema_version": 1, "run_id": "r",
            "counters": {"c": (-1)}, "timers": {}, "series": {}
        });
        assert!(validate_snapshot(&bad_counter).is_err());

        let bad_timer = json!({
            "schema_version": 1, "run_id": "r", "counters": {},
            "timers": {"t": {"count": 0, "total_ns": 0, "min_ns": 0,
                              "max_ns": 0, "mean_ns": 0.0}},
            "series": {}
        });
        assert!(validate_snapshot(&bad_timer).is_err());

        let bad_series = json!({
            "schema_version": 1, "run_id": "r", "counters": {},
            "timers": {}, "series": {"s": ["oops"]}
        });
        assert!(validate_snapshot(&bad_series).is_err());
    }
}
