//! Validation of the snapshot JSON layout, plus the workspace's metric
//! name registry.
//!
//! CI runs [`validate_snapshot`] against `artifacts/bench_smoke.json`
//! so schema drift is caught by the pipeline, not by downstream
//! dashboards, and the `docs_links` gate checks every metric name
//! `OPERATIONS.md` mentions against [`is_known_metric`] /
//! [`is_known_metric_prefix`] so the runbook can never document a
//! counter the code stopped (or never started) recording.

use serde_json::Value;

use crate::SCHEMA_VERSION;

/// Every statically-named metric the workspace records, by family.
/// Dynamically-formatted names (per-shard series, per-site chaos
/// counters, per-bench artifacts) are covered by [`METRIC_FAMILIES`]
/// instead. A name listed here and never recorded is doc/code drift —
/// `crates/platform` pins its `service.*` constants against this list.
pub const KNOWN_METRICS: &[&str] = &[
    // roadnet
    "roadnet.dijkstra.runs",
    "roadnet.dijkstra.settled_nodes",
    // lpsolve (bounded revised simplex + warm-start pool)
    "lpsolve.simplex.phase1_iterations",
    "lpsolve.simplex.phase2_iterations",
    "lpsolve.simplex.pivots",
    "lpsolve.simplex.refactorizations",
    "lpsolve.simplex.solve",
    "lpsolve.simplex.solves",
    "lpsolve.warm.cold_solves",
    "lpsolve.warm.columns_added",
    "lpsolve.warm.phase1_skipped",
    "lpsolve.warm.pivots",
    "lpsolve.warm.resolves",
    // column generation
    "cg.cold",
    "cg.columns_added",
    "cg.dual_bound",
    "cg.iterations",
    "cg.master",
    "cg.master_objective",
    "cg.master_pivots",
    "cg.min_zeta",
    "cg.pricing",
    "cg.pricing_pivots",
    "cg.solve",
    "cg.solves",
    "cg.threads_used",
    "cg.warm",
    // direct D-VLP solver and constraint reduction
    "dvlp.lp_rows",
    "dvlp.matrix_build",
    "dvlp.solve",
    "dvlp.solves",
    "cr.constraints_full",
    "cr.constraints_reduced",
    "cr.reduce",
    "cr.reductions",
    // platform assignment loop
    "platform.assignment_distortion_km",
    "platform.assignment_est_km",
    "platform.assignments",
    "platform.mechanism_resolve",
    "platform.refreshes",
    "platform.reports_received",
    "platform.snapshot",
    "platform.snapshots",
    // mechanism service
    "service.requests",
    "service.batch",
    "service.cache_hits",
    "service.cache_misses",
    "service.cache_evictions",
    "service.optimal_served",
    "service.fallback_served",
    "service.solve",
    "service.solve_errors",
    "service.off_partition",
    "service.prior_invalidations",
    "service.retry.attempts",
    "service.solve_panics",
    "service.stale_served",
    "service.stale_demotions",
    "service.breaker.opened",
    "service.breaker.half_open",
    "service.breaker.reclosed",
    "service.breaker.shed",
    "service.queue.enqueued",
    "service.queue.coalesced",
    "service.queue.full",
    "service.queue.drained",
    "service.shed.rejected",
    "service.shed.degraded",
    "service.solve.support",
    "service.solve.lp_vars",
    "service.solve.lp_rows",
    "service.local.neighborhoods",
    "service.local.solves",
    "service.tier.exact.served",
    "service.tier.clustered.served",
    "service.tier.spanner.served",
    "service.tier.laplace.served",
    "service.trace.charges",
    "service.trace.throttled",
    "service.trace.refusals",
    "service.trace.exhausted",
    "service.trace.fill",
    // failpoint site names (documented alongside the chaos counters)
    "service.cache.evict_storm",
    "service.deadline.jitter",
    "cg.pricing.panic",
    "lp.resolve.fault",
    "lp.solve.fault",
];

/// Prefix families for dynamically-formatted metric names: per-shard
/// health series, per-site chaos accounting, and the benches' own
/// artifact namespaces (each bench versions its own report contents).
pub const METRIC_FAMILIES: &[&str] = &[
    "service.breaker.state.",
    "service.queue.depth.",
    "service.shard.blackout.",
    "chaos.evaluated.",
    "chaos.injected.",
    "bench_smoke.",
    "bench_service.",
    "bench_load.",
    "bench_local.",
    "bench_chaos.",
    "bench_traces.",
];

/// Whether `name` is a metric the workspace records: an exact entry in
/// [`KNOWN_METRICS`] or an instance of a [`METRIC_FAMILIES`] prefix.
pub fn is_known_metric(name: &str) -> bool {
    KNOWN_METRICS.contains(&name)
        || METRIC_FAMILIES
            .iter()
            .any(|f| name.len() > f.len() && name.starts_with(f))
}

/// Whether `prefix` names a family of recorded metrics — used for
/// wildcard references like `service.breaker.*` in the runbook. True
/// when some known metric or family starts with `prefix` (or the
/// prefix extends into a family).
pub fn is_known_metric_prefix(prefix: &str) -> bool {
    KNOWN_METRICS.iter().any(|m| m.starts_with(prefix))
        || METRIC_FAMILIES
            .iter()
            .any(|f| f.starts_with(prefix) || prefix.starts_with(f))
}

/// Checks that `snapshot` conforms to the current snapshot schema.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_snapshot(snapshot: &Value) -> Result<(), String> {
    let root = snapshot
        .as_object()
        .ok_or_else(|| "snapshot root must be an object".to_string())?;

    for key in ["schema_version", "run_id", "counters", "timers", "series"] {
        if !root.contains_key(key) {
            return Err(format!("snapshot is missing required key `{key}`"));
        }
    }

    let version = root
        .get("schema_version")
        .and_then(Value::as_u64)
        .ok_or_else(|| "`schema_version` must be an unsigned integer".to_string())?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema_version {version}, expected {SCHEMA_VERSION}"
        ));
    }

    root.get("run_id")
        .and_then(Value::as_str)
        .ok_or_else(|| "`run_id` must be a string".to_string())?;

    let counters = root
        .get("counters")
        .and_then(Value::as_object)
        .ok_or_else(|| "`counters` must be an object".to_string())?;
    for (name, value) in counters.iter() {
        if value.as_u64().is_none() {
            return Err(format!(
                "counter `{name}` must be an unsigned integer, got {value}"
            ));
        }
    }

    let timers = root
        .get("timers")
        .and_then(Value::as_object)
        .ok_or_else(|| "`timers` must be an object".to_string())?;
    for (name, value) in timers.iter() {
        let stat = value
            .as_object()
            .ok_or_else(|| format!("timer `{name}` must be an object"))?;
        let field = |key: &str| {
            stat.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("timer `{name}` field `{key}` must be an unsigned integer"))
        };
        let count = field("count")?;
        let total = field("total_ns")?;
        let min = field("min_ns")?;
        let max = field("max_ns")?;
        stat.get("mean_ns")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("timer `{name}` field `mean_ns` must be a number"))?;
        if count == 0 {
            return Err(format!("timer `{name}` has zero recorded spans"));
        }
        if min > max {
            return Err(format!("timer `{name}` has min_ns {min} > max_ns {max}"));
        }
        if total < max {
            return Err(format!(
                "timer `{name}` has total_ns {total} < max_ns {max}"
            ));
        }
    }

    let series = root
        .get("series")
        .and_then(Value::as_object)
        .ok_or_else(|| "`series` must be an object".to_string())?;
    for (name, value) in series.iter() {
        let items = value
            .as_array()
            .ok_or_else(|| format!("series `{name}` must be an array"))?;
        for (i, item) in items.iter().enumerate() {
            if item.as_f64().is_none() {
                return Err(format!("series `{name}`[{i}] must be a number, got {item}"));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn valid() -> Value {
        json!({
            "schema_version": SCHEMA_VERSION,
            "run_id": "r",
            "counters": {"c": 3},
            "timers": {"t": {"count": 2, "total_ns": 10, "min_ns": 4,
                              "max_ns": 6, "mean_ns": 5.0}},
            "series": {"s": [1.0, 2.5]}
        })
    }

    #[test]
    fn accepts_valid_snapshot() {
        validate_snapshot(&valid()).unwrap();
    }

    #[test]
    fn metric_registry_matches_names_and_families() {
        assert!(is_known_metric("service.requests"));
        assert!(is_known_metric("service.tier.clustered.served"));
        assert!(is_known_metric("service.breaker.state.3"));
        assert!(is_known_metric("chaos.injected.service.shard.blackout.1"));
        assert!(is_known_metric("bench_chaos.optimal_share"));
        assert!(is_known_metric("service.trace.charges"));
        assert!(is_known_metric("service.trace.fill"));
        assert!(is_known_metric("bench_traces.regimes"));
        assert!(!is_known_metric("service.trace.bogus"));
        assert!(!is_known_metric("service.tier.bogus"));
        assert!(!is_known_metric("lpsolve.warm.fallbacks"));
        // A bare family prefix is not itself a metric.
        assert!(!is_known_metric("service.breaker.state."));

        assert!(is_known_metric_prefix("service.breaker."));
        assert!(is_known_metric_prefix("service.tier."));
        assert!(is_known_metric_prefix("chaos."));
        assert!(is_known_metric_prefix("bench_load.wall."));
        assert!(!is_known_metric_prefix("telemetry."));
    }

    #[test]
    fn rejects_missing_key_and_bad_version() {
        let err = validate_snapshot(&json!({"run_id": "r"})).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");

        let mut snap = valid();
        if let Value::Object(map) = &mut snap {
            map.insert("schema_version".into(), Value::from(99u64));
        }
        let err = validate_snapshot(&snap).unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
    }

    #[test]
    fn rejects_malformed_sections() {
        let bad_counter = json!({
            "schema_version": SCHEMA_VERSION, "run_id": "r",
            "counters": {"c": (-1)}, "timers": {}, "series": {}
        });
        assert!(validate_snapshot(&bad_counter).is_err());

        let bad_timer = json!({
            "schema_version": SCHEMA_VERSION, "run_id": "r", "counters": {},
            "timers": {"t": {"count": 0, "total_ns": 0, "min_ns": 0,
                              "max_ns": 0, "mean_ns": 0.0}},
            "series": {}
        });
        assert!(validate_snapshot(&bad_timer).is_err());

        let bad_series = json!({
            "schema_version": SCHEMA_VERSION, "run_id": "r", "counters": {},
            "timers": {}, "series": {"s": ["oops"]}
        });
        assert!(validate_snapshot(&bad_series).is_err());
    }
}
