//! Deterministic fault injection (failpoints).
//!
//! Production resilience cannot be tested by waiting for production to
//! fail. This module lets a harness *script* failures — solver errors,
//! pricing panics, shard blackouts, cache-evict storms, deadline
//! jitter — and inject them into the hot paths deterministically, so a
//! chaos run is exactly as reproducible as a clean one.
//!
//! # Model
//!
//! A [`FaultPlan`] maps *site* names (e.g. `lp.resolve.fault`) to
//! [`FaultMode`]s. Whether a given evaluation fires is a **pure
//! function** of `(plan seed, site name, evaluation key)` — never of
//! wall-clock time, thread scheduling, or a shared counter — so the
//! same schedule produces the same faults no matter how work is
//! distributed over threads:
//!
//! * [`FaultMode::Ratio`] — fail a fixed fraction of keys, chosen by a
//!   seeded hash of `(seed, site, key)`;
//! * [`FaultMode::Window`] — fail exactly the keys in `[from, to)`
//!   (used with batch indices to script outages like a shard
//!   blackout);
//! * [`FaultMode::Every`] — fail keys divisible by `n`;
//! * [`FaultMode::Always`] / [`FaultMode::Off`] — unconditional.
//!
//! # Propagation
//!
//! Deep call sites (the simplex engine, column-generation pricing)
//! cannot thread a plan through their signatures, so the plan travels
//! in a **thread-local scope**: the orchestrator (e.g. the mechanism
//! service's solver pool) wraps each unit of work in
//! [`scope`]/[`ScopeGuard`] with the key identifying that unit, and
//! the instrumented site asks [`should_fail`]. With no active scope the
//! check is a single thread-local read returning `false` — the
//! fault-free hot path stays fault-free and cheap.
//!
//! Every evaluation under an active scope is counted in the
//! [`global`](crate::global) registry as `chaos.evaluated.<site>`, and
//! every injected fault as `chaos.injected.<site>`, so a chaos
//! artifact records exactly what was injected where.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vlp_obs::failpoint::{self, FaultMode, FaultPlan};
//!
//! let plan = Arc::new(
//!     FaultPlan::new(42).with("demo.fault", FaultMode::Window { from: 2, to: 4 }),
//! );
//! let fired: Vec<bool> = (0..6)
//!     .map(|batch| failpoint::scope(plan.clone(), batch, || failpoint::should_fail("demo.fault")))
//!     .collect();
//! assert_eq!(fired, [false, false, true, true, false, false]);
//! // Outside any scope nothing ever fires.
//! assert!(!failpoint::should_fail("demo.fault"));
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Well-known failpoint site names wired through the workspace.
///
/// Sites live here (rather than in the crates that check them) so the
/// chaos harness, the runbook (`OPERATIONS.md`), and the instrumented
/// crates agree on one spelling.
pub mod site {
    /// Fails [`LinearProgram::solve`](https://docs.rs/lpsolve) with an
    /// injected solver error. Keyed by the orchestrator's work unit.
    pub const LP_SOLVE: &str = "lp.solve.fault";
    /// Fails `IncrementalLp::resolve` with an injected solver error.
    pub const LP_RESOLVE: &str = "lp.resolve.fault";
    /// Panics inside a column-generation pricing round (a worker-crash
    /// stand-in; serving layers must contain it).
    pub const CG_PRICING_PANIC: &str = "cg.pricing.panic";
    /// Collapses the mechanism service's solve deadline to zero for
    /// the keyed batch.
    pub const SERVICE_DEADLINE_JITTER: &str = "service.deadline.jitter";
    /// Demotes every cached mechanism to the stale store at the start
    /// of the keyed batch (an eviction storm / cache poisoning purge).
    pub const SERVICE_EVICT_STORM: &str = "service.cache.evict_storm";
    /// Prefix for per-shard blackout sites: `service.shard.blackout.3`
    /// makes every solve on shard 3 fail for the keyed batch, as if
    /// the shard's workers crashed.
    pub const SERVICE_SHARD_BLACKOUT: &str = "service.shard.blackout";

    /// The blackout site name for shard `s`.
    pub fn shard_blackout(s: usize) -> String {
        format!("{SERVICE_SHARD_BLACKOUT}.{s}")
    }
}

/// When a configured failpoint site fires. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultMode {
    /// Never fires (same as the site being absent from the plan).
    Off,
    /// Fires on every evaluation.
    Always,
    /// Fires on a `p` fraction of keys, selected by a seeded hash of
    /// `(seed, site, key)`; `p` is clamped to `[0, 1]`.
    Ratio(f64),
    /// Fires exactly for keys in `[from, to)`.
    Window {
        /// First failing key (inclusive).
        from: u64,
        /// First non-failing key after the window (exclusive).
        to: u64,
    },
    /// Fires for keys divisible by `n` (`n = 0` never fires).
    Every(u64),
}

/// A deterministic, seeded schedule of faults: site name → mode.
///
/// The empty plan (also [`FaultPlan::default`]) injects nothing and is
/// the production configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    sites: BTreeMap<String, FaultMode>,
}

impl FaultPlan {
    /// An empty plan with the given ratio-selection seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            sites: BTreeMap::new(),
        }
    }

    /// Builder-style [`set`](Self::set).
    #[must_use]
    pub fn with(mut self, site: impl Into<String>, mode: FaultMode) -> Self {
        self.set(site, mode);
        self
    }

    /// Configures `site` to fire per `mode` (replacing any previous
    /// mode for that site).
    pub fn set(&mut self, site: impl Into<String>, mode: FaultMode) {
        self.sites.insert(site.into(), mode);
    }

    /// Whether the plan configures no sites (injects nothing).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The ratio-selection seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured sites, in name order.
    pub fn sites(&self) -> impl Iterator<Item = (&str, FaultMode)> {
        self.sites.iter().map(|(name, &mode)| (name.as_str(), mode))
    }

    /// Parses a compact schedule string:
    /// `"site=mode[;site=mode]*"` where mode is one of `off`,
    /// `always`, `ratio:<p>`, `window:<from>..<to>`, `every:<n>`.
    ///
    /// ```
    /// use vlp_obs::failpoint::{FaultMode, FaultPlan};
    /// let plan = FaultPlan::parse(
    ///     "lp.resolve.fault=ratio:0.3; service.shard.blackout.1=window:6..12",
    ///     7,
    /// )
    /// .unwrap();
    /// assert_eq!(plan.sites().count(), 2);
    /// ```
    ///
    /// # Errors
    ///
    /// A description of the first malformed clause.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FaultPlan::new(seed);
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (site, mode) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause `{clause}` is missing `=`"))?;
            let mode = mode.trim();
            let parsed = if mode == "off" {
                FaultMode::Off
            } else if mode == "always" {
                FaultMode::Always
            } else if let Some(p) = mode.strip_prefix("ratio:") {
                FaultMode::Ratio(
                    p.parse::<f64>()
                        .map_err(|e| format!("bad ratio in `{clause}`: {e}"))?,
                )
            } else if let Some(range) = mode.strip_prefix("window:") {
                let (from, to) = range
                    .split_once("..")
                    .ok_or_else(|| format!("bad window in `{clause}` (want from..to)"))?;
                FaultMode::Window {
                    from: from
                        .parse()
                        .map_err(|e| format!("bad window start in `{clause}`: {e}"))?,
                    to: to
                        .parse()
                        .map_err(|e| format!("bad window end in `{clause}`: {e}"))?,
                }
            } else if let Some(n) = mode.strip_prefix("every:") {
                FaultMode::Every(
                    n.parse()
                        .map_err(|e| format!("bad period in `{clause}`: {e}"))?,
                )
            } else {
                return Err(format!("unknown mode `{mode}` in `{clause}`"));
            };
            plan.set(site.trim(), parsed);
        }
        Ok(plan)
    }

    /// Pure decision: does `site` fire for `key` under this plan?
    /// Depends only on `(seed, site, key)` — safe to call from any
    /// thread in any order.
    pub fn decide(&self, site: &str, key: u64) -> bool {
        match self.sites.get(site) {
            None | Some(FaultMode::Off) => false,
            Some(FaultMode::Always) => true,
            Some(FaultMode::Ratio(p)) => {
                let unit = mix64(self.seed ^ fnv1a(site) ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                ((unit >> 11) as f64 / (1u64 << 53) as f64) < p.clamp(0.0, 1.0)
            }
            Some(FaultMode::Window { from, to }) => (*from..*to).contains(&key),
            Some(FaultMode::Every(n)) => *n != 0 && key.is_multiple_of(*n),
        }
    }

    /// [`decide`](Self::decide), plus `chaos.evaluated.<site>` /
    /// `chaos.injected.<site>` accounting in the
    /// [`global`](crate::global) registry for configured sites.
    pub fn evaluate(&self, site: &str, key: u64) -> bool {
        if !matches!(self.sites.get(site), None | Some(FaultMode::Off)) {
            crate::global().incr(&format!("chaos.evaluated.{site}"), 1);
        }
        let fired = self.decide(site, key);
        if fired {
            crate::global().incr(&format!("chaos.injected.{site}"), 1);
        }
        fired
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the site name, so distinct sites draw independent
/// ratio streams.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Deterministic jitter in `[0, bound_ns)` for retry backoff: a pure
/// function of `(seed, key, attempt)`, so backoff schedules are
/// reproducible. Returns 0 when `bound_ns` is 0.
pub fn backoff_jitter_ns(seed: u64, key: u64, attempt: u32, bound_ns: u64) -> u64 {
    if bound_ns == 0 {
        return 0;
    }
    mix64(seed ^ key.rotate_left(23) ^ u64::from(attempt).wrapping_mul(0x9E37_79B9)) % bound_ns
}

thread_local! {
    static ACTIVE: RefCell<Option<(Arc<FaultPlan>, u64)>> = const { RefCell::new(None) };
}

/// Restores the previously active failpoint scope on drop; created by
/// [`activate`].
pub struct ScopeGuard {
    prev: Option<(Arc<FaultPlan>, u64)>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| *a.borrow_mut() = self.prev.take());
    }
}

/// Activates `plan` with evaluation key `key` on the current thread
/// until the returned guard drops (panic-safe: unwinding drops the
/// guard and restores the previous scope).
#[must_use = "the scope deactivates when the returned guard drops"]
pub fn activate(plan: Arc<FaultPlan>, key: u64) -> ScopeGuard {
    let prev = ACTIVE.with(|a| a.borrow_mut().replace((plan, key)));
    ScopeGuard { prev }
}

/// Runs `f` with `plan`/`key` active on the current thread.
pub fn scope<R>(plan: Arc<FaultPlan>, key: u64, f: impl FnOnce() -> R) -> R {
    let _guard = activate(plan, key);
    f()
}

/// Asks the thread's active plan whether `site` fires for the scope's
/// key. `false` (and no accounting) when no scope is active.
pub fn should_fail(site: &str) -> bool {
    ACTIVE.with(|a| {
        let borrow = a.borrow();
        match &*borrow {
            None => false,
            Some((plan, key)) => plan.evaluate(site, *key),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires_and_is_default() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        for key in 0..100 {
            assert!(!plan.decide("anything", key));
        }
    }

    #[test]
    fn window_and_every_modes_are_exact() {
        let plan = FaultPlan::new(0)
            .with("w", FaultMode::Window { from: 3, to: 5 })
            .with("e", FaultMode::Every(4))
            .with("z", FaultMode::Every(0));
        let fired: Vec<u64> = (0..8).filter(|&k| plan.decide("w", k)).collect();
        assert_eq!(fired, [3, 4]);
        let fired: Vec<u64> = (0..9).filter(|&k| plan.decide("e", k)).collect();
        assert_eq!(fired, [0, 4, 8]);
        assert!((0..100).all(|k| !plan.decide("z", k)));
    }

    #[test]
    fn ratio_mode_is_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::new(99).with("r", FaultMode::Ratio(0.3));
        let a: Vec<bool> = (0..2000).map(|k| plan.decide("r", k)).collect();
        let b: Vec<bool> = (0..2000).map(|k| plan.decide("r", k)).collect();
        assert_eq!(a, b, "same (seed, site, key) must decide identically");
        let rate = a.iter().filter(|&&x| x).count() as f64 / a.len() as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed injection rate {rate}");
        // Edge ratios are unconditional.
        let always = FaultPlan::new(1).with("r", FaultMode::Ratio(1.0));
        assert!((0..100).all(|k| always.decide("r", k)));
        let never = FaultPlan::new(1).with("r", FaultMode::Ratio(0.0));
        assert!((0..100).all(|k| !never.decide("r", k)));
    }

    #[test]
    fn distinct_sites_and_seeds_draw_independent_streams() {
        let plan = FaultPlan::new(7)
            .with("a", FaultMode::Ratio(0.5))
            .with("b", FaultMode::Ratio(0.5));
        let a: Vec<bool> = (0..256).map(|k| plan.decide("a", k)).collect();
        let b: Vec<bool> = (0..256).map(|k| plan.decide("b", k)).collect();
        assert_ne!(a, b, "sites must not share one decision stream");
        let reseeded = FaultPlan::new(8).with("a", FaultMode::Ratio(0.5));
        let c: Vec<bool> = (0..256).map(|k| reseeded.decide("a", k)).collect();
        assert_ne!(a, c, "seeds must reshuffle the selected keys");
    }

    #[test]
    fn parse_round_trips_every_mode() {
        let plan = FaultPlan::parse(
            "a=off; b=always; c=ratio:0.25; d=window:2..9; e=every:3;",
            5,
        )
        .unwrap();
        let modes: Vec<(&str, FaultMode)> = plan.sites().collect();
        assert_eq!(
            modes,
            vec![
                ("a", FaultMode::Off),
                ("b", FaultMode::Always),
                ("c", FaultMode::Ratio(0.25)),
                ("d", FaultMode::Window { from: 2, to: 9 }),
                ("e", FaultMode::Every(3)),
            ]
        );
        assert!(FaultPlan::parse("nonsense", 0).is_err());
        assert!(FaultPlan::parse("a=ratio:x", 0).is_err());
        assert!(FaultPlan::parse("a=window:3", 0).is_err());
        assert!(FaultPlan::parse("a=sometimes", 0).is_err());
    }

    #[test]
    fn scope_nests_and_survives_panics() {
        let outer = Arc::new(FaultPlan::new(0).with("s", FaultMode::Always));
        let inner = Arc::new(FaultPlan::new(0).with("s", FaultMode::Off));
        scope(outer.clone(), 1, || {
            assert!(should_fail("s"));
            scope(inner.clone(), 1, || assert!(!should_fail("s")));
            assert!(should_fail("s"), "inner scope must restore the outer");
            let unwound = std::panic::catch_unwind(|| {
                let _guard = activate(inner.clone(), 2);
                panic!("boom");
            });
            assert!(unwound.is_err());
            assert!(should_fail("s"), "unwinding must restore the outer scope");
        });
        assert!(!should_fail("s"), "no scope active after the outermost");
    }

    #[test]
    fn evaluate_counts_into_the_global_registry() {
        let plan = FaultPlan::new(0).with("obs.test.fp", FaultMode::Always);
        let before_eval = crate::global().counter("chaos.evaluated.obs.test.fp");
        let before_inj = crate::global().counter("chaos.injected.obs.test.fp");
        assert!(plan.evaluate("obs.test.fp", 0));
        assert!(!plan.evaluate("obs.test.unconfigured", 0));
        assert_eq!(
            crate::global().counter("chaos.evaluated.obs.test.fp"),
            before_eval + 1
        );
        assert_eq!(
            crate::global().counter("chaos.injected.obs.test.fp"),
            before_inj + 1
        );
        assert_eq!(
            crate::global().counter("chaos.evaluated.obs.test.unconfigured"),
            0
        );
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        for attempt in 0..4 {
            let a = backoff_jitter_ns(9, 100, attempt, 1_000_000);
            let b = backoff_jitter_ns(9, 100, attempt, 1_000_000);
            assert_eq!(a, b);
            assert!(a < 1_000_000);
        }
        assert_eq!(backoff_jitter_ns(9, 100, 0, 0), 0);
        assert_ne!(
            backoff_jitter_ns(9, 100, 0, u64::MAX),
            backoff_jitter_ns(9, 100, 1, u64::MAX)
        );
    }
}
