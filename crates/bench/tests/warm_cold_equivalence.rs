//! The warm-started LP engine must be a pure performance change: on the
//! exact fixed-seed `bench_smoke` instance, a warm-started column
//! generation run and a cold one (`warm_start: false`, every LP rebuilt
//! from scratch) must produce the same `Mechanism`, with the warm run
//! doing measurably less simplex work.
//!
//! On bit-identity: every solve ends with a canonical refactorization,
//! so two runs that finish on the same basis return bit-identical
//! solutions (`cg_warm_matches_cold` in `vlp-core` checks this
//! end-to-end on a non-degenerate instance). The smoke instance's
//! master is degenerate, though — it has multiple optimal bases, and
//! the warm pivot path legitimately settles on a different one than the
//! cold path. Different optimal bases reconstruct the same mechanism up
//! to round-off, so here the per-entry tolerance is a few ULP (1e-12,
//! ~10⁴ times tighter than any tolerance the pipeline consumes), not
//! zero.

use roadnet::generators;
use vlp_bench::scenarios;
use vlp_core::CgOptions;

/// Same seed as `bench_smoke` (`crates/bench/src/bin/bench_smoke.rs`).
const SEED: u64 = 20_260_807;

#[test]
fn warm_and_cold_runs_are_bit_identical_on_smoke_instance() {
    let graph = generators::grid(4, 4, 0.4, true);
    let traces = scenarios::fleet(&graph, 3, 200, SEED);
    let inst = scenarios::cab_instance(&graph, 0.4, &traces[0], &traces);
    let warm_opts = scenarios::cg_options(scenarios::DEFAULT_XI);
    assert!(warm_opts.warm_start, "default options must warm-start");
    let cold_opts = CgOptions {
        warm_start: false,
        ..warm_opts.clone()
    };

    let warm = inst.solve(5.0, f64::INFINITY, &warm_opts).unwrap();
    let cold = inst.solve(5.0, f64::INFINITY, &cold_opts).unwrap();

    // CG objective unchanged to 1e-9 (relative).
    assert!(
        (warm.quality_loss - cold.quality_loss).abs() <= 1e-9 * cold.quality_loss.abs().max(1.0),
        "warm {} vs cold {}",
        warm.quality_loss,
        cold.quality_loss
    );
    // Identical iteration trajectory; mechanism equal to a few ULP
    // (see the module docs for why degenerate masters preclude exact
    // bit-identity here).
    assert_eq!(warm.diagnostics.iterations, cold.diagnostics.iterations);
    let k = warm.mechanism.len();
    assert_eq!(k, cold.mechanism.len());
    let mut max_diff = 0.0f64;
    for i in 0..k {
        for l in 0..k {
            let diff = (warm.mechanism.prob(i, l) - cold.mechanism.prob(i, l)).abs();
            max_diff = max_diff.max(diff);
            assert!(
                diff <= 1e-12,
                "mechanism entry ({i},{l}) differs between warm and cold: {} vs {}",
                warm.mechanism.prob(i, l),
                cold.mechanism.prob(i, l)
            );
        }
    }
    println!("max |warm - cold| mechanism entry: {max_diff:.3e}");
    // Both stay valid Geo-I mechanisms.
    assert!(warm.mechanism.max_violation(&warm.spec) <= 1e-6);
    assert!(cold.mechanism.max_violation(&cold.spec) <= 1e-6);

    // The warm run actually warm-started, and its tracked pivot work is
    // well under the cold baseline's total (the ≥30% drop acceptance
    // gate lives in bench_smoke's committed PIVOT_BUDGET; this is the
    // in-tree sanity version).
    let d = &warm.diagnostics;
    assert!(
        d.lp_warm_resolves > 0,
        "no warm resolves on the smoke instance"
    );
    assert!(
        d.lp_warm_resolves > 4 * d.lp_cold_solves,
        "warm hit rate too low: {} warm vs {} cold",
        d.lp_warm_resolves,
        d.lp_cold_solves
    );
    assert!(d.master_pivots + d.pricing_pivots > 0);
}
