//! Criterion benchmarks for the substrate crates: shortest paths,
//! discretization, auxiliary-graph construction, and assignment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use roadnet::{generators, NodeDistances, NodeId, ShortestPathTree, TreeDirection};
use std::hint::black_box;
use vlp_core::{AuxiliaryGraph, Discretization};

fn bench_dijkstra(c: &mut Criterion) {
    let mut g = c.benchmark_group("dijkstra");
    for (name, graph) in [
        ("grid6", generators::grid(6, 6, 0.3, true)),
        ("downtown8", generators::downtown(8, 8, 0.2)),
        ("rome", generators::rome_like(3, 8, 0.6, 1)),
    ] {
        g.bench_with_input(BenchmarkId::new("spt_out", name), &graph, |b, graph| {
            b.iter(|| ShortestPathTree::build(black_box(graph), NodeId(0), TreeDirection::Out))
        });
        g.bench_with_input(BenchmarkId::new("all_pairs", name), &graph, |b, graph| {
            b.iter(|| NodeDistances::all_pairs(black_box(graph)))
        });
    }
    g.finish();
}

fn bench_discretize(c: &mut Criterion) {
    let graph = generators::downtown(6, 6, 0.3);
    let mut g = c.benchmark_group("discretize");
    for delta in [0.15, 0.10, 0.05] {
        g.bench_with_input(
            BenchmarkId::new("partition", format!("{delta}")),
            &delta,
            |b, &d| b.iter(|| Discretization::new(black_box(&graph), d)),
        );
        g.bench_with_input(
            BenchmarkId::new("auxiliary", format!("{delta}")),
            &delta,
            |b, &d| {
                let disc = Discretization::new(&graph, d);
                b.iter(|| AuxiliaryGraph::build(black_box(&graph), black_box(&disc)))
            },
        );
    }
    g.finish();
}

fn bench_assignment(c: &mut Criterion) {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut g = c.benchmark_group("assignment");
    for n in [10usize, 20, 30] {
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..n + 10)
                    .map(|_| rng.random_range(0.0..10.0f64))
                    .collect()
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("hungarian", n), &cost, |b, cost| {
            b.iter(|| assignment::hungarian(black_box(cost)).expect("feasible"))
        });
        g.bench_with_input(BenchmarkId::new("greedy", n), &cost, |b, cost| {
            b.iter(|| assignment::greedy(black_box(cost)).expect("feasible"))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dijkstra, bench_discretize, bench_assignment
}
criterion_main!(benches);
