//! Criterion benchmarks for the optimization stack: the simplex
//! solver, constraint reduction, and the two D-VLP solve paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lpsolve::{LinearProgram, Relation};
use roadnet::generators;
use std::hint::black_box;
use vlp_core::constraint_reduction::{reduce_constraints, reduced_spec};
use vlp_core::dvlp::solve_direct;
use vlp_core::{CgOptions, PrivacySpec, VlpInstance};

fn transportation_lp(n: usize) -> LinearProgram {
    // Balanced n x n transportation problem with synthetic costs.
    let mut lp = LinearProgram::new(n * n);
    let obj: Vec<(usize, f64)> = (0..n * n)
        .map(|k| (k, ((k * 7919) % 97) as f64 / 10.0))
        .collect();
    lp.set_objective(&obj).expect("valid objective");
    for s in 0..n {
        let row: Vec<(usize, f64)> = (0..n).map(|d| (s * n + d, 1.0)).collect();
        lp.add_constraint(&row, Relation::Eq, 10.0)
            .expect("valid row");
    }
    for d in 0..n {
        let row: Vec<(usize, f64)> = (0..n).map(|s| (s * n + d, 1.0)).collect();
        lp.add_constraint(&row, Relation::Eq, 10.0)
            .expect("valid row");
    }
    lp
}

fn bench_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex");
    for n in [5usize, 10, 15] {
        let lp = transportation_lp(n);
        g.bench_with_input(BenchmarkId::new("transportation", n), &lp, |b, lp| {
            b.iter(|| lp.solve().expect("solvable"))
        });
    }
    g.finish();
}

fn bench_constraint_reduction(c: &mut Criterion) {
    let graph = generators::downtown(5, 5, 0.3);
    let mut g = c.benchmark_group("constraint_reduction");
    for delta in [0.15, 0.10] {
        let inst = VlpInstance::uniform(graph.clone(), delta);
        g.bench_with_input(
            BenchmarkId::new("algorithm1", format!("K={}", inst.len())),
            &inst,
            |b, inst| b.iter(|| reduce_constraints(black_box(&inst.aux), f64::INFINITY)),
        );
        g.bench_with_input(
            BenchmarkId::new("full_spec", format!("K={}", inst.len())),
            &inst,
            |b, inst| b.iter(|| PrivacySpec::full(black_box(&inst.aux), 5.0, f64::INFINITY)),
        );
    }
    g.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("dvlp_solvers");
    g.sample_size(10);
    // Small instance for the direct LP (K^2 variables).
    let small = VlpInstance::uniform(generators::grid(2, 2, 0.5, true), 0.5);
    let spec = reduced_spec(&small.aux, 3.0, f64::INFINITY);
    g.bench_function("direct_lp_K8", |b| {
        b.iter(|| solve_direct(black_box(&small.cost), black_box(&spec)).expect("solves"))
    });
    // Larger instance for column generation.
    let medium = VlpInstance::uniform(generators::downtown(3, 3, 0.3), 0.15);
    g.bench_function(format!("column_generation_K{}", medium.len()), |b| {
        b.iter(|| {
            medium
                .solve(5.0, f64::INFINITY, &CgOptions::default())
                .expect("solves")
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simplex, bench_constraint_reduction, bench_solvers
}
criterion_main!(benches);
