//! Experiment harness for the VLP reproduction.
//!
//! The binaries in `src/bin/` regenerate every figure of the paper's
//! evaluation (§5); this library holds the shared scenario builders and
//! metric plumbing they use. See `DESIGN.md` (per-experiment index) and
//! `EXPERIMENTS.md` (paper-vs-measured) at the repository root.
//!
//! Run a figure with, e.g.:
//!
//! ```text
//! cargo run --release -p vlp-bench --bin fig11_vs_2db
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod report;
pub mod scenarios;
pub mod streams;
