//! Plain-text table output shared by the figure binaries.

/// Prints a titled, aligned table: one header row plus data rows.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with three decimals (kilometre-scale metrics).
pub fn km(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a ratio or percentage-like value with four decimals.
pub fn ratio(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(km(1.23456), "1.235");
        assert_eq!(ratio(1.04949), "1.0495");
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "20".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_panic() {
        print_table("demo", &["a"], &[vec!["1".into(), "2".into()]]);
    }
}
