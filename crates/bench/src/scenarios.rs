//! Shared scenario builders: maps, fleets, instances, and metrics.

use std::time::{Duration, Instant};

use adversary::bayes;
use mobility::{estimate_prior, generate_fleet, TraceConfig, VehicleTrace};
use platform::MechanismService;
use roadnet::{generators, EdgeId, Location, RoadGraph};
use vlp_core::baseline::two_d;
use vlp_core::{CgDiagnostics, CgOptions, Discretization, Mechanism, Prior, VlpInstance};

/// Smoothing mass used when histogramming traces into priors.
pub const PRIOR_SMOOTHING: f64 = 0.1;

/// The early-stopping threshold §5.1 settles on (`ξ = −0.3`), rescaled
/// here because our synthetic maps have kilometre-scale losses: we use
/// a small fraction of the quality-loss scale instead of an absolute
/// −0.3.
pub const DEFAULT_XI: f64 = -1e-4;

/// Quality-of-service and privacy metrics for one mechanism on one
/// instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Expected traveling-distance distortion (quality loss), km.
    pub etdd: f64,
    /// Expected adversary error under the optimal Bayesian attack, km.
    pub adv_error: f64,
}

/// The Rome-like simulation map (§5.1 substitution): ring-and-radial
/// city with a one-way historic centre and 1/r density falloff
/// (~13 km of directed road — sized so the δ-sweeps stay tractable on
/// one core; the paper's absolute scales are not reproduced, shapes
/// are).
pub fn rome_graph() -> RoadGraph {
    generators::rome_like(2, 5, 0.25, 2019)
}

/// The pilot study's Region A (rural) map.
pub fn region_a() -> RoadGraph {
    generators::campus_region_a()
}

/// The pilot study's Region B (downtown) map.
pub fn region_b() -> RoadGraph {
    generators::campus_region_b()
}

/// Generates a taxi fleet on `graph` (downtown-biased random walks, 7 s
/// reporting period as in the CRAWDAD traces).
pub fn fleet(graph: &RoadGraph, n_vehicles: usize, reports: usize, seed: u64) -> Vec<VehicleTrace> {
    let cfg = TraceConfig {
        reports,
        ..TraceConfig::default()
    };
    generate_fleet(graph, &cfg, n_vehicles, seed)
}

/// Builds a per-cab VLP instance: `f_P` estimated from the cab's own
/// records, `f_Q` from the whole fleet's records (§5.1 assumes the
/// task/customer distribution equals the distribution of all cabs).
///
/// # Panics
///
/// Panics if the traces cannot be located on `graph` (wrong map).
pub fn cab_instance(
    graph: &RoadGraph,
    delta: f64,
    cab: &VehicleTrace,
    all: &[VehicleTrace],
) -> VlpInstance {
    let disc = Discretization::new(graph, delta);
    let f_p = estimate_prior(graph, &disc, std::slice::from_ref(cab), PRIOR_SMOOTHING)
        .expect("cab trace must be locatable");
    let f_q =
        estimate_prior(graph, &disc, all, PRIOR_SMOOTHING).expect("fleet traces must be locatable");
    VlpInstance::new(graph.clone(), delta, f_p, f_q)
}

/// Builds an instance whose task prior is concentrated on explicit task
/// intervals (used by the pilot-study experiments that deploy `n`
/// tasks).
pub fn instance_with_tasks(
    graph: &RoadGraph,
    delta: f64,
    f_p: Prior,
    task_intervals: &[usize],
) -> VlpInstance {
    let disc = Discretization::new(graph, delta);
    let mut w = vec![0.0; disc.len()];
    for &t in task_intervals {
        w[t] += 1.0;
    }
    let f_q = Prior::from_weights(&w).expect("at least one task");
    VlpInstance::new(graph.clone(), delta, f_p, f_q)
}

/// Column-generation options used throughout the experiments.
pub fn cg_options(xi: f64) -> CgOptions {
    CgOptions {
        xi,
        max_iterations: 25,
        parallel: true,
        gap_tol: 0.02,
        ..CgOptions::default()
    }
}

/// Solves our road-network mechanism on `inst` at privacy level
/// `epsilon` (per km) with unbounded protection radius.
pub fn solve_ours(inst: &VlpInstance, epsilon: f64, xi: f64) -> (Mechanism, f64, CgDiagnostics) {
    let solved = inst
        .solve(epsilon, f64::INFINITY, &cg_options(xi))
        .expect("our solver must succeed on generated instances");
    (solved.mechanism, solved.quality_loss, solved.diagnostics)
}

/// Solves the 2Db baseline (Euclidean optimal mechanism, spanner
/// stretch 1.5 as in Bordenabe et al.) on the same interval set.
pub fn solve_2db(inst: &VlpInstance, epsilon: f64) -> Mechanism {
    // The Euclidean-spanner master is more degenerate than the road
    // one; give the baseline a larger iteration budget so the
    // comparison is not won by solver starvation (EXPERIMENTS.md
    // discusses the residual fairness caveat).
    let opts = CgOptions {
        max_iterations: 40,
        ..cg_options(DEFAULT_XI)
    };
    two_d::solve_2db(
        &inst.graph,
        &inst.disc,
        inst.f_p.as_slice(),
        epsilon,
        1.5,
        &opts,
    )
    .expect("2Db baseline must solve")
    .mechanism
}

/// Evaluates a mechanism on an instance: road-network ETDD against the
/// instance's cost matrix and AdvError under the optimal Bayesian
/// attack.
pub fn evaluate(inst: &VlpInstance, mech: &Mechanism) -> Metrics {
    Metrics {
        etdd: mech.quality_loss(&inst.cost),
        adv_error: bayes::adv_error(mech, &inst.f_p, &inst.interval_dists),
    }
}

/// Deterministically picks `n` distinct task intervals spread over the
/// map (stride sampling — reproducible without an RNG).
pub fn spread_tasks(k: usize, n: usize) -> Vec<usize> {
    assert!(n > 0 && n <= k, "need 1..=K tasks");
    (0..n).map(|t| t * k / n).collect()
}

// ---------------------------------------------------------------------
// Serving-workload helpers shared by the service bench binaries
// (`bench_service`, `bench_load`, `bench_chaos`, `bench_local`). These
// were once copy-pasted per binary; the committed bench artifacts pin
// their exact behavior, so changes here are changes to every gate.

/// One on-map request location per `(shard, slot)`: up to `per_shard`
/// slots for each of the service's region shards, filled by scanning
/// edge ids in order and probing 5% along each edge.
///
/// # Panics
///
/// Panics if any shard ends up with no request location (a map too
/// small for the shard count).
pub fn shard_locations(
    svc: &MechanismService,
    graph_edges: usize,
    per_shard: usize,
) -> Vec<Vec<Location>> {
    let mut by_shard: Vec<Vec<Location>> = vec![Vec::new(); svc.shard_count()];
    for e in 0..graph_edges {
        let loc = Location::new(EdgeId(e), 0.05);
        if let Some((s, _)) = svc.partition().to_local(loc) {
            if by_shard[s].len() < per_shard {
                by_shard[s].push(loc);
            }
        }
    }
    for (s, locs) in by_shard.iter().enumerate() {
        assert!(!locs.is_empty(), "no request location found for shard {s}");
    }
    by_shard
}

/// Round-robin interleaving of [`shard_locations`] so consecutive
/// requests rotate across shards — the canonical fleet shape of
/// `bench_service` and `bench_chaos`, where every batch must touch
/// every shard.
pub fn fleet_locations(
    svc: &MechanismService,
    graph_edges: usize,
    per_shard: usize,
) -> Vec<Location> {
    let by_shard = shard_locations(svc, graph_edges, per_shard);
    let mut out = Vec::new();
    for slot in 0..per_shard {
        for locs in &by_shard {
            out.push(locs[slot % locs.len()]);
        }
    }
    out
}

/// The Zipf cumulative distribution over `n` ranks with popularity
/// exponent `exponent`: entry `r` is the probability of drawing a rank
/// `≤ r`.
pub fn zipf_cdf(n: usize, exponent: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-exponent)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Maps one uniform draw `u ∈ [0, 1)` to its Zipf rank through the CDF
/// (inverse-transform sampling; clamped so `u = 1.0` stays in range).
pub fn zipf_rank(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Latency percentile by nearest-rank over a sorted sample.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn percentile(sorted: &[Duration], q: f64) -> Duration {
    assert!(!sorted.is_empty(), "no latency samples");
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Open-loop arrival pacing: blocks until `due`, sleeping while far
/// ahead of schedule and spinning the final stretch so arrival jitter
/// stays in the low microseconds. Callers measure latency from `due`,
/// not from the return of this function, so a slow service inflates
/// the recorded tail instead of silently slowing the generator down
/// (no coordinated omission).
pub fn pace_until(due: Instant) {
    loop {
        let now = Instant::now();
        if now >= due {
            return;
        }
        let ahead = due - now;
        if ahead > Duration::from_micros(200) {
            std::thread::sleep(ahead - Duration::from_micros(100));
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rome_scenario_builds_and_solves() {
        let g = rome_graph();
        let traces = fleet(&g, 3, 150, 1);
        let inst = cab_instance(&g, 0.4, &traces[0], &traces);
        assert!(inst.len() > 10);
        let (mech, etdd, _) = solve_ours(&inst, 5.0, -1e-3);
        let m = evaluate(&inst, &mech);
        assert!((m.etdd - etdd).abs() < 1e-6);
        assert!(m.adv_error > 0.0);
    }

    #[test]
    fn spread_tasks_are_distinct_and_in_range() {
        let t = spread_tasks(100, 7);
        assert_eq!(t.len(), 7);
        let mut u = t.clone();
        u.dedup();
        assert_eq!(u.len(), 7);
        assert!(t.iter().all(|&x| x < 100));
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        let cdf = zipf_cdf(96, 1.1);
        assert_eq!(cdf.len(), 96);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        assert!((cdf[95] - 1.0).abs() < 1e-12);
        // Heavier head than uniform: rank 0 alone beats 1/96.
        assert!(cdf[0] > 1.0 / 96.0);
    }

    /// Pins the same-seed rank sequence the open-loop generators draw:
    /// any change to the CDF construction, the inverse-transform
    /// mapping, or the RNG stream shows up here before it silently
    /// shifts a committed bench artifact.
    #[test]
    fn zipf_same_seed_rank_sequence_is_pinned() {
        use rand::{RngExt, SeedableRng};
        let cdf = zipf_cdf(96, 1.1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(20_260_807);
        let ranks: Vec<usize> = (0..12)
            .map(|_| {
                let u: f64 = rng.random();
                zipf_rank(&cdf, u)
            })
            .collect();
        assert_eq!(ranks, vec![8, 7, 1, 0, 1, 13, 55, 1, 21, 70, 46, 3]);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let sorted: Vec<Duration> = (1..=10).map(Duration::from_micros).collect();
        assert_eq!(percentile(&sorted, 0.0), Duration::from_micros(1));
        assert_eq!(percentile(&sorted, 0.50), Duration::from_micros(6));
        assert_eq!(percentile(&sorted, 1.0), Duration::from_micros(10));
    }

    #[test]
    fn fleet_locations_interleave_all_shards() {
        let g = generators::grid(3, 4, 0.4, true);
        let n_edges = g.edge_count();
        let svc = MechanismService::new(g, platform::ServiceConfig::default());
        let shards = svc.shard_count();
        let fleet = fleet_locations(&svc, n_edges, 3);
        assert_eq!(fleet.len(), 3 * shards);
        // Each consecutive window of `shards` requests covers every shard.
        for window in fleet.chunks(shards) {
            let mut seen: Vec<usize> = window
                .iter()
                .map(|&loc| svc.partition().to_local(loc).unwrap().0)
                .collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), shards);
        }
    }

    #[test]
    fn instance_with_tasks_masses_only_tasks() {
        let g = region_b();
        let disc = Discretization::new(&g, 0.11);
        let k = disc.len();
        let inst = instance_with_tasks(&g, 0.11, Prior::uniform(k), &[0, 3]);
        assert!(inst.f_q.get(0) > 0.0);
        assert!(inst.f_q.get(1) == 0.0);
    }
}
