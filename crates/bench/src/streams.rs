//! Trajectory-streaming workloads: turning `mobility` traces into the
//! timestamped per-vehicle report streams a continuous serving loop
//! sees.
//!
//! The figure benches replay traces vehicle-by-vehicle; a serving
//! platform instead receives one *interleaved* stream of reports from
//! the whole fleet, ordered by report time. [`stream_reports`] performs
//! that merge and annotates each report with the vehicle's estimated
//! speed (from consecutive trace points), which is what a
//! velocity-aware ε adapter ([`platform::VelocityEpsilon`]) consumes.
//! [`fleet_stream`] and [`trip_stream`] are one-call builders over the
//! two `mobility` motion models, and [`subsample_stream`] thins a
//! continuous stream into the paper's sporadic-reporting regime
//! (footnote 4: keep one sample of every *n*).

use mobility::{TraceConfig, TripConfig, VehicleTrace};
use platform::WorkerId;
use roadnet::{Location, RoadGraph};

/// One timestamped report in a merged fleet stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceReport {
    /// The reporting vehicle (stable across the stream).
    pub vehicle: WorkerId,
    /// Index of this report within the vehicle's own trace.
    pub seq: usize,
    /// Report time in seconds from the start of the simulation.
    pub time_secs: f64,
    /// The vehicle's true location at report time.
    pub location: Location,
    /// Speed estimated from the previous trace point, in km/h. The
    /// first report of a trace has no history and gets `0.0`
    /// (indistinguishable from dwelling, which is what a platform
    /// would assume too).
    pub speed_kmh: f64,
}

/// Merges per-vehicle traces into one time-ordered report stream.
///
/// Vehicle `v`'s reports keep their trace order; across vehicles the
/// stream is sorted by `(time_secs, vehicle)` so equal-time reports
/// have a deterministic order. Speed is estimated as straight-line
/// distance between consecutive trace points over the elapsed time —
/// exactly what a platform could compute from the vehicle's own
/// previous report, so the velocity adapter never needs ground truth
/// the serving side wouldn't have.
///
/// # Example
///
/// ```
/// use mobility::{generate_fleet, TraceConfig};
/// use roadnet::generators;
/// use vlp_bench::streams::stream_reports;
///
/// let graph = generators::grid(3, 3, 0.4, true);
/// let cfg = TraceConfig { reports: 5, ..TraceConfig::default() };
/// let traces = generate_fleet(&graph, &cfg, 2, 7);
/// let stream = stream_reports(&graph, &traces);
/// assert_eq!(stream.len(), 10);
/// // Time-ordered, with non-negative speed estimates throughout.
/// assert!(stream.windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
/// assert!(stream.iter().all(|r| r.speed_kmh >= 0.0));
/// ```
pub fn stream_reports(graph: &RoadGraph, traces: &[VehicleTrace]) -> Vec<TraceReport> {
    let mut stream = Vec::with_capacity(traces.iter().map(VehicleTrace::len).sum());
    for (v, trace) in traces.iter().enumerate() {
        for (seq, (&location, &time_secs)) in
            trace.locations.iter().zip(&trace.timestamps).enumerate()
        {
            let speed_kmh = if seq == 0 {
                0.0
            } else {
                let dt_secs = time_secs - trace.timestamps[seq - 1];
                if dt_secs > 0.0 {
                    let km = trace.locations[seq - 1].euclidean(location, graph);
                    km / (dt_secs / 3600.0)
                } else {
                    0.0
                }
            };
            stream.push(TraceReport {
                vehicle: WorkerId(v),
                seq,
                time_secs,
                location,
                speed_kmh,
            });
        }
    }
    stream.sort_by(|a, b| {
        a.time_secs
            .partial_cmp(&b.time_secs)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.vehicle.0.cmp(&b.vehicle.0))
            .then(a.seq.cmp(&b.seq))
    });
    stream
}

/// Generates a fleet of continuously-cruising vehicles
/// ([`mobility::generate_fleet`]) and merges them into a stream.
pub fn fleet_stream(
    graph: &RoadGraph,
    cfg: &TraceConfig,
    n_vehicles: usize,
    base_seed: u64,
) -> Vec<TraceReport> {
    stream_reports(
        graph,
        &mobility::generate_fleet(graph, cfg, n_vehicles, base_seed),
    )
}

/// Generates a fleet of trip-structured vehicles (drive, dwell at an
/// attraction, drive on — [`mobility::generate_trip_trace`]) with the
/// same per-vehicle seed derivation as [`fleet_stream`], merged into a
/// stream. Dwell segments produce near-zero speed estimates, which is
/// what exercises a velocity adapter's low-speed (tightest-ε) end.
pub fn trip_stream(
    graph: &RoadGraph,
    cfg: &TripConfig,
    n_vehicles: usize,
    base_seed: u64,
) -> Vec<TraceReport> {
    let traces: Vec<VehicleTrace> = (0..n_vehicles)
        .map(|v| {
            mobility::generate_trip_trace(
                graph,
                cfg,
                base_seed.wrapping_add(v as u64).wrapping_mul(0x9E37_79B9),
            )
        })
        .collect();
    stream_reports(graph, &traces)
}

/// Thins a merged stream to every `n`-th report *per vehicle* — the
/// paper's sporadic-reporting regime (footnote 4). `n = 1` returns the
/// stream unchanged.
///
/// # Example
///
/// ```
/// use mobility::{generate_fleet, TraceConfig};
/// use roadnet::generators;
/// use vlp_bench::streams::{stream_reports, subsample_stream};
///
/// let graph = generators::grid(3, 3, 0.4, true);
/// let cfg = TraceConfig { reports: 6, ..TraceConfig::default() };
/// let stream = stream_reports(&graph, &generate_fleet(&graph, &cfg, 2, 7));
/// let sparse = subsample_stream(&stream, 3);
/// assert_eq!(sparse.len(), 4); // reports 0 and 3 of each vehicle
/// assert!(sparse.iter().all(|r| r.seq % 3 == 0));
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn subsample_stream(stream: &[TraceReport], n: usize) -> Vec<TraceReport> {
    assert!(n > 0, "subsample step must be positive");
    stream.iter().filter(|r| r.seq % n == 0).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators;

    #[test]
    fn stream_is_time_ordered_and_complete() {
        let g = generators::grid(4, 4, 0.3, true);
        let cfg = TraceConfig {
            reports: 20,
            ..TraceConfig::default()
        };
        let stream = fleet_stream(&g, &cfg, 3, 11);
        assert_eq!(stream.len(), 60);
        for w in stream.windows(2) {
            assert!(
                (w[0].time_secs, w[0].vehicle.0) <= (w[1].time_secs, w[1].vehicle.0),
                "stream must be (time, vehicle)-ordered"
            );
        }
        // Every vehicle contributes its full trace, in order.
        for v in 0..3 {
            let seqs: Vec<usize> = stream
                .iter()
                .filter(|r| r.vehicle == WorkerId(v))
                .map(|r| r.seq)
                .collect();
            assert_eq!(seqs, (0..20).collect::<Vec<_>>());
        }
    }

    #[test]
    fn speed_estimates_are_plausible() {
        let g = generators::grid(4, 4, 0.3, true);
        let cfg = TraceConfig {
            reports: 30,
            speed_kmh: 30.0,
            ..TraceConfig::default()
        };
        let stream = fleet_stream(&g, &cfg, 2, 5);
        for r in &stream {
            assert!(r.speed_kmh.is_finite() && r.speed_kmh >= 0.0);
            if r.seq == 0 {
                assert_eq!(r.speed_kmh, 0.0, "no history yet");
            } else {
                // Straight-line estimate never exceeds the true cruise
                // speed (paths bend, they don't teleport).
                assert!(r.speed_kmh <= cfg.speed_kmh + 1e-9);
            }
        }
        assert!(
            stream.iter().any(|r| r.speed_kmh > 1.0),
            "a cruising fleet should register movement"
        );
    }

    #[test]
    fn trip_stream_shows_dwell_speeds() {
        let g = generators::grid(4, 4, 0.3, true);
        let cfg = TripConfig {
            reports: 60,
            ..TripConfig::default()
        };
        let stream = trip_stream(&g, &cfg, 2, 13);
        assert_eq!(stream.len(), 120);
        let dwelling = stream
            .iter()
            .filter(|r| r.seq > 0 && r.speed_kmh < 1e-9)
            .count();
        assert!(dwelling > 0, "trips dwell at attractions");
    }

    #[test]
    fn same_seed_streams_are_identical() {
        let g = generators::grid(3, 3, 0.4, true);
        let cfg = TraceConfig {
            reports: 15,
            ..TraceConfig::default()
        };
        assert_eq!(fleet_stream(&g, &cfg, 3, 42), fleet_stream(&g, &cfg, 3, 42));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn subsample_rejects_zero_step() {
        subsample_stream(&[], 0);
    }
}
