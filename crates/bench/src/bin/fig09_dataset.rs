//! Fig. 9 — dataset overview: heat map of recorded locations and
//! per-cab record statistics.
//!
//! The paper plots the heat map of the Rome taxi traces (downtown
//! concentration) and histograms of record counts, traveling time, and
//! path distance per cab. This binary prints the synthetic fleet's
//! radial density profile (the quantitative content of the heat map)
//! and the same per-cab statistics.

use mobility::TraceConfig;
use vlp_bench::report::{km, print_table};
use vlp_bench::scenarios;

fn main() {
    let graph = scenarios::rome_graph();
    let n_cabs = 30;
    let reports = 600;
    let traces = scenarios::fleet(&graph, n_cabs, reports, 9);
    let cfg = TraceConfig {
        reports,
        ..TraceConfig::default()
    };

    // Radial density: share of recorded locations per distance band
    // from the centre, normalized by band area (km²).
    let bands = [(0.0, 0.4), (0.4, 0.8), (0.8, 1.2), (1.2, 2.0)];
    let mut rows = Vec::new();
    let total = (n_cabs * reports) as f64;
    for &(lo, hi) in &bands {
        let count = traces
            .iter()
            .flat_map(|t| &t.locations)
            .filter(|l| {
                let (x, y) = l.point(&graph);
                let r = (x * x + y * y).sqrt();
                r >= lo && r < hi
            })
            .count();
        let area = std::f64::consts::PI * (hi * hi - lo * lo);
        rows.push(vec![
            format!("{lo:.1}-{hi:.1}"),
            count.to_string(),
            format!("{:.4}", count as f64 / total),
            format!("{:.4}", count as f64 / total / area),
        ]);
    }
    print_table(
        "Fig 9(a) — radial location density (downtown concentration)",
        &["band km", "records", "share", "share/km^2"],
        &rows,
    );

    // Per-cab statistics (record count is constant by construction;
    // traveling time and path distance vary with the walk).
    let mut dist_rows = Vec::new();
    let dists: Vec<f64> = traces.iter().map(|t| t.path_distance(&cfg)).collect();
    let (min, max) = (
        dists.iter().cloned().fold(f64::INFINITY, f64::min),
        dists.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let mean = dists.iter().sum::<f64>() / dists.len() as f64;
    dist_rows.push(vec![
        n_cabs.to_string(),
        reports.to_string(),
        km(min),
        km(mean),
        km(max),
        format!("{:.1}", (reports - 1) as f64 * 7.0 / 60.0),
    ]);
    print_table(
        "Fig 9(b) — per-cab statistics",
        &[
            "cabs",
            "records/cab",
            "min km",
            "mean km",
            "max km",
            "duration min",
        ],
        &dist_rows,
    );

    // Expected shape: density/km² strictly decreasing with radius.
    let densities: Vec<f64> = rows
        .iter()
        .map(|r| r[3].parse::<f64>().expect("density column"))
        .collect();
    let monotone = densities.windows(2).all(|w| w[0] >= w[1]);
    println!(
        "\nshape check — density falls with radius: {}",
        if monotone { "PASS" } else { "FAIL" }
    );
}
