//! Fig. 11 — ours vs the 2-D-plane optimal mechanism (2Db) in the
//! trace-driven simulation: average quality loss (a) and AdvError (b)
//! over the cab fleet, across privacy levels ε.
//!
//! Expected shape (paper): our approach has *lower* ETDD and *higher*
//! AdvError at every ε (≈12.35 % lower quality loss, ≈6.91 % higher
//! AdvError on average).

use vlp_bench::report::{km, print_table, ratio};
use vlp_bench::scenarios;

fn main() {
    let graph = scenarios::rome_graph();
    let n_cabs: usize = std::env::var("VLP_CABS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let delta = 0.3;
    let traces = scenarios::fleet(&graph, n_cabs.max(2), 400, 11);
    let epsilons = [1.0, 2.0, 4.0, 6.0, 8.0, 10.0];

    let mut rows = Vec::new();
    let mut overall = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for &eps in &epsilons {
        let mut ours = scenarios::Metrics {
            etdd: 0.0,
            adv_error: 0.0,
        };
        let mut twodb = scenarios::Metrics {
            etdd: 0.0,
            adv_error: 0.0,
        };
        for cab in 0..n_cabs {
            let inst = scenarios::cab_instance(&graph, delta, &traces[cab], &traces);
            let (mech, _, _) = scenarios::solve_ours(&inst, eps, scenarios::DEFAULT_XI);
            let m1 = scenarios::evaluate(&inst, &mech);
            let m2 = scenarios::evaluate(&inst, &scenarios::solve_2db(&inst, eps));
            ours.etdd += m1.etdd / n_cabs as f64;
            ours.adv_error += m1.adv_error / n_cabs as f64;
            twodb.etdd += m2.etdd / n_cabs as f64;
            twodb.adv_error += m2.adv_error / n_cabs as f64;
        }
        overall.0 += ours.etdd;
        overall.1 += twodb.etdd;
        overall.2 += ours.adv_error;
        overall.3 += twodb.adv_error;
        rows.push(vec![
            format!("{eps:.0}"),
            km(ours.etdd),
            km(twodb.etdd),
            km(ours.adv_error),
            km(twodb.adv_error),
        ]);
    }
    print_table(
        "Fig 11(a)(b) — ours vs 2Db across eps (fleet averages)",
        &["eps", "ETDD ours", "ETDD 2Db", "AdvErr ours", "AdvErr 2Db"],
        &rows,
    );

    let ql_reduction = 1.0 - overall.0 / overall.1;
    let adv_gain = overall.2 / overall.3 - 1.0;
    println!(
        "\nquality-loss reduction vs 2Db: {} (paper: 0.1235)",
        ratio(ql_reduction)
    );
    println!(
        "AdvError increase vs 2Db:      {} (paper: 0.0691)",
        ratio(adv_gain)
    );
    println!(
        "shape check — ours has lower quality loss: {}",
        if ql_reduction > 0.0 { "PASS" } else { "FAIL" }
    );
    println!(
        "shape check — ours has higher AdvError (paper): {}",
        if adv_gain > 0.0 {
            "PASS"
        } else {
            "FAIL (documented deviation — see EXPERIMENTS.md: at matched \
             nominal eps the Euclidean baseline over-protects, trading \
             quality for privacy)"
        }
    );
}
