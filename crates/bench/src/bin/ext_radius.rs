//! Extension: the protection radius `r` of `(ε, r)`-Geo-I
//! (Definition 3.1).
//!
//! The evaluation section fixes `r` effectively unbounded; this
//! experiment sweeps it. With the *full* constraint set (Eq. 20 limits
//! pairs to `d_min ≤ r`), shrinking `r` prunes constraints and lowers
//! the optimal quality loss — the privacy guarantee only covers
//! locations within `r`, so the mechanism can localize more. Solved
//! with the direct LP on a small instance because constraint reduction
//! intentionally over-protects beyond `r` (chained adjacent constraints
//! cover all pairs; see DESIGN.md).

use roadnet::generators;
use vlp_bench::report::{km, print_table};
use vlp_bench::scenarios;
use vlp_core::dvlp::solve_direct;
use vlp_core::PrivacySpec;

fn main() {
    // Small map: the unreduced constraint set grows as K³, so the
    // direct solves need K below ~20.
    let graph = generators::grid(2, 2, 0.4, true);
    let traces = scenarios::fleet(&graph, 3, 300, 31);
    let inst = scenarios::cab_instance(&graph, 0.4, &traces[0], &traces);
    let epsilon = 5.0;
    println!("K = {} (direct LP solves)", inst.len());

    let mut rows = Vec::new();
    let mut losses = Vec::new();
    for r in [0.4, 0.8, 1.6, f64::INFINITY] {
        let spec = PrivacySpec::full(&inst.aux, epsilon, r);
        let (mech, loss) = solve_direct(&inst.cost, &spec).expect("direct solve");
        assert!(mech.max_violation(&spec) <= 1e-6);
        losses.push(loss);
        rows.push(vec![
            if r.is_finite() {
                format!("{r:.1}")
            } else {
                "inf".into()
            },
            spec.pair_count().to_string(),
            km(loss),
        ]);
    }
    print_table(
        "Extension — quality loss vs protection radius r (eps = 5/km)",
        &["r (km)", "constraint pairs", "ETDD"],
        &rows,
    );
    let monotone = losses.windows(2).all(|w| w[0] <= w[1] + 1e-9);
    println!(
        "\nshape check — wider protection radius costs more: {}",
        if monotone { "PASS" } else { "FAIL" }
    );
}
