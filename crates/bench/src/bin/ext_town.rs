//! Extension: the Fig. 19 comparison under a *single town-wide
//! mechanism* (the alternative reading of the pilot protocol).
//!
//! Region experiments can either solve one mechanism per region
//! (`fig19_regions`) or deploy one mechanism over a town containing
//! both regions and condition the metrics on where the vehicle truly
//! is — the latter matches a worker who downloads one obfuscation
//! function and then drives everywhere. This binary builds a
//! two-district town with `roadnet::compose` (rural west, one-way
//! downtown east), solves a single mechanism, and reports
//! per-district conditional ETDD and AdvError.

use adversary::bayes;
use mobility::{estimate_prior, generate_trace, TraceConfig};
use roadnet::{compose, generators};
use vlp_bench::report::{km, print_table, ratio};
use vlp_bench::scenarios;
use vlp_core::Discretization;

fn main() {
    let west = generators::rural(6, 1.0, 3);
    let east = generators::downtown(4, 4, 0.25);
    let graph = compose::town(&west, &east, 0.5);
    let delta = 0.25;
    let epsilon = 5.0;
    let disc = Discretization::new(&graph, delta);
    let k = disc.len();
    println!(
        "town: {} segments, {:.1} km, {:.0}% one-way, K = {k}",
        graph.edge_count(),
        graph.total_length(),
        100.0 * graph.one_way_fraction()
    );

    // One driver roams the whole town; tasks spread everywhere.
    let cfg = TraceConfig {
        reports: 1500,
        report_period_secs: 20.0,
        ..TraceConfig::default()
    };
    let driver = generate_trace(&graph, &cfg, 23);
    let f_p =
        estimate_prior(&graph, &disc, std::slice::from_ref(&driver), 0.1).expect("driver on map");
    let tasks = scenarios::spread_tasks(k, 40.min(k));
    let inst = scenarios::instance_with_tasks(&graph, delta, f_p, &tasks);
    let (mech, _, _) = scenarios::solve_ours(&inst, epsilon, scenarios::DEFAULT_XI);

    // District of each interval by the true location's x coordinate
    // (the seam sits right of the rural extent).
    let seam = west
        .nodes()
        .iter()
        .map(|v| v.x)
        .fold(f64::NEG_INFINITY, f64::max)
        + 0.25;
    let in_east = |i: usize| {
        let (x, _) = inst.disc.interval(i).midpoint().point(&inst.graph);
        x > seam
    };

    // Conditional metrics per district.
    let est = bayes::optimal_estimates(&mech, &inst.f_p, &inst.interval_dists);
    let mut acc = [(0.0f64, 0.0f64, 0.0f64); 2]; // (mass, etdd, adv)
    for i in 0..k {
        let d = usize::from(in_east(i));
        let fp = inst.f_p.get(i);
        acc[d].0 += fp;
        for (l, &e) in est.iter().enumerate().take(k) {
            acc[d].1 += inst.cost.get(i, l) * mech.prob(i, l);
            acc[d].2 += fp * mech.prob(i, l) * inst.interval_dists.get_min(i, e);
        }
    }
    let rows: Vec<Vec<String>> = [("A rural west", acc[0]), ("B downtown east", acc[1])]
        .iter()
        .map(|(n, (mass, etdd, adv))| {
            vec![
                n.to_string(),
                ratio(*mass),
                km(etdd / mass.max(1e-12)),
                km(adv / mass.max(1e-12)),
            ]
        })
        .collect();
    print_table(
        "Extension — one town-wide mechanism, conditional metrics",
        &[
            "district",
            "prior mass",
            "ETDD | district",
            "AdvError | district",
        ],
        &rows,
    );
    let adv_ratio = (acc[1].2 / acc[1].0) / (acc[0].2 / acc[0].0);
    println!(
        "\nshape check — downtown conditional AdvError exceeds rural: {} (ratio {:.3})",
        if adv_ratio > 1.0 { "PASS" } else { "FAIL" },
        adv_ratio
    );
}
