//! Fig. 12 — effect of the privacy budget ε on our mechanism:
//! (a) quality loss vs ε, (b) AdvError vs ε, (c)(d) the obfuscated
//! location distribution at ε = 10/km vs ε = 2/km.
//!
//! Expected shape: larger ε (weaker privacy) lowers *both* quality loss
//! and AdvError; at large ε the reported-location distribution
//! concentrates around the truth, at small ε it spreads over the map.

use std::io::Write;

use vlp_bench::report::{km, print_table, ratio};
use vlp_bench::scenarios;

fn main() {
    let graph = scenarios::rome_graph();
    let delta = 0.3;
    let traces = scenarios::fleet(&graph, 4, 400, 12);
    let inst = scenarios::cab_instance(&graph, delta, &traces[0], &traces);

    // (a)(b): sweep epsilon.
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for eps in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0] {
        let (mech, _, _) = scenarios::solve_ours(&inst, eps, scenarios::DEFAULT_XI);
        let m = scenarios::evaluate(&inst, &mech);
        series.push((eps, m));
        rows.push(vec![format!("{eps:.0}"), km(m.etdd), km(m.adv_error)]);
    }
    print_table(
        "Fig 12(a)(b) — quality loss and AdvError vs eps",
        &["eps", "ETDD", "AdvError"],
        &rows,
    );

    // (c)(d): distribution heat for one true interval at eps 10 vs 2.
    // Summarized as probability mass within road distance bands of the
    // truth, plus entropy; the full distribution is dumped to JSON for
    // plotting.
    let true_interval = inst.len() / 2;
    let mut rows = Vec::new();
    let mut dump = serde_json::Map::new();
    for eps in [10.0, 2.0] {
        let (mech, _, _) = scenarios::solve_ours(&inst, eps, scenarios::DEFAULT_XI);
        let row = mech.row(true_interval);
        let mass_within = |r: f64| -> f64 {
            row.iter()
                .enumerate()
                .filter(|(j, _)| inst.interval_dists.get_min(true_interval, *j) <= r)
                .map(|(_, &p)| p)
                .sum()
        };
        let entropy: f64 = -row
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>();
        rows.push(vec![
            format!("{eps:.0}"),
            ratio(mass_within(0.2)),
            ratio(mass_within(0.5)),
            ratio(mass_within(1.0)),
            ratio(entropy),
        ]);
        let coords: Vec<serde_json::Value> = row
            .iter()
            .enumerate()
            .map(|(j, &p)| {
                let (x, y) = inst.disc.interval(j).midpoint().point(&inst.graph);
                serde_json::json!({ "x": x, "y": y, "p": p })
            })
            .collect();
        dump.insert(format!("eps_{eps:.0}"), serde_json::Value::Array(coords));
    }
    print_table(
        "Fig 12(c)(d) — obfuscation distribution around the truth",
        &[
            "eps",
            "mass<=0.2km",
            "mass<=0.5km",
            "mass<=1.0km",
            "entropy",
        ],
        &rows,
    );
    let dir = std::path::Path::new("artifacts");
    let path = if dir.is_dir() {
        dir.join("fig12_heatmap.json")
    } else {
        std::env::temp_dir().join("vlp_fig12_heatmap.json")
    };
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "{}", serde_json::Value::Object(dump));
        println!("\nheat-map dump: {}", path.display());
    }

    // Shape checks: both metrics fall as eps rises; eps=10 concentrates
    // more mass near the truth than eps=2.
    let etdd_falls = series.windows(2).all(|w| w[1].1.etdd <= w[0].1.etdd + 1e-6);
    let adv_falls = series.last().expect("nonempty").1.adv_error
        <= series.first().expect("nonempty").1.adv_error + 1e-6;
    let concentrated =
        rows[0][1].parse::<f64>().expect("mass") > rows[1][1].parse::<f64>().expect("mass");
    println!(
        "shape check — ETDD falls with eps: {}",
        if etdd_falls { "PASS" } else { "FAIL" }
    );
    println!(
        "shape check — AdvError falls with eps: {}",
        if adv_falls { "PASS" } else { "FAIL" }
    );
    println!(
        "shape check — eps=10 concentrates vs eps=2: {}",
        if concentrated { "PASS" } else { "FAIL" }
    );
}
