//! Scaled-map gate for the locally-relevant solve mode: serves the
//! same bounded-reach workload on maps of growing size and proves —
//! from committed structural budgets, never wall-clock — that solve
//! cost is independent of map size, emitting the telemetry snapshot as
//! `artifacts/bench_local.json`.
//!
//! The scenario runs one cold batch per map scale against a
//! [`platform::MechanismService`] configured with
//! `local: Some(LocalConfig { rho })` and a finite protection radius.
//! Every request must be served **optimally** (the deadline is
//! generous and the restricted LPs are tiny); every live mechanism is
//! audited against its neighborhood's unreduced restricted Geo-I spec.
//!
//! Gates (all structural — the bench_smoke philosophy):
//!
//! * **Flat curve** — the largest restricted LP at *every* scale fits
//!   the committed [`VARS_BUDGET`], even as the map's interval count
//!   `K` grows by more than [`GROWTH_FLOOR`]× from the smallest to the
//!   largest scale. Solve cost tracks the ρ + r reach ball, not the
//!   map.
//! * **Separation** — at the top scale the *full-shard* LP the classic
//!   engine would have solved (`K_shard²` variables, computed, never
//!   solved) exceeds the budget by at least [`CONTRAST_FLOOR`]×: the
//!   flat curve is a property of the restriction, not of small maps.
//! * **Privacy** — every mechanism the service can serve from passes
//!   `privacy::verify` against the unreduced restricted spec with
//!   full-graph `d_min` exponents at its canonical ε.
//! * **Determinism** — with `--check`, the whole suite runs twice and
//!   all non-timing, non-wall fields must be bit-identical.
//!
//! Wall-clock batch times are recorded under `bench_local.wall.*` for
//! the solve-time-vs-K report, which the determinism projection
//! excludes — reported, never gated.
//!
//! Flags: `--out <path>` (default `artifacts/bench_local.json`),
//! `--check`.

use std::time::{Duration, Instant};

use platform::{LocalConfig, MechanismService, Served, ServiceConfig, WorkerId};
use rand::SeedableRng;
use roadnet::generators;
use serde_json::Value;
use vlp_bench::scenarios::fleet_locations;
use vlp_core::privacy;

/// Seed shared by every stochastic component of the scenario.
const SEED: u64 = 20_260_807;

/// Stable run identifier: bump the suffix when the scenario changes.
const RUN_ID: &str = "bench-local-v1";

/// Popular privacy budgets the fleet rotates through (per km).
const EPSILONS: [f64; 3] = [2.0, 5.0, 10.0];

/// Region shards the map is partitioned into.
const N_SHARDS: usize = 4;

/// Assignment radius ρ of the locality plan, km.
const RHO: f64 = 0.4;

/// Geo-I protection radius r, km. The support of every restricted LP
/// is a ρ + r = 0.9 km road-distance ball.
const RADIUS: f64 = 0.5;

/// Distinct request locations per shard (each picks its own ρ-net
/// neighborhood; with [`EPSILONS`] the cold batch solves up to
/// `N_SHARDS × LOCS_PER_SHARD × 3` restricted LPs).
const LOCS_PER_SHARD: usize = 2;

/// The map scales: `(name, nx, ny)` grid dimensions at 0.4 km spacing.
/// With δ = 0.2 the interval counts are ~152 → ~1100 → ~2912 — a
/// ~19× growth in `K` under an unchanged reach ball.
const SCALES: [(&str, usize, usize); 3] = [("small", 4, 6), ("medium", 10, 15), ("large", 16, 24)];

/// Minimum growth of the map interval count from the smallest to the
/// largest scale. The flat-curve gate is only meaningful when the map
/// actually grows by an order of magnitude.
const GROWTH_FLOOR: f64 = 10.0;

/// Committed budget for the variable count `k²` of the *largest*
/// restricted LP at any scale. The 0.9 km reach ball on these grids
/// saturates at k = 26 intervals (676 variables) once the map is large
/// enough that balls stop being boundary-clipped; the budget allows
/// k = 50 for headroom and holds flat while `K²` grows by ~1000×.
const VARS_BUDGET: u64 = 2_500;

/// Minimum factor by which the top scale's full-shard LP (`K_shard²`
/// variables) must exceed [`VARS_BUDGET`] — the separation that makes
/// the flat curve a claim about the restriction, not the maps.
const CONTRAST_FLOOR: f64 = 25.0;

/// Per-scale structural results feeding the gates.
struct ScaleReport {
    name: &'static str,
    /// Total δ-intervals over all shards.
    k_map: u64,
    /// Largest restricted-LP variable count served at this scale.
    max_lp_vars: u64,
    /// Largest full-shard LP variable count the classic engine would
    /// have needed (`max_s K_s²`) — computed, never solved.
    full_lp_vars: u64,
}

/// Runs one scale: a cold batch served optimally, live-mechanism
/// audits, and the structural measurements.
fn run_scale(name: &'static str, nx: usize, ny: usize) -> ScaleReport {
    let obs = vlp_obs::global();
    let graph = generators::grid(nx, ny, 0.4, true);
    let n_edges = graph.edge_count();
    let mut svc = MechanismService::new(
        graph,
        ServiceConfig {
            n_shards: N_SHARDS,
            delta: 0.2,
            radius: RADIUS,
            local: Some(LocalConfig { rho: RHO }),
            // Generous logical deadline: every cold miss is solved and
            // served optimally — the whole point of the restriction.
            solve_deadline: Duration::from_secs(600),
            ..ServiceConfig::default()
        },
    );
    let locations = fleet_locations(&svc, n_edges, LOCS_PER_SHARD);
    let reqs: Vec<(WorkerId, roadnet::Location, f64)> = (0..locations.len() * EPSILONS.len())
        .map(|w| {
            (
                WorkerId(w),
                locations[w % locations.len()],
                EPSILONS[w % EPSILONS.len()],
            )
        })
        .collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);

    let batch = Instant::now();
    let served = svc.obfuscate_batch(&reqs, &mut rng);
    let batch_time = batch.elapsed();
    assert_eq!(served.len(), reqs.len(), "{name}: every request served");
    for o in &served {
        assert!(
            matches!(o.served, Served::Optimal { .. }),
            "{name}: a locally-relevant cold solve must finish within the deadline \
             and serve optimally, got {:?}",
            o.served
        );
    }

    // Structural measurements. `k_map` is the whole map's interval
    // count; the restricted LPs the batch actually solved are read off
    // the live mechanisms (each is k×k over its neighborhood support).
    let mut k_map = 0u64;
    let mut full_lp_vars = 0u64;
    for s in 0..svc.shard_count() {
        let shard = svc.local_shard(s).expect("service runs in local mode");
        let k_shard = shard.len() as u64;
        k_map += k_shard;
        full_lp_vars = full_lp_vars.max(k_shard * k_shard);
    }
    let mut max_lp_vars = 0u64;
    let mut audited = 0u64;
    for (s, nb, canonical, mech) in svc.live_mechanisms_keyed() {
        let k = mech.len() as u64;
        max_lp_vars = max_lp_vars.max(k * k);
        let shard = svc.local_shard(s).expect("service runs in local mode");
        let spec = shard.audit_spec(nb, canonical);
        assert!(
            privacy::verify(&mech, &spec, 1e-6),
            "{name}: shard {s} neighborhood {nb} mechanism at ε={canonical} \
             violates its restricted Geo-I spec"
        );
        audited += 1;
    }
    assert!(audited > 0, "{name}: audit ran over zero mechanisms");
    obs.incr("bench_local.privacy_audits", audited);
    obs.push(&format!("bench_local.{name}.k_map"), k_map as f64);
    obs.push(
        &format!("bench_local.{name}.max_lp_vars"),
        max_lp_vars as f64,
    );
    obs.push(
        &format!("bench_local.{name}.full_lp_vars"),
        full_lp_vars as f64,
    );
    // Reported, never gated: the solve-time leg of the flat curve.
    obs.push(
        &format!("bench_local.wall.{name}.batch_ms"),
        batch_time.as_secs_f64() * 1e3,
    );

    svc.shutdown();
    ScaleReport {
        name,
        k_map,
        max_lp_vars,
        full_lp_vars,
    }
}

/// Runs every scale against a freshly reset global registry and
/// returns the snapshot plus the per-scale reports.
fn run_suite() -> (Value, Vec<ScaleReport>) {
    let obs = vlp_obs::global();
    obs.reset();
    obs.set_run_id(RUN_ID);
    let total = Instant::now();
    let reports: Vec<ScaleReport> = SCALES
        .iter()
        .map(|&(name, nx, ny)| run_scale(name, nx, ny))
        .collect();
    obs.record_duration("bench_local.total", total.elapsed());
    (obs.snapshot(), reports)
}

/// The deterministic projection of a snapshot: everything except the
/// `timers` section, the `bench_local.wall.*` series, and the `cg.*`
/// per-iteration traces. The traces are flushed as one block per solve
/// by concurrent solver workers, so the *values* are deterministic but
/// the block order is thread-scheduling-dependent; the commutative
/// `cg.*` counters stay in the projection and pin the same work.
fn deterministic(snapshot: &Value) -> Value {
    let mut doc = snapshot.clone();
    if let Some(map) = doc.as_object_mut() {
        map.remove("timers");
        if let Some(mut series) = map.remove("series") {
            if let Some(obj) = series.as_object_mut() {
                let unstable: Vec<String> = obj
                    .keys()
                    .filter(|name| name.starts_with("bench_local.wall.") || name.starts_with("cg."))
                    .cloned()
                    .collect();
                for name in unstable {
                    obj.remove(&name);
                }
            }
            map.insert("series".into(), series);
        }
    }
    doc
}

/// The structural gates; returns an error naming the first violation.
fn check_gates(snapshot: &Value, reports: &[ScaleReport]) -> Result<(), String> {
    vlp_obs::schema::validate_snapshot(snapshot)?;
    for r in reports {
        if r.max_lp_vars > VARS_BUDGET {
            return Err(format!(
                "scale {}: largest restricted LP has {} variables, over the committed \
                 budget of {VARS_BUDGET} — the flat curve broke",
                r.name, r.max_lp_vars
            ));
        }
    }
    let first = reports.first().ok_or("no scales ran")?;
    let last = reports.last().ok_or("no scales ran")?;
    let growth = last.k_map as f64 / first.k_map as f64;
    if growth < GROWTH_FLOOR {
        return Err(format!(
            "map growth {growth:.1}× below the {GROWTH_FLOOR}× floor — the gate is not \
             exercising a scaled map"
        ));
    }
    let contrast = last.full_lp_vars as f64 / VARS_BUDGET as f64;
    if contrast < CONTRAST_FLOOR {
        return Err(format!(
            "top-scale full-shard LP is only {contrast:.1}× the restricted budget \
             (floor {CONTRAST_FLOOR}×) — no separation to demonstrate"
        ));
    }
    if snapshot["counters"]["bench_local.privacy_audits"]
        .as_u64()
        .unwrap_or(0)
        == 0
    {
        return Err("privacy audit ran over zero mechanisms".into());
    }
    if snapshot["counters"][platform::service::metrics::LOCAL_SOLVES]
        .as_u64()
        .unwrap_or(0)
        == 0
    {
        return Err("no locally-relevant solves recorded — the mode never engaged".into());
    }
    Ok(())
}

fn main() {
    let mut out = String::from("artifacts/bench_local.json");
    let mut check = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => out = argv.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag `{other}` (expected --check or --out <path>)");
                std::process::exit(2);
            }
        }
    }

    let (snapshot, reports) = run_suite();
    if let Err(e) = check_gates(&snapshot, &reports) {
        eprintln!("bench_local: FAIL — {e}");
        std::process::exit(1);
    }

    if check {
        let (second, second_reports) = run_suite();
        if let Err(e) = check_gates(&second, &second_reports) {
            eprintln!("bench_local: FAIL (second run) — {e}");
            std::process::exit(1);
        }
        if deterministic(&snapshot) != deterministic(&second) {
            eprintln!("bench_local: FAIL — deterministic fields differ between same-seed runs");
            std::process::exit(1);
        }
        println!("determinism check: deterministic fields identical across two runs");
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create artifact directory");
        }
    }
    let mut doc = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    doc.push('\n');
    std::fs::write(&out, doc).expect("write artifact");

    println!(
        "bench_local: OK — flat-curve gate over {} scales:",
        reports.len()
    );
    for r in &reports {
        let wall = snapshot["series"][format!("bench_local.wall.{}.batch_ms", r.name).as_str()][0]
            .as_f64()
            .unwrap_or(f64::NAN);
        println!(
            "  {:<7} K={:<6} restricted max {:>5} vars (budget {VARS_BUDGET}), \
             full-shard {:>9} vars, batch {wall:.0} ms",
            r.name, r.k_map, r.max_lp_vars, r.full_lp_vars
        );
    }
    println!(
        "  K grew {:.1}× while the restricted LP stayed under budget; top-scale \
         full-shard LP is {:.0}× the budget → {out}",
        reports.last().unwrap().k_map as f64 / reports.first().unwrap().k_map as f64,
        reports.last().unwrap().full_lp_vars as f64 / VARS_BUDGET as f64
    );
}
