//! Fig. 13 — time-efficiency of constraint reduction (CR) and column
//! generation (CG):
//!
//! * (a) number of Geo-I constraints with and without CR, per δ;
//! * (b) convergence of `min_l ζ_l` over CG iterations, per δ;
//! * (c)(d) iterations and ETDD as the stopping threshold ξ varies;
//! * (e) approximation ratio of CG vs the Theorem 4.4 dual bound;
//! * (f) iterations and wall-clock time of CG.
//!
//! Expected shape: CR removes ≥ 99 % of constraints; ζ converges with a
//! long tail that ξ cuts at negligible ETDD cost; the approximation
//! ratio stays close to 1.

use vlp_bench::report::{km, print_table, ratio};
use vlp_bench::scenarios;
use vlp_core::constraint_reduction::reduced_spec;
use vlp_core::PrivacySpec;

fn main() {
    let graph = scenarios::rome_graph();
    let traces = scenarios::fleet(&graph, 3, 400, 13);
    let epsilon = 5.0;
    let deltas = [0.45, 0.30, 0.20];

    // (a) constraint counts.
    let mut rows = Vec::new();
    for &delta in &deltas {
        let inst = scenarios::cab_instance(&graph, delta, &traces[0], &traces);
        let k = inst.len();
        let full = PrivacySpec::full(&inst.aux, epsilon, f64::INFINITY);
        let red = reduced_spec(&inst.aux, epsilon, f64::INFINITY);
        let m = inst.aux.edge_count();
        rows.push(vec![
            format!("{delta:.2}"),
            k.to_string(),
            m.to_string(),
            full.lp_row_count(k).to_string(),
            red.lp_row_count(k).to_string(),
            ratio(1.0 - red.lp_row_count(k) as f64 / full.lp_row_count(k) as f64),
        ]);
    }
    print_table(
        "Fig 13(a) — Geo-I constraint rows with/without CR",
        &["delta", "K", "M", "full rows", "reduced rows", "removed"],
        &rows,
    );
    // The reduction factor is Θ(M/K²) (cubic → quadratic): at the
    // paper's K (thousands) that is >99 %; our single-core-scale K is
    // smaller, so gate on the asymptotic form instead of the constant.
    let removed_ok = rows.iter().all(|r| {
        let k: f64 = r[1].parse().expect("K column");
        let removed: f64 = r[5].parse().expect("removed fraction");
        removed > 1.0 - 8.0 / k
    });
    println!(
        "shape check — CR removes the Θ(1 − M/K²) share of constraints: {}",
        if removed_ok { "PASS" } else { "FAIL" }
    );

    // (b) convergence of min zeta per iteration (tight xi so we see the
    // tail), and (e)(f) ratio/time, per delta.
    let mut conv_rows = Vec::new();
    let mut ef_rows = Vec::new();
    for &delta in &deltas {
        let inst = scenarios::cab_instance(&graph, delta, &traces[0], &traces);
        let (_, loss, diag) = scenarios::solve_ours(&inst, epsilon, -1e-9);
        let zetas: Vec<String> = diag
            .min_zeta_history
            .iter()
            .take(8)
            .map(|z| format!("{z:.4}"))
            .collect();
        conv_rows.push(vec![format!("{delta:.2}"), zetas.join(" ")]);
        let lb = diag.best_dual_bound();
        ef_rows.push(vec![
            format!("{delta:.2}"),
            diag.iterations.to_string(),
            km(loss),
            km(lb),
            ratio(if lb > 0.0 { loss / lb } else { f64::NAN }),
            format!("{:.3}s", diag.wall_time.as_secs_f64()),
        ]);
    }
    print_table(
        "Fig 13(b) — min_l zeta_l per CG iteration",
        &["delta", "zeta trajectory"],
        &conv_rows,
    );
    print_table(
        "Fig 13(e)(f) — CG approximation ratio and runtime",
        &["delta", "iters", "ETDD", "dual LB", "approx ratio", "time"],
        &ef_rows,
    );

    // (c)(d) xi sweep at the middle delta. The gap stop is disabled
    // (gap_tol → 0) so that ξ is the binding termination rule, exactly
    // as in §4.3.3.
    let inst = scenarios::cab_instance(&graph, deltas[1], &traces[0], &traces);
    let spec = reduced_spec(&inst.aux, epsilon, f64::INFINITY);
    let mut rows = Vec::new();
    let mut last: Option<(usize, f64)> = None;
    let mut xi_shape = true;
    for xi in [-1e-1, -1e-2, -1e-3, -1e-4, -1e-9] {
        let opts = vlp_core::CgOptions {
            xi,
            max_iterations: 40,
            gap_tol: 1e-12,
            ..vlp_core::CgOptions::default()
        };
        let (_, loss, diag) =
            vlp_core::solve_column_generation(&inst.cost, &spec, &opts).expect("cg solves");
        if let Some((it, l)) = last {
            // Tightening xi should not reduce iterations, and should
            // not raise the loss beyond numerical noise.
            if diag.iterations < it || loss > l + 1e-4 {
                xi_shape = false;
            }
        }
        last = Some((diag.iterations, loss));
        rows.push(vec![
            format!("{xi:e}"),
            diag.iterations.to_string(),
            km(loss),
        ]);
    }
    print_table(
        "Fig 13(c)(d) — iterations and ETDD vs xi",
        &["xi", "iters", "ETDD"],
        &rows,
    );
    println!(
        "shape check — tighter xi: more iterations, no worse ETDD: {}",
        if xi_shape { "PASS" } else { "FAIL" }
    );
}
