//! Fig. 19 — effect of road-network topology: ETDD and AdvError of our
//! approach in Region A (sparse rural, two-way) vs Region B (dense
//! downtown, one-way heavy).
//!
//! Expected shape (paper): both ETDD and AdvError are substantially
//! higher downtown (ETDD +310 %, AdvError +210 % in the paper's pilot)
//! because obfuscation distorts travel distance more where segments
//! are short and one-way.

use mobility::{estimate_prior, generate_trace, TraceConfig};
use vlp_bench::report::{km, print_table, ratio};
use vlp_bench::scenarios;
use vlp_core::Discretization;

fn main() {
    let epsilon = 5.0;
    let mut out: Vec<(String, scenarios::Metrics)> = Vec::new();
    for (name, graph, delta) in [
        ("A (rural)", scenarios::region_a(), 0.25),
        ("B (downtown)", scenarios::region_b(), 0.25),
    ] {
        let disc = Discretization::new(&graph, delta);
        let k = disc.len();
        let cfg = TraceConfig {
            reports: 800,
            report_period_secs: 20.0,
            ..TraceConfig::default()
        };
        let driver = generate_trace(&graph, &cfg, 19);
        let f_p = estimate_prior(&graph, &disc, &[driver], scenarios::PRIOR_SMOOTHING)
            .expect("driver on map");
        // 50 tasks spread over the region (capped by K).
        let tasks = scenarios::spread_tasks(k, 50.min(k));
        let inst = scenarios::instance_with_tasks(&graph, delta, f_p, &tasks);
        let (mech, _, _) = scenarios::solve_ours(&inst, epsilon, scenarios::DEFAULT_XI);
        let m = scenarios::evaluate(&inst, &mech);
        out.push((name.to_string(), m));
    }
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|(n, m)| vec![n.clone(), km(m.etdd), km(m.adv_error)])
        .collect();
    print_table(
        "Fig 19 — region topology vs ETDD / AdvError",
        &["region", "ETDD", "AdvError"],
        &rows,
    );

    let (a, b) = (&out[0].1, &out[1].1);
    println!(
        "\ndowntown/rural ratios — ETDD: {}, AdvError: {}",
        ratio(b.etdd / a.etdd),
        ratio(b.adv_error / a.adv_error)
    );
    println!(
        "shape check — downtown has higher AdvError: {}",
        if b.adv_error > a.adv_error {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "shape check — downtown has higher ETDD (paper): {}",
        if b.etdd > a.etdd {
            "PASS"
        } else {
            "FAIL (documented deviation — see EXPERIMENTS.md: optimal \
             per-region mechanisms obfuscate dense grids nearly for free)"
        }
    );
}
