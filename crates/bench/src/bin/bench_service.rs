//! Service-layer benchmark: drives [`platform::MechanismService`] with
//! a repeated-ε, multi-region obfuscation workload and emits the
//! telemetry snapshot as `artifacts/bench_service.json`.
//!
//! The workload is the serving pattern the sharded layer is built for:
//! a fleet spread over every region shard, each vehicle requesting one
//! of a few popular ε budgets, batch after batch. The first batch is
//! all cache misses (served from the graph-Laplace fallback under a
//! zero deadline, so the run is deterministic); every later batch hits
//! the `(shard, ε-bucket)` LRU cache.
//!
//! The binary enforces the service acceptance gates:
//!
//! * cache hit rate ≥ [`HIT_RATE_FLOOR`] across the workload;
//! * every served mechanism — cached optimum and fallback alike —
//!   passes `privacy::verify` against the *full* Geo-I constraint set
//!   at its canonical ε;
//! * the quality ladder is ordered: solving shard 0 at every rung,
//!   ETDD satisfies exact ≤ clustered ≤ spanner ≤ graph-Laplace, and
//!   every rung's mechanism passes the full-spec privacy audit. The
//!   measured per-tier ETDD lands in the artifact as
//!   `bench_service.tier.etdd.<tier>` (plus the ratio against the
//!   exact optimum as `bench_service.tier.etdd_vs_optimal.<tier>`).
//!
//! Flags: `--out <path>` (default `artifacts/bench_service.json`),
//! `--batches <n>`, `--fleet <n>`.

use std::time::{Duration, Instant};

use platform::{service, MechanismService, Served, ServiceConfig, WorkerId};
use roadnet::{generators, Location};
use vlp_bench::scenarios::fleet_locations;
use vlp_core::{privacy, CgOptions, QualityTier};

/// Popular privacy budgets the fleet rotates through (per km).
const EPSILONS: [f64; 3] = [2.0, 5.0, 10.0];

/// Region shards the map is partitioned into.
const N_SHARDS: usize = 4;

/// Minimum acceptable cache hit rate on the repeated-ε workload.
const HIT_RATE_FLOOR: f64 = 0.90;

/// Super-interval width (km) used for the clustered rung of the tier
/// sweep — the `TierPolicy` default.
const CLUSTER_WIDTH: f64 = 0.3;

/// Stretch bound used for the spanner rung of the tier sweep — the
/// `TierPolicy` default. At stretch 2 the spanner rung beats the
/// clustered one on this map; 2.5 keeps the ladder's quality ordering
/// strict while still far cheaper than the exact LP.
const SPANNER_STRETCH: f64 = 2.5;

/// Slack for the tier ETDD ordering gate (the rungs are distinct
/// relaxations; ties up to float noise are legal).
const TIER_ORDER_SLACK: f64 = 1e-9;

fn main() {
    let mut out = String::from("artifacts/bench_service.json");
    let mut batches = 40usize;
    let mut fleet = 60usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => out = argv.next().expect("--out needs a path"),
            "--batches" => {
                batches = argv
                    .next()
                    .expect("--batches needs a count")
                    .parse()
                    .expect("--batches needs an integer")
            }
            "--fleet" => {
                fleet = argv
                    .next()
                    .expect("--fleet needs a count")
                    .parse()
                    .expect("--fleet needs an integer")
            }
            other => {
                eprintln!(
                    "unknown flag `{other}` (expected --out <path>, --batches <n>, --fleet <n>)"
                );
                std::process::exit(2);
            }
        }
    }

    let obs = vlp_obs::global();
    obs.reset();
    obs.set_run_id("bench-service-v2");
    let total = Instant::now();

    // A city-like map: large enough that each of the four shards keeps
    // a real road structure after banding.
    let graph = generators::grid(4, 6, 0.4, true);
    let n_edges = graph.edge_count();
    let mut svc = MechanismService::new(
        graph,
        ServiceConfig {
            n_shards: N_SHARDS,
            delta: 0.2,
            // Zero deadline keeps the run deterministic: the cold batch
            // is served entirely from the fallback while the solves
            // land in the cache before the call returns.
            solve_deadline: Duration::ZERO,
            ..ServiceConfig::default()
        },
    );
    let locations = fleet_locations(&svc, n_edges, fleet.div_ceil(N_SHARDS));

    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(20_260_807);
    let mut served_optimal = 0u64;
    let mut served_fallback = 0u64;
    let mut requests_total = 0u64;
    for _batch in 0..batches {
        let reqs: Vec<(WorkerId, Location, f64)> = (0..fleet)
            .map(|w| {
                (
                    WorkerId(w),
                    locations[w % locations.len()],
                    EPSILONS[w % EPSILONS.len()],
                )
            })
            .collect();
        requests_total += reqs.len() as u64;
        for o in svc.obfuscate_batch(&reqs, &mut rng) {
            match o.served {
                Served::Optimal { .. } => served_optimal += 1,
                // This workload injects no faults, so stale serving
                // never engages; count it defensively.
                Served::Stale { .. } | Served::Fallback => served_fallback += 1,
            }
        }
    }
    let elapsed = total.elapsed();

    // Audit every mechanism the workload served: the cached optimum
    // and the fallback of each (shard, ε) against the full (unreduced)
    // Geo-I constraint set at the canonical ε.
    let mut audited = 0usize;
    for s in 0..svc.shard_count() {
        let inst = svc.shard_instance(s);
        for &eps in &EPSILONS {
            let canonical = svc.canonical_epsilon(eps);
            let spec = vlp_core::PrivacySpec::full(&inst.aux, canonical, f64::INFINITY);
            let cached = svc
                .cached_mechanism(s, eps)
                .expect("workload solved every (shard, ε) key");
            assert!(
                privacy::verify(&cached, &spec, 1e-6),
                "cached mechanism for shard {s} at ε={canonical} violates Geo-I"
            );
            let fallback = svc
                .fallback_mechanism(s, eps)
                .expect("cold batch built every fallback");
            assert!(
                privacy::verify(&fallback, &spec, 1e-6),
                "fallback for shard {s} at ε={canonical} violates Geo-I"
            );
            audited += 2;
        }
    }

    // Tier quality sweep: solve shard 0 at every rung of the quality
    // ladder, audit each rung against the full (unreduced) Geo-I spec,
    // and gate the ETDD ordering exact ≤ clustered ≤ spanner ≤
    // graph-Laplace. The intermediate tiers trade optimality for solve
    // time, never privacy — so the audit is at the ladder's canonical
    // ε for every rung.
    let tier_eps = svc.canonical_epsilon(EPSILONS[1]);
    let inst = svc.shard_instance(0);
    let opts = CgOptions::default();
    let exact = inst
        .solve(tier_eps, f64::INFINITY, &opts)
        .expect("exact rung solves");
    let clustered = inst
        .solve_clustered(tier_eps, f64::INFINITY, CLUSTER_WIDTH, &opts)
        .expect("clustered rung solves");
    let spanner = inst
        .solve_spanner(tier_eps, SPANNER_STRETCH, &opts)
        .expect("spanner rung solves");
    let laplace = inst.fallback(tier_eps);
    let tier_etdd = [
        exact.quality_loss,
        clustered.quality_loss,
        spanner.quality_loss,
        laplace.quality_loss(&inst.cost),
    ];
    let full_spec = vlp_core::PrivacySpec::full(&inst.aux, tier_eps, f64::INFINITY);
    for (tier, mech) in QualityTier::ALL.into_iter().zip([
        &exact.mechanism,
        &clustered.mechanism,
        &spanner.mechanism,
        &laplace,
    ]) {
        assert!(
            privacy::verify(mech, &full_spec, 1e-6),
            "{} rung violates full Geo-I at ε={tier_eps}",
            tier.label()
        );
        audited += 1;
    }
    for (pair, losses) in QualityTier::ALL.windows(2).zip(tier_etdd.windows(2)) {
        assert!(
            losses[0] <= losses[1] + TIER_ORDER_SLACK,
            "tier ETDD ordering violated: {} = {} > {} = {}",
            pair[0].label(),
            losses[0],
            pair[1].label(),
            losses[1]
        );
    }
    for (tier, loss) in QualityTier::ALL.into_iter().zip(tier_etdd) {
        obs.push(&format!("bench_service.tier.etdd.{}", tier.label()), loss);
        obs.push(
            &format!("bench_service.tier.etdd_vs_optimal.{}", tier.label()),
            loss / exact.quality_loss,
        );
    }

    let hits = obs.counter(service::metrics::CACHE_HITS);
    let misses = obs.counter(service::metrics::CACHE_MISSES);
    let hit_rate = hits as f64 / (hits + misses) as f64;
    let fallback_share = served_fallback as f64 / (served_optimal + served_fallback) as f64;
    let throughput = requests_total as f64 / elapsed.as_secs_f64();
    obs.push("bench_service.hit_rate", hit_rate);
    obs.push("bench_service.fallback_share", fallback_share);
    obs.push("bench_service.throughput_rps", throughput);
    obs.incr("bench_service.mechanisms_audited", audited as u64);
    obs.record_duration("bench_service.total", elapsed);

    let snapshot = obs.snapshot();
    if let Err(e) = vlp_obs::schema::validate_snapshot(&snapshot) {
        eprintln!("bench_service: FAIL — invalid snapshot: {e}");
        std::process::exit(1);
    }
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create artifact directory");
        }
    }
    let mut doc = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    doc.push('\n');
    std::fs::write(&out, doc).expect("write artifact");

    if hit_rate < HIT_RATE_FLOOR {
        eprintln!(
            "bench_service: FAIL — cache hit rate {:.1}% below the {:.0}% floor",
            hit_rate * 100.0,
            HIT_RATE_FLOOR * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench_service: OK — {requests_total} requests over {batches} batches × {N_SHARDS} shards, \
         {:.1}% cache hits, {:.1}% fallback-served, {:.0} req/s, {audited} mechanisms audited; \
         tier ETDD exact {:.4} ≤ clustered {:.4} ≤ spanner {:.4} ≤ laplace {:.4} → {out}",
        hit_rate * 100.0,
        fallback_share * 100.0,
        throughput,
        tier_etdd[0],
        tier_etdd[1],
        tier_etdd[2],
        tier_etdd[3]
    );
}
