//! Ablation: which column-generation stabilizations matter?
//!
//! DESIGN.md calls out three solver design choices beyond the paper's
//! plain CG loop: (1) seeding the master with feasible
//! exponential-decay columns, (2) Wentges dual smoothing, and (3) the
//! variable floor inside pricing (always on — without it the master is
//! numerically unsolvable at scale). This binary re-solves one instance
//! with each stabilization toggled and reports objective, iterations,
//! and wall time.

use vlp_bench::report::{km, print_table};
use vlp_bench::scenarios;
use vlp_core::constraint_reduction::reduced_spec;
use vlp_core::{solve_column_generation, CgOptions};

fn main() {
    let graph = scenarios::rome_graph();
    let traces = scenarios::fleet(&graph, 3, 300, 55);
    let inst = scenarios::cab_instance(&graph, 0.3, &traces[0], &traces);
    let spec = reduced_spec(&inst.aux, 5.0, f64::INFINITY);
    println!("K = {}", inst.len());

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (name, seed, smooth) in [
        ("full (seeds + smoothing)", true, true),
        ("no dual smoothing", true, false),
        ("no seed columns", false, true),
        ("plain CG (neither)", false, false),
    ] {
        let opts = CgOptions {
            xi: scenarios::DEFAULT_XI,
            max_iterations: 25,
            parallel: true,
            gap_tol: 0.02,
            seed_decay_columns: seed,
            dual_smoothing: smooth,
            warm_start: true,
        };
        let t = std::time::Instant::now();
        let (_, obj, diag) = solve_column_generation(&inst.cost, &spec, &opts).expect("cg solves");
        let dt = t.elapsed();
        results.push((name, obj));
        rows.push(vec![
            name.to_string(),
            km(obj),
            km(diag.best_dual_bound()),
            diag.iterations.to_string(),
            format!("{:.2}s", dt.as_secs_f64()),
        ]);
    }
    print_table(
        "Ablation — CG stabilizations (eps = 5/km)",
        &["variant", "ETDD", "dual LB", "iters", "time"],
        &rows,
    );
    let full = results[0].1;
    let plain = results[3].1;
    println!(
        "\nshape check — stabilized CG is no worse than plain: {}",
        if full <= plain + 1e-6 { "PASS" } else { "FAIL" }
    );
}
