//! Deterministic smoke benchmark for CI: runs the full pipeline
//! (discretize → constraint reduction → column generation → snapshot
//! assignment) on a fixed-seed grid scenario and emits the workspace
//! telemetry snapshot as `artifacts/bench_smoke.json`.
//!
//! The artifact is schema-validated (`vlp_obs::schema`) and checked for
//! the signals CI gates on: nonzero simplex pivot counts, populated CG
//! iteration histories, and an end-to-end wall-time timer. Timings are
//! recorded but never gated — only structure and deterministic fields
//! are.
//!
//! Flags:
//!
//! * `--out <path>` — artifact destination (default
//!   `artifacts/bench_smoke.json`);
//! * `--check` — run the scenario twice and fail unless all non-timing
//!   fields (counters, series, run id) are identical across runs;
//! * `--max-pivots <n>` — override the committed pivot budget
//!   ([`PIVOT_BUDGET`]).

use std::time::Instant;

use platform::{Server, ServerConfig, Simulation, SimulationConfig};
use roadnet::generators;
use serde_json::Value;
use vlp_bench::scenarios;

/// Seed shared by every stochastic component of the scenario.
const SEED: u64 = 20_260_807;

/// Stable run identifier: bump the suffix when the scenario changes.
const RUN_ID: &str = "bench-smoke-v2";

/// Committed budget for total simplex pivots across the scenario — a
/// speed-independent regression gate on solver work. The warm-started
/// CG engine runs the scenario in ~61k pivots (the cold-solve baseline
/// was ~189k); the budget leaves headroom for benign drift while still
/// failing loudly if warm starts stop engaging.
const PIVOT_BUDGET: u64 = 75_000;

/// Runs the fixed scenario against a freshly reset global registry and
/// returns the resulting telemetry snapshot.
fn run_pipeline() -> Value {
    let obs = vlp_obs::global();
    obs.reset();
    obs.set_run_id(RUN_ID);
    let total = Instant::now();

    // Solver leg: grid map, small fleet, CR + CG solve.
    let graph = generators::grid(4, 4, 0.4, true);
    let traces = scenarios::fleet(&graph, 3, 200, SEED);
    let inst = scenarios::cab_instance(&graph, 0.4, &traces[0], &traces);
    let (mech, etdd, diag) = scenarios::solve_ours(&inst, 5.0, scenarios::DEFAULT_XI);
    assert!(mech.is_row_stochastic(1e-6), "CG produced a non-mechanism");
    obs.push("bench_smoke.etdd_km", etdd);
    obs.incr("bench_smoke.cg_iterations", diag.iterations as u64);

    // Platform leg: simulated workers report, get matched, and drive —
    // exercises snapshot latency and assignment-distortion telemetry.
    let server = Server::bootstrap(
        generators::grid(3, 3, 0.4, true),
        ServerConfig {
            delta: 0.2,
            ..ServerConfig::default()
        },
    )
    .expect("bootstrap solve must succeed on the smoke grid");
    let mut sim = Simulation::new(
        server,
        SimulationConfig {
            n_workers: 6,
            ..SimulationConfig::default()
        },
        SEED,
    );
    let report = sim.run(45);
    obs.incr("bench_smoke.assigned_tasks", report.assigned_tasks as u64);

    // Warm-start hit rate across every LP solved above (counters are
    // deterministic, so this series survives the --check gate).
    let warm = obs.counter(lpsolve::metrics::WARM_RESOLVES);
    let cold = obs.counter(lpsolve::metrics::WARM_COLD_SOLVES);
    if warm + cold > 0 {
        obs.push(
            "bench_smoke.warm_hit_rate",
            warm as f64 / (warm + cold) as f64,
        );
    }

    obs.record_duration("bench_smoke.total", total.elapsed());
    obs.snapshot()
}

/// The non-timing projection of a snapshot: everything except the
/// `timers` section, whose nanosecond fields legitimately vary between
/// runs (their `count`s are deterministic but ride along).
fn non_timing(snapshot: &Value) -> Value {
    let mut doc = snapshot.clone();
    if let Some(map) = doc.as_object_mut() {
        map.remove("timers");
    }
    doc
}

/// Asserts the structural signals CI gates on; returns an error message
/// naming the first missing signal.
fn check_signals(snapshot: &Value) -> Result<(), String> {
    vlp_obs::schema::validate_snapshot(snapshot)?;
    let pivots = snapshot["counters"][lpsolve::metrics::PIVOTS]
        .as_u64()
        .unwrap_or(0);
    if pivots == 0 {
        return Err("simplex pivot count is zero — solver telemetry not wired".into());
    }
    for series in [
        vlp_core::column_generation::metrics::MASTER_OBJECTIVE,
        vlp_core::column_generation::metrics::DUAL_BOUND,
        vlp_core::column_generation::metrics::MIN_ZETA,
    ] {
        if snapshot["series"][series]
            .as_array()
            .is_none_or(|a| a.is_empty())
        {
            return Err(format!("CG series `{series}` is missing or empty"));
        }
    }
    let total = &snapshot["timers"]["bench_smoke.total"];
    if total["total_ns"].as_u64().unwrap_or(0) == 0 {
        return Err("end-to-end wall-time timer is missing".into());
    }
    if snapshot["series"][platform::metrics::ASSIGNMENT_DISTORTION_KM]
        .as_array()
        .is_none_or(|a| a.is_empty())
    {
        return Err("assignment-distortion series is missing or empty".into());
    }
    Ok(())
}

fn main() {
    let mut out = String::from("artifacts/bench_smoke.json");
    let mut check = false;
    let mut max_pivots = PIVOT_BUDGET;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => out = argv.next().expect("--out needs a path"),
            "--max-pivots" => {
                max_pivots = argv
                    .next()
                    .expect("--max-pivots needs a count")
                    .parse()
                    .expect("--max-pivots needs an integer")
            }
            other => {
                eprintln!(
                    "unknown flag `{other}` (expected --check, --out <path>, or --max-pivots <n>)"
                );
                std::process::exit(2);
            }
        }
    }

    let snapshot = run_pipeline();
    if let Err(e) = check_signals(&snapshot) {
        eprintln!("bench_smoke: FAIL — {e}");
        std::process::exit(1);
    }

    if check {
        let second = run_pipeline();
        if let Err(e) = check_signals(&second) {
            eprintln!("bench_smoke: FAIL (second run) — {e}");
            std::process::exit(1);
        }
        if non_timing(&snapshot) != non_timing(&second) {
            eprintln!("bench_smoke: FAIL — non-timing fields differ between same-seed runs");
            eprintln!(
                "first:  {}",
                serde_json::to_string(&non_timing(&snapshot)).unwrap()
            );
            eprintln!(
                "second: {}",
                serde_json::to_string(&non_timing(&second)).unwrap()
            );
            std::process::exit(1);
        }
        println!("determinism check: non-timing fields identical across two runs");
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create artifact directory");
        }
    }
    let mut doc = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    doc.push('\n');
    std::fs::write(&out, doc).expect("write artifact");

    let pivots = snapshot["counters"][lpsolve::metrics::PIVOTS]
        .as_u64()
        .unwrap();
    if pivots > max_pivots {
        eprintln!(
            "bench_smoke: FAIL — {pivots} simplex pivots exceed the budget of {max_pivots} \
             (warm starts regressed?)"
        );
        std::process::exit(1);
    }
    let solves = snapshot["counters"][lpsolve::metrics::SOLVES]
        .as_u64()
        .unwrap_or(0);
    let warm_rate = snapshot["series"]["bench_smoke.warm_hit_rate"][0]
        .as_f64()
        .unwrap_or(0.0);
    let total_ns = snapshot["timers"]["bench_smoke.total"]["total_ns"]
        .as_u64()
        .unwrap();
    println!(
        "bench_smoke: OK — {solves} LP solves, {pivots} pivots (budget {max_pivots}), \
         {:.1}% warm, {:.2}s end-to-end → {out}",
        warm_rate * 100.0,
        total_ns as f64 / 1e9
    );
}
