//! Fig. 14 — multi-vehicle task assignment: total true travel distance
//! when the server assigns tasks using obfuscated locations produced by
//! our mechanism vs 2Db, across ε.
//!
//! Protocol (§5.1): deploy tasks and vehicles over the map; each
//! vehicle reports an obfuscated interval; the server estimates
//! vehicle→task travel costs from the *reported* intervals and solves
//! the minimum-cost assignment (Hungarian); the metric is the *true*
//! total travel distance of the chosen vehicles. Expected shape: our
//! mechanism yields lower totals because its distance estimates are
//! less distorted.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vlp_bench::report::{km, print_table};
use vlp_bench::scenarios;
use vlp_core::Mechanism;

fn main() {
    let graph = scenarios::rome_graph();
    let delta = 0.3;
    let n_vehicles = 30;
    let n_tasks = 20;
    let rounds = 10;
    let traces = scenarios::fleet(&graph, 4, 400, 14);
    let inst = scenarios::cab_instance(&graph, delta, &traces[0], &traces);
    let k = inst.len();

    let mut rows = Vec::new();
    let mut wins = 0usize;
    let mut total = 0usize;
    for eps in [1.0, 2.0, 4.0, 6.0, 8.0, 10.0] {
        let (ours, _, _) = scenarios::solve_ours(&inst, eps, scenarios::DEFAULT_XI);
        let twodb = scenarios::solve_2db(&inst, eps);
        let t_ours = assignment_cost(&inst, &ours, n_vehicles, n_tasks, rounds, eps as u64);
        let t_2db = assignment_cost(&inst, &twodb, n_vehicles, n_tasks, rounds, eps as u64);
        let t_true = true_location_cost(&inst, n_vehicles, n_tasks, rounds, eps as u64);
        total += 1;
        if t_ours <= t_2db {
            wins += 1;
        }
        rows.push(vec![format!("{eps:.0}"), km(t_ours), km(t_2db), km(t_true)]);
    }
    let _ = k;
    print_table(
        "Fig 14 — total true travel distance of the assignment (km)",
        &["eps", "ours", "2Db", "no obfuscation"],
        &rows,
    );
    println!(
        "\nshape check — ours beats 2Db on most eps: {} ({wins}/{total})",
        if wins * 2 > total { "PASS" } else { "FAIL" }
    );
}

/// Average total true travel distance over `rounds` random deployments
/// when vehicle locations pass through `mech` before assignment.
fn assignment_cost(
    inst: &vlp_core::VlpInstance,
    mech: &Mechanism,
    n_vehicles: usize,
    n_tasks: usize,
    rounds: usize,
    seed: u64,
) -> f64 {
    let mut total = 0.0;
    for r in 0..rounds {
        let (vehicles, tasks) = deploy(inst, n_vehicles, n_tasks, seed * 1000 + r as u64);
        let mut rng = StdRng::seed_from_u64(seed * 7777 + r as u64);
        let reported: Vec<usize> = vehicles
            .iter()
            .map(|&v| mech.sample_interval(v, &mut rng))
            .collect();
        total += assign_and_measure(inst, &vehicles, &reported, &tasks);
    }
    total / rounds as f64
}

/// The no-privacy reference: assignment computed from true locations.
fn true_location_cost(
    inst: &vlp_core::VlpInstance,
    n_vehicles: usize,
    n_tasks: usize,
    rounds: usize,
    seed: u64,
) -> f64 {
    let mut total = 0.0;
    for r in 0..rounds {
        let (vehicles, tasks) = deploy(inst, n_vehicles, n_tasks, seed * 1000 + r as u64);
        total += assign_and_measure(inst, &vehicles, &vehicles, &tasks);
    }
    total / rounds as f64
}

/// Draws vehicle intervals from the fleet prior and task intervals from
/// the task prior.
fn deploy(
    inst: &vlp_core::VlpInstance,
    n_vehicles: usize,
    n_tasks: usize,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let vehicles: Vec<usize> = (0..n_vehicles).map(|_| inst.f_p.sample(&mut rng)).collect();
    let tasks: Vec<usize> = (0..n_tasks).map(|_| inst.f_q.sample(&mut rng)).collect();
    (vehicles, tasks)
}

/// Hungarian-assigns tasks (rows) to vehicles (columns) using estimated
/// costs from `reported` intervals, then sums the true travel
/// distances of the matched vehicles.
fn assign_and_measure(
    inst: &vlp_core::VlpInstance,
    vehicles: &[usize],
    reported: &[usize],
    tasks: &[usize],
) -> f64 {
    let est: Vec<Vec<f64>> = tasks
        .iter()
        .map(|&t| {
            reported
                .iter()
                .map(|&v| inst.interval_dists.get(v, t))
                .collect()
        })
        .collect();
    let a = assignment::hungarian(&est).expect("tasks <= vehicles");
    a.pairs
        .iter()
        .enumerate()
        .map(|(task_idx, &veh_idx)| inst.interval_dists.get(vehicles[veh_idx], tasks[task_idx]))
        .sum()
}
