//! Extension: how much more does the HMM adversary gain when vehicles
//! run *destination-directed trips* instead of random walks?
//!
//! Fig. 15's threat analysis uses random-walk mobility. Real taxi
//! motion is trip-structured (drive to a destination, dwell, repeat),
//! which makes consecutive reports far more predictable — transitions
//! concentrate along shortest paths. This experiment obfuscates both
//! kinds of trajectories with the same mechanism and compares the
//! Viterbi adversary's error, quantifying how optimistic the
//! random-walk threat model is.

use adversary::hmm;
use mobility::{generate_trace, generate_trip_trace, interval_trace, TraceConfig, TripConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vlp_bench::report::{km, print_table};
use vlp_bench::scenarios;

fn main() {
    let graph = scenarios::rome_graph();
    let delta = 0.3;
    let traces = scenarios::fleet(&graph, 4, 400, 61);
    let inst = scenarios::cab_instance(&graph, delta, &traces[0], &traces);
    let epsilon = 5.0;
    let (mech, _, _) = scenarios::solve_ours(&inst, epsilon, scenarios::DEFAULT_XI);

    // Two mobility models at the same reporting period.
    let period = 60.0;
    let walk_cfg = TraceConfig {
        reports: 400,
        report_period_secs: period,
        ..TraceConfig::default()
    };
    let trip_cfg = TripConfig {
        reports: 400,
        report_period_secs: period,
        mean_dwell_reports: 3.0,
        ..TripConfig::default()
    };

    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for (name, seqs) in [
        (
            "random walk",
            (0..4)
                .map(|s| {
                    interval_trace(
                        &graph,
                        &inst.disc,
                        &generate_trace(&graph, &walk_cfg, 100 + s),
                    )
                })
                .collect::<Vec<_>>(),
        ),
        (
            "trips",
            (0..4)
                .map(|s| {
                    interval_trace(
                        &graph,
                        &inst.disc,
                        &generate_trip_trace(&graph, &trip_cfg, 100 + s),
                    )
                })
                .collect::<Vec<_>>(),
        ),
    ] {
        // Adversary learns transitions from three vehicles, attacks the
        // fourth.
        let trans = hmm::TransitionMatrix::learn(inst.len(), &seqs[..3], 0.05);
        let truth = &seqs[3];
        let mut rng = StdRng::seed_from_u64(5);
        let observed: Vec<usize> = truth
            .iter()
            .map(|&i| mech.sample_interval(i, &mut rng))
            .collect();
        let viterbi = hmm::viterbi(&trans, &inst.f_p, &mech, &observed);
        let marginals = hmm::forward_backward(&trans, &inst.f_p, &mech, &observed);
        let marginal = hmm::decode_marginals(&marginals);
        let v_err = hmm::trajectory_error(truth, &viterbi, &inst.interval_dists);
        let m_err = hmm::trajectory_error(truth, &marginal, &inst.interval_dists);
        gains.push(v_err.min(m_err));
        rows.push(vec![name.to_string(), km(v_err), km(m_err)]);
    }
    print_table(
        "Extension — HMM adversary vs mobility model (eps = 5/km, 60 s period)",
        &["mobility", "Viterbi err", "marginal err"],
        &rows,
    );
    println!(
        "\nshape check — trip mobility leaks more (lower adversary error): {}",
        if gains[1] <= gains[0] + 1e-9 {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
