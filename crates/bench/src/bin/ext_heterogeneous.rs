//! Extension (§7 future work): heterogeneous QoS preferences over
//! regions.
//!
//! The paper's conclusion proposes letting workers "tolerate less
//! quality loss in downtown than in suburban areas". We implement this
//! by scaling the Eq. 19 cost rows with a per-interval sensitivity
//! (`CostMatrix::build_weighted`) and measure how the optimizer
//! redistributes distortion: with downtown rows weighted 3×, the
//! *unweighted* quality loss incurred in downtown intervals should fall
//! relative to the unweighted solve at the same ε, at the cost of
//! extra distortion in the suburbs.

use vlp_bench::report::{km, print_table, ratio};
use vlp_bench::scenarios;
use vlp_core::constraint_reduction::reduced_spec;
use vlp_core::{solve_column_generation, CostMatrix, Mechanism};

fn main() {
    let graph = scenarios::rome_graph();
    let traces = scenarios::fleet(&graph, 3, 400, 77);
    let inst = scenarios::cab_instance(&graph, 0.3, &traces[0], &traces);
    let k = inst.len();
    let epsilon = 5.0;

    // Downtown = intervals within 0.33 km of the centre (the inner
    // ring and its radials; ring-2 chord midpoints sit at ~0.40 km).
    let downtown: Vec<bool> = (0..k)
        .map(|i| {
            let (x, y) = inst.disc.interval(i).midpoint().point(&inst.graph);
            (x * x + y * y).sqrt() < 0.33
        })
        .collect();
    let n_downtown = downtown.iter().filter(|&&d| d).count();
    println!("{n_downtown}/{k} intervals classified downtown");

    let spec = reduced_spec(&inst.aux, epsilon, f64::INFINITY);
    let opts = scenarios::cg_options(scenarios::DEFAULT_XI);

    // Baseline: plain Eq. 19 cost.
    let (plain, _, _) = solve_column_generation(&inst.cost, &spec, &opts).expect("plain solve");
    // Weighted: downtown distortions cost 3x.
    let sens: Vec<f64> = downtown
        .iter()
        .map(|&d| if d { 3.0 } else { 1.0 })
        .collect();
    let weighted_cost =
        CostMatrix::build_weighted(&inst.interval_dists, &inst.f_p, &inst.f_q, &sens);
    let (weighted, _, _) =
        solve_column_generation(&weighted_cost, &spec, &opts).expect("weighted solve");

    // Evaluate both with the *unweighted* cost, split by region of the
    // true location.
    let split = |mech: &Mechanism| -> (f64, f64) {
        let mut dt = 0.0;
        let mut sub = 0.0;
        for (i, &is_dt) in downtown.iter().enumerate() {
            for l in 0..k {
                let v = inst.cost.get(i, l) * mech.prob(i, l);
                if is_dt {
                    dt += v;
                } else {
                    sub += v;
                }
            }
        }
        (dt, sub)
    };
    let (p_dt, p_sub) = split(&plain);
    let (w_dt, w_sub) = split(&weighted);
    print_table(
        "Extension — ETDD split by region of the true location",
        &["variant", "downtown ETDD", "suburb ETDD", "total"],
        &[
            vec!["plain".into(), km(p_dt), km(p_sub), km(p_dt + p_sub)],
            vec![
                "downtown-weighted".into(),
                km(w_dt),
                km(w_sub),
                km(w_dt + w_sub),
            ],
        ],
    );
    println!(
        "\ndowntown ETDD change: {} (want < 1), suburb change: {}",
        ratio(w_dt / p_dt.max(1e-12)),
        ratio(w_sub / p_sub.max(1e-12))
    );
    println!(
        "shape check — weighting shifts loss out of downtown: {}",
        if w_dt <= p_dt + 1e-9 { "PASS" } else { "FAIL" }
    );
}
