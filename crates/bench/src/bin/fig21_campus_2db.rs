//! Fig. 21 — pilot study: ours vs the 2-D-based method in Regions A
//! and B.
//!
//! Expected shape (paper): our ETDD is lower (−7.41 % in A, −10.71 %
//! in B) and our AdvError higher (+5.21 % in A, +8.64 % in B); the
//! advantage is larger downtown, where Euclidean distance is a worse
//! proxy for travel distance.

use mobility::{estimate_prior, generate_trace, TraceConfig};
use vlp_bench::report::{km, print_table, ratio};
use vlp_bench::scenarios;
use vlp_core::Discretization;

fn main() {
    let epsilon = 5.0;
    let mut gains = Vec::new();
    for (name, graph, delta) in [
        ("A (rural)", scenarios::region_a(), 0.25),
        ("B (downtown)", scenarios::region_b(), 0.25),
    ] {
        let disc = Discretization::new(&graph, delta);
        let k = disc.len();
        let cfg = TraceConfig {
            reports: 800,
            report_period_secs: 20.0,
            ..TraceConfig::default()
        };
        let driver = generate_trace(&graph, &cfg, 21);
        let f_p = estimate_prior(&graph, &disc, &[driver], scenarios::PRIOR_SMOOTHING)
            .expect("driver on map");
        let tasks = scenarios::spread_tasks(k, 50.min(k));
        let inst = scenarios::instance_with_tasks(&graph, delta, f_p, &tasks);
        let (mech, _, _) = scenarios::solve_ours(&inst, epsilon, scenarios::DEFAULT_XI);
        let ours = scenarios::evaluate(&inst, &mech);
        let twodb = scenarios::evaluate(&inst, &scenarios::solve_2db(&inst, epsilon));
        let rows = vec![
            vec!["ours".into(), km(ours.etdd), km(ours.adv_error)],
            vec!["2Db".into(), km(twodb.etdd), km(twodb.adv_error)],
        ];
        print_table(
            &format!("Fig 21 — region {name}: ours vs 2Db"),
            &["method", "ETDD", "AdvError"],
            &rows,
        );
        let etdd_gain = 1.0 - ours.etdd / twodb.etdd;
        let adv_gain = ours.adv_error / twodb.adv_error - 1.0;
        println!(
            "region {name}: ETDD reduction {}, AdvError increase {}",
            ratio(etdd_gain),
            ratio(adv_gain)
        );
        gains.push((etdd_gain, adv_gain));
    }
    let ok = gains.iter().all(|&(e, _)| e > 0.0);
    println!(
        "\nshape check — ours has lower ETDD in both regions: {}",
        if ok { "PASS" } else { "FAIL" }
    );
}
