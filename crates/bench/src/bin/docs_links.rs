//! Documentation link checker: verifies that every intra-repository
//! markdown link in the top-level docs resolves to an existing file,
//! and that every metric name the runbook documents is one the code
//! actually records.
//!
//! Scans the repo root's `*.md` files (plus `docs/` if present) for
//! inline links — `[text](target)` — and fails listing every target
//! that does not exist on disk. External links (`http://`, `https://`,
//! `mailto:`) and pure in-page anchors (`#section`) are skipped;
//! fragments on file links (`ARCHITECTURE.md#caching`) are checked
//! against the file only.
//!
//! `OPERATIONS.md` additionally gets a metric audit: every backticked
//! token that looks like a metric name (dotted, rooted in a known
//! metric namespace) must resolve against `vlp_obs::schema`.
//! Placeholder segments such as `<s>` or `<site>` stand for a concrete
//! instance, and a trailing `.*` is checked as a family prefix. This is
//! what catches drift like a runbook row for a counter the code
//! renamed or never recorded. Runs in CI as the `docs-links` step.
//!
//! Flags: `--root <dir>` (default `.`).

use std::path::{Path, PathBuf};

/// First segments that mark a backticked token as a metric reference.
/// Anything rooted elsewhere (type names, file paths, config knobs) is
/// not audited.
const METRIC_ROOTS: &[&str] = &[
    "service", "chaos", "cg", "lpsolve", "lp", "cr", "dvlp", "roadnet", "platform",
];

/// Extracts inline markdown link targets — the `(...)` of `[...](...)`
/// — from one document, with the line each was found on.
fn link_targets(doc: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (lineno, line) in doc.lines().enumerate() {
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            // A link target opens at `](` and runs to the matching `)`.
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                let start = i + 2;
                if let Some(len) = line[start..].find(')') {
                    out.push((lineno + 1, line[start..start + len].to_string()));
                    i = start + len;
                    continue;
                }
            }
            i += 1;
        }
    }
    out
}

/// Whether `target` is a link this checker should resolve on disk.
fn is_local(target: &str) -> bool {
    !(target.is_empty()
        || target.starts_with('#')
        || target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:"))
}

/// Whether a backticked token reads as a metric name to audit: dotted,
/// free of path/code punctuation, not a filename, and rooted in one of
/// [`METRIC_ROOTS`] or a `bench_*` artifact namespace.
fn looks_like_metric(token: &str) -> bool {
    if !token.contains('.')
        || token.contains(char::is_whitespace)
        || token.contains(['/', ':', '('])
        || token.starts_with('.')
    {
        return false;
    }
    if [".rs", ".md", ".json", ".toml"]
        .iter()
        .any(|ext| token.ends_with(ext))
    {
        return false;
    }
    let root = token.split('.').next().unwrap_or("");
    METRIC_ROOTS.contains(&root) || root.starts_with("bench_")
}

/// Extracts backticked metric-looking tokens from one document, with
/// the line each was found on.
fn metric_tokens(doc: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (lineno, line) in doc.lines().enumerate() {
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let tail = &rest[open + 1..];
            let Some(close) = tail.find('`') else { break };
            let token = &tail[..close];
            rest = &tail[close + 1..];
            if looks_like_metric(token) {
                out.push((lineno + 1, token.to_string()));
            }
        }
    }
    out
}

/// Whether `token`, read segment-wise with `*` and `<placeholder>`
/// segments as single-segment wildcards, matches the concrete metric
/// `name`.
fn wildcard_matches(token: &str, name: &str) -> bool {
    let t: Vec<&str> = token.split('.').collect();
    let n: Vec<&str> = name.split('.').collect();
    t.len() == n.len()
        && t.iter()
            .zip(&n)
            .all(|(ts, ns)| *ts == "*" || (ts.starts_with('<') && ts.ends_with('>')) || ts == ns)
}

/// Resolves one documented metric token against the schema registry.
/// A trailing `.*` is resolved as a family prefix; `<placeholder>`
/// segments are tried both as a concrete instance (`0`, for
/// family-named series like `service.breaker.state.<s>`) and as
/// single-segment wildcards over the exact registry (for enumerations
/// like `service.tier.<tier>.served`).
fn metric_resolves(token: &str) -> bool {
    if let Some(prefix) = token.strip_suffix(".*") {
        return vlp_obs::schema::is_known_metric_prefix(&format!("{prefix}."));
    }
    if !token.contains(['<', '*']) {
        return vlp_obs::schema::is_known_metric(token);
    }
    let mut name = String::with_capacity(token.len());
    let mut rest = token;
    while let Some(open) = rest.find('<') {
        name.push_str(&rest[..open]);
        match rest[open..].find('>') {
            Some(close) => {
                name.push('0');
                rest = &rest[open + close + 1..];
            }
            None => return false,
        }
    }
    name.push_str(rest);
    (!name.contains('*') && vlp_obs::schema::is_known_metric(&name))
        || vlp_obs::schema::KNOWN_METRICS
            .iter()
            .any(|m| wildcard_matches(token, m))
}

fn markdown_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut dirs = vec![root.to_path_buf()];
    let docs = root.join("docs");
    if docs.is_dir() {
        dirs.push(docs);
    }
    for dir in dirs {
        let entries = std::fs::read_dir(&dir).expect("readable doc directory");
        for entry in entries {
            let path = entry.expect("readable directory entry").path();
            if path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn main() {
    let mut root = String::from(".");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => root = argv.next().expect("--root needs a directory"),
            other => {
                eprintln!("unknown flag `{other}` (expected --root <dir>)");
                std::process::exit(2);
            }
        }
    }
    let root = PathBuf::from(root);

    let mut checked = 0usize;
    let mut broken: Vec<String> = Vec::new();
    for file in markdown_files(&root) {
        let doc = std::fs::read_to_string(&file).expect("readable markdown file");
        let base = file.parent().expect("markdown file has a parent");
        for (line, target) in link_targets(&doc) {
            if !is_local(&target) {
                continue;
            }
            // Drop an in-file fragment; the file itself must exist.
            let path_part = target.split('#').next().unwrap_or(&target);
            if path_part.is_empty() {
                continue;
            }
            checked += 1;
            if !base.join(path_part).exists() {
                broken.push(format!("{}:{line}: broken link `{target}`", file.display()));
            }
        }
    }

    let mut metrics_checked = 0usize;
    let runbook = root.join("OPERATIONS.md");
    if runbook.is_file() {
        let doc = std::fs::read_to_string(&runbook).expect("readable OPERATIONS.md");
        for (line, token) in metric_tokens(&doc) {
            metrics_checked += 1;
            if !metric_resolves(&token) {
                broken.push(format!(
                    "{}:{line}: metric `{token}` is not in vlp_obs::schema",
                    runbook.display()
                ));
            }
        }
    }

    if !broken.is_empty() {
        eprintln!("docs_links: FAIL — {} problem(s):", broken.len());
        for b in &broken {
            eprintln!("  {b}");
        }
        std::process::exit(1);
    }
    println!(
        "docs_links: OK — {checked} intra-repo links resolve, \
         {metrics_checked} documented metric names are registered"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_inline_targets_with_line_numbers() {
        let doc = "intro [a](X.md) and [b](sub/Y.md#frag)\nplain line\n[c](#anchor)";
        let targets = link_targets(doc);
        assert_eq!(
            targets,
            vec![
                (1, "X.md".to_string()),
                (1, "sub/Y.md#frag".to_string()),
                (3, "#anchor".to_string()),
            ]
        );
    }

    #[test]
    fn classifies_metric_tokens() {
        assert!(looks_like_metric("service.cache_hits"));
        assert!(looks_like_metric("service.breaker.state.<s>"));
        assert!(looks_like_metric("chaos.injected.*"));
        assert!(looks_like_metric("bench_load.wall.p50_us"));
        assert!(looks_like_metric("lpsolve.warm.fallbacks"));
        // Filenames, code paths, and expressions are not metrics.
        assert!(!looks_like_metric("bench_chaos.json"));
        assert!(!looks_like_metric("crates/platform/src/service.rs"));
        assert!(!looks_like_metric("vlp_obs::schema::validate_snapshot"));
        assert!(!looks_like_metric(
            "service.solve.lp_vars / service.local.solves"
        ));
        assert!(!looks_like_metric(".full_lp_vars"));
        assert!(!looks_like_metric("obfuscate_batch"));
    }

    #[test]
    fn resolves_placeholders_and_families_against_the_registry() {
        assert!(metric_resolves("service.requests"));
        assert!(metric_resolves("service.tier.clustered.served"));
        assert!(metric_resolves("service.breaker.state.<s>"));
        assert!(metric_resolves("chaos.evaluated.<site>"));
        assert!(metric_resolves("bench_local.<scale>.k_map"));
        assert!(metric_resolves("service.tier.*"));
        assert!(metric_resolves("lpsolve.warm.*"));
        assert!(metric_resolves("service.tier.<tier>.served"));
        assert!(metric_resolves("service.tier.*.served"));
        assert!(!metric_resolves("service.tier.<tier>.bogus"));
        // The drift class this gate exists for: a documented counter
        // the code never records.
        assert!(!metric_resolves("lpsolve.warm.fallbacks"));
        assert!(!metric_resolves("service.tier.bogus"));
    }

    #[test]
    fn extracts_metric_tokens_with_line_numbers() {
        let doc = "see `service.batch` and `ARCHITECTURE.md`\n\
                   | `chaos.injected.<site>` | counter |";
        let tokens = metric_tokens(doc);
        assert_eq!(
            tokens,
            vec![
                (1, "service.batch".to_string()),
                (2, "chaos.injected.<site>".to_string()),
            ]
        );
    }

    #[test]
    fn classifies_local_vs_external_targets() {
        assert!(is_local("ARCHITECTURE.md"));
        assert!(is_local("crates/obs/src/lib.rs"));
        assert!(!is_local("#caching"));
        assert!(!is_local("https://example.com/x.md"));
        assert!(!is_local("http://example.com"));
        assert!(!is_local("mailto:a@b.c"));
        assert!(!is_local(""));
    }
}
