//! Documentation link checker: verifies that every intra-repository
//! markdown link in the top-level docs resolves to an existing file.
//!
//! Scans the repo root's `*.md` files (plus `docs/` if present) for
//! inline links — `[text](target)` — and fails listing every target
//! that does not exist on disk. External links (`http://`, `https://`,
//! `mailto:`) and pure in-page anchors (`#section`) are skipped;
//! fragments on file links (`ARCHITECTURE.md#caching`) are checked
//! against the file only. Runs in CI as the `docs-links` step.
//!
//! Flags: `--root <dir>` (default `.`).

use std::path::{Path, PathBuf};

/// Extracts inline markdown link targets — the `(...)` of `[...](...)`
/// — from one document, with the line each was found on.
fn link_targets(doc: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (lineno, line) in doc.lines().enumerate() {
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            // A link target opens at `](` and runs to the matching `)`.
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                let start = i + 2;
                if let Some(len) = line[start..].find(')') {
                    out.push((lineno + 1, line[start..start + len].to_string()));
                    i = start + len;
                    continue;
                }
            }
            i += 1;
        }
    }
    out
}

/// Whether `target` is a link this checker should resolve on disk.
fn is_local(target: &str) -> bool {
    !(target.is_empty()
        || target.starts_with('#')
        || target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:"))
}

fn markdown_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut dirs = vec![root.to_path_buf()];
    let docs = root.join("docs");
    if docs.is_dir() {
        dirs.push(docs);
    }
    for dir in dirs {
        let entries = std::fs::read_dir(&dir).expect("readable doc directory");
        for entry in entries {
            let path = entry.expect("readable directory entry").path();
            if path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn main() {
    let mut root = String::from(".");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => root = argv.next().expect("--root needs a directory"),
            other => {
                eprintln!("unknown flag `{other}` (expected --root <dir>)");
                std::process::exit(2);
            }
        }
    }
    let root = PathBuf::from(root);

    let mut checked = 0usize;
    let mut broken: Vec<String> = Vec::new();
    for file in markdown_files(&root) {
        let doc = std::fs::read_to_string(&file).expect("readable markdown file");
        let base = file.parent().expect("markdown file has a parent");
        for (line, target) in link_targets(&doc) {
            if !is_local(&target) {
                continue;
            }
            // Drop an in-file fragment; the file itself must exist.
            let path_part = target.split('#').next().unwrap_or(&target);
            if path_part.is_empty() {
                continue;
            }
            checked += 1;
            if !base.join(path_part).exists() {
                broken.push(format!("{}:{line}: broken link `{target}`", file.display()));
            }
        }
    }

    if !broken.is_empty() {
        eprintln!("docs_links: FAIL — {} broken link(s):", broken.len());
        for b in &broken {
            eprintln!("  {b}");
        }
        std::process::exit(1);
    }
    println!("docs_links: OK — {checked} intra-repo links resolve");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_inline_targets_with_line_numbers() {
        let doc = "intro [a](X.md) and [b](sub/Y.md#frag)\nplain line\n[c](#anchor)";
        let targets = link_targets(doc);
        assert_eq!(
            targets,
            vec![
                (1, "X.md".to_string()),
                (1, "sub/Y.md#frag".to_string()),
                (3, "#anchor".to_string()),
            ]
        );
    }

    #[test]
    fn classifies_local_vs_external_targets() {
        assert!(is_local("ARCHITECTURE.md"));
        assert!(is_local("crates/obs/src/lib.rs"));
        assert!(!is_local("#caching"));
        assert!(!is_local("https://example.com/x.md"));
        assert!(!is_local("http://example.com"));
        assert!(!is_local("mailto:a@b.c"));
        assert!(!is_local(""));
    }
}
