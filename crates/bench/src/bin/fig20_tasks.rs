//! Fig. 20 — task load: average ETDD and AdvError as the number of
//! deployed tasks grows from 5 to 10, in Regions A and B.
//!
//! Expected shape (paper): ETDD *decreases* with more tasks (the
//! nearest task is closer on average, shrinking distance distortions),
//! while AdvError stays flat (neither the mechanism's privacy
//! constraints nor the Bayesian attack depend on the task count).
//!
//! Measurement note: the paper's argument is about the distance to the
//! *nearest* task (the one the server would select), so this binary
//! measures the distortion of the nearest-task distance estimate,
//! `E |min_t d(p̃,t) − min_t d(p,t)|`, rather than the Eq. 18
//! expectation over the task prior.

use mobility::{estimate_prior, generate_trace, TraceConfig};
use vlp_bench::report::{km, print_table};
use vlp_bench::scenarios;
use vlp_core::Discretization;

fn main() {
    let epsilon = 5.0;
    for (name, graph, delta) in [
        ("A (rural)", scenarios::region_a(), 0.25),
        ("B (downtown)", scenarios::region_b(), 0.25),
    ] {
        let disc = Discretization::new(&graph, delta);
        let k = disc.len();
        let cfg = TraceConfig {
            reports: 800,
            report_period_secs: 20.0,
            ..TraceConfig::default()
        };
        let driver = generate_trace(&graph, &cfg, 20);
        let f_p = estimate_prior(&graph, &disc, &[driver], scenarios::PRIOR_SMOOTHING)
            .expect("driver on map");
        let mut rows = Vec::new();
        let mut etdds = Vec::new();
        let mut advs = Vec::new();
        for n_tasks in 5..=10usize {
            // Average over a few deterministic deployments per count.
            let mut etdd = 0.0;
            let mut adv = 0.0;
            let reps = 3;
            for r in 0..reps {
                let tasks: Vec<usize> = (0..n_tasks)
                    .map(|t| ((t * 97 + r * 389 + 23) * 2654435761usize) % k)
                    .collect();
                let inst = scenarios::instance_with_tasks(&graph, delta, f_p.clone(), &tasks);
                let (mech, _, _) = scenarios::solve_ours(&inst, epsilon, scenarios::DEFAULT_XI);
                let m = scenarios::evaluate(&inst, &mech);
                // Nearest-task distance per interval.
                let near: Vec<f64> = (0..k)
                    .map(|x| {
                        tasks
                            .iter()
                            .map(|&t| inst.interval_dists.get(x, t))
                            .fold(f64::INFINITY, f64::min)
                    })
                    .collect();
                let mut nearest_etdd = 0.0;
                for i in 0..k {
                    let fp = inst.f_p.get(i);
                    if fp > 0.0 {
                        for l in 0..k {
                            nearest_etdd += fp * mech.prob(i, l) * (near[i] - near[l]).abs();
                        }
                    }
                }
                etdd += nearest_etdd / reps as f64;
                adv += m.adv_error / reps as f64;
            }
            etdds.push(etdd);
            advs.push(adv);
            rows.push(vec![n_tasks.to_string(), km(etdd), km(adv)]);
        }
        print_table(
            &format!("Fig 20 — region {name}: metrics vs task count"),
            &["tasks", "ETDD", "AdvError"],
            &rows,
        );
        // Shape: ETDD trend downward (last below first), AdvError flat
        // (relative spread small compared to ETDD spread).
        // Small dense regions saturate quickly (5 tasks already cover
        // the map), so the trend is checked within 5% noise tolerance.
        let etdd_trend = *etdds.last().expect("nonempty") <= etdds[0] * 1.05;
        let adv_mean = advs.iter().sum::<f64>() / advs.len() as f64;
        let adv_spread = advs
            .iter()
            .map(|v| (v - adv_mean).abs())
            .fold(0.0f64, f64::max)
            / adv_mean.max(1e-12);
        println!(
            "shape check [{name}] — ETDD falls with task count: {}",
            if etdd_trend { "PASS" } else { "FAIL" }
        );
        println!(
            "shape check [{name}] — AdvError flat (max dev {:.1}%): {}",
            adv_spread * 100.0,
            if adv_spread < 0.15 { "PASS" } else { "FAIL" }
        );
    }
}
