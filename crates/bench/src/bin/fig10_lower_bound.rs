//! Fig. 10 — quality loss of our approach vs the VLP lower bound, per
//! cab, across interval lengths δ; plus the approximation-ratio box
//! plot.
//!
//! The paper compares each cab's quality loss against the continuous
//! problem's lower bound (Prop. 3.3 of the ICDCS version, not restated
//! in the text we reproduce from). Substitution: each δ's solution is
//! compared against its own Theorem 4.4 dual bound (the Prop. 4.5
//! closed form is also printed; it is much looser).
//!
//! Deviation note (EXPERIMENTS.md §Fig 10): at figure scale the
//! product ε·δ is O(1), so coarser grids *relax* the boundary-pair
//! Geo-I requirement (adjacent-interval points get ratio slack e^{εδ})
//! and the optimum *rises* as δ shrinks — the discretized problem
//! converges to the continuous optimum from below, not from above as
//! in the paper's regime. What does reproduce is near-optimality at
//! every δ: the ratio to the dual bound stays close to 1.
//!
//! δ values are scaled to our synthetic map (see DESIGN.md deviation
//! notes): {0.45, 0.30, 0.20} km instead of {0.15, 0.10, 0.05} km.

use vlp_bench::report::{km, print_table, ratio};
use vlp_bench::scenarios;
use vlp_core::bounds::tradeoff_lower_bound;

fn main() {
    let graph = scenarios::rome_graph();
    let n_cabs: usize = std::env::var("VLP_CABS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let epsilon = 5.0;
    let traces = scenarios::fleet(&graph, n_cabs.max(2), 400, 10);
    let deltas = [0.45, 0.30, 0.20];

    // Per-cab losses and per-(cab, delta) dual bounds.
    let mut per_cab: Vec<Vec<f64>> = vec![Vec::new(); deltas.len()];
    let mut per_bound: Vec<Vec<f64>> = vec![Vec::new(); deltas.len()];
    let mut tradeoff: Vec<f64> = Vec::new();
    for cab in 0..n_cabs {
        for (di, &delta) in deltas.iter().enumerate() {
            let inst = scenarios::cab_instance(&graph, delta, &traces[cab], &traces);
            let (_, loss, diag) = scenarios::solve_ours(&inst, epsilon, scenarios::DEFAULT_XI);
            per_cab[di].push(loss);
            per_bound[di].push(diag.best_dual_bound().max(0.0));
            if di == deltas.len() - 1 {
                tradeoff.push(tradeoff_lower_bound(&inst.cost, &inst.aux, epsilon));
            }
        }
    }
    let bounds = per_bound.last().expect("nonempty deltas").clone();

    // Fig 10(a): per-cab quality loss vs bound.
    let headers: Vec<String> = std::iter::once("cab".to_string())
        .chain(deltas.iter().map(|d| format!("QL d={d:.2}")))
        .chain(["dual LB (fine)".to_string(), "Prop4.5 LB".to_string()])
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for cab in 0..n_cabs {
        let mut row = vec![cab.to_string()];
        row.extend(
            deltas
                .iter()
                .enumerate()
                .map(|(di, _)| km(per_cab[di][cab])),
        );
        row.push(km(bounds[cab]));
        row.push(km(tradeoff[cab]));
        rows.push(row);
    }
    print_table(
        "Fig 10(a) — quality loss per cab vs lower bound (eps = 5/km)",
        &header_refs,
        &rows,
    );

    // Fig 10(b): box-plot summary of each delta's approximation
    // ratio against its own dual bound.
    let mut rows = Vec::new();
    for (di, &delta) in deltas.iter().enumerate() {
        let mut ratios: Vec<f64> = per_cab[di]
            .iter()
            .zip(&per_bound[di])
            .map(|(&ql, &lb)| if lb > 0.0 { ql / lb } else { f64::NAN })
            .filter(|r| r.is_finite())
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        let q = |p: f64| ratios[((ratios.len() - 1) as f64 * p).round() as usize];
        rows.push(vec![
            format!("{delta:.2}"),
            ratio(q(0.0)),
            ratio(q(0.25)),
            ratio(q(0.5)),
            ratio(q(0.75)),
            ratio(q(1.0)),
        ]);
    }
    print_table(
        "Fig 10(b) — approximation ratio (quality loss / own dual bound)",
        &["delta", "min", "q1", "median", "q3", "max"],
        &rows,
    );

    // Shape check (reproducible part of the claim): the solver is
    // near-optimal at every delta.
    let medians: Vec<f64> = rows
        .iter()
        .map(|r| r[3].parse::<f64>().expect("median"))
        .collect();
    let near_optimal = medians.iter().all(|&m| m < 1.15);
    println!(
        "\nshape check — near-optimal at every delta (median ratio < 1.15): {}",
        if near_optimal { "PASS" } else { "FAIL" }
    );
    println!(
        "note — QL vs delta trend: {} (paper's regime falls with delta; at our\n\
         eps*delta = O(1) scale the discretized Geo-I relaxation dominates and\n\
         the trend inverts — see EXPERIMENTS.md)",
        deltas
            .iter()
            .enumerate()
            .map(|(di, d)| format!(
                "d={d:.2}: {:.3}",
                per_cab[di].iter().sum::<f64>() / n_cabs as f64
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
