//! Fig. 15 — AdvError under the single-report Bayesian attack vs the
//! spatial-correlation-aware HMM (Viterbi) attack, as the reporting
//! interval grows from 70 s to 105 s.
//!
//! Expected shape: at short reporting intervals consecutive reports are
//! strongly correlated, so the HMM attack infers better (lower
//! AdvError) than Bayes; as the interval grows the gap closes. The
//! Bayes curve stays flat (it treats every round independently).

use adversary::{bayes, hmm};
use mobility::{generate_trace, interval_trace, subsample, TraceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vlp_bench::report::{km, print_table};
use vlp_bench::scenarios;

fn main() {
    let graph = scenarios::rome_graph();
    let delta = 0.3;
    let traces = scenarios::fleet(&graph, 6, 3000, 15);
    let inst = scenarios::cab_instance(&graph, delta, &traces[0], &traces);
    let epsilon = 5.0;
    let (mech, _, _) = scenarios::solve_ours(&inst, epsilon, scenarios::DEFAULT_XI);

    // The victim's long 7 s-period trace, subsampled to 7n seconds.
    let victim_cfg = TraceConfig {
        reports: 3000,
        ..TraceConfig::default()
    };
    let victim = generate_trace(&graph, &victim_cfg, 1234);

    // Closed-form Bayes AdvError (independent of the report interval).
    let bayes_err = bayes::adv_error(&mech, &inst.f_p, &inst.interval_dists);

    let mut rows = Vec::new();
    let mut hmm_errs = Vec::new();
    for n in [10usize, 11, 12, 13, 14, 15] {
        let period = 7.0 * n as f64;
        // Adversary learns transitions from fleet data at this period.
        let fleet_seqs: Vec<Vec<usize>> = traces
            .iter()
            .map(|t| interval_trace(&graph, &inst.disc, &subsample(t, n)))
            .collect();
        let trans = hmm::TransitionMatrix::learn(inst.len(), &fleet_seqs, 0.05);
        // The victim reports through the mechanism at the same period.
        let truth = interval_trace(&graph, &inst.disc, &subsample(&victim, n));
        let mut rng = StdRng::seed_from_u64(42 + n as u64);
        let observed: Vec<usize> = truth
            .iter()
            .map(|&i| mech.sample_interval(i, &mut rng))
            .collect();
        let decoded = hmm::viterbi(&trans, &inst.f_p, &mech, &observed);
        let hmm_err = hmm::trajectory_error(&truth, &decoded, &inst.interval_dists);
        hmm_errs.push(hmm_err);
        rows.push(vec![format!("{period:.0}s"), km(bayes_err), km(hmm_err)]);
    }
    print_table(
        "Fig 15 — AdvError: Bayes vs HMM across reporting intervals",
        &["interval", "Bayes", "HMM"],
        &rows,
    );

    // Shape checks: HMM is at most Bayes-level privacy at the shortest
    // interval, and the HMM disadvantage shrinks as the interval grows.
    let short_gap = bayes_err - hmm_errs[0];
    let long_gap = bayes_err - *hmm_errs.last().expect("nonempty");
    println!(
        "\nshape check — HMM attack is stronger at short intervals: {}",
        if short_gap >= -1e-9 { "PASS" } else { "FAIL" }
    );
    println!(
        "shape check — correlation advantage shrinks with interval: {}",
        if long_gap <= short_gap + 0.02 {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
