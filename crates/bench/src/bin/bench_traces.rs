//! Continuous-trace serving gate: replays streaming trajectory
//! workloads through the open-loop [`platform::MechanismService`]
//! under four reporting regimes and attacks every one with the
//! spatial-correlation (HMM) adversary, emitting the telemetry
//! snapshot as `artifacts/bench_traces.json`.
//!
//! The regimes share one trip-structured fleet stream
//! ([`vlp_bench::streams`]):
//!
//! * **sporadic** — every 4th report, constant ε, no accountant: the
//!   paper's one-shot reporting model (footnote 4);
//! * **continuous-unprotected** — every report, constant ε, no
//!   accountant: what naive continuous serving leaks;
//! * **continuous** — every report at constant ε against a per-vehicle
//!   trace budget ([`platform::TraceBudgetConfig`]): grants throttle
//!   as the ledger fills and reports are refused once exhausted;
//! * **velocity-adaptive** — per-report ε from
//!   [`platform::VelocityEpsilon`] under the same budget: dwelling
//!   vehicles get tight ε, cruising vehicles coarser ε, and the
//!   budget stretches over more of the trace.
//!
//! Each regime is decoded per vehicle with the per-step-mechanism
//! Viterbi and forward-backward decoders ([`adversary::viterbi_seq`],
//! [`adversary::forward_backward_seq`]) — the adversary knows which
//! mechanism served each report — and scored as mean road-distance
//! trajectory error (AdvError) plus per-report ETDD.
//!
//! Gates (structural, never wall-clock):
//!
//! * **ε-validity** — every mechanism that served a report passes
//!   full-spec `privacy::verify` at its accounted canonical ε;
//! * **composition** — in the budgeted regimes, each vehicle's summed
//!   served ε equals the service ledger and never exceeds the trace
//!   budget; the continuous regime must actually hit exhaustion;
//! * **adaptivity pays** — the budget lasts strictly more reports
//!   under velocity-adaptive ε than under constant ε, and the
//!   adversary's Viterbi error on continuous-unprotected is strictly
//!   *below* (worse for the vehicle) the velocity-adaptive error;
//! * **determinism** — with `--check` the suite runs twice and all
//!   non-timing fields must be bit-identical.
//!
//! Flags: `--out <path>` (default `artifacts/bench_traces.json`),
//! `--check`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use adversary::{
    decode_marginals, forward_backward_seq, trajectory_error, viterbi_seq, TransitionMatrix,
};
use mobility::TripConfig;
use platform::{
    MechanismService, Response, ServiceConfig, TraceBudgetConfig, VelocityEpsilon, WorkerId,
};
use rand::SeedableRng;
use roadnet::generators;
use serde_json::Value;
use vlp_bench::scenarios::{cg_options, DEFAULT_XI};
use vlp_bench::streams::{subsample_stream, trip_stream, TraceReport};
use vlp_core::{privacy, Mechanism, Prior, QualityTier};

/// Seed shared by every stochastic component of the scenario.
const SEED: u64 = 20_260_809;

/// Seed of the floating-vehicle training fleet the adversary learns
/// its transition matrix from (disjoint from the attacked fleet).
const TRAIN_SEED: u64 = 4_242;

/// Stable run identifier: bump the suffix when the scenario changes.
const RUN_ID: &str = "bench-traces-v1";

/// Vehicles in the attacked fleet.
const N_VEHICLES: usize = 4;

/// Reports per vehicle in the continuous stream.
const REPORTS: usize = 40;

/// Sporadic regime keeps every `n`-th report (footnote 4's `7n`).
const SPORADIC_STEP: usize = 4;

/// The constant privacy budget per report (per km).
const EPSILON: f64 = 5.0;

/// Per-vehicle trace budget for the accounted regimes: 12 full-ε
/// reports' worth, against a 40-report trace.
const TRACE_BUDGET: f64 = 60.0;

/// ε-bucket width of the service cache grid.
const BUCKET: f64 = 0.5;

/// Training vehicles and reports for the transition matrix.
const N_TRAIN: usize = 6;
const TRAIN_REPORTS: usize = 300;

/// Additive smoothing for the learned transition matrix (Eq. 5).
const SMOOTHING: f64 = 0.05;

/// How a regime picks its requested ε and whether it is accounted.
struct Regime {
    name: &'static str,
    sporadic_step: usize,
    budget: Option<TraceBudgetConfig>,
    velocity: Option<VelocityEpsilon>,
}

/// Measured results of one regime, feeding the gates and the
/// `EXPERIMENTS.md` table.
struct RegimeReport {
    name: &'static str,
    served: u64,
    refused: u64,
    mean_epsilon: f64,
    /// Mean per-step road distance of the Viterbi decode, km.
    viterbi_km: f64,
    /// Mean per-step road distance of the forward-backward decode, km.
    fb_km: f64,
    /// Mean road distance between reported and true interval, km.
    etdd_km: f64,
    /// Largest per-vehicle ledger fill (spent / budget), 0 when
    /// unaccounted.
    max_fill: f64,
}

/// One served report, aligned to its ground truth.
struct Step {
    truth: usize,
    reported: usize,
    epsilon: f64,
    laplace: bool,
}

fn service(budget: Option<TraceBudgetConfig>) -> MechanismService {
    MechanismService::new(
        generators::grid(4, 4, 0.4, true),
        ServiceConfig {
            n_shards: 1,
            delta: 0.3,
            radius: f64::INFINITY,
            epsilon_bucket: BUCKET,
            cg: cg_options(DEFAULT_XI),
            // Generous logical deadline: background solves run at the
            // Exact tier; the open-loop path serves the fallback on
            // cold keys and the cached optimum afterwards.
            solve_deadline: Duration::from_secs(600),
            solver_threads: 2,
            budget,
            ..ServiceConfig::default()
        },
    )
}

/// The attacked fleet's merged report stream (trip-structured motion:
/// dwells exercise the velocity adapter's tight-ε end).
fn fleet_stream() -> Vec<TraceReport> {
    let graph = generators::grid(4, 4, 0.4, true);
    let cfg = TripConfig {
        reports: REPORTS,
        ..TripConfig::default()
    };
    trip_stream(&graph, &cfg, N_VEHICLES, SEED)
}

/// Maps a global location to its interval in shard 0's discretization.
fn truth_interval(
    svc: &MechanismService,
    inst: &vlp_core::VlpInstance,
    loc: roadnet::Location,
) -> usize {
    let (s, local) = svc
        .partition()
        .to_local(loc)
        .expect("single-shard partition covers the map");
    assert_eq!(s, 0, "single shard");
    inst.disc
        .locate(&inst.graph, local)
        .expect("every trace point lies in an interval")
}

/// Learns the adversary's transition matrix and empirical prior from a
/// disjoint floating-vehicle fleet on the same map (Eq. 5).
fn train_adversary(
    svc: &MechanismService,
    inst: &vlp_core::VlpInstance,
) -> (TransitionMatrix, Prior) {
    let graph = generators::grid(4, 4, 0.4, true);
    let cfg = TripConfig {
        reports: TRAIN_REPORTS,
        ..TripConfig::default()
    };
    let k = inst.f_p.len();
    let mut visits = vec![0.1f64; k];
    let seqs: Vec<Vec<usize>> = (0..N_TRAIN)
        .map(|v| {
            let trace = mobility::generate_trip_trace(
                &graph,
                &cfg,
                TRAIN_SEED.wrapping_add(v as u64).wrapping_mul(0x9E37_79B9),
            );
            let seq: Vec<usize> = trace
                .locations
                .iter()
                .map(|&loc| truth_interval(svc, inst, loc))
                .collect();
            for &i in &seq {
                visits[i] += 1.0;
            }
            seq
        })
        .collect();
    let trans = TransitionMatrix::learn(k, &seqs, SMOOTHING);
    let prior = Prior::from_weights(&visits).expect("smoothed visit counts are positive");
    (trans, prior)
}

/// Replays `stream` through a fresh service under the regime's ε
/// policy, audits every serving mechanism, runs both decoders, and
/// returns the measured report.
fn run_regime(regime: &Regime, index: usize, stream: &[TraceReport]) -> RegimeReport {
    let obs = vlp_obs::global();
    let mut svc = service(regime.budget);
    let inst = svc.shard_instance(0);
    let (trans, prior) = train_adversary(&svc, &inst);
    let stream = if regime.sporadic_step > 1 {
        subsample_stream(stream, regime.sporadic_step)
    } else {
        stream.to_vec()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED.wrapping_add(index as u64));

    let mut steps: Vec<Vec<Step>> = (0..N_VEHICLES).map(|_| Vec::new()).collect();
    let mut refused = 0u64;
    for report in &stream {
        let requested = match &regime.velocity {
            Some(va) => va.epsilon_for(report.speed_kmh),
            None => EPSILON,
        };
        match svc.submit(report.vehicle, report.location, requested, &mut rng) {
            Response::Served(o) => {
                assert!(
                    o.epsilon <= requested + 1e-12,
                    "{}: never less private than asked",
                    regime.name
                );
                steps[report.vehicle.0].push(Step {
                    truth: truth_interval(&svc, &inst, report.location),
                    reported: o.interval,
                    epsilon: o.epsilon,
                    laplace: o.tier == QualityTier::Laplace,
                });
            }
            Response::BudgetExhausted { .. } => {
                assert!(
                    regime.budget.is_some(),
                    "{}: refusal without an accountant",
                    regime.name
                );
                refused += 1;
            }
            other => panic!(
                "{}: unexpected response {other:?} on a fault-free single-shard map",
                regime.name
            ),
        }
        // Drain the background solve a cold key enqueued so the next
        // same-bucket report deterministically hits the cached optimum.
        svc.quiesce();
    }

    // Composition gate: the bench's own ε ledger must agree with the
    // service's, and never exceed the trace budget.
    let mut max_fill = 0.0f64;
    for (v, vehicle_steps) in steps.iter().enumerate() {
        let summed: f64 = vehicle_steps.iter().map(|s| s.epsilon).sum();
        match regime.budget {
            Some(b) => {
                assert!(
                    summed <= b.trace_budget + 1e-9,
                    "{}: vehicle {v} served ε {summed} over budget {}",
                    regime.name,
                    b.trace_budget
                );
                let ledger = svc
                    .budget_spent(WorkerId(v))
                    .expect("accountant is enabled");
                assert!(
                    (summed - ledger).abs() < 1e-9,
                    "{}: vehicle {v} bench ledger {summed} != service ledger {ledger}",
                    regime.name
                );
                max_fill = max_fill.max(summed / b.trace_budget);
            }
            None => assert!(
                svc.budget_spent(WorkerId(v)).is_none(),
                "{}: no accountant, no ledger",
                regime.name
            ),
        }
    }

    // ε-validity gate: every mechanism that served a report satisfies
    // full-spec ε-Geo-I at its accounted canonical ε — the Exact cache
    // entries and the graph-Laplace fallbacks alike.
    let mut mechanisms: BTreeMap<(u64, bool), Arc<Mechanism>> = BTreeMap::new();
    for s in steps.iter().flatten() {
        mechanisms
            .entry((s.epsilon.to_bits(), s.laplace))
            .or_insert_with(|| {
                if s.laplace {
                    svc.fallback_mechanism(0, s.epsilon)
                        .expect("fallback that served is retained")
                } else {
                    svc.cached_mechanism(0, s.epsilon)
                        .expect("optimum that served is cached")
                }
            });
    }
    for (&(bits, laplace), mechanism) in &mechanisms {
        let eps = f64::from_bits(bits);
        let spec = vlp_core::PrivacySpec::full(&inst.aux, eps, f64::INFINITY);
        assert!(
            privacy::verify(mechanism, &spec, 1e-6),
            "{}: served mechanism (ε={eps}, laplace={laplace}) violates Geo-I",
            regime.name
        );
    }
    obs.incr("bench_traces.privacy_audits", mechanisms.len() as u64);

    // The attack: per-vehicle Viterbi and forward-backward decodes
    // with the per-step mechanisms the adversary observed.
    let mut weighted_viterbi = 0.0;
    let mut weighted_fb = 0.0;
    let mut etdd_sum = 0.0;
    let mut eps_sum = 0.0;
    let mut served = 0u64;
    for vehicle_steps in &steps {
        if vehicle_steps.is_empty() {
            continue;
        }
        let truth: Vec<usize> = vehicle_steps.iter().map(|s| s.truth).collect();
        let observed: Vec<usize> = vehicle_steps.iter().map(|s| s.reported).collect();
        let mechs: Vec<&Mechanism> = vehicle_steps
            .iter()
            .map(|s| mechanisms[&(s.epsilon.to_bits(), s.laplace)].as_ref())
            .collect();
        let map_path = viterbi_seq(&trans, &prior, &mechs, &observed);
        let marginals = decode_marginals(&forward_backward_seq(&trans, &prior, &mechs, &observed));
        let n = truth.len() as f64;
        weighted_viterbi += trajectory_error(&truth, &map_path, &inst.interval_dists) * n;
        weighted_fb += trajectory_error(&truth, &marginals, &inst.interval_dists) * n;
        for s in vehicle_steps {
            etdd_sum += inst.interval_dists.get_min(s.truth, s.reported);
            eps_sum += s.epsilon;
        }
        served += truth.len() as u64;
    }
    assert!(
        served > 0,
        "{}: regime served nothing to decode",
        regime.name
    );
    let total = served as f64;

    svc.tick();
    svc.flush_metrics();
    svc.shutdown();

    let report = RegimeReport {
        name: regime.name,
        served,
        refused,
        mean_epsilon: eps_sum / total,
        viterbi_km: weighted_viterbi / total,
        fb_km: weighted_fb / total,
        etdd_km: etdd_sum / total,
        max_fill,
    };
    obs.incr("bench_traces.regimes", 1);
    obs.incr(
        &format!("bench_traces.{}.served", report.name),
        report.served,
    );
    obs.incr(
        &format!("bench_traces.{}.refused", report.name),
        report.refused,
    );
    obs.push(
        &format!("bench_traces.{}.mean_epsilon", report.name),
        report.mean_epsilon,
    );
    obs.push(
        &format!("bench_traces.{}.adv_viterbi_km", report.name),
        report.viterbi_km,
    );
    obs.push(
        &format!("bench_traces.{}.adv_fb_km", report.name),
        report.fb_km,
    );
    obs.push(
        &format!("bench_traces.{}.etdd_km", report.name),
        report.etdd_km,
    );
    obs.push(
        &format!("bench_traces.{}.max_fill", report.name),
        report.max_fill,
    );
    report
}

/// Runs every regime against a freshly reset global registry.
fn run_suite() -> (Value, Vec<RegimeReport>) {
    let obs = vlp_obs::global();
    obs.reset();
    obs.set_run_id(RUN_ID);
    let total = Instant::now();
    let stream = fleet_stream();
    let budget = TraceBudgetConfig {
        trace_budget: TRACE_BUDGET,
        throttle_start: 0.5,
    };
    let regimes = [
        Regime {
            name: "sporadic",
            sporadic_step: SPORADIC_STEP,
            budget: None,
            velocity: None,
        },
        Regime {
            name: "continuous_unprotected",
            sporadic_step: 1,
            budget: None,
            velocity: None,
        },
        Regime {
            name: "continuous",
            sporadic_step: 1,
            budget: Some(budget),
            velocity: None,
        },
        Regime {
            name: "velocity_adaptive",
            sporadic_step: 1,
            budget: Some(budget),
            velocity: Some(VelocityEpsilon {
                base_epsilon: EPSILON,
                ..VelocityEpsilon::default()
            }),
        },
    ];
    let reports: Vec<RegimeReport> = regimes
        .iter()
        .enumerate()
        .map(|(i, regime)| run_regime(regime, i, &stream))
        .collect();
    obs.record_duration("bench_traces.total", total.elapsed());
    (obs.snapshot(), reports)
}

/// The deterministic projection of a snapshot: everything except the
/// `timers` section and the `cg.*` per-iteration traces (flushed as
/// one block per solve by solver workers, so block order is
/// thread-scheduling-dependent; the commutative `cg.*` counters stay).
fn deterministic(snapshot: &Value) -> Value {
    let mut doc = snapshot.clone();
    if let Some(map) = doc.as_object_mut() {
        map.remove("timers");
        if let Some(mut series) = map.remove("series") {
            if let Some(obj) = series.as_object_mut() {
                let unstable: Vec<String> = obj
                    .keys()
                    .filter(|name| name.starts_with("cg."))
                    .cloned()
                    .collect();
                for name in unstable {
                    obj.remove(&name);
                }
            }
            map.insert("series".into(), series);
        }
    }
    doc
}

/// The structural gates; returns an error naming the first violation.
fn check_gates(snapshot: &Value, reports: &[RegimeReport]) -> Result<(), String> {
    vlp_obs::schema::validate_snapshot(snapshot)?;
    let find = |name: &str| -> Result<&RegimeReport, String> {
        reports
            .iter()
            .find(|r| r.name == name)
            .ok_or_else(|| format!("regime `{name}` missing from the suite"))
    };
    let unprotected = find("continuous_unprotected")?;
    let continuous = find("continuous")?;
    let adaptive = find("velocity_adaptive")?;
    if continuous.refused == 0 {
        return Err(
            "continuous regime never hit budget exhaustion — the refusal \
             floor went unexercised"
                .into(),
        );
    }
    if adaptive.served <= continuous.served {
        return Err(format!(
            "velocity-adaptive ε served {} reports, constant ε served {} — the \
             budget should stretch further under adaptive ε",
            adaptive.served, continuous.served
        ));
    }
    if unprotected.viterbi_km >= adaptive.viterbi_km {
        return Err(format!(
            "Viterbi error {:.4} km on continuous-unprotected is not below the \
             velocity-adaptive {:.4} km — unthrottled constant-ε reporting must \
             be strictly better for the adversary",
            unprotected.viterbi_km, adaptive.viterbi_km
        ));
    }
    if snapshot["counters"]["bench_traces.privacy_audits"]
        .as_u64()
        .unwrap_or(0)
        == 0
    {
        return Err("privacy audit ran over zero mechanisms".into());
    }
    if snapshot["counters"]["bench_traces.regimes"].as_u64() != Some(reports.len() as u64) {
        return Err("regime counter disagrees with the suite".into());
    }
    Ok(())
}

fn main() {
    let mut out = String::from("artifacts/bench_traces.json");
    let mut check = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => out = argv.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag `{other}` (expected --check or --out <path>)");
                std::process::exit(2);
            }
        }
    }

    let (snapshot, reports) = run_suite();
    if let Err(e) = check_gates(&snapshot, &reports) {
        eprintln!("bench_traces: FAIL — {e}");
        std::process::exit(1);
    }

    if check {
        let (second, second_reports) = run_suite();
        if let Err(e) = check_gates(&second, &second_reports) {
            eprintln!("bench_traces: FAIL (second run) — {e}");
            std::process::exit(1);
        }
        if deterministic(&snapshot) != deterministic(&second) {
            eprintln!("bench_traces: FAIL — deterministic fields differ between same-seed runs");
            std::process::exit(1);
        }
        println!("determinism check: deterministic fields identical across two runs");
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create artifact directory");
        }
    }
    let mut doc = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    doc.push('\n');
    std::fs::write(&out, doc).expect("write artifact");

    println!(
        "bench_traces: OK — adversary evaluation over {} regimes:",
        reports.len()
    );
    for r in &reports {
        println!(
            "  {:<23} served {:>3} refused {:>3} mean ε {:>4.2} \
             AdvError(Viterbi) {:.3} km  AdvError(FB) {:.3} km  ETDD {:.3} km  fill {:.2}",
            r.name,
            r.served,
            r.refused,
            r.mean_epsilon,
            r.viterbi_km,
            r.fb_km,
            r.etdd_km,
            r.max_fill
        );
    }
}
