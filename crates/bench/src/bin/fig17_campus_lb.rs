//! Fig. 17 — pilot study: ETDD of our approach vs the Theorem 4.4 dual
//! lower bound over repeated task deployments on the campus map.
//!
//! The paper drives a vehicle around campus, deploys 5 tasks at random,
//! and repeats 20 groups of tests; the reported approximation ratio
//! stays below ~1.14. We reproduce the protocol on the synthetic
//! campus (Region A) with a simulated driver.

use mobility::{estimate_prior, generate_trace, TraceConfig};
use vlp_bench::report::{km, print_table, ratio};
use vlp_bench::scenarios;
use vlp_core::Discretization;

fn main() {
    let graph = scenarios::region_a();
    let delta = 0.2;
    let groups = 20;
    let epsilon = 5.0;
    let disc = Discretization::new(&graph, delta);
    let k = disc.len();

    // The participant drives around campus reporting every ~25 s.
    let cfg = TraceConfig {
        reports: 600,
        report_period_secs: 25.0,
        ..TraceConfig::default()
    };
    let driver = generate_trace(&graph, &cfg, 777);
    let f_p = estimate_prior(&graph, &disc, &[driver], scenarios::PRIOR_SMOOTHING)
        .expect("driver stays on campus");

    let mut rows = Vec::new();
    let mut worst_ratio: f64 = 0.0;
    for g in 0..groups {
        // 5 pseudo-random task intervals per group (deterministic).
        let tasks: Vec<usize> = (0..5)
            .map(|t| ((g * 131 + t * 37 + 17) * 2654435761usize) % k)
            .collect();
        let inst = scenarios::instance_with_tasks(&graph, delta, f_p.clone(), &tasks);
        let opts = vlp_core::CgOptions {
            xi: -1e-9,
            max_iterations: 45,
            gap_tol: 0.02,
            ..vlp_core::CgOptions::default()
        };
        let spec = vlp_core::constraint_reduction::reduced_spec(&inst.aux, epsilon, f64::INFINITY);
        let (_, loss, diag) =
            vlp_core::solve_column_generation(&inst.cost, &spec, &opts).expect("cg solves");
        let lb = diag.best_dual_bound().max(0.0);
        let r = if lb > 1e-12 { loss / lb } else { 1.0 };
        worst_ratio = worst_ratio.max(r);
        rows.push(vec![g.to_string(), km(loss), km(lb), ratio(r)]);
    }
    print_table(
        "Fig 17 — ETDD vs Theorem 4.4 dual bound (20 groups, 5 tasks)",
        &["group", "ETDD", "dual LB", "ratio"],
        &rows,
    );
    println!(
        "\nworst approximation ratio: {} (paper: up to 1.14)",
        ratio(worst_ratio)
    );
    println!(
        "shape check — near-optimal across groups: {}",
        if worst_ratio < 1.3 { "PASS" } else { "FAIL" }
    );
}
