//! Chaos benchmark: drives [`platform::MechanismService`] through a
//! scripted failure schedule and gates the resilience ladder's
//! invariants, emitting recovery telemetry as
//! `artifacts/bench_chaos.json`.
//!
//! The committed schedule (see [`SCHEDULE`]) combines every failure
//! family the ladder is built for: ~30% solver faults on both the
//! dense and the warm-started LP paths, ~15% pricing panics, a
//! six-batch blackout of shard [`BLACKOUT_SHARD`], an evict storm
//! every six batches, and deadline jitter every nine. The run is
//! deterministic — fault decisions are pure functions of the plan
//! seed — so the gates below are exact, not statistical:
//!
//! * **Privacy never degrades** — after every batch, every mechanism
//!   the service can serve from (cached optimum, stale entry,
//!   fallback) passes `privacy::verify` against the *full* Geo-I
//!   constraint set at its canonical ε. 100% of requests are served;
//!   only utility is allowed to vary.
//! * **The breaker recovers** — the blacked-out shard's breaker opens
//!   during the outage and re-closes within
//!   [`RECOVERY_BUDGET_BATCHES`] batches of the blackout ending; every
//!   breaker is closed again by the end of the run.
//! * **Faults off ⇒ bit-identical** — the same workload served under
//!   an empty fault plan produces exactly the same obfuscations as a
//!   service with no chaos configured at all: the ladder is inert
//!   unless faults are injected.
//! * **Every quality rung serves** — after the blackout recovers, a
//!   tier-ladder phase walks the per-batch deadline down the quality
//!   ladder (see [`LADDER`]) with cold ε budgets, and each of the four
//!   [`QualityTier`] rungs must serve at least one request (checked
//!   both per-request and via the `service.tier.*.served` counters).
//!   Everything the ladder leaves cached — clustered and spanner
//!   mechanisms included — must still pass the batch privacy audit.
//!
//! Flags: `--out <path>` (default `artifacts/bench_chaos.json`, or
//! `artifacts/bench_chaos_local.json` under `--local`) and `--local`,
//! which re-runs the committed schedule with the locally-relevant
//! solve mode enabled (`rho` = [`LOCAL_RHO`], protection radius
//! [`LOCAL_RADIUS`]): the same resilience gates must hold when every
//! solve is a restricted `O(k²)` LP and mechanisms are audited against
//! their neighborhoods' restricted Geo-I specs.

use std::time::{Duration, Instant};

use platform::{
    service, BreakerState, LocalConfig, MechanismService, Served, ServiceConfig, TierPolicy,
    WorkerId,
};
use roadnet::{generators, Location};
use vlp_bench::scenarios::fleet_locations;
use vlp_core::{privacy, QualityTier};
use vlp_obs::failpoint::FaultPlan;

/// Popular privacy budgets the fleet rotates through (per km).
const EPSILONS: [f64; 3] = [2.0, 5.0, 10.0];

/// Region shards the map is partitioned into.
const N_SHARDS: usize = 4;

/// Batches in the scripted run.
const BATCHES: usize = 30;

/// Vehicles per batch.
const FLEET: usize = 36;

/// The shard the schedule blacks out.
const BLACKOUT_SHARD: usize = 1;

/// First batch of the blackout (inclusive).
const BLACKOUT_FROM: u64 = 6;

/// First batch after the blackout (exclusive end).
const BLACKOUT_TO: u64 = 12;

/// Batches after the blackout ends within which the breaker must
/// re-close (documented in `OPERATIONS.md`: one half-open probe every
/// `breaker_cooldown` batches, each retried `max_attempts` times).
const RECOVERY_BUDGET_BATCHES: u64 = 6;

/// Seed of the fault plan (selects which ratio-mode keys fault).
const CHAOS_SEED: u64 = 0xC4A05;

/// Assignment radius ρ used under `--local`, km.
const LOCAL_RHO: f64 = 0.4;

/// Geo-I protection radius used under `--local`, km (the locally-
/// relevant mode needs a finite radius to bound its support balls).
const LOCAL_RADIUS: f64 = 0.5;

/// The committed failure schedule.
const SCHEDULE: &str = "lp.solve.fault=ratio:0.3; lp.resolve.fault=ratio:0.3; \
     cg.pricing.panic=ratio:0.15; service.shard.blackout.1=window:6..12; \
     service.cache.evict_storm=every:6; service.deadline.jitter=every:9";

/// The tier-ladder schedule: per-batch deadline and the rung it must
/// select under [`service_config`]'s `TierPolicy` floors (exact ≥
/// 150ms, clustered ≥ 50ms, spanner ≥ 10ms, zero = never-wait
/// Laplace).
const LADDER: [(Duration, QualityTier); 4] = [
    (Duration::from_secs(60), QualityTier::Exact),
    (Duration::from_millis(80), QualityTier::Clustered),
    (Duration::from_millis(20), QualityTier::Spanner),
    (Duration::ZERO, QualityTier::Laplace),
];

/// Ladder cycles; deadline jitter hits at most one batch in nine, so
/// three cycles guarantee every rung at least two clean batches.
const LADDER_CYCLES: usize = 3;

fn service_config(chaos: FaultPlan, local: bool) -> ServiceConfig {
    ServiceConfig {
        n_shards: N_SHARDS,
        delta: 0.2,
        // Generous deadline: in calm batches cache misses are solved
        // and served optimally; only injected jitter collapses it.
        solve_deadline: Duration::from_secs(60),
        radius: if local { LOCAL_RADIUS } else { f64::INFINITY },
        local: local.then_some(LocalConfig { rho: LOCAL_RHO }),
        chaos,
        tiers: TierPolicy {
            exact_floor: Duration::from_millis(150),
            clustered_floor: Duration::from_millis(50),
            spanner_floor: Duration::from_millis(10),
            ..TierPolicy::default()
        },
        ..ServiceConfig::default()
    }
}

fn requests(locations: &[Location]) -> Vec<(WorkerId, Location, f64)> {
    (0..FLEET)
        .map(|w| {
            (
                WorkerId(w),
                locations[w % locations.len()],
                EPSILONS[w % EPSILONS.len()],
            )
        })
        .collect()
}

/// The privacy gate: everything the service can serve from — cached
/// optima at any quality tier, stale entries, fallbacks — satisfies
/// its Geo-I constraint set at its canonical ε. In full mode that is
/// the whole-shard spec; in locally-relevant mode, each neighborhood's
/// unreduced restricted spec (full-graph `d_min` exponents over the
/// neighborhood support). Returns the number of mechanisms audited.
fn audit_live(svc: &MechanismService, local: bool, when: &str) -> u64 {
    let mut audited = 0;
    if local {
        for (s, nb, eps, mechanism) in svc.live_mechanisms_keyed() {
            let shard = svc.local_shard(s).expect("service runs in local mode");
            let spec = shard.audit_spec(nb, eps);
            assert!(
                privacy::verify(&mechanism, &spec, 1e-6),
                "{when}: shard {s} neighborhood {nb} mechanism at ε={eps} \
                 violates its restricted Geo-I spec"
            );
            audited += 1;
        }
    } else {
        for (s, eps, mechanism) in svc.live_mechanisms() {
            let inst = svc.shard_instance(s);
            let spec = vlp_core::PrivacySpec::full(&inst.aux, eps, f64::INFINITY);
            assert!(
                privacy::verify(&mechanism, &spec, 1e-6),
                "{when}: shard {s} mechanism at ε={eps} violates Geo-I"
            );
            audited += 1;
        }
    }
    audited
}

fn main() {
    let mut out: Option<String> = None;
    let mut local = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => out = Some(argv.next().expect("--out needs a path")),
            "--local" => local = true,
            other => {
                eprintln!("unknown flag `{other}` (expected --out <path> or --local)");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        if local {
            String::from("artifacts/bench_chaos_local.json")
        } else {
            String::from("artifacts/bench_chaos.json")
        }
    });

    // Injected pricing panics are expected and contained; keep their
    // default panic report off the console so real panics stand out.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
        if msg.is_some_and(|m| m.contains("chaos:")) {
            return;
        }
        default_hook(info);
    }));

    use rand::SeedableRng;
    let obs = vlp_obs::global();
    let graph = generators::grid(4, 6, 0.4, true);
    let n_edges = graph.edge_count();

    // Control phase: an *empty* fault plan (even a seeded one) must be
    // indistinguishable from no chaos configuration at all, batch for
    // batch, bit for bit — the ladder is inert without faults.
    {
        let mut plain =
            MechanismService::new(graph.clone(), service_config(FaultPlan::default(), local));
        let mut armed = MechanismService::new(
            graph.clone(),
            service_config(FaultPlan::new(CHAOS_SEED), local),
        );
        let locations = fleet_locations(&plain, n_edges, FLEET.div_ceil(N_SHARDS));
        let reqs = requests(&locations);
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(20_260_807);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(20_260_807);
        for batch in 0..5 {
            let out_a = plain.obfuscate_batch(&reqs, &mut rng_a);
            let out_b = armed.obfuscate_batch(&reqs, &mut rng_b);
            assert_eq!(
                out_a, out_b,
                "faults-disabled batch {batch} must be bit-identical"
            );
        }
        println!("bench_chaos: control OK — empty fault plan is bit-identical over 5 batches");
    }

    // Chaos phase: the committed schedule, telemetry from a clean slate.
    obs.reset();
    obs.set_run_id(if local {
        "bench-chaos-local-v2"
    } else {
        "bench-chaos-v2"
    });
    let total = Instant::now();
    let chaos = FaultPlan::parse(SCHEDULE, CHAOS_SEED).expect("committed schedule parses");
    let mut svc = MechanismService::new(graph, service_config(chaos, local));
    let locations = fleet_locations(&svc, n_edges, FLEET.div_ceil(N_SHARDS));
    let reqs = requests(&locations);
    let mut rng = rand::rngs::StdRng::seed_from_u64(20_260_807);

    let (mut served_optimal, mut served_stale, mut served_fallback) = (0u64, 0u64, 0u64);
    let mut requests_total = 0u64;
    let mut audited = 0u64;
    for batch in 0..BATCHES {
        let served = svc.obfuscate_batch(&reqs, &mut rng);
        assert_eq!(
            served.len(),
            reqs.len(),
            "batch {batch}: every request must be served, faults or not"
        );
        requests_total += served.len() as u64;
        for o in &served {
            match o.served {
                Served::Optimal { .. } => served_optimal += 1,
                Served::Stale { .. } => served_stale += 1,
                Served::Fallback => served_fallback += 1,
            }
        }
        audited += audit_live(&svc, local, &format!("batch {batch}"));
    }
    let elapsed = total.elapsed();

    // Breaker gate: the blacked-out shard opened during the outage and
    // re-closed within the recovery budget; everything ends closed.
    let breaker = obs.series(&service::metrics::breaker_state_series(BLACKOUT_SHARD));
    assert_eq!(breaker.len(), BATCHES, "one breaker sample per batch");
    let opened = breaker[BLACKOUT_FROM as usize..BLACKOUT_TO as usize]
        .iter()
        .any(|&v| v == BreakerState::Open.as_f64());
    assert!(
        opened,
        "the blackout must trip shard {BLACKOUT_SHARD}'s breaker"
    );
    let reclosed_at = (BLACKOUT_TO as usize..BATCHES)
        .find(|&b| breaker[b] == BreakerState::Closed.as_f64())
        .expect("breaker must re-close after the blackout");
    let recovery = reclosed_at as u64 - BLACKOUT_TO;
    assert!(
        recovery <= RECOVERY_BUDGET_BATCHES,
        "breaker re-closed {recovery} batches after the blackout \
         (budget: {RECOVERY_BUDGET_BATCHES})"
    );
    for s in 0..N_SHARDS {
        assert_eq!(
            svc.breaker_state(s),
            BreakerState::Closed,
            "shard {s}'s breaker must be closed at the end of the run"
        );
    }
    assert!(svc.health().ready, "the service must end the run ready");

    // The schedule actually exercised every fault family.
    for injected in [
        "chaos.injected.lp.resolve.fault",
        "chaos.injected.cg.pricing.panic",
        "chaos.injected.service.shard.blackout.1",
        "chaos.injected.service.cache.evict_storm",
        "chaos.injected.service.deadline.jitter",
    ] {
        assert!(obs.counter(injected) > 0, "{injected} never fired");
    }
    assert!(served_stale > 0, "the outage must exercise stale serving");
    assert!(
        obs.counter(service::metrics::BREAKER_SHED) > 0,
        "the open breaker must shed solves"
    );
    if local {
        assert!(
            obs.counter(service::metrics::LOCAL_SOLVES) > 0,
            "--local run must record locally-relevant solves"
        );
    }

    // Tier-ladder phase: with the blackout over and every breaker
    // closed again, walk the per-batch deadline down the quality
    // ladder. Every batch requests a cold ε budget (distinct per
    // batch, disjoint from EPSILONS) so serving cannot hit a warmer
    // tier's cache — the batch must come out at exactly the rung its
    // deadline selects. Chaos stays armed: scheduled jitter or an
    // exhausted retry budget can collapse individual batches to the
    // fallback, which is why the gate is "each rung served at least
    // once over the cycles", not "every request at the target rung".
    let mut ladder_served = [0u64; 4];
    for cycle in 0..LADDER_CYCLES {
        for (step, (deadline, want)) in LADDER.into_iter().enumerate() {
            let eps = 11.0 + (cycle * LADDER.len() + step) as f64 * 0.5;
            let ladder_reqs: Vec<(WorkerId, Location, f64)> = (0..FLEET)
                .map(|w| (WorkerId(w), locations[w % locations.len()], eps))
                .collect();
            let served = svc.obfuscate_batch_with_deadline(&ladder_reqs, deadline, &mut rng);
            assert_eq!(served.len(), ladder_reqs.len());
            requests_total += served.len() as u64;
            ladder_served[want as usize] += served.iter().filter(|o| o.tier == want).count() as u64;
        }
    }
    for (tier, served) in QualityTier::ALL.into_iter().zip(ladder_served) {
        assert!(
            served > 0,
            "the {} rung never served during the tier-ladder phase",
            tier.label()
        );
        assert!(
            obs.counter(service::metrics::tier_served_metric(tier)) > 0,
            "{} never counted",
            service::metrics::tier_served_metric(tier)
        );
        obs.push(
            &format!("bench_chaos.tier.{}.served", tier.label()),
            served as f64,
        );
    }
    // The ladder's leftovers — clustered and spanner mechanisms in the
    // cache included — pass the same privacy audit as every batch.
    audited += audit_live(&svc, local, "after the tier ladder");

    let denom = (served_optimal + served_stale + served_fallback) as f64;
    obs.push("bench_chaos.optimal_share", served_optimal as f64 / denom);
    obs.push("bench_chaos.stale_share", served_stale as f64 / denom);
    obs.push("bench_chaos.fallback_share", served_fallback as f64 / denom);
    obs.push("bench_chaos.recovery_batches", recovery as f64);
    obs.incr("bench_chaos.mechanisms_audited", audited);
    obs.record_duration("bench_chaos.total", elapsed);

    let snapshot = obs.snapshot();
    if let Err(e) = vlp_obs::schema::validate_snapshot(&snapshot) {
        eprintln!("bench_chaos: FAIL — invalid snapshot: {e}");
        std::process::exit(1);
    }
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create artifact directory");
        }
    }
    let mut doc = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    doc.push('\n');
    std::fs::write(&out, doc).expect("write artifact");

    let mode = if local {
        "locally-relevant"
    } else {
        "full-shard"
    };
    println!(
        "bench_chaos: OK ({mode}) — {requests_total} requests over {BATCHES} batches under \
         `{SCHEDULE}`; served {served_optimal} optimal / {served_stale} stale / \
         {served_fallback} fallback, {audited} mechanism audits all ε-valid, breaker re-closed \
         {recovery} batch(es) after the blackout; ladder served \
         {}/{}/{}/{} exact/clustered/spanner/laplace → {out}",
        ladder_served[0], ladder_served[1], ladder_served[2], ladder_served[3]
    );
}
