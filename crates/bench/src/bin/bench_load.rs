//! Open-loop load benchmark for the always-on serving core: drives
//! [`platform::MechanismService`]'s caller-path `submit` API with a
//! Zipf-skewed multi-region workload at a configured arrival rate and
//! emits the telemetry snapshot as `artifacts/bench_load.json`.
//!
//! The generator is *open-loop*: request `i` has a scheduled arrival
//! time `start + i / rate`, and latency is measured from that schedule,
//! not from the moment the generator got around to submitting — so a
//! slow service inflates the recorded tail instead of silently slowing
//! the generator down (no coordinated omission).
//!
//! The run has two phases:
//!
//! 1. **Warm** — one submission per `(shard, ε-bucket)` key. Each is a
//!    cold miss, served from the graph-Laplace fallback while the
//!    optimal solve runs on the shard's worker; `quiesce()` then waits
//!    for every solve to land in the cache.
//! 2. **Measured** — `--requests` Zipf-skewed submissions at `--rate`
//!    req/s. Every key is warm, so this is the pure cache-hit path:
//!    a per-shard table lock, an `Arc` bump, and a mechanism sample on
//!    the caller thread — no solve queue involved.
//!
//! CI gates on structure and determinism, **never on wall-clock
//! speed** (the bench_smoke philosophy): schema validity, same-seed
//! bit-identity of all non-timing/non-wall fields, a zero
//! privacy-audit failure count over every live mechanism, the
//! committed shed budget ([`SHED_BUDGET`]), and the invariant that the
//! measured (hit-only) phase enqueues nothing. Latency percentiles and
//! throughput are recorded under `bench_load.wall.*` series, which the
//! determinism projection excludes.
//!
//! Flags:
//!
//! * `--out <path>` — artifact destination (default
//!   `artifacts/bench_load.json`);
//! * `--check` — run the scenario twice and fail unless all
//!   non-timing, non-wall fields are identical across runs;
//! * `--rate <req/s>` — offered arrival rate (default 60000);
//! * `--requests <n>` — measured-phase request count (default 200000).

use std::time::{Duration, Instant};

use platform::{service, MechanismService, Response, Served, ServiceConfig, WorkerId};
use rand::{RngExt, SeedableRng};
use roadnet::{generators, Location};
use serde_json::Value;
use vlp_bench::scenarios::{pace_until, percentile, shard_locations, zipf_cdf, zipf_rank};
use vlp_core::privacy;

/// Seed shared by every stochastic component of the scenario.
const SEED: u64 = 20_260_807;

/// Stable run identifier: bump the suffix when the scenario changes.
const RUN_ID: &str = "bench-load-v1";

/// Popular privacy budgets the fleet rotates through (per km).
const EPSILONS: [f64; 3] = [2.0, 5.0, 10.0];

/// Region shards the map is partitioned into.
const N_SHARDS: usize = 4;

/// Distinct request locations per shard in the measured phase. With
/// [`EPSILONS`], the key universe is `N_SHARDS × LOCS_PER_SHARD × 3`
/// archetypes, all mapping onto the 12 warmed `(shard, ε)` buckets.
const LOCS_PER_SHARD: usize = 8;

/// Zipf popularity exponent for the archetype distribution.
const ZIPF_EXPONENT: f64 = 1.1;

/// Committed budget for `service.shed.rejected` across the run. The
/// workload is admission-friendly by construction (12 cold keys
/// against a deep queue, then hits only), so any rejection means the
/// admission path regressed.
const SHED_BUDGET: u64 = 0;

/// Runs the two-phase load scenario against a freshly reset global
/// registry and returns the resulting telemetry snapshot.
fn run_load(rate: f64, requests: usize) -> Value {
    let obs = vlp_obs::global();
    obs.reset();
    obs.set_run_id(RUN_ID);
    let total = Instant::now();

    let graph = generators::grid(4, 6, 0.4, true);
    let n_edges = graph.edge_count();
    let mut svc = MechanismService::new(
        graph,
        ServiceConfig {
            n_shards: N_SHARDS,
            delta: 0.2,
            // The open-loop path never waits on a deadline; zero keeps
            // the config honest about that.
            solve_deadline: Duration::ZERO,
            ..ServiceConfig::default()
        },
    );
    let by_shard = shard_locations(&svc, n_edges, LOCS_PER_SHARD);
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);

    // Phase 1 — warm every (shard, ε-bucket) key: one cold submission
    // per key (distinct keys, so nothing coalesces and the enqueue
    // count is exactly the key count), then wait for the solves.
    let mut warmed = 0u64;
    for (s, locs) in by_shard.iter().enumerate() {
        for &eps in &EPSILONS {
            match svc.submit(WorkerId(s), locs[0], eps, &mut rng) {
                Response::Served(o) => assert_eq!(
                    o.served,
                    Served::Fallback,
                    "cold submission for shard {s} at ε={eps} must serve the fallback"
                ),
                other => panic!("cold submission was not served: {other:?}"),
            }
            warmed += 1;
        }
    }
    svc.quiesce();
    svc.tick(); // flush warm-phase stats; push depth/breaker series
    let enqueued_warm = obs.counter(service::metrics::QUEUE_ENQUEUED);
    assert_eq!(
        enqueued_warm, warmed,
        "each distinct cold key must enqueue exactly one solve"
    );

    // Zipf popularity over the archetype universe, decoupled from the
    // construction order by a seeded shuffle (Fisher–Yates).
    let mut archetypes: Vec<(Location, f64)> = Vec::new();
    for locs in &by_shard {
        for &loc in locs {
            for &eps in &EPSILONS {
                archetypes.push((loc, eps));
            }
        }
    }
    for i in (1..archetypes.len()).rev() {
        let j = rng.random_range(0..=i);
        archetypes.swap(i, j);
    }
    let cdf = zipf_cdf(archetypes.len(), ZIPF_EXPONENT);

    // Phase 2 — the measured open-loop phase. Request `i` is due at
    // `start + i/rate`; the generator spins until the schedule says go
    // (sleeping when far ahead), and latency runs from the *schedule*.
    let interval = Duration::from_secs_f64(1.0 / rate);
    let mut latencies: Vec<Duration> = Vec::with_capacity(requests);
    let mut served_hits = 0u64;
    let mut served_degraded = 0u64;
    let mut rejected = 0u64;
    let start = Instant::now();
    for i in 0..requests {
        let due = start + interval.mul_f64(i as f64);
        pace_until(due);
        let u: f64 = rng.random();
        let (loc, eps) = archetypes[zipf_rank(&cdf, u)];
        match svc.submit(WorkerId(i), loc, eps, &mut rng) {
            Response::Served(o) => match o.served {
                Served::Optimal { .. } => served_hits += 1,
                Served::Stale { .. } | Served::Fallback => served_degraded += 1,
            },
            Response::Rejected { .. } => rejected += 1,
            Response::OffPartition { .. } => panic!("workload locations are all on-partition"),
            Response::BudgetExhausted { .. } => unreachable!("no trace budget configured"),
        }
        latencies.push(due.elapsed());
    }
    let elapsed = start.elapsed();
    svc.quiesce();
    svc.flush_metrics();

    // The measured phase is hit-only: it must never touch a solve
    // queue. Recorded as a series so the determinism gate pins it.
    let enqueued_after = obs.counter(service::metrics::QUEUE_ENQUEUED);
    obs.push(
        "bench_load.hit_phase_enqueues",
        (enqueued_after - enqueued_warm) as f64,
    );
    obs.push("bench_load.hit_rate", served_hits as f64 / requests as f64);
    obs.push("bench_load.degraded", served_degraded as f64);
    obs.push("bench_load.rejected", rejected as f64);

    // Audit every mechanism the service holds — cached optima and
    // fallbacks alike — against the full (unreduced) Geo-I constraint
    // set at its canonical ε.
    let mut audited = 0u64;
    for (s, canonical, mech) in svc.live_mechanisms() {
        let inst = svc.shard_instance(s);
        let spec = vlp_core::PrivacySpec::full(&inst.aux, canonical, f64::INFINITY);
        assert!(
            privacy::verify(&mech, &spec, 1e-6),
            "live mechanism for shard {s} at ε={canonical} violates Geo-I"
        );
        audited += 1;
    }
    obs.incr("bench_load.privacy_audits", audited);

    // Wall-clock results: percentiles from the scheduled arrival, plus
    // offered vs achieved throughput. These live under the
    // `bench_load.wall.` prefix, which the determinism projection
    // strips — they are reported, never gated.
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let p999 = percentile(&latencies, 0.999);
    let throughput = requests as f64 / elapsed.as_secs_f64();
    obs.push("bench_load.wall.p50_us", p50.as_secs_f64() * 1e6);
    obs.push("bench_load.wall.p99_us", p99.as_secs_f64() * 1e6);
    obs.push("bench_load.wall.p999_us", p999.as_secs_f64() * 1e6);
    obs.push("bench_load.wall.offered_rps", rate);
    obs.push("bench_load.wall.throughput_rps", throughput);

    obs.record_duration("bench_load.total", total.elapsed());
    svc.shutdown();
    obs.snapshot()
}

/// The deterministic projection of a snapshot: everything except the
/// `timers` section and the `bench_load.wall.*` series, both of which
/// legitimately vary between runs.
fn deterministic(snapshot: &Value) -> Value {
    let mut doc = snapshot.clone();
    if let Some(map) = doc.as_object_mut() {
        map.remove("timers");
        if let Some(mut series) = map.remove("series") {
            if let Some(obj) = series.as_object_mut() {
                let wall: Vec<String> = obj
                    .keys()
                    .filter(|name| name.starts_with("bench_load.wall."))
                    .cloned()
                    .collect();
                for name in wall {
                    obj.remove(&name);
                }
            }
            map.insert("series".into(), series);
        }
    }
    doc
}

/// Asserts the signals CI gates on; returns an error message naming
/// the first violated gate. Speed never appears here.
fn check_signals(snapshot: &Value) -> Result<(), String> {
    vlp_obs::schema::validate_snapshot(snapshot)?;
    let shed = snapshot["counters"][service::metrics::SHED_REJECTED]
        .as_u64()
        .unwrap_or(0);
    if shed > SHED_BUDGET {
        return Err(format!(
            "{shed} requests shed exceeds the committed budget of {SHED_BUDGET}"
        ));
    }
    let enqueues = snapshot["series"]["bench_load.hit_phase_enqueues"][0]
        .as_f64()
        .unwrap_or(f64::NAN);
    if enqueues != 0.0 {
        return Err(format!(
            "hit-only phase enqueued {enqueues} solves — cache hits are entering a queue"
        ));
    }
    let hit_rate = snapshot["series"]["bench_load.hit_rate"][0]
        .as_f64()
        .unwrap_or(0.0);
    if hit_rate < 1.0 {
        return Err(format!(
            "measured-phase hit rate {hit_rate} below 1.0 — warm-up left cold keys"
        ));
    }
    if snapshot["counters"]["bench_load.privacy_audits"]
        .as_u64()
        .unwrap_or(0)
        == 0
    {
        return Err("privacy audit ran over zero mechanisms".into());
    }
    for series in [
        "bench_load.wall.p50_us",
        "bench_load.wall.p99_us",
        "bench_load.wall.p999_us",
    ] {
        if snapshot["series"][series]
            .as_array()
            .is_none_or(|a| a.is_empty())
        {
            return Err(format!("latency series `{series}` is missing or empty"));
        }
    }
    if snapshot["timers"]["bench_load.total"]["total_ns"]
        .as_u64()
        .unwrap_or(0)
        == 0
    {
        return Err("end-to-end wall-time timer is missing".into());
    }
    Ok(())
}

fn main() {
    let mut out = String::from("artifacts/bench_load.json");
    let mut check = false;
    let mut rate = 60_000.0f64;
    let mut requests = 200_000usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => out = argv.next().expect("--out needs a path"),
            "--rate" => {
                rate = argv
                    .next()
                    .expect("--rate needs a rate")
                    .parse()
                    .expect("--rate needs a number");
                assert!(rate > 0.0, "--rate must be positive");
            }
            "--requests" => {
                requests = argv
                    .next()
                    .expect("--requests needs a count")
                    .parse()
                    .expect("--requests needs an integer")
            }
            other => {
                eprintln!(
                    "unknown flag `{other}` (expected --check, --out <path>, --rate <req/s>, \
                     or --requests <n>)"
                );
                std::process::exit(2);
            }
        }
    }

    let snapshot = run_load(rate, requests);
    if let Err(e) = check_signals(&snapshot) {
        eprintln!("bench_load: FAIL — {e}");
        std::process::exit(1);
    }

    if check {
        let second = run_load(rate, requests);
        if let Err(e) = check_signals(&second) {
            eprintln!("bench_load: FAIL (second run) — {e}");
            std::process::exit(1);
        }
        if deterministic(&snapshot) != deterministic(&second) {
            eprintln!("bench_load: FAIL — deterministic fields differ between same-seed runs");
            eprintln!(
                "first:  {}",
                serde_json::to_string(&deterministic(&snapshot)).unwrap()
            );
            eprintln!(
                "second: {}",
                serde_json::to_string(&deterministic(&second)).unwrap()
            );
            std::process::exit(1);
        }
        println!("determinism check: deterministic fields identical across two runs");
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create artifact directory");
        }
    }
    let mut doc = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    doc.push('\n');
    std::fs::write(&out, doc).expect("write artifact");

    let p50 = snapshot["series"]["bench_load.wall.p50_us"][0]
        .as_f64()
        .unwrap();
    let p99 = snapshot["series"]["bench_load.wall.p99_us"][0]
        .as_f64()
        .unwrap();
    let p999 = snapshot["series"]["bench_load.wall.p999_us"][0]
        .as_f64()
        .unwrap();
    let throughput = snapshot["series"]["bench_load.wall.throughput_rps"][0]
        .as_f64()
        .unwrap();
    let audits = snapshot["counters"]["bench_load.privacy_audits"]
        .as_u64()
        .unwrap();
    println!(
        "bench_load: OK — {requests} requests offered at {rate:.0} req/s, achieved \
         {throughput:.0} req/s, p50 {p50:.1}µs / p99 {p99:.1}µs / p999 {p999:.1}µs, \
         100% cache hits, {audits} mechanisms audited → {out}"
    );
}
