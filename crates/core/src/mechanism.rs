//! The location obfuscation mechanism: the matrix `Z = {z_{i,j}}`.

use rand::RngExt;
use roadnet::{Location, RoadGraph};
use serde::{Deserialize, Serialize};

use crate::cost::CostMatrix;
use crate::discretize::Discretization;
use crate::privacy::PrivacySpec;

/// A discrete location obfuscation mechanism over `K` intervals.
///
/// Row `i` is the conditional distribution of the reported interval
/// given that the vehicle's true location lies in interval `u_i`
/// (the collection `F` of §3.2.1, discretized per §4.1). The server
/// computes it once and workers download it — [`Mechanism`] serializes
/// with serde to support exactly that flow (§2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mechanism {
    k: usize,
    /// Row-major `K × K` probabilities.
    z: Vec<f64>,
}

impl Mechanism {
    /// Wraps a row-major `K × K` matrix, verifying that every row is a
    /// probability distribution (within `tol`). Entries are clamped to
    /// `[0, 1]` and rows renormalized to absorb solver round-off.
    ///
    /// Returns `None` if dimensions mismatch, any entry is non-finite
    /// or below `-tol`, or a row sum strays from 1 by more than `tol`.
    pub fn from_matrix(k: usize, mut z: Vec<f64>, tol: f64) -> Option<Self> {
        if z.len() != k * k || k == 0 {
            return None;
        }
        for row in 0..k {
            let r = &mut z[row * k..(row + 1) * k];
            if r.iter().any(|v| !v.is_finite() || *v < -tol) {
                return None;
            }
            let sum: f64 = r.iter().map(|v| v.max(0.0)).sum();
            if (sum - 1.0).abs() > tol || sum <= 0.0 {
                return None;
            }
            for v in r.iter_mut() {
                *v = v.max(0.0) / sum;
            }
        }
        Some(Self { k, z })
    }

    /// The uniform mechanism: every true interval reports uniformly.
    ///
    /// Always feasible for any Geo-I spec; used to seed column
    /// generation.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn uniform(k: usize) -> Self {
        assert!(k > 0, "mechanism needs at least one interval");
        Self {
            k,
            z: vec![1.0 / k as f64; k * k],
        }
    }

    /// The truthful (identity) mechanism — maximal quality, no privacy.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn identity(k: usize) -> Self {
        assert!(k > 0, "mechanism needs at least one interval");
        let mut z = vec![0.0; k * k];
        for i in 0..k {
            z[i * k + i] = 1.0;
        }
        Self { k, z }
    }

    /// Number of intervals `K`.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Whether the mechanism covers no intervals.
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// The probability `z_{i,j}` of reporting interval `j` from true
    /// interval `i`.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.z[i * self.k + j]
    }

    /// The conditional distribution of reports for true interval `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.z[i * self.k..(i + 1) * self.k]
    }

    /// The full matrix, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.z
    }

    /// Samples a reported interval for true interval `i`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::SeedableRng;
    /// use vlp_core::Mechanism;
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    /// // Truthful reporting always returns the true interval...
    /// assert_eq!(Mechanism::identity(4).sample_interval(2, &mut rng), 2);
    /// // ...while any mechanism's draw lands in `0..K`.
    /// assert!(Mechanism::uniform(4).sample_interval(2, &mut rng) < 4);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ K`.
    pub fn sample_interval<R: RngExt + ?Sized>(&self, i: usize, rng: &mut R) -> usize {
        let row = self.row(i);
        let u: f64 = rng.random();
        let mut acc = 0.0;
        for (j, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                return j;
            }
        }
        self.k - 1
    }

    /// Samples an obfuscated *location* for a true location `p`: draws
    /// the reported interval from `p`'s row and transplants `p`'s
    /// relative offset into it (§4.1, Step II).
    ///
    /// Returns `None` if `p` cannot be located in the discretization.
    pub fn sample_location<R: RngExt + ?Sized>(
        &self,
        graph: &RoadGraph,
        disc: &Discretization,
        p: Location,
        rng: &mut R,
    ) -> Option<Location> {
        let i = disc.locate(graph, p)?;
        let j = self.sample_interval(i, rng);
        disc.transplant(graph, p, j)
    }

    /// The expected quality loss (ETDD, Eq. 18) under cost matrix `c`.
    pub fn quality_loss(&self, cost: &CostMatrix) -> f64 {
        cost.quality_loss(&self.z)
    }

    /// Worst Geo-I violation against `spec`
    /// (see [`PrivacySpec::max_violation`]).
    pub fn max_violation(&self, spec: &PrivacySpec) -> f64 {
        spec.max_violation(self.k, &self.z)
    }

    /// Whether every row sums to 1 within `tol` with non-negative
    /// entries.
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        (0..self.k).all(|i| {
            let row = self.row(i);
            row.iter().all(|&v| v >= -tol) && (row.iter().sum::<f64>() - 1.0).abs() <= tol
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_is_row_stochastic() {
        let m = Mechanism::uniform(5);
        assert!(m.is_row_stochastic(1e-12));
        assert_eq!(m.prob(2, 3), 0.2);
    }

    #[test]
    fn identity_reports_truthfully() {
        let m = Mechanism::identity(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for i in 0..4 {
            assert_eq!(m.sample_interval(i, &mut rng), i);
        }
    }

    #[test]
    fn from_matrix_normalizes_round_off() {
        let z = vec![0.5 + 1e-9, 0.5, 0.25, 0.75 - 1e-9];
        let m = Mechanism::from_matrix(2, z, 1e-6).unwrap();
        assert!(m.is_row_stochastic(1e-12));
    }

    #[test]
    fn from_matrix_rejects_bad_rows() {
        assert!(Mechanism::from_matrix(2, vec![0.9, 0.0, 0.5, 0.5], 1e-6).is_none());
        assert!(Mechanism::from_matrix(2, vec![1.2, -0.2, 0.5, 0.5], 1e-6).is_none());
        assert!(Mechanism::from_matrix(2, vec![f64::NAN, 1.0, 0.5, 0.5], 1e-6).is_none());
        assert!(Mechanism::from_matrix(3, vec![1.0; 4], 1e-6).is_none());
    }

    #[test]
    fn sampling_matches_row_distribution() {
        let z = vec![0.8, 0.2, 0.3, 0.7];
        let m = Mechanism::from_matrix(2, z, 1e-9).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| m.sample_interval(0, &mut rng) == 0)
            .count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "sampled {frac}");
    }

    #[test]
    fn serde_round_trip() {
        let m = Mechanism::uniform(3);
        let s = serde_json::to_string(&m).unwrap();
        let back: Mechanism = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn sample_location_lands_in_reported_interval() {
        use roadnet::generators;
        let g = generators::grid(2, 2, 0.5, true);
        let disc = Discretization::new(&g, 0.25);
        let k = disc.len();
        let m = Mechanism::uniform(k);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let p = disc.interval(0).midpoint();
        for _ in 0..20 {
            let obf = m.sample_location(&g, &disc, p, &mut rng).unwrap();
            let j = disc.locate(&g, obf).unwrap();
            assert!(disc.interval(j).contains(obf));
        }
    }
}
