//! Priors, interval travel distances, and the D-VLP cost matrix
//! `c_{i,l}` (Eq. 19).

// Dense numeric kernels below index several parallel arrays in one
// loop; iterator rewrites would obscure the linear-algebra intent.
#![allow(clippy::needless_range_loop)]

use roadnet::{distance, NodeDistances, RoadGraph};
use serde::{Deserialize, Serialize};

use crate::discretize::Discretization;

/// A probability distribution over the `K` route intervals.
///
/// Used both for the worker's location prior `f_P` and the task prior
/// `f_Q` (§3.3). Values are non-negative and sum to one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prior(Vec<f64>);

impl Prior {
    /// The uniform prior over `k` intervals.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn uniform(k: usize) -> Self {
        assert!(k > 0, "prior needs at least one interval");
        Prior(vec![1.0 / k as f64; k])
    }

    /// Builds a prior from non-negative weights, normalizing them to
    /// sum to one. Returns `None` if the weights are empty, contain a
    /// negative or non-finite entry, or sum to zero.
    pub fn from_weights(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        Some(Prior(weights.iter().map(|w| w / total).collect()))
    }

    /// Probability mass of interval `k`.
    pub fn get(&self, k: usize) -> f64 {
        self.0[k]
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the prior covers no intervals.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The probabilities as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Samples an interval index from this prior.
    pub fn sample<R: rand::RngExt + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        let mut acc = 0.0;
        for (k, &p) in self.0.iter().enumerate() {
            acc += p;
            if u < acc {
                return k;
            }
        }
        self.0.len() - 1
    }
}

/// All-pairs travel distances between interval representatives on the
/// *real* road graph (not the auxiliary graph).
///
/// `get(i, q)` is `d_G(mid(u_i), mid(u_q))`: the expected traveling
/// distance from a vehicle in `u_i` to a task in `u_q`, using interval
/// midpoints as representatives (Step III of §4.1 makes all points in
/// an interval equivalent, so the midpoint is the natural quadrature
/// point for the integrals of Eq. 19).
#[derive(Debug, Clone)]
pub struct IntervalDistances {
    k: usize,
    dist: Vec<f64>,
}

impl IntervalDistances {
    /// Computes the `K × K` directed distance matrix.
    pub fn build(graph: &RoadGraph, node_dists: &NodeDistances, disc: &Discretization) -> Self {
        let k = disc.len();
        let mids: Vec<_> = disc.intervals().iter().map(|u| u.midpoint()).collect();
        let mut dist = vec![0.0; k * k];
        for i in 0..k {
            for q in 0..k {
                dist[i * k + q] = distance::travel_distance(graph, node_dists, mids[i], mids[q]);
            }
        }
        Self { k, dist }
    }

    /// Directed travel distance from interval `i` to interval `q`.
    pub fn get(&self, i: usize, q: usize) -> f64 {
        self.dist[i * self.k + q]
    }

    /// Bidirectional distance `min{d(i,l), d(l,i)}`.
    pub fn get_min(&self, i: usize, l: usize) -> f64 {
        self.get(i, l).min(self.get(l, i))
    }

    /// Number of intervals covered.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }
}

/// The D-VLP cost matrix: `c_{i,l}` is the expected quality loss
/// contributed when a vehicle whose true location is in `u_i` reports
/// interval `u_l` (Eq. 19):
///
/// `c_{i,l} = f_P(u_i) · Σ_q f_Q(u_q) · |d(u_i, u_q) − d(u_l, u_q)|`.
///
/// With this scaling, the D-VLP objective is simply
/// `Σ_i Σ_l c_{i,l} · z_{i,l}` (Eq. 18).
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    k: usize,
    cost: Vec<f64>,
}

impl CostMatrix {
    /// Builds the cost matrix from interval distances and the two
    /// priors.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions of `dists`, `f_p`, and `f_q` disagree.
    pub fn build(dists: &IntervalDistances, f_p: &Prior, f_q: &Prior) -> Self {
        let k = dists.len();
        assert_eq!(f_p.len(), k, "f_P dimension mismatch");
        assert_eq!(f_q.len(), k, "f_Q dimension mismatch");
        if k == 0 {
            return Self {
                k,
                cost: Vec::new(),
            };
        }
        // Rows are independent (row `i` reads only `f_p[i]`, `f_q`, and
        // the distance matrix), so the O(K³) build fans out across
        // cores; each row's accumulation order is unchanged, keeping
        // the result bit-identical for any thread count.
        let mut cost = vec![0.0; k * k];
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(k);
        let chunk = k.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (t, rows) in cost.chunks_mut(chunk * k).enumerate() {
                let lo = t * chunk;
                handles.push(scope.spawn(move || {
                    for (off, row) in rows.chunks_mut(k).enumerate() {
                        let i = lo + off;
                        let fp = f_p.get(i);
                        for l in 0..k {
                            let mut acc = 0.0;
                            if fp > 0.0 {
                                for q in 0..k {
                                    let fq = f_q.get(q);
                                    if fq > 0.0 {
                                        let di = dists.get(i, q);
                                        let dl = dists.get(l, q);
                                        acc += fq * (di - dl).abs();
                                    }
                                }
                            }
                            row[l] = fp * acc;
                        }
                    }
                }));
            }
            for h in handles {
                h.join().expect("cost-matrix thread panicked");
            }
        });
        Self { k, cost }
    }

    /// Builds a cost matrix with *heterogeneous QoS preferences* — the
    /// extension sketched in the paper's §7: "users may have different
    /// QoS preferences over different regions in the road network,
    /// e.g., some workers may tolerate less quality loss in downtown
    /// than in suburban areas".
    ///
    /// `sensitivity[i]` scales the quality-loss weight of distortions
    /// whose *true* location is interval `u_i` (1.0 = the plain Eq. 19
    /// cost; larger = less tolerance for loss there). The optimizer
    /// then shifts obfuscation budget away from sensitive regions.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree or any sensitivity is negative or
    /// non-finite.
    pub fn build_weighted(
        dists: &IntervalDistances,
        f_p: &Prior,
        f_q: &Prior,
        sensitivity: &[f64],
    ) -> Self {
        let k = dists.len();
        assert_eq!(sensitivity.len(), k, "sensitivity dimension mismatch");
        assert!(
            sensitivity.iter().all(|s| s.is_finite() && *s >= 0.0),
            "sensitivities must be non-negative finite"
        );
        let mut base = Self::build(dists, f_p, f_q);
        for i in 0..k {
            for l in 0..k {
                base.cost[i * k + l] *= sensitivity[i];
            }
        }
        base
    }

    /// Builds a cost matrix directly from a dense row-major `K × K`
    /// table (used by baselines that measure quality differently).
    ///
    /// # Panics
    ///
    /// Panics if `cost.len()` is not a perfect square matching `k²`.
    pub fn from_dense(k: usize, cost: Vec<f64>) -> Self {
        assert_eq!(cost.len(), k * k, "cost matrix must be K×K");
        Self { k, cost }
    }

    /// The cost `c_{i,l}`.
    pub fn get(&self, i: usize, l: usize) -> f64 {
        self.cost[i * self.k + l]
    }

    /// Number of intervals `K`.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// The column vector `c_{·,l}` (costs of reporting interval `l`).
    pub fn column(&self, l: usize) -> Vec<f64> {
        (0..self.k).map(|i| self.get(i, l)).collect()
    }

    /// Evaluates the D-VLP objective `Σ_{i,l} c_{i,l} z_{i,l}` for a
    /// row-major `K × K` mechanism matrix.
    pub fn quality_loss(&self, z: &[f64]) -> f64 {
        debug_assert_eq!(z.len(), self.k * self.k);
        self.cost.iter().zip(z).map(|(c, zz)| c * zz).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use roadnet::generators;

    fn setup() -> (RoadGraph, NodeDistances, Discretization) {
        let g = generators::grid(2, 2, 0.5, true);
        let nd = NodeDistances::all_pairs(&g);
        let d = Discretization::new(&g, 0.25);
        (g, nd, d)
    }

    #[test]
    fn uniform_prior_sums_to_one() {
        let p = Prior::uniform(7);
        let s: f64 = p.as_slice().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_weights_normalizes() {
        let p = Prior::from_weights(&[2.0, 6.0]).unwrap();
        assert!((p.get(0) - 0.25).abs() < 1e-12);
        assert!((p.get(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn from_weights_rejects_bad_input() {
        assert!(Prior::from_weights(&[]).is_none());
        assert!(Prior::from_weights(&[1.0, -0.1]).is_none());
        assert!(Prior::from_weights(&[0.0, 0.0]).is_none());
        assert!(Prior::from_weights(&[f64::NAN]).is_none());
    }

    #[test]
    fn sample_respects_masses() {
        let p = Prior::from_weights(&[0.0, 1.0, 0.0]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(p.sample(&mut rng), 1);
        }
    }

    #[test]
    fn interval_distances_diagonal_is_zero() {
        let (g, nd, d) = setup();
        let id = IntervalDistances::build(&g, &nd, &d);
        for i in 0..id.len() {
            assert_eq!(id.get(i, i), 0.0);
        }
    }

    #[test]
    fn interval_distances_min_is_symmetric() {
        let (g, nd, d) = setup();
        let id = IntervalDistances::build(&g, &nd, &d);
        for i in 0..id.len() {
            for l in 0..id.len() {
                assert_eq!(id.get_min(i, l), id.get_min(l, i));
            }
        }
    }

    #[test]
    fn cost_diagonal_is_zero() {
        let (g, nd, d) = setup();
        let id = IntervalDistances::build(&g, &nd, &d);
        let k = id.len();
        let c = CostMatrix::build(&id, &Prior::uniform(k), &Prior::uniform(k));
        for i in 0..k {
            assert_eq!(c.get(i, i), 0.0, "truthful reporting costs nothing");
        }
    }

    #[test]
    fn cost_scales_with_prior_mass() {
        let (g, nd, d) = setup();
        let id = IntervalDistances::build(&g, &nd, &d);
        let k = id.len();
        // All the prior mass on interval 0: rows other than 0 are free.
        let mut w = vec![0.0; k];
        w[0] = 1.0;
        let c = CostMatrix::build(&id, &Prior::from_weights(&w).unwrap(), &Prior::uniform(k));
        for i in 1..k {
            for l in 0..k {
                assert_eq!(c.get(i, l), 0.0);
            }
        }
        // Reporting elsewhere from interval 0 has positive cost.
        assert!((1..k).any(|l| c.get(0, l) > 0.0));
    }

    #[test]
    fn truthful_mechanism_has_zero_loss() {
        let (g, nd, d) = setup();
        let id = IntervalDistances::build(&g, &nd, &d);
        let k = id.len();
        let c = CostMatrix::build(&id, &Prior::uniform(k), &Prior::uniform(k));
        let mut identity = vec![0.0; k * k];
        for i in 0..k {
            identity[i * k + i] = 1.0;
        }
        assert_eq!(c.quality_loss(&identity), 0.0);
    }

    #[test]
    fn quality_loss_increases_with_obfuscation_spread() {
        let (g, nd, d) = setup();
        let id = IntervalDistances::build(&g, &nd, &d);
        let k = id.len();
        let c = CostMatrix::build(&id, &Prior::uniform(k), &Prior::uniform(k));
        let uniform = vec![1.0 / k as f64; k * k];
        assert!(c.quality_loss(&uniform) > 0.0);
    }

    #[test]
    fn column_extracts_costs() {
        let (g, nd, d) = setup();
        let id = IntervalDistances::build(&g, &nd, &d);
        let k = id.len();
        let c = CostMatrix::build(&id, &Prior::uniform(k), &Prior::uniform(k));
        let col = c.column(1);
        for i in 0..k {
            assert_eq!(col[i], c.get(i, 1));
        }
    }
}
