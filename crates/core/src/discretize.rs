//! Edge discretization into route intervals (§4.1, Step I).
//!
//! Every edge of the road network is partitioned into intervals of
//! length `δ`, walking from the edge's starting connection towards its
//! ending connection. Because edge lengths are not multiples of `δ`,
//! the final interval of an edge may be shorter (the paper's footnote 1
//! makes the same concession).

use roadnet::{EdgeId, Location, RoadGraph};
use serde::{Deserialize, Serialize};

/// One route interval `u_k`: a contiguous stretch of a single edge.
///
/// An interval is described by the coordinates of its two endpoints in
/// the paper's `x` convention (remaining distance to the edge's ending
/// connection): `u_k^s = (e, x_hi)` is the endpoint nearer the edge
/// start and `u_k^e = (e, x_lo)` the endpoint nearer the edge end, with
/// `x_hi − x_lo = length ≤ δ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Edge this interval lies on.
    pub edge: EdgeId,
    /// `x` coordinate of the interval's starting endpoint `u_k^s`.
    pub x_hi: f64,
    /// `x` coordinate of the interval's ending endpoint `u_k^e`.
    pub x_lo: f64,
}

impl Interval {
    /// The interval's length `x_hi − x_lo`.
    pub fn length(&self) -> f64 {
        self.x_hi - self.x_lo
    }

    /// The interval's starting endpoint `u_k^s` as a location.
    pub fn start_point(&self) -> Location {
        Location::new(self.edge, self.x_hi)
    }

    /// The interval's ending endpoint `u_k^e` as a location.
    pub fn end_point(&self) -> Location {
        Location::new(self.edge, self.x_lo)
    }

    /// The interval's midpoint, used as its representative location
    /// when evaluating travel distances.
    pub fn midpoint(&self) -> Location {
        Location::new(self.edge, 0.5 * (self.x_hi + self.x_lo))
    }

    /// Whether `loc` lies inside this interval (on the same edge, with
    /// `x ∈ (x_lo, x_hi]`; the lower endpoint belongs to the next
    /// interval towards the edge end).
    pub fn contains(&self, loc: Location) -> bool {
        loc.edge() == self.edge
            && loc.to_end() > self.x_lo - 1e-12
            && loc.to_end() <= self.x_hi + 1e-12
    }
}

/// The partition `U = {u_1, …, u_K}` of a road network into intervals.
///
/// # Example
///
/// ```
/// use roadnet::generators;
/// use vlp_core::Discretization;
///
/// let g = generators::grid(3, 3, 0.5, true);
/// let disc = Discretization::new(&g, 0.1);
/// assert_eq!(disc.len(), g.edge_count() * 5); // 0.5 km edges, δ = 0.1
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discretization {
    delta: f64,
    intervals: Vec<Interval>,
    /// `edge_first[e]` = index of the first interval on edge `e`;
    /// the edge's intervals are stored contiguously in travel order.
    edge_first: Vec<usize>,
    /// Number of intervals per edge.
    edge_counts: Vec<usize>,
}

impl Discretization {
    /// Partitions every edge of `graph` into equal-length intervals as
    /// close to `delta` km as the edge length allows.
    ///
    /// The paper's Step I cuts exact-δ intervals and tolerates a short
    /// leftover at the edge end (footnote 1). Exact-δ cutting leaves
    /// sliver intervals (metres long) on edges whose length is not a
    /// multiple of δ, and slivers poison both the auxiliary-graph
    /// metric and the LP scaling; instead each edge is split into
    /// `round(w_e/δ) ≥ 1` *equal* intervals, so every interval length
    /// lies in `[2δ/3, 1.5δ]` (or is the whole edge when `w_e < δ`).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not a positive finite number.
    pub fn new(graph: &RoadGraph, delta: f64) -> Self {
        assert!(delta.is_finite() && delta > 0.0, "delta must be positive");
        let mut intervals = Vec::new();
        let mut edge_first = Vec::with_capacity(graph.edge_count());
        let mut edge_counts = Vec::with_capacity(graph.edge_count());
        for e in graph.edges() {
            edge_first.push(intervals.len());
            let w = e.length();
            // Number of intervals: nearest to w/δ, at least one.
            let count = ((w / delta).round() as usize).max(1);
            let step = w / count as f64;
            for k in 0..count {
                let x_hi = w - k as f64 * step;
                let x_lo = if k + 1 == count {
                    0.0
                } else {
                    w - (k + 1) as f64 * step
                };
                intervals.push(Interval {
                    edge: e.id(),
                    x_hi,
                    x_lo,
                });
            }
            edge_counts.push(count);
        }
        Self {
            delta,
            intervals,
            edge_first,
            edge_counts,
        }
    }

    /// The nominal interval length `δ` in kilometres.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Total number of intervals `K`.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the partition is empty (graphs always have ≥ 1 edge in
    /// practice, but an edgeless graph discretizes to nothing).
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// All intervals, in `(edge, travel-order)` order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// The interval with index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ K`.
    pub fn interval(&self, k: usize) -> &Interval {
        &self.intervals[k]
    }

    /// Indices of the intervals on `edge`, in travel order.
    pub fn intervals_on_edge(&self, edge: EdgeId) -> std::ops::Range<usize> {
        let first = self.edge_first[edge.index()];
        first..first + self.edge_counts[edge.index()]
    }

    /// The index of the interval containing `loc`.
    ///
    /// Returns `None` if `loc`'s edge is out of range or its coordinate
    /// falls outside `[0, w_e]`.
    pub fn locate(&self, graph: &RoadGraph, loc: Location) -> Option<usize> {
        if loc.edge().index() >= graph.edge_count() {
            return None;
        }
        let w = graph.edge(loc.edge()).length();
        let x = loc.to_end();
        if !(0.0..=w + 1e-12).contains(&x) {
            return None;
        }
        let from_start = (w - x).max(0.0);
        let count = self.edge_counts[loc.edge().index()];
        let step = w / count as f64;
        let k = ((from_start / step) as usize).min(count - 1);
        Some(self.edge_first[loc.edge().index()] + k)
    }

    /// The relative location `δ(p) = x − x_{u_k}^e` of `p` inside its
    /// interval (§4.1, Step I), or `None` if `p` cannot be located.
    pub fn relative_location(&self, graph: &RoadGraph, p: Location) -> Option<f64> {
        let k = self.locate(graph, p)?;
        Some(p.to_end() - self.intervals[k].x_lo)
    }

    /// Transplants `p` into interval `l` preserving its relative
    /// location (§4.1, Step II): the obfuscated location has the same
    /// offset from its interval's ending endpoint as `p` has from its
    /// own. When interval `l` is shorter than `p`'s offset the offset is
    /// clamped to `l`'s length.
    pub fn transplant(&self, graph: &RoadGraph, p: Location, l: usize) -> Option<Location> {
        let rel = self.relative_location(graph, p)?;
        let target = self.intervals.get(l)?;
        let rel = rel.min(target.length());
        Some(Location::new(target.edge, target.x_lo + rel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::RoadGraphBuilder;

    /// One edge of length 1.0 and one of length 0.35.
    fn two_edge_graph() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(1.0, 0.0);
        b.add_edge(v0, v1, 1.0).unwrap();
        b.add_edge(v1, v0, 0.35).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn partitions_edges_in_travel_order() {
        let g = two_edge_graph();
        let d = Discretization::new(&g, 0.25);
        // Edge 0 (len 1.0): 4 equal intervals; edge 1 (len 0.35):
        // round(0.35/0.25) = 1 interval covering the whole edge.
        assert_eq!(d.len(), 5);
        assert_eq!(d.intervals_on_edge(EdgeId(0)), 0..4);
        assert_eq!(d.intervals_on_edge(EdgeId(1)), 4..5);
        // First interval of edge 0 is nearest the start: x from 1.0 down
        // to 0.75.
        let first = d.interval(0);
        assert!((first.x_hi - 1.0).abs() < 1e-12);
        assert!((first.x_lo - 0.75).abs() < 1e-12);
        // Edge 1's single interval spans it entirely.
        let last = d.interval(4);
        assert!((last.length() - 0.35).abs() < 1e-12);
        assert_eq!(last.x_lo, 0.0);
        assert!((last.x_hi - 0.35).abs() < 1e-12);
    }

    #[test]
    fn intervals_are_equal_length_per_edge() {
        let g = two_edge_graph();
        let d = Discretization::new(&g, 0.3);
        // Edge 0 (len 1.0): round(1.0/0.3) = 3 intervals of 1/3 each.
        let lens: Vec<f64> = d
            .intervals_on_edge(EdgeId(0))
            .map(|k| d.interval(k).length())
            .collect();
        assert_eq!(lens.len(), 3);
        for l in lens {
            assert!((l - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn locate_roundtrips_midpoints() {
        let g = two_edge_graph();
        let d = Discretization::new(&g, 0.25);
        for (k, u) in d.intervals().iter().enumerate() {
            assert_eq!(d.locate(&g, u.midpoint()), Some(k), "interval {k}");
        }
    }

    #[test]
    fn locate_boundary_points() {
        let g = two_edge_graph();
        let d = Discretization::new(&g, 0.25);
        // x = w (edge start) belongs to the first interval.
        assert_eq!(d.locate(&g, Location::new(EdgeId(0), 1.0)), Some(0));
        // x = 0 (edge end) belongs to the last interval of the edge.
        assert_eq!(d.locate(&g, Location::new(EdgeId(0), 0.0)), Some(3));
    }

    #[test]
    fn locate_rejects_out_of_range() {
        let g = two_edge_graph();
        let d = Discretization::new(&g, 0.25);
        assert_eq!(d.locate(&g, Location::new(EdgeId(7), 0.1)), None);
        assert_eq!(d.locate(&g, Location::new(EdgeId(0), 2.0)), None);
        assert_eq!(d.locate(&g, Location::new(EdgeId(0), -0.5)), None);
    }

    #[test]
    fn relative_location_and_transplant() {
        let g = two_edge_graph();
        let d = Discretization::new(&g, 0.25);
        // p on edge 0, x = 0.80: interval 0 (x in [0.75, 1.0]),
        // relative location 0.05.
        let p = Location::new(EdgeId(0), 0.80);
        assert!((d.relative_location(&g, p).unwrap() - 0.05).abs() < 1e-12);
        // Transplant into interval 2 (x in [0.25, 0.50]) → x = 0.30.
        let t = d.transplant(&g, p, 2).unwrap();
        assert_eq!(t.edge(), EdgeId(0));
        assert!((t.to_end() - 0.30).abs() < 1e-12);
        // Same relative location before and after (Step II).
        assert!(
            (d.relative_location(&g, t).unwrap() - d.relative_location(&g, p).unwrap()).abs()
                < 1e-12
        );
    }

    #[test]
    fn transplant_clamps_into_short_intervals() {
        // A graph with a deliberately short edge so one interval is
        // shorter than the relative offset being transplanted.
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(1.0, 0.0);
        let v2 = b.add_node(1.1, 0.0);
        b.add_edge(v0, v1, 1.0).unwrap();
        b.add_edge(v1, v2, 0.1).unwrap();
        b.add_edge(v2, v0, 1.1).unwrap();
        let g = b.build().unwrap();
        let d = Discretization::new(&g, 0.25);
        let short = d.intervals_on_edge(EdgeId(1)).start;
        assert!((d.interval(short).length() - 0.1).abs() < 1e-12);
        // Relative location 0.20 exceeds the target's 0.1 length.
        let p = Location::new(EdgeId(0), 0.95);
        let t = d.transplant(&g, p, short).unwrap();
        assert!(d.interval(short).contains(t));
    }

    #[test]
    fn every_point_is_covered_exactly_once() {
        let g = two_edge_graph();
        let d = Discretization::new(&g, 0.3);
        for e in g.edges() {
            let w = e.length();
            let mut x = 0.0;
            while x <= w {
                let loc = Location::new(e.id(), x);
                let hits = d
                    .intervals()
                    .iter()
                    .enumerate()
                    .filter(|(_, u)| u.contains(loc))
                    .count();
                assert!(hits >= 1, "uncovered point {loc}");
                let k = d.locate(&g, loc).unwrap();
                assert!(d.interval(k).contains(loc));
                x += 0.05;
            }
        }
    }

    #[test]
    fn intervals_tile_each_edge() {
        let g = two_edge_graph();
        let d = Discretization::new(&g, 0.25);
        for e in g.edges() {
            let total: f64 = d
                .intervals_on_edge(e.id())
                .map(|k| d.interval(k).length())
                .sum();
            assert!((total - e.length()).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn rejects_nonpositive_delta() {
        let g = two_edge_graph();
        Discretization::new(&g, 0.0);
    }

    #[test]
    fn single_interval_for_short_edges() {
        let g = two_edge_graph();
        let d = Discretization::new(&g, 5.0);
        assert_eq!(d.len(), 2); // one interval per edge
        assert_eq!(d.interval(0).length(), 1.0);
    }
}
