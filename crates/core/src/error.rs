//! Error type for the VLP core crate.

use std::error::Error;
use std::fmt;

/// Error produced while formulating or solving a VLP instance.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VlpError {
    /// Dimensions of the cost matrix, priors, or privacy spec disagree.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was found.
        found: usize,
    },
    /// The underlying LP solver failed.
    Lp(lpsolve::LpError),
    /// The solver returned a matrix that is not row-stochastic even
    /// after round-off absorption (indicates numerical trouble).
    MalformedSolution,
    /// The problem instance is degenerate (no intervals).
    EmptyInstance,
}

impl fmt::Display for VlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VlpError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            VlpError::Lp(e) => write!(f, "linear program failed: {e}"),
            VlpError::MalformedSolution => {
                write!(f, "solver returned a non-stochastic obfuscation matrix")
            }
            VlpError::EmptyInstance => write!(f, "instance has no intervals"),
        }
    }
}

impl Error for VlpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VlpError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lpsolve::LpError> for VlpError {
    fn from(e: lpsolve::LpError) -> Self {
        VlpError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = VlpError::Lp(lpsolve::LpError::Infeasible);
        assert!(e.to_string().contains("infeasible"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&VlpError::EmptyInstance).is_none());
    }
}
