//! Direct LP formulation of D-VLP (§4.1, Eq. 18–21).
//!
//! The discretized problem is the linear program
//!
//! ```text
//! min  Σ_i Σ_j c_{i,j} · z_{i,j}
//! s.t. z_{i,j} − e^{ε·dist(i,l)} · z_{l,j} ≤ 0   (per privacy pair, per j)
//!      Σ_j z_{i,j} = 1                            (per true interval i)
//!      z ≥ 0
//! ```
//!
//! with `K²` variables. This module solves it *directly* with the dense
//! simplex — tractable for the small instances used in unit tests and
//! ground-truthing. Production-size instances go through
//! [`crate::column_generation`], which solves the same problem by
//! Dantzig-Wolfe decomposition.

use lpsolve::{LinearProgram, Relation};

use crate::cost::CostMatrix;
use crate::error::VlpError;
use crate::mechanism::Mechanism;
use crate::privacy::PrivacySpec;

/// Telemetry metric names recorded by the direct D-VLP solver.
pub mod metrics {
    /// Counter: number of `solve_direct` invocations.
    pub const SOLVES: &str = "dvlp.solves";
    /// Timer: time to assemble the LP (objective plus all constraint
    /// rows) before the simplex runs.
    pub const MATRIX_BUILD_TIME: &str = "dvlp.matrix_build";
    /// Timer: end-to-end wall time of one `solve_direct` call.
    pub const SOLVE_TIME: &str = "dvlp.solve";
    /// Series: LP row count per solve (`K` unit-measure rows plus
    /// `K · |constraints|` Geo-I rows).
    pub const LP_ROWS: &str = "dvlp.lp_rows";
}

/// Tolerance used when validating the returned matrix.
const ROW_TOL: f64 = 1e-5;

/// Solves D-VLP directly and returns the optimal mechanism together
/// with the optimal quality loss (ETDD).
///
/// # Errors
///
/// * [`VlpError::EmptyInstance`] if the cost matrix covers no
///   intervals;
/// * [`VlpError::DimensionMismatch`] if a privacy constraint references
///   an interval outside the cost matrix;
/// * [`VlpError::Lp`] if the LP solver fails (the feasible region is
///   never empty — the uniform mechanism always qualifies — so this
///   indicates numerical trouble);
/// * [`VlpError::MalformedSolution`] if the solver's matrix cannot be
///   normalized into a mechanism.
pub fn solve_direct(cost: &CostMatrix, spec: &PrivacySpec) -> Result<(Mechanism, f64), VlpError> {
    let obs = vlp_obs::global();
    let _span = obs.start(metrics::SOLVE_TIME);
    let k = cost.len();
    if k == 0 {
        return Err(VlpError::EmptyInstance);
    }
    for c in &spec.constraints {
        if c.i >= k || c.l >= k {
            return Err(VlpError::DimensionMismatch {
                expected: k,
                found: c.i.max(c.l) + 1,
            });
        }
    }
    let build_started = std::time::Instant::now();
    let var = |i: usize, j: usize| i * k + j;
    let mut lp = LinearProgram::new(k * k);
    let mut obj = Vec::with_capacity(k * k);
    for i in 0..k {
        for j in 0..k {
            let c = cost.get(i, j);
            if c != 0.0 {
                obj.push((var(i, j), c));
            }
        }
    }
    lp.set_objective(&obj)?;
    // Probability unit measure (Eq. 21).
    for i in 0..k {
        let row: Vec<(usize, f64)> = (0..k).map(|j| (var(i, j), 1.0)).collect();
        lp.add_constraint(&row, Relation::Eq, 1.0)?;
    }
    // Geo-I constraints (Eq. 20), instantiated per obfuscated interval.
    for c in &spec.constraints {
        let bound = spec.bound(c);
        for j in 0..k {
            lp.add_constraint(
                &[(var(c.i, j), 1.0), (var(c.l, j), -bound)],
                Relation::Le,
                0.0,
            )?;
        }
    }
    obs.record_duration(metrics::MATRIX_BUILD_TIME, build_started.elapsed());
    obs.incr(metrics::SOLVES, 1);
    obs.push(metrics::LP_ROWS, (k + spec.constraints.len() * k) as f64);
    let sol = lp.solve()?;
    let mech = Mechanism::from_matrix(k, sol.x, ROW_TOL).ok_or(VlpError::MalformedSolution)?;
    Ok((mech, sol.objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auxiliary::AuxiliaryGraph;
    use crate::constraint_reduction::reduced_spec;
    use crate::cost::{CostMatrix, IntervalDistances, Prior};
    use crate::discretize::Discretization;
    use roadnet::{NodeDistances, RoadGraph, RoadGraphBuilder};

    /// A 3-node directed triangle, one interval per edge (K = 3).
    fn tiny() -> (RoadGraph, Discretization, AuxiliaryGraph, CostMatrix) {
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(1.0, 0.0);
        let v2 = b.add_node(0.5, 0.8);
        b.add_edge(v0, v1, 1.0).unwrap();
        b.add_edge(v1, v2, 1.0).unwrap();
        b.add_edge(v2, v0, 1.0).unwrap();
        let g = b.build().unwrap();
        let nd = NodeDistances::all_pairs(&g);
        let disc = Discretization::new(&g, 1.0);
        let aux = AuxiliaryGraph::build(&g, &disc);
        let id = IntervalDistances::build(&g, &nd, &disc);
        let k = disc.len();
        let cost = CostMatrix::build(&id, &Prior::uniform(k), &Prior::uniform(k));
        (g, disc, aux, cost)
    }

    #[test]
    fn optimal_mechanism_is_feasible_and_beats_uniform() {
        let (_, _, aux, cost) = tiny();
        let spec = PrivacySpec::full(&aux, 1.0, f64::INFINITY);
        let (mech, obj) = solve_direct(&cost, &spec).unwrap();
        assert!(mech.is_row_stochastic(1e-9));
        assert!(mech.max_violation(&spec) <= 1e-6);
        let uniform_loss = Mechanism::uniform(cost.len()).quality_loss(&cost);
        assert!(obj <= uniform_loss + 1e-9, "{obj} > uniform {uniform_loss}");
        assert!((mech.quality_loss(&cost) - obj).abs() < 1e-6);
    }

    #[test]
    fn tighter_epsilon_costs_more() {
        // Smaller ε (stronger privacy) cannot decrease the optimum
        // (Proposition 4.5's monotonicity).
        let (_, _, aux, cost) = tiny();
        let loose = PrivacySpec::full(&aux, 5.0, f64::INFINITY);
        let tight = PrivacySpec::full(&aux, 0.5, f64::INFINITY);
        let (_, obj_loose) = solve_direct(&cost, &loose).unwrap();
        let (_, obj_tight) = solve_direct(&cost, &tight).unwrap();
        assert!(obj_tight >= obj_loose - 1e-9);
    }

    #[test]
    fn no_constraints_reaches_zero_loss() {
        let (_, _, aux, cost) = tiny();
        let spec = PrivacySpec {
            epsilon: 1.0,
            radius: 0.0,
            constraints: Vec::new(),
        };
        let _ = aux;
        let (mech, obj) = solve_direct(&cost, &spec).unwrap();
        assert!(
            obj.abs() < 1e-9,
            "unconstrained optimum must be truthful: {obj}"
        );
        for i in 0..cost.len() {
            assert!((mech.prob(i, i) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn reduced_spec_attains_full_spec_optimum() {
        // The heart of §4.2: constraint reduction loses no optimality.
        let (_, _, aux, cost) = tiny();
        for eps in [0.5, 1.0, 3.0] {
            let full = PrivacySpec::full(&aux, eps, f64::INFINITY);
            let reduced = reduced_spec(&aux, eps, f64::INFINITY);
            let (_, obj_full) = solve_direct(&cost, &full).unwrap();
            let (_, obj_red) = solve_direct(&cost, &reduced).unwrap();
            assert!(
                (obj_full - obj_red).abs() < 1e-6,
                "eps={eps}: full {obj_full} vs reduced {obj_red}"
            );
        }
    }

    #[test]
    fn reduced_solution_satisfies_full_spec() {
        let (_, _, aux, cost) = tiny();
        let full = PrivacySpec::full(&aux, 2.0, f64::INFINITY);
        let reduced = reduced_spec(&aux, 2.0, f64::INFINITY);
        let (mech, _) = solve_direct(&cost, &reduced).unwrap();
        assert!(mech.max_violation(&full) <= 1e-6);
    }

    #[test]
    fn rejects_out_of_range_constraint() {
        let (_, _, _, cost) = tiny();
        let spec = PrivacySpec {
            epsilon: 1.0,
            radius: 1.0,
            constraints: vec![crate::privacy::PrivacyConstraint {
                i: 0,
                l: 99,
                dist: 0.1,
            }],
        };
        assert!(matches!(
            solve_direct(&cost, &spec),
            Err(VlpError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn grid_instance_full_vs_reduced() {
        // A slightly larger instance (K = 8) as a second ground truth.
        let g = roadnet::generators::grid(2, 2, 0.5, true);
        let nd = NodeDistances::all_pairs(&g);
        let disc = Discretization::new(&g, 0.5);
        let aux = AuxiliaryGraph::build(&g, &disc);
        let id = IntervalDistances::build(&g, &nd, &disc);
        let k = disc.len();
        let cost = CostMatrix::build(&id, &Prior::uniform(k), &Prior::uniform(k));
        let full = PrivacySpec::full(&aux, 2.0, f64::INFINITY);
        let reduced = reduced_spec(&aux, 2.0, f64::INFINITY);
        let (_, obj_full) = solve_direct(&cost, &full).unwrap();
        let (_, obj_red) = solve_direct(&cost, &reduced).unwrap();
        assert!(
            (obj_full - obj_red).abs() < 1e-5,
            "full {obj_full} vs reduced {obj_red}"
        );
        assert!(obj_full > 0.0, "geo-I must cost something");
    }
}
