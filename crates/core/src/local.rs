//! Locally-relevant D-VLP: restrict the mechanism support to a
//! neighborhood of the reporting vehicle so solve cost is `O(k²)` in
//! the neighborhood size `k`, independent of the map size `K`.
//!
//! Following "Time-Efficient Locally Relevant Geo-Location Privacy
//! Protection" (Qiu et al.), a vehicle's useful obfuscation range is a
//! small ball around it — reporting an interval across town destroys
//! utility without buying privacy that the protection radius `r`
//! demands. This module therefore solves D-VLP over only the intervals
//! near the vehicle, with a correctness argument that the restriction
//! never weakens `(ε, r)`-Geo-I *within a neighborhood*:
//!
//! # The locality argument
//!
//! Work in the metric closure `d̂` of the bidirectional interval
//! distance `d_min` — the undirected shortest-path metric on the
//! auxiliary graph ([`roadnet::BallMetric::Undirected`]), which is
//! symmetric, satisfies the triangle inequality, and has
//! `d̂ ≤ d_min` pointwise.
//!
//! * A [`LocalityPlan`] covers the `K` intervals with a deterministic
//!   greedy ρ-net: canonical centers `c` such that every interval lies
//!   within `d̂ ≤ ρ` of its assigned (nearest) center.
//! * The neighborhood of center `c` is the ball `B(c, ρ + r)` in `d̂`.
//! * For a vehicle at interval `i` assigned to `c` and any interval
//!   `l` with `d_min(i, l) ≤ r`:
//!   `d̂(c, l) ≤ d̂(c, i) + d̂(i, l) ≤ ρ + d_min(i, l) ≤ ρ + r`,
//!   so **every `r`-close counterpart of every assigned vehicle is in
//!   the support**. The restricted constraint set — one constraint per
//!   ordered in-support pair within `d_min ≤ r`, with the *full-graph*
//!   `d_min` in the exponent — therefore contains every `(ε, r)`-Geo-I
//!   constraint among vehicles served by the same neighborhood, and
//!   [`crate::privacy::verify`] audits the solved mechanism against
//!   exactly that unreduced spec ([`VlpInstance::local_spec`] /
//!   [`LocalShard::audit_spec`]).
//!
//! Two caveats, both deliberate:
//!
//! * **Constraint reduction is disabled on restricted supports.** The
//!   paper's Algorithm 1 is only sound when shortest paths stay inside
//!   the vertex set; on an induced neighborhood a reduced chain can
//!   detour outside and silently *loosen* privacy. Local solves use
//!   the unreduced restricted spec — `O(k²)` pairs, which for
//!   `k ≪ K` is still far smaller than the reduced `O(M)` full-shard
//!   set.
//! * **The guarantee is per neighborhood**, exactly as the existing
//!   sharded service's guarantee is per region shard: two nearby
//!   vehicles assigned to *different* neighborhoods draw from
//!   different supports, so the neighborhood id itself leaks ρ-granular
//!   location, just as the shard id leaks band-granular location
//!   today. Choosing ρ comparable to the shard band width keeps the
//!   two disclosures of the same order. See ARCHITECTURE.md
//!   ("Locally-relevant solving") for the full discussion.
//!
//! Two solve engines share this module:
//!
//! * [`VlpInstance::solve_local`] — for instances that already carry
//!   dense all-pairs matrices; used by tests and as the bit-identity
//!   baseline. With full support it *delegates verbatim* to
//!   [`VlpInstance::solve`], making "radius ∞ ≡ full-shard solve" true
//!   by construction.
//! * [`LocalShard`] — the sparse engine the serving layer boots on
//!   large maps: it never materializes an `O(K²)` matrix, computing
//!   per-neighborhood costs and constraints with radius-bounded and
//!   target-terminated Dijkstra runs whose settled distances are
//!   bit-identical prefixes of the dense builds.

use std::sync::{Arc, OnceLock};

use roadnet::distance::{travel_distance_via, NodeMetric};
use roadnet::{bounded_ball, distances_to_targets, BallMetric, NodeId, RoadGraph};

use crate::auxiliary::aux_road_graph;
use crate::column_generation::{solve_column_generation, CgDiagnostics, CgOptions};
use crate::cost::{CostMatrix, Prior};
use crate::discretize::Discretization;
use crate::error::VlpError;
use crate::instance::VlpInstance;
use crate::mechanism::Mechanism;
use crate::privacy::{PrivacyConstraint, PrivacySpec};

/// One neighborhood of a [`LocalityPlan`]: a canonical center interval
/// and the sorted global interval ids of its support ball `B(c, ρ+r)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Neighborhood {
    /// Global interval id of the canonical center.
    pub center: usize,
    /// Sorted global interval ids within `d̂(center, ·) ≤ ρ + r`
    /// (always contains the center and every assigned interval).
    pub members: Vec<usize>,
}

/// A deterministic cover of the `K` intervals by `d̂`-balls around
/// greedy ρ-net centers, plus the nearest-center assignment.
///
/// Construction is a pure function of the auxiliary graph and the two
/// radii (intervals scanned in ascending id order; ties broken towards
/// the lower center id), so every replica derives the same canonical
/// neighborhood ids and nearby vehicles share cache entries.
#[derive(Debug, Clone)]
pub struct LocalityPlan {
    rho: f64,
    protection: f64,
    assign: Vec<u32>,
    neighborhoods: Vec<Neighborhood>,
}

impl LocalityPlan {
    /// Builds the plan on an auxiliary graph: greedy ρ-net centers
    /// (an uncovered interval, scanned in ascending id order, becomes
    /// the next center), nearest-center assignment, and support balls
    /// of radius `ρ + protection` per center.
    ///
    /// Either radius may be `f64::INFINITY`; with `rho = ∞` the plan
    /// degenerates to one neighborhood containing every interval — the
    /// full-shard / radius-∞ case.
    ///
    /// # Panics
    ///
    /// Panics if `aux_graph` has no vertices or either radius is
    /// negative/NaN.
    pub fn build(aux_graph: &RoadGraph, rho: f64, protection: f64) -> Self {
        let k = aux_graph.node_count();
        assert!(k > 0, "locality plan needs at least one interval");
        assert!(rho >= 0.0, "assignment radius rho must be non-negative");
        assert!(protection >= 0.0, "protection radius must be non-negative");
        let ball_radius = rho + protection;
        let mut assign: Vec<Option<(f64, u32)>> = vec![None; k];
        let mut neighborhoods = Vec::new();
        for i in 0..k {
            if assign[i].is_some() {
                continue;
            }
            let nb = u32::try_from(neighborhoods.len()).expect("neighborhood count fits u32");
            let ball = bounded_ball(aux_graph, NodeId(i), ball_radius, BallMetric::Undirected);
            let mut members: Vec<usize> = ball.iter().map(|&(v, _)| v.0).collect();
            members.sort_unstable();
            for &(v, d) in &ball {
                if d > rho {
                    continue;
                }
                // Nearest center wins; ties go to the earlier center.
                let better = match assign[v.0] {
                    None => true,
                    Some((best, _)) => d < best,
                };
                if better {
                    assign[v.0] = Some((d, nb));
                }
            }
            neighborhoods.push(Neighborhood { center: i, members });
        }
        let assign = assign
            .into_iter()
            .map(|a| a.expect("greedy net covers every interval").1)
            .collect();
        Self {
            rho,
            protection,
            assign,
            neighborhoods,
        }
    }

    /// The assignment radius ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The protection radius `r` the support balls were padded with.
    pub fn protection(&self) -> f64 {
        self.protection
    }

    /// The support-ball radius `ρ + r`.
    pub fn ball_radius(&self) -> f64 {
        self.rho + self.protection
    }

    /// Number of intervals covered.
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// Whether the plan covers no intervals (never true — construction
    /// panics on empty graphs).
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Number of neighborhoods (canonical cache-key cardinality).
    pub fn neighborhood_count(&self) -> usize {
        self.neighborhoods.len()
    }

    /// The canonical neighborhood id interval `i` is assigned to.
    pub fn assignment(&self, interval: usize) -> u32 {
        self.assign[interval]
    }

    /// The neighborhood with id `nb`.
    pub fn neighborhood(&self, nb: u32) -> &Neighborhood {
        &self.neighborhoods[nb as usize]
    }

    /// All neighborhoods, indexed by id.
    pub fn neighborhoods(&self) -> &[Neighborhood] {
        &self.neighborhoods
    }
}

/// The position of global interval `global` within a sorted support
/// slice, if present — the local row/column index of the restricted
/// mechanism.
pub fn local_index(support: &[usize], global: usize) -> Option<usize> {
    support.binary_search(&global).ok()
}

/// A solved locally-relevant mechanism: a `k × k` [`Mechanism`] over
/// local indices plus the sorted global support that lifts samples back
/// to global interval ids (`global = support[local]`).
#[derive(Debug, Clone)]
pub struct LocalSolve {
    /// Sorted global interval ids of the support (`k` entries).
    pub support: Arc<Vec<usize>>,
    /// The restricted mechanism over local indices.
    pub mechanism: Mechanism,
    /// Achieved quality loss on the restricted objective.
    pub quality_loss: f64,
    /// Column-generation diagnostics.
    pub diagnostics: CgDiagnostics,
    /// LP variable count (`k²`) — the quantity the `O(k²)` claim gates.
    pub lp_vars: usize,
    /// LP inequality-row count induced by the solved constraint set.
    pub lp_rows: usize,
}

/// Builds the restricted cost matrix over `support` with the *raw*
/// restricted priors (no renormalization — scaling rows by `f_P` and
/// the whole matrix by `f_Q` leaves the LP argmin unchanged, and with
/// full support the result is bit-identical to [`CostMatrix::build`]).
/// `dist(i, q)` must return the directed interval distance between
/// *global* ids.
fn restricted_cost(
    support: &[usize],
    f_p: &Prior,
    f_q: &Prior,
    dist: impl Fn(usize, usize) -> f64,
) -> CostMatrix {
    let k = support.len();
    let mut cost = vec![0.0; k * k];
    for (a, row) in cost.chunks_mut(k).enumerate() {
        let gi = support[a];
        let fp = f_p.get(gi);
        for (b, slot) in row.iter_mut().enumerate() {
            let gl = support[b];
            let mut acc = 0.0;
            if fp > 0.0 {
                // Same accumulation order as `CostMatrix::build`: `q`
                // ascending (support is sorted by global id).
                for &gq in support {
                    let fq = f_q.get(gq);
                    if fq > 0.0 {
                        let di = dist(gi, gq);
                        let dl = dist(gl, gq);
                        acc += fq * (di - dl).abs();
                    }
                }
            }
            *slot = fp * acc;
        }
    }
    CostMatrix::from_dense(k, cost)
}

/// Builds the unreduced restricted `(ε, r)` spec over `support`: one
/// constraint per ordered local pair with full-graph
/// `d_min ≤ radius`, enumerated in the same order as
/// [`PrivacySpec::full`]. `d_min(i, l)` takes *global* ids.
fn restricted_spec(
    support: &[usize],
    epsilon: f64,
    radius: f64,
    d_min: impl Fn(usize, usize) -> f64,
) -> PrivacySpec {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(radius >= 0.0, "radius must be non-negative");
    let k = support.len();
    let mut constraints = Vec::new();
    for a in 0..k {
        for b in 0..k {
            if a == b {
                continue;
            }
            let d = d_min(support[a], support[b]);
            if d <= radius {
                constraints.push(PrivacyConstraint {
                    i: a,
                    l: b,
                    dist: d,
                });
            }
        }
    }
    PrivacySpec {
        epsilon,
        radius,
        constraints,
    }
}

/// Validates a support slice: non-empty, strictly increasing, in range.
fn check_support(support: &[usize], k: usize) {
    assert!(!support.is_empty(), "support must be non-empty");
    assert!(
        support.windows(2).all(|w| w[0] < w[1]),
        "support must be sorted and duplicate-free"
    );
    assert!(*support.last().unwrap() < k, "support id out of range");
}

impl VlpInstance {
    /// Builds a [`LocalityPlan`] for this instance's auxiliary graph.
    pub fn locality_plan(&self, rho: f64, protection: f64) -> LocalityPlan {
        LocalityPlan::build(self.aux.graph(), rho, protection)
    }

    /// The unreduced restricted `(ε, radius)` audit spec over
    /// `support`, with full-graph `d_min` distances in the exponents —
    /// what [`crate::privacy::verify`] checks a locally-relevant
    /// mechanism against.
    pub fn local_spec(&self, support: &[usize], epsilon: f64, radius: f64) -> PrivacySpec {
        check_support(support, self.len());
        restricted_spec(support, epsilon, radius, |i, l| self.aux.distance_min(i, l))
    }

    /// Solves D-VLP restricted to `support` (sorted global interval
    /// ids) at `(epsilon, radius)`-Geo-I.
    ///
    /// With full support this delegates verbatim to [`Self::solve`] —
    /// the radius-∞ case *is* the full-shard solve, bit for bit. With a
    /// partial support it builds the restricted cost (raw restricted
    /// priors) and the unreduced restricted constraint set (full-graph
    /// `d_min`; see the module docs for why Algorithm 1 must not run on
    /// an induced subgraph) and solves the `O(k²)`-variable LP.
    ///
    /// # Errors
    ///
    /// Propagates solver failures as [`VlpError`].
    ///
    /// # Panics
    ///
    /// Panics if `support` is empty, unsorted, or out of range.
    pub fn solve_local(
        &self,
        epsilon: f64,
        radius: f64,
        support: &[usize],
        opts: &CgOptions,
    ) -> Result<LocalSolve, VlpError> {
        let big_k = self.len();
        check_support(support, big_k);
        if support.len() == big_k {
            let solved = self.solve(epsilon, radius, opts)?;
            let lp_rows = solved.spec.lp_row_count(big_k);
            return Ok(LocalSolve {
                support: Arc::new(support.to_vec()),
                mechanism: solved.mechanism,
                quality_loss: solved.quality_loss,
                diagnostics: solved.diagnostics,
                lp_vars: big_k * big_k,
                lp_rows,
            });
        }
        let cost = restricted_cost(support, &self.f_p, &self.f_q, |i, q| {
            self.interval_dists.get(i, q)
        });
        let spec = restricted_spec(support, epsilon, radius, |i, l| self.aux.distance_min(i, l));
        let k = support.len();
        let lp_rows = spec.lp_row_count(k);
        let (mechanism, quality_loss, diagnostics) = solve_column_generation(&cost, &spec, opts)?;
        Ok(LocalSolve {
            support: Arc::new(support.to_vec()),
            mechanism,
            quality_loss,
            diagnostics,
            lp_vars: k * k,
            lp_rows,
        })
    }
}

/// Sparse node-to-node distance table for [`travel_distance_via`]:
/// exact Dijkstra distances for the (source, target) node pairs a
/// neighborhood's cost build consults, and nothing else.
struct SparseNodeDists {
    /// `rows[s]` is `Some(per-target distances)` only for source nodes.
    rows: Vec<Option<Vec<f64>>>,
    /// `target_slot[t]` is the column of node `t` in a source row.
    target_slot: Vec<Option<usize>>,
}

impl NodeMetric for SparseNodeDists {
    fn node_dist(&self, s: NodeId, t: NodeId) -> f64 {
        let slot = self.target_slot[t.0].expect("consulted target was precomputed");
        match &self.rows[s.0] {
            Some(row) => row[slot],
            None => unreachable!("consulted source was precomputed"),
        }
    }
}

impl SparseNodeDists {
    /// Runs one target-terminated Dijkstra per unique source node.
    /// Settled distances are bit-identical to the all-pairs matrix.
    fn build(graph: &RoadGraph, sources: &[NodeId], targets: &[NodeId]) -> Self {
        let n = graph.node_count();
        let mut target_slot = vec![None; n];
        let mut uniq_targets = Vec::new();
        for &t in targets {
            if target_slot[t.0].is_none() {
                target_slot[t.0] = Some(uniq_targets.len());
                uniq_targets.push(t);
            }
        }
        let mut rows: Vec<Option<Vec<f64>>> = vec![None; n];
        for &s in sources {
            if rows[s.0].is_none() {
                rows[s.0] = Some(distances_to_targets(
                    graph,
                    s,
                    &uniq_targets,
                    BallMetric::Out,
                ));
            }
        }
        Self { rows, target_slot }
    }
}

/// The sparse locally-relevant solve engine: everything the serving
/// layer needs to serve a shard in local mode *without ever building an
/// `O(K²)` matrix*. Boot cost is `O(K)` plus one bounded Dijkstra ball
/// per ρ-net center; each solve touches only its neighborhood.
///
/// The full-support case (one neighborhood spanning the shard, e.g.
/// `rho = ∞`) lazily builds a dense [`VlpInstance`] and delegates to
/// it, so the radius-∞ mode is bit-identical to full-shard serving.
#[derive(Debug, Clone)]
pub struct LocalShard {
    graph: RoadGraph,
    disc: Discretization,
    aux_graph: RoadGraph,
    f_p: Prior,
    f_q: Prior,
    plan: LocalityPlan,
    delta: f64,
    /// Lazily built dense instance backing full-support delegation.
    dense: OnceLock<Arc<VlpInstance>>,
}

impl LocalShard {
    /// Builds a shard with the given priors, an assignment radius
    /// `rho`, and a protection radius `protection` (the Geo-I `r` the
    /// support balls must be padded with).
    ///
    /// # Panics
    ///
    /// Panics if the priors' dimension mismatches the discretization,
    /// or if `rho` is finite while `protection` is infinite (a support
    /// ball of radius ∞ around every center would defeat the mode; use
    /// `rho = ∞` for the explicit full-shard case).
    pub fn with_priors(
        graph: RoadGraph,
        delta: f64,
        rho: f64,
        protection: f64,
        f_p: Prior,
        f_q: Prior,
    ) -> Self {
        assert!(
            rho.is_infinite() || protection.is_finite(),
            "finite rho requires a finite protection radius"
        );
        let disc = Discretization::new(&graph, delta);
        assert_eq!(f_p.len(), disc.len(), "f_P dimension mismatch");
        assert_eq!(f_q.len(), disc.len(), "f_Q dimension mismatch");
        let aux_graph = aux_road_graph(&graph, &disc);
        let plan = LocalityPlan::build(&aux_graph, rho, protection);
        Self {
            graph,
            disc,
            aux_graph,
            f_p,
            f_q,
            plan,
            delta,
            dense: OnceLock::new(),
        }
    }

    /// Builds a shard with uniform priors.
    pub fn uniform(graph: RoadGraph, delta: f64, rho: f64, protection: f64) -> Self {
        let disc = Discretization::new(&graph, delta);
        let k = disc.len();
        let (f_p, f_q) = (Prior::uniform(k), Prior::uniform(k));
        Self::with_priors(graph, delta, rho, protection, f_p, f_q)
    }

    /// The road graph.
    pub fn graph(&self) -> &RoadGraph {
        &self.graph
    }

    /// The δ-interval partition.
    pub fn disc(&self) -> &Discretization {
        &self.disc
    }

    /// The locality plan (canonical neighborhood ids).
    pub fn plan(&self) -> &LocalityPlan {
        &self.plan
    }

    /// Number of intervals `K`.
    pub fn len(&self) -> usize {
        self.disc.len()
    }

    /// Whether the shard has no intervals.
    pub fn is_empty(&self) -> bool {
        self.disc.is_empty()
    }

    /// The canonical neighborhood id of interval `i`.
    pub fn neighborhood_of(&self, interval: usize) -> u32 {
        self.plan.assignment(interval)
    }

    /// Sorted global support of neighborhood `nb`.
    pub fn members(&self, nb: u32) -> &[usize] {
        &self.plan.neighborhood(nb).members
    }

    /// Replaces the worker prior `f_P`. Costs are built per solve from
    /// the raw priors, so this is `O(1)` apart from resetting the lazy
    /// dense instance.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn set_worker_prior(&mut self, f_p: Prior) {
        assert_eq!(f_p.len(), self.disc.len(), "f_P dimension mismatch");
        self.f_p = f_p;
        self.dense = OnceLock::new();
    }

    /// The lazily built dense instance backing full-support delegation
    /// (crate-visible so the quality tiers in [`crate::tiers`] share
    /// it).
    pub(crate) fn dense(&self) -> &Arc<VlpInstance> {
        self.dense_instance()
    }

    /// The auxiliary graph (crate-visible for [`crate::tiers`], whose
    /// spanner tier runs metric-closure Dijkstras over it).
    pub(crate) fn aux_graph(&self) -> &RoadGraph {
        &self.aux_graph
    }

    /// The restricted cost matrix over `members`: directed road-graph
    /// distances between member midpoints via target-terminated
    /// Dijkstra from the member edges' end nodes — the same Eq. 9/10
    /// composition as the dense build, shared by the exact neighborhood
    /// solve and the quality tiers.
    pub(crate) fn restricted_member_cost(&self, members: &[usize]) -> CostMatrix {
        let mids: Vec<_> = members
            .iter()
            .map(|&g| self.disc.interval(g).midpoint())
            .collect();
        let sources: Vec<NodeId> = mids
            .iter()
            .map(|m| self.graph.edge(m.edge()).end())
            .collect();
        let targets: Vec<NodeId> = mids
            .iter()
            .map(|m| self.graph.edge(m.edge()).start())
            .collect();
        let node_dists = SparseNodeDists::build(&self.graph, &sources, &targets);
        let member_slot: std::collections::HashMap<usize, usize> =
            members.iter().enumerate().map(|(a, &g)| (g, a)).collect();
        restricted_cost(members, &self.f_p, &self.f_q, |gi, gq| {
            travel_distance_via(
                &self.graph,
                &node_dists,
                mids[member_slot[&gi]],
                mids[member_slot[&gq]],
            )
        })
    }

    /// The lazily built dense instance backing full-support delegation.
    fn dense_instance(&self) -> &Arc<VlpInstance> {
        self.dense.get_or_init(|| {
            Arc::new(VlpInstance::new(
                self.graph.clone(),
                self.delta,
                self.f_p.clone(),
                self.f_q.clone(),
            ))
        })
    }

    /// Directed `d_min` balls of radius `r` on the auxiliary graph,
    /// one per member: `map[a][global] = d(member_a → global)` for the
    /// settled prefix. `d_min(a, b) ≤ r` iff either directed distance
    /// is settled within `r`, and the settled values are bit-identical
    /// to the dense all-pairs runs.
    fn member_out_balls(&self, members: &[usize], radius: f64) -> Vec<Vec<(usize, f64)>> {
        members
            .iter()
            .map(|&g| {
                bounded_ball(&self.aux_graph, NodeId(g), radius, BallMetric::Out)
                    .into_iter()
                    .map(|(v, d)| (v.0, d))
                    .collect()
            })
            .collect()
    }

    /// The unreduced restricted `(ε, protection)` spec of neighborhood
    /// `nb` — both the constraint set local solves enforce and the
    /// audit spec served mechanisms are verified against.
    pub fn audit_spec(&self, nb: u32, epsilon: f64) -> PrivacySpec {
        let members = self.members(nb);
        if members.len() == self.len() {
            return PrivacySpec::full(&self.dense_instance().aux, epsilon, self.plan.protection());
        }
        let radius = self.plan.protection();
        let balls = self.member_out_balls(members, radius);
        // Dense per-member lookup over global ids (small: ball-sized).
        let k_total = self.len();
        let mut out = vec![f64::INFINITY; members.len() * k_total];
        for (a, ball) in balls.iter().enumerate() {
            for &(g, d) in ball {
                out[a * k_total + g] = d;
            }
        }
        let member_slot: std::collections::HashMap<usize, usize> =
            members.iter().enumerate().map(|(a, &g)| (g, a)).collect();
        restricted_spec(members, epsilon, radius, |gi, gl| {
            let a = member_slot[&gi];
            let b = member_slot[&gl];
            out[a * k_total + gl].min(out[b * k_total + gi])
        })
    }

    /// Solves neighborhood `nb` at budget `epsilon`: an
    /// `O(k²)`-variable LP whose cost and constraints are computed with
    /// neighborhood-bounded Dijkstra runs — bit-identical to
    /// [`VlpInstance::solve_local`] over the same support, without the
    /// dense `O(K²)` precomputation. Full-support neighborhoods
    /// delegate to the dense instance ([`VlpInstance::solve`]).
    ///
    /// # Errors
    ///
    /// Propagates solver failures as [`VlpError`].
    pub fn solve_neighborhood(
        &self,
        nb: u32,
        epsilon: f64,
        opts: &CgOptions,
    ) -> Result<LocalSolve, VlpError> {
        let members = self.members(nb);
        if members.len() == self.len() {
            return self.dense_instance().solve_local(
                epsilon,
                self.plan.protection(),
                members,
                opts,
            );
        }
        let cost = self.restricted_member_cost(members);
        let spec = self.audit_spec(nb, epsilon);
        let k = members.len();
        let lp_rows = spec.lp_row_count(k);
        let (mechanism, quality_loss, diagnostics) = solve_column_generation(&cost, &spec, opts)?;
        Ok(LocalSolve {
            support: Arc::new(members.to_vec()),
            mechanism,
            quality_loss,
            diagnostics,
            lp_vars: k * k,
            lp_rows,
        })
    }

    /// The closed-form per-neighborhood fallback at budget `epsilon`:
    /// graph-Laplace over the *restricted* metric-closure submatrix,
    /// `z_{a,b} ∝ e^{−(ε/2)·d̂(a,b)}` row-normalized over the support.
    ///
    /// Privacy: `d̂` restricted to the support is still symmetric and
    /// still satisfies the triangle inequality (it is a global metric
    /// evaluated on a subset — paths may leave the neighborhood), so
    /// the proof of [`crate::baseline::graph_laplace`] carries over
    /// verbatim, with `d̂ ≤ d_min` matching every audit-spec exponent.
    /// Full-support neighborhoods delegate to the dense
    /// [`VlpInstance::fallback`].
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not positive or the support is not
    /// `d̂`-connected to itself (impossible on strongly connected
    /// shards).
    pub fn fallback_neighborhood(&self, nb: u32, epsilon: f64) -> Mechanism {
        assert!(epsilon > 0.0, "epsilon must be positive");
        let members = self.members(nb);
        if members.len() == self.len() {
            return self.dense_instance().fallback(epsilon);
        }
        let k = members.len();
        let nodes: Vec<NodeId> = members.iter().map(|&g| NodeId(g)).collect();
        let mut z = vec![0.0; k * k];
        for (a, row) in z.chunks_mut(k).enumerate() {
            let d_hat =
                distances_to_targets(&self.aux_graph, nodes[a], &nodes, BallMetric::Undirected);
            for (b, slot) in row.iter_mut().enumerate() {
                let d = d_hat[b];
                assert!(d.is_finite(), "support must be connected under d-hat");
                *slot = (-(epsilon / 2.0) * d).exp();
            }
            let total: f64 = row.iter().sum();
            for slot in row.iter_mut() {
                *slot /= total;
            }
        }
        Mechanism::from_matrix(k, z, 1e-9).expect("restricted graph-Laplace is row-stochastic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privacy;
    use roadnet::generators;

    fn small_instance() -> VlpInstance {
        VlpInstance::uniform(generators::grid(3, 3, 0.4, true), 0.2)
    }

    #[test]
    fn plan_covers_every_interval_within_rho() {
        let inst = small_instance();
        let plan = inst.locality_plan(0.5, 0.4);
        assert_eq!(plan.len(), inst.len());
        assert!(plan.neighborhood_count() >= 1);
        for i in 0..inst.len() {
            let nb = plan.assignment(i);
            let hood = plan.neighborhood(nb);
            assert!(
                hood.members.binary_search(&i).is_ok(),
                "interval {i} missing from its own neighborhood"
            );
        }
        // Centers are members of their own neighborhoods and every
        // members list is sorted and duplicate-free.
        for hood in plan.neighborhoods() {
            assert!(hood.members.binary_search(&hood.center).is_ok());
            assert!(hood.members.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let inst = small_instance();
        let a = inst.locality_plan(0.5, 0.4);
        let b = inst.locality_plan(0.5, 0.4);
        assert_eq!(a.neighborhoods(), b.neighborhoods());
        assert_eq!(
            (0..inst.len()).map(|i| a.assignment(i)).collect::<Vec<_>>(),
            (0..inst.len()).map(|i| b.assignment(i)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn infinite_rho_is_one_full_neighborhood() {
        let inst = small_instance();
        let plan = inst.locality_plan(f64::INFINITY, 0.4);
        assert_eq!(plan.neighborhood_count(), 1);
        assert_eq!(plan.neighborhood(0).members.len(), inst.len());
    }

    #[test]
    fn every_r_close_counterpart_is_in_support() {
        // The locality theorem, checked exhaustively: for every
        // interval i and every l with d_min(i, l) <= r, l is in i's
        // assigned neighborhood support.
        let inst = small_instance();
        let r = 0.4;
        let plan = inst.locality_plan(0.5, r);
        for i in 0..inst.len() {
            let hood = plan.neighborhood(plan.assignment(i));
            for l in 0..inst.len() {
                if inst.aux.distance_min(i, l) <= r {
                    assert!(
                        hood.members.binary_search(&l).is_ok(),
                        "interval {l} within r of {i} but outside its support"
                    );
                }
            }
        }
    }

    #[test]
    fn full_support_solve_local_delegates_bit_identically() {
        let inst = small_instance();
        let full: Vec<usize> = (0..inst.len()).collect();
        let opts = CgOptions::default();
        let a = inst.solve(3.0, 0.5, &opts).unwrap();
        let b = inst.solve_local(3.0, 0.5, &full, &opts).unwrap();
        assert_eq!(a.mechanism, b.mechanism);
        assert_eq!(a.quality_loss.to_bits(), b.quality_loss.to_bits());
        assert_eq!(b.lp_vars, inst.len() * inst.len());
    }

    #[test]
    fn restricted_solve_is_epsilon_valid_and_smaller() {
        let inst = small_instance();
        let r = 0.4;
        let plan = inst.locality_plan(0.4, r);
        assert!(plan.neighborhood_count() > 1, "rho too large for the test");
        let nb = plan.assignment(0);
        let members = &plan.neighborhood(nb).members;
        assert!(members.len() < inst.len());
        let solved = inst
            .solve_local(3.0, r, members, &CgOptions::default())
            .unwrap();
        assert_eq!(solved.lp_vars, members.len() * members.len());
        let spec = inst.local_spec(members, 3.0, r);
        assert!(privacy::verify(&solved.mechanism, &spec, 1e-6));
    }

    #[test]
    fn sparse_engine_matches_dense_bit_for_bit() {
        let graph = generators::grid(3, 3, 0.4, true);
        let inst = VlpInstance::uniform(graph.clone(), 0.2);
        let shard = LocalShard::uniform(graph, 0.2, 0.4, 0.4);
        let opts = CgOptions::default();
        for nb in 0..shard.plan().neighborhood_count() as u32 {
            let members = shard.members(nb).to_vec();
            if members.len() == shard.len() {
                continue;
            }
            let sparse = shard.solve_neighborhood(nb, 3.0, &opts).unwrap();
            let dense = inst.solve_local(3.0, 0.4, &members, &opts).unwrap();
            assert_eq!(sparse.mechanism, dense.mechanism, "nb {nb}");
            assert_eq!(
                sparse.quality_loss.to_bits(),
                dense.quality_loss.to_bits(),
                "nb {nb}"
            );
            // And the audit specs agree exactly.
            let a = shard.audit_spec(nb, 3.0);
            let b = inst.local_spec(&members, 3.0, 0.4);
            assert_eq!(a, b, "nb {nb}");
        }
    }

    #[test]
    fn sparse_fallback_is_epsilon_valid_per_neighborhood() {
        let shard = LocalShard::uniform(generators::grid(3, 3, 0.4, true), 0.2, 0.4, 0.4);
        for nb in 0..shard.plan().neighborhood_count() as u32 {
            let mech = shard.fallback_neighborhood(nb, 5.0);
            let spec = shard.audit_spec(nb, 5.0);
            assert!(
                privacy::verify(&mech, &spec, 1e-9),
                "fallback for nb {nb} violates Geo-I"
            );
        }
    }

    #[test]
    fn infinite_rho_shard_delegates_to_dense_solve() {
        let graph = generators::grid(2, 2, 0.5, true);
        let inst = VlpInstance::uniform(graph.clone(), 0.25);
        let shard = LocalShard::uniform(graph, 0.25, f64::INFINITY, 0.5);
        assert_eq!(shard.plan().neighborhood_count(), 1);
        let opts = CgOptions::default();
        let a = inst.solve(2.0, 0.5, &opts).unwrap();
        let b = shard.solve_neighborhood(0, 2.0, &opts).unwrap();
        assert_eq!(a.mechanism, b.mechanism);
        assert_eq!(
            inst.fallback(2.0),
            shard.fallback_neighborhood(0, 2.0),
            "full-support fallback must be the dense graph-Laplace"
        );
    }

    #[test]
    #[should_panic(expected = "finite rho requires a finite protection radius")]
    fn rejects_infinite_protection_with_finite_rho() {
        LocalShard::uniform(generators::grid(2, 2, 0.5, true), 0.25, 0.4, f64::INFINITY);
    }

    #[test]
    fn local_index_maps_support_to_rows() {
        let support = vec![2, 5, 9];
        assert_eq!(local_index(&support, 5), Some(1));
        assert_eq!(local_index(&support, 4), None);
    }
}
