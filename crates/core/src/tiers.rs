//! Intermediate mechanism-quality tiers between the exact
//! column-generation optimum and the graph-Laplace fallback.
//!
//! Following "Trading Optimality for Performance in Location Privacy"
//! (Chatzikokolakis et al.), the serving layer does not have to choose
//! between the exact D-VLP optimum (expensive) and the closed-form
//! graph-Laplace floor (cheap, far from optimal). Two constructions sit
//! in between, each ε-valid **by construction against the full
//! unreduced constraint set** — quality is traded, privacy never is:
//!
//! # Interval clustering ([`clustered_mechanism`])
//!
//! Greedily cluster the support into super-intervals of diameter
//! ≤ `width` (the same greedy-net scan as [`crate::local::LocalityPlan`]
//! — first member within `width` of a center joins it, otherwise it
//! becomes a new center), solve the D-VLP LP **on the clusters**, and
//! lift the cluster mechanism to members: member `i`'s row is its
//! cluster's row, spread over the cluster-center columns.
//!
//! *ε-validity of the lift.* Take any constraint
//! `z_{i·} ≤ e^{ε·d(i,l)} · z_{l·}` of the original spec, with `i` in
//! cluster `a` and `l` in cluster `b`:
//!
//! * `a = b`: the lifted rows of `i` and `l` are **identical**, so the
//!   ratio is 1 and every bound holds.
//! * `a ≠ b`: the cluster problem carries the constraint pair `(a, b)`
//!   at distance `d_c(a, b) = min` over member pairs of the original
//!   `d(·,·)` — in particular `d_c(a, b) ≤ d(i, l)` — so
//!   `z_{a·} ≤ e^{ε·d_c(a,b)} · z_{b·} ≤ e^{ε·d(i,l)} · z_{b·}`
//!   column-wise, which is exactly the lifted member constraint.
//!
//! The cluster objective `C[a][b] = Σ_{i∈a} cost(i, center_b)` makes
//! the cluster LP minimize the *exact* lifted ETDD, so the reported
//! quality loss is the true served quality, not a surrogate. With
//! `width = 0` every member is its own cluster and the construction
//! degenerates to the exact solve of the unreduced spec (identical up
//! to the final row renormalization of the lift).
//!
//! # Constraint-graph spanner ([`spanner_mechanism`])
//!
//! Build a greedy multiplicative `t`-spanner of the metric closure `d̂`
//! (undirected auxiliary-graph metric — symmetric, triangle inequality,
//! `d̂ ≤ d_min` pointwise; see [`crate::local`]): scan unordered pairs
//! by ascending `d̂` and keep an edge only if the spanner built so far
//! cannot connect the pair within `t · d̂`. Solve the LP with **one
//! constraint per spanner edge** (both directions) at the scaled budget
//! `ε/t`.
//!
//! *ε-validity by chaining.* For any intervals `i, l`, multiply the
//! edge constraints along the spanner shortest path:
//! `z_{i·} ≤ e^{(ε/t)·d_H(i,l)} · z_{l·}` where `d_H` is the spanner
//! path length. By the spanner guarantee `d_H ≤ t · d̂(i, l)`, so the
//! ratio is bounded by `e^{ε·d̂(i,l)} ≤ e^{ε·d_min(i,l)}` — every
//! constraint of the **full** spec holds, at any protection radius.
//! The win: an unreduced restricted spec has `O(k²)` pairs (`O(k³)` LP
//! rows) where the paper's constraint reduction is unsound (induced
//! subgraphs — see [`crate::local`]); the spanner keeps `O(k)` edges
//! (`O(k²)` rows) with a quality cost governed by `t`.
//!
//! Both constructions return a [`TierSolve`] shaped like an exact
//! solve, so the serving layer treats every rung of the quality ladder
//! uniformly; [`QualityTier`] names the rungs in quality order.

use std::collections::BinaryHeap;

use roadnet::{distances_to_targets, BallMetric, NodeId, RoadGraph};

use crate::column_generation::{solve_column_generation, CgDiagnostics, CgOptions};
use crate::cost::CostMatrix;
use crate::error::VlpError;
use crate::instance::VlpInstance;
use crate::local::LocalSolve;
use crate::mechanism::Mechanism;
use crate::privacy::{PrivacyConstraint, PrivacySpec};

/// One rung of the mechanism-quality ladder, in descending quality
/// order: the exact column-generation optimum, the interval-clustering
/// tier, the constraint-spanner tier, and the graph-Laplace floor.
///
/// The derived [`Ord`] follows declaration order, so *smaller is
/// better*: the serving ladder picks the minimum tier whose solve cost
/// fits the remaining deadline, and `a <= b` reads "a is at least as
/// good as b".
///
/// ```
/// use vlp_core::QualityTier;
///
/// assert!(QualityTier::Exact < QualityTier::Clustered);
/// assert!(QualityTier::Clustered < QualityTier::Spanner);
/// assert!(QualityTier::Spanner < QualityTier::Laplace);
/// // Every tier is ε-valid; the ordering ranks ETDD, never privacy.
/// assert_eq!(QualityTier::Exact as u8, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QualityTier {
    /// The exact D-VLP optimum via column generation.
    Exact,
    /// Interval clustering: LP on super-intervals, lifted to members.
    Clustered,
    /// Constraint-graph `t`-spanner at budget `ε/t`.
    Spanner,
    /// The closed-form graph-Laplace fallback floor.
    Laplace,
}

impl QualityTier {
    /// All tiers in descending quality order.
    pub const ALL: [QualityTier; 4] = [
        QualityTier::Exact,
        QualityTier::Clustered,
        QualityTier::Spanner,
        QualityTier::Laplace,
    ];

    /// Stable lowercase label used in metric names and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            QualityTier::Exact => "exact",
            QualityTier::Clustered => "clustered",
            QualityTier::Spanner => "spanner",
            QualityTier::Laplace => "laplace",
        }
    }

    /// The tier with the given [`Self::label`], if any.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|t| t.label() == label)
    }
}

// The vendored serde_derive handles only structs; tiers serialize as
// their stable label string.
impl serde::Serialize for QualityTier {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.label().to_string())
    }
}

impl serde::Deserialize for QualityTier {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        match content {
            serde::Content::Str(s) => Self::from_label(s)
                .ok_or_else(|| serde::DeError::custom(format!("unknown quality tier `{s}`"))),
            _ => Err(serde::DeError::custom("expected a quality-tier string")),
        }
    }
}

/// A solved intermediate-tier mechanism over the full `k`-interval
/// support, shaped like an exact solve so callers treat every rung
/// uniformly.
#[derive(Debug, Clone)]
pub struct TierSolve {
    /// The `k × k` mechanism (full support — lifted, for the
    /// clustering tier).
    pub mechanism: Mechanism,
    /// Achieved quality loss (ETDD) of the *served* `k × k` mechanism
    /// under the original cost matrix.
    pub quality_loss: f64,
    /// Column-generation diagnostics of the reduced solve.
    pub diagnostics: CgDiagnostics,
    /// LP variable count of the reduced problem actually solved
    /// (`m²` for `m` clusters; `k²` for the spanner tier).
    pub lp_vars: usize,
    /// LP inequality-row count of the reduced problem.
    pub lp_rows: usize,
}

/// Pairwise distances recovered from a spec's constraints: `d[i][l]`
/// is the constraint distance, or `+∞` for pairs the spec does not
/// constrain (outside the protection radius — safe to leave unmerged
/// and unconstrained).
fn pairwise_from_spec(k: usize, spec: &PrivacySpec) -> Vec<f64> {
    let mut d = vec![f64::INFINITY; k * k];
    for c in &spec.constraints {
        let v = c.dist;
        let slot = &mut d[c.i * k + c.l];
        if v < *slot {
            *slot = v;
        }
    }
    // `d_min` is symmetric; keep the matrix symmetric even if a spec
    // carries only one direction of a pair.
    for i in 0..k {
        for l in (i + 1)..k {
            let m = d[i * k + l].min(d[l * k + i]);
            d[i * k + l] = m;
            d[l * k + i] = m;
        }
    }
    d
}

/// The interval-clustering tier: greedy width-bounded clustering,
/// cluster-level LP, lift to members (see the module docs for the
/// construction and its ε-validity argument).
///
/// `spec` must be the **unreduced** constraint set the result is
/// audited against ([`PrivacySpec::full`] or a restricted spec from
/// [`crate::local`]) — the reduced set of §4.2 omits pairs the
/// clustering needs. `width = 0` reproduces the exact solve of `spec`
/// bit for bit. Pairs absent from `spec` (beyond the protection
/// radius) are treated as infinitely far: never clustered together,
/// never constrained.
///
/// # Errors
///
/// Propagates solver failures as [`VlpError`].
///
/// # Panics
///
/// Panics if `width` is negative/NaN or `cost`/`spec` dimensions are
/// inconsistent.
pub fn clustered_mechanism(
    cost: &CostMatrix,
    spec: &PrivacySpec,
    width: f64,
    opts: &CgOptions,
) -> Result<TierSolve, VlpError> {
    assert!(width >= 0.0, "cluster width must be non-negative");
    let k = cost.len();
    assert!(k > 0, "cost matrix must be non-empty");
    let d = pairwise_from_spec(k, spec);
    // Greedy width-net over local indices, ascending — the same scan
    // order as `LocalityPlan::build`, so the clustering is a pure
    // function of (spec, width).
    let mut centers: Vec<usize> = Vec::new();
    let mut cluster_of = vec![usize::MAX; k];
    for i in 0..k {
        let found = centers.iter().position(|&c| d[i * k + c] <= width);
        match found {
            Some(a) => cluster_of[i] = a,
            None => {
                cluster_of[i] = centers.len();
                centers.push(i);
            }
        }
    }
    let m = centers.len();
    // Cluster objective: C[a][b] = Σ_{i ∈ a} cost(i, center_b), so the
    // cluster LP minimizes the exact lifted ETDD.
    let mut c_cost = vec![0.0; m * m];
    for (i, &a) in cluster_of.iter().enumerate() {
        for (b, &cb) in centers.iter().enumerate() {
            c_cost[a * m + b] += cost.get(i, cb);
        }
    }
    // Cluster constraints: d_c(a, b) = min over member pairs — at most
    // the distance of any member pair, which is what the lift's
    // validity leans on.
    let mut d_c = vec![f64::INFINITY; m * m];
    for i in 0..k {
        for l in 0..k {
            let (a, b) = (cluster_of[i], cluster_of[l]);
            if a != b {
                let v = d[i * k + l];
                let slot = &mut d_c[a * m + b];
                if v < *slot {
                    *slot = v;
                }
            }
        }
    }
    let mut constraints = Vec::new();
    for a in 0..m {
        for b in 0..m {
            let v = d_c[a * m + b];
            if a != b && v.is_finite() && v <= spec.radius {
                constraints.push(PrivacyConstraint {
                    i: a,
                    l: b,
                    dist: v,
                });
            }
        }
    }
    let c_spec = PrivacySpec {
        epsilon: spec.epsilon,
        radius: spec.radius,
        constraints,
    };
    let lp_rows = c_spec.lp_row_count(m);
    let c_matrix = CostMatrix::from_dense(m, c_cost);
    let (c_mech, _, diagnostics) = solve_column_generation(&c_matrix, &c_spec, opts)?;
    // Lift: member i's row is cluster(i)'s row over the center columns.
    let mut z = vec![0.0; k * k];
    for i in 0..k {
        let a = cluster_of[i];
        for (b, &cb) in centers.iter().enumerate() {
            z[i * k + cb] = c_mech.prob(a, b);
        }
    }
    let quality_loss = cost.quality_loss(&z);
    let mechanism =
        Mechanism::from_matrix(k, z, 1e-6).expect("lifted cluster mechanism is row-stochastic");
    Ok(TierSolve {
        mechanism,
        quality_loss,
        diagnostics,
        lp_vars: m * m,
        lp_rows,
    })
}

/// Dijkstra over an adjacency list; returns the distance from `s` to
/// `t` (early exit once `t` is settled).
fn adj_dist(adj: &[Vec<(usize, f64)>], s: usize, t: usize) -> f64 {
    if s == t {
        return 0.0;
    }
    let mut dist = vec![f64::INFINITY; adj.len()];
    dist[s] = 0.0;
    let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, usize)> = BinaryHeap::new();
    heap.push((std::cmp::Reverse(0), s));
    while let Some((std::cmp::Reverse(db), v)) = heap.pop() {
        let dv = f64::from_bits(db);
        if dv > dist[v] {
            continue;
        }
        if v == t {
            return dv;
        }
        for &(w, len) in &adj[v] {
            let nd = dv + len;
            if nd < dist[w] {
                dist[w] = nd;
                heap.push((std::cmp::Reverse(nd.to_bits()), w));
            }
        }
    }
    f64::INFINITY
}

/// Greedy multiplicative `t`-spanner of the complete graph over
/// `0..k` with edge weights `d_hat`: pairs scanned by ascending
/// weight (ties towards lower indices), an edge kept only if the
/// spanner so far cannot already connect it within `stretch × weight`.
/// Returns the kept edges `(a, b, weight)` with `a < b`.
fn greedy_spanner(k: usize, d_hat: &[f64], stretch: f64) -> Vec<(usize, usize, f64)> {
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(k * (k - 1) / 2);
    for a in 0..k {
        for b in (a + 1)..k {
            if d_hat[a * k + b].is_finite() {
                pairs.push((a, b));
            }
        }
    }
    pairs.sort_by(|&(a1, b1), &(a2, b2)| {
        let d1 = d_hat[a1 * k + b1];
        let d2 = d_hat[a2 * k + b2];
        d1.total_cmp(&d2).then((a1, b1).cmp(&(a2, b2)))
    });
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); k];
    let mut edges = Vec::new();
    for (a, b) in pairs {
        let w = d_hat[a * k + b];
        if adj_dist(&adj, a, b) > stretch * w {
            adj[a].push((b, w));
            adj[b].push((a, w));
            edges.push((a, b, w));
        }
    }
    edges
}

/// The constraint-spanner tier: solve the LP with one constraint per
/// `t`-spanner edge of the metric closure `d̂`, at the scaled budget
/// `ε/t`, so the chained result satisfies the **full** `(ε, ·)` spec
/// at any protection radius (see the module docs for the proof
/// sketch).
///
/// `d_hat` is the row-major `k × k` undirected metric-closure matrix
/// over the support (symmetric, triangle inequality, `d̂ ≤ d_min` —
/// [`support_d_hat`] computes it from an auxiliary graph).
///
/// # Errors
///
/// Propagates solver failures as [`VlpError`].
///
/// # Panics
///
/// Panics if `stretch < 1`, `epsilon` is not positive, or dimensions
/// are inconsistent.
pub fn spanner_mechanism(
    cost: &CostMatrix,
    d_hat: &[f64],
    epsilon: f64,
    stretch: f64,
    opts: &CgOptions,
) -> Result<TierSolve, VlpError> {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(stretch >= 1.0, "spanner stretch must be at least 1");
    let k = cost.len();
    assert!(k > 0, "cost matrix must be non-empty");
    assert_eq!(d_hat.len(), k * k, "d_hat dimension mismatch");
    let edges = greedy_spanner(k, d_hat, stretch);
    let mut constraints = Vec::with_capacity(2 * edges.len());
    for &(a, b, w) in &edges {
        constraints.push(PrivacyConstraint {
            i: a,
            l: b,
            dist: w,
        });
        constraints.push(PrivacyConstraint {
            i: b,
            l: a,
            dist: w,
        });
    }
    let spec = PrivacySpec {
        epsilon: epsilon / stretch,
        radius: f64::INFINITY,
        constraints,
    };
    let lp_rows = spec.lp_row_count(k);
    let (mechanism, quality_loss, diagnostics) = solve_column_generation(cost, &spec, opts)?;
    Ok(TierSolve {
        mechanism,
        quality_loss,
        diagnostics,
        lp_vars: k * k,
        lp_rows,
    })
}

/// The row-major `k × k` metric closure `d̂` (undirected
/// auxiliary-graph distances) over a sorted `support` of interval
/// ids — the distance matrix [`spanner_mechanism`] consumes.
pub fn support_d_hat(aux_graph: &RoadGraph, support: &[usize]) -> Vec<f64> {
    let k = support.len();
    let nodes: Vec<NodeId> = support.iter().map(|&g| NodeId(g)).collect();
    let mut d = vec![0.0; k * k];
    for (a, row) in d.chunks_mut(k).enumerate() {
        let dists = distances_to_targets(aux_graph, nodes[a], &nodes, BallMetric::Undirected);
        row.copy_from_slice(&dists);
    }
    d
}

impl VlpInstance {
    /// Solves the interval-clustering tier over the full support: the
    /// unreduced `(epsilon, radius)` spec, greedy `width`-clustering,
    /// cluster LP, lift ([`clustered_mechanism`]).
    ///
    /// ```
    /// use roadnet::generators;
    /// use vlp_core::{privacy, CgOptions, PrivacySpec, VlpInstance};
    ///
    /// let inst = VlpInstance::uniform(generators::grid(2, 2, 0.5, true), 0.25);
    /// let tier = inst.solve_clustered(2.0, f64::INFINITY, 0.3, &CgOptions::default()).unwrap();
    /// // Fewer LP variables than the exact problem, same audit spec.
    /// assert!(tier.lp_vars < inst.len() * inst.len());
    /// let spec = PrivacySpec::full(&inst.aux, 2.0, f64::INFINITY);
    /// assert!(privacy::verify(&tier.mechanism, &spec, 1e-6));
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates solver failures as [`VlpError`].
    pub fn solve_clustered(
        &self,
        epsilon: f64,
        radius: f64,
        width: f64,
        opts: &CgOptions,
    ) -> Result<TierSolve, VlpError> {
        let spec = PrivacySpec::full(&self.aux, epsilon, radius);
        clustered_mechanism(&self.cost, &spec, width, opts)
    }

    /// Solves the constraint-spanner tier over the full support: a
    /// greedy `stretch`-spanner of the metric closure, solved at
    /// `epsilon / stretch` ([`spanner_mechanism`]) — valid for the
    /// full spec at **any** protection radius.
    ///
    /// ```
    /// use roadnet::generators;
    /// use vlp_core::{privacy, CgOptions, PrivacySpec, VlpInstance};
    ///
    /// let inst = VlpInstance::uniform(generators::grid(2, 2, 0.5, true), 0.25);
    /// let tier = inst.solve_spanner(2.0, 2.0, &CgOptions::default()).unwrap();
    /// let spec = PrivacySpec::full(&inst.aux, 2.0, f64::INFINITY);
    /// assert!(privacy::verify(&tier.mechanism, &spec, 1e-6));
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates solver failures as [`VlpError`].
    pub fn solve_spanner(
        &self,
        epsilon: f64,
        stretch: f64,
        opts: &CgOptions,
    ) -> Result<TierSolve, VlpError> {
        let support: Vec<usize> = (0..self.len()).collect();
        let d_hat = support_d_hat(self.aux.graph(), &support);
        spanner_mechanism(&self.cost, &d_hat, epsilon, stretch, opts)
    }
}

/// Restricted-support tier solves for [`crate::local::LocalShard`]:
/// the cost/spec builders of the exact neighborhood solve feed the
/// tier constructors, so every rung shares one audit spec.
impl crate::local::LocalShard {
    /// Solves neighborhood `nb` at the interval-clustering tier —
    /// clustering the restricted support with the same full-graph
    /// `d_min` exponents the exact neighborhood solve enforces, so the
    /// lifted mechanism passes [`Self::audit_spec`] unchanged.
    ///
    /// # Errors
    ///
    /// Propagates solver failures as [`VlpError`].
    pub fn clustered_neighborhood(
        &self,
        nb: u32,
        epsilon: f64,
        width: f64,
        opts: &CgOptions,
    ) -> Result<LocalSolve, VlpError> {
        let members = self.members(nb);
        let tier = if members.len() == self.len() {
            let dense = self.dense();
            let spec = PrivacySpec::full(&dense.aux, epsilon, self.plan().protection());
            clustered_mechanism(&dense.cost, &spec, width, opts)?
        } else {
            let cost = self.restricted_member_cost(members);
            let spec = self.audit_spec(nb, epsilon);
            clustered_mechanism(&cost, &spec, width, opts)?
        };
        Ok(tier.into_local(members))
    }

    /// Solves neighborhood `nb` at the constraint-spanner tier over
    /// the restricted support — `d̂` evaluated on the full auxiliary
    /// graph (paths may leave the neighborhood), so the chained bound
    /// dominates every audit-spec exponent.
    ///
    /// # Errors
    ///
    /// Propagates solver failures as [`VlpError`].
    pub fn spanner_neighborhood(
        &self,
        nb: u32,
        epsilon: f64,
        stretch: f64,
        opts: &CgOptions,
    ) -> Result<LocalSolve, VlpError> {
        let members = self.members(nb);
        let d_hat = support_d_hat(self.aux_graph(), members);
        let tier = if members.len() == self.len() {
            spanner_mechanism(&self.dense().cost, &d_hat, epsilon, stretch, opts)?
        } else {
            let cost = self.restricted_member_cost(members);
            spanner_mechanism(&cost, &d_hat, epsilon, stretch, opts)?
        };
        Ok(tier.into_local(members))
    }
}

impl TierSolve {
    /// Re-shapes a tier solve over a restricted support into the
    /// [`LocalSolve`] form the serving layer consumes.
    fn into_local(self, support: &[usize]) -> LocalSolve {
        LocalSolve {
            support: std::sync::Arc::new(support.to_vec()),
            mechanism: self.mechanism,
            quality_loss: self.quality_loss,
            diagnostics: self.diagnostics,
            lp_vars: self.lp_vars,
            lp_rows: self.lp_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalShard;
    use crate::privacy;
    use roadnet::generators;

    // Small enough that the *unreduced* full spec (which the clustering
    // tier consumes, and which the width-0 degenerate case solves
    // outright) stays a small LP: K = 16, 240 ordered pairs.
    fn small_instance() -> VlpInstance {
        VlpInstance::uniform(generators::grid(2, 2, 0.5, true), 0.25)
    }

    #[test]
    fn tier_order_ranks_quality_descending() {
        assert!(QualityTier::Exact < QualityTier::Clustered);
        assert!(QualityTier::Clustered < QualityTier::Spanner);
        assert!(QualityTier::Spanner < QualityTier::Laplace);
        assert_eq!(QualityTier::ALL.len(), 4);
        assert_eq!(QualityTier::Laplace.label(), "laplace");
    }

    #[test]
    fn zero_width_clustering_is_the_exact_unreduced_solve() {
        let inst = small_instance();
        let spec = PrivacySpec::full(&inst.aux, 3.0, f64::INFINITY);
        let opts = CgOptions::default();
        let tier = clustered_mechanism(&inst.cost, &spec, 0.0, &opts).unwrap();
        let (mech, _, _) = solve_column_generation(&inst.cost, &spec, &opts).unwrap();
        let drift = tier
            .mechanism
            .as_slice()
            .iter()
            .zip(mech.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(drift < 1e-12, "lift drifted {drift} from the exact solve");
        assert_eq!(tier.lp_vars, inst.len() * inst.len());
        // ...and agrees with the reduced-spec exact solve on ETDD.
        let exact = inst.solve(3.0, f64::INFINITY, &opts).unwrap();
        assert!((tier.quality_loss - exact.quality_loss).abs() < 1e-5);
    }

    #[test]
    fn clustered_mechanism_audits_against_the_full_spec() {
        let inst = small_instance();
        let spec = PrivacySpec::full(&inst.aux, 3.0, f64::INFINITY);
        let tier = inst
            .solve_clustered(3.0, f64::INFINITY, 0.3, &CgOptions::default())
            .unwrap();
        assert!(tier.lp_vars < inst.len() * inst.len(), "nothing clustered");
        assert!(privacy::verify(&tier.mechanism, &spec, 1e-6));
    }

    #[test]
    fn clustered_members_share_their_cluster_row() {
        let inst = small_instance();
        let spec = PrivacySpec::full(&inst.aux, 3.0, f64::INFINITY);
        let tier = clustered_mechanism(&inst.cost, &spec, 0.5, &CgOptions::default()).unwrap();
        let k = inst.len();
        // Every row is supported only on cluster-center columns, and
        // at least one pair of distinct members shares a row exactly.
        let mut shared = false;
        for i in 0..k {
            for l in (i + 1)..k {
                if tier.mechanism.row(i) == tier.mechanism.row(l) {
                    shared = true;
                }
            }
        }
        assert!(shared, "width 0.5 should merge at least one pair");
    }

    #[test]
    fn spanner_mechanism_audits_at_any_radius() {
        let inst = small_instance();
        let tier = inst.solve_spanner(3.0, 2.0, &CgOptions::default()).unwrap();
        // Valid for the full spec at radius ∞ *and* any finite radius.
        for radius in [0.4, 1.0, f64::INFINITY] {
            let spec = PrivacySpec::full(&inst.aux, 3.0, radius);
            assert!(
                privacy::verify(&tier.mechanism, &spec, 1e-6),
                "radius {radius}"
            );
        }
    }

    #[test]
    fn spanner_keeps_fewer_constraints_than_the_full_spec() {
        let inst = small_instance();
        let k = inst.len();
        let support: Vec<usize> = (0..k).collect();
        let d_hat = support_d_hat(inst.aux.graph(), &support);
        let edges = greedy_spanner(k, &d_hat, 2.0);
        assert!(2 * edges.len() < k * (k - 1), "spanner did not sparsify");
        // Connected: every pair reachable within stretch × d̂.
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); k];
        for &(a, b, w) in &edges {
            adj[a].push((b, w));
            adj[b].push((a, w));
        }
        for a in 0..k {
            for b in 0..k {
                assert!(
                    adj_dist(&adj, a, b) <= 2.0 * d_hat[a * k + b] + 1e-12,
                    "stretch violated for ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn tier_etdd_never_beats_exact() {
        let inst = small_instance();
        let opts = CgOptions::default();
        let exact = inst.solve(3.0, f64::INFINITY, &opts).unwrap();
        let clustered = inst
            .solve_clustered(3.0, f64::INFINITY, 0.3, &opts)
            .unwrap();
        let spanner = inst.solve_spanner(3.0, 2.0, &opts).unwrap();
        let laplace = inst.fallback(3.0).quality_loss(&inst.cost);
        assert!(clustered.quality_loss >= exact.quality_loss - 1e-9);
        assert!(spanner.quality_loss >= exact.quality_loss - 1e-9);
        assert!(laplace >= exact.quality_loss - 1e-9);
    }

    #[test]
    fn restricted_tier_solves_pass_the_neighborhood_audit() {
        let shard = LocalShard::uniform(generators::grid(3, 3, 0.4, true), 0.2, 0.4, 0.4);
        let opts = CgOptions::default();
        for nb in 0..shard.plan().neighborhood_count() as u32 {
            if shard.members(nb).len() == shard.len() {
                // Full-support neighborhoods delegate to the dense
                // instance, whose unreduced spec is too large for a
                // unit test; covered by the 2×2 full-support tests.
                continue;
            }
            let spec = shard.audit_spec(nb, 3.0);
            let clustered = shard.clustered_neighborhood(nb, 3.0, 0.2, &opts).unwrap();
            assert!(
                privacy::verify(&clustered.mechanism, &spec, 1e-6),
                "clustered nb {nb}"
            );
            let spanner = shard.spanner_neighborhood(nb, 3.0, 2.0, &opts).unwrap();
            assert!(
                privacy::verify(&spanner.mechanism, &spec, 1e-6),
                "spanner nb {nb}"
            );
            let exact = shard.solve_neighborhood(nb, 3.0, &opts).unwrap();
            assert!(clustered.quality_loss >= exact.quality_loss - 1e-9, "{nb}");
            assert!(spanner.quality_loss >= exact.quality_loss - 1e-9, "{nb}");
        }
    }

    #[test]
    fn zero_width_restricted_clustering_matches_the_exact_neighborhood() {
        let shard = LocalShard::uniform(generators::grid(3, 3, 0.4, true), 0.2, 0.4, 0.4);
        let opts = CgOptions::default();
        for nb in 0..shard.plan().neighborhood_count() as u32 {
            if shard.members(nb).len() == shard.len() {
                continue;
            }
            let exact = shard.solve_neighborhood(nb, 3.0, &opts).unwrap();
            let tier = shard.clustered_neighborhood(nb, 3.0, 0.0, &opts).unwrap();
            let drift = tier
                .mechanism
                .as_slice()
                .iter()
                .zip(exact.mechanism.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(drift < 1e-12, "nb {nb}: lift drifted {drift}");
        }
    }
}
