//! Dantzig-Wolfe decomposition and column generation for D-VLP (§4.3).
//!
//! The D-VLP constraint matrix is block-angular: the Geo-I constraints
//! act independently on each column `z_l` of the obfuscation matrix,
//! and only the probability-unit-measure rows couple the columns. Each
//! block polyhedron
//!
//! ```text
//! Λ_l = { z ∈ R^K : z_i ≤ e^{ε·dist} z_{i'} (per privacy pair), 0 ≤ z ≤ 1 }
//! ```
//!
//! is a polytope (the paper's cone, boxed by the valid bound `z ≤ 1` so
//! that it has informative extreme points), and any `z_l ∈ Λ_l` is a
//! convex combination of extreme points. The master program optimizes
//! over combination weights `λ`; pricing subproblems — one per block,
//! solved in parallel — search each `Λ_l` for an extreme point with
//! negative reduced cost (Proposition 4.3).
//!
//! Following §4.3.3, the iteration stops early once
//! `min_l ζ_l ≥ ξ` for a small negative threshold `ξ`, trading a
//! bounded amount of optimality for a large reduction in iterations
//! (Fig. 13(c)(d)); each iteration also yields the dual lower bound of
//! Theorem 4.4, reported in [`CgDiagnostics`].
//!
//! # Warm-started solver state
//!
//! The LP structure barely changes across iterations: every pricing
//! polytope `Λ_l` is *fixed* (only the objective `c_l − π` moves), and
//! the restricted master only ever *gains* columns. With
//! `warm_start: true` (the default) the loop therefore holds one
//! persistent [`IncrementalLp`] per pricing block plus one for the
//! master: pricing resolves re-price the previous optimal basis
//! instead of re-pivoting from the slack basis, and master resolves
//! skip phase 1 entirely after the first solve (appended columns enter
//! non-basic, so the old basis stays feasible). `warm_start: false`
//! falls back to building a fresh [`LinearProgram`] per solve — the
//! cold baseline the pivot-budget benchmarks compare against.

use std::time::{Duration, Instant};

use lpsolve::{ColumnSpec, IncrementalLp, LinearProgram, Relation, ResolveStats};

/// Telemetry metric names recorded by this module into
/// [`vlp_obs::global`]; per-iteration histories land in series, time
/// splits in timers, and totals in counters.
pub mod metrics {
    /// Counter: column-generation runs.
    pub const SOLVES: &str = "cg.solves";
    /// Counter: master iterations across all runs.
    pub const ITERATIONS: &str = "cg.iterations";
    /// Counter: columns added across all runs.
    pub const COLUMNS_ADDED: &str = "cg.columns_added";
    /// Counter: simplex pivots spent in restricted-master resolves
    /// (warm engine only; the cold path's pivots are visible in
    /// `lpsolve.simplex.pivots`).
    pub const MASTER_PIVOTS: &str = "cg.master_pivots";
    /// Counter: simplex pivots spent in pricing resolves (warm engine
    /// only).
    pub const PRICING_PIVOTS: &str = "cg.pricing_pivots";
    /// Series: restricted-master objective after each master solve.
    pub const MASTER_OBJECTIVE: &str = "cg.master_objective";
    /// Series: dual lower bound ω (Theorem 4.4) after each iteration.
    pub const DUAL_BOUND: &str = "cg.dual_bound";
    /// Series: `min_l ζ_l` after each pricing round.
    pub const MIN_ZETA: &str = "cg.min_zeta";
    /// Series: pricing threads used, one sample per run.
    pub const THREADS_USED: &str = "cg.threads_used";
    /// Timer: whole column-generation run.
    pub const SOLVE_TIME: &str = "cg.solve";
    /// Timer: cumulative restricted-master share of each run.
    pub const MASTER_TIME: &str = "cg.master";
    /// Timer: cumulative pricing share of each run.
    pub const PRICING_TIME: &str = "cg.pricing";
    /// Timer: cumulative time inside warm-started LP resolves.
    pub const WARM_TIME: &str = "cg.warm";
    /// Timer: cumulative time inside cold LP solves of the warm engine
    /// (first solves and numerical fallbacks).
    pub const COLD_TIME: &str = "cg.cold";
}

use crate::cost::CostMatrix;
use crate::error::VlpError;
use crate::mechanism::Mechanism;
use crate::privacy::PrivacySpec;

/// Tuning knobs for column generation.
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Early-stopping threshold `ξ ≤ 0`: the loop ends once
    /// `min_l ζ_l ≥ ξ`. Values closer to zero yield tighter optima but
    /// more iterations (§4.3.3 and Fig. 13(c)(d)).
    pub xi: f64,
    /// Hard cap on master iterations.
    pub max_iterations: usize,
    /// Solve the pricing subproblems on multiple threads.
    pub parallel: bool,
    /// Relative optimality-gap stop: the loop also ends once
    /// `(objective − dual bound) ≤ gap_tol · |objective|` — i.e. the
    /// Theorem 4.4 bound certifies the solution to within `gap_tol`.
    /// The paper reports approximation ratios of 1.03–1.06 (Fig. 13(e)),
    /// so the default of 1 % is faithful; set to `1e-9` for
    /// (numerically) exact optima.
    pub gap_tol: f64,
    /// Seed the master with exponential-decay columns (see the
    /// initialization notes in [`solve_column_generation`]). Disable
    /// only for ablation studies — without the seeds, degenerate
    /// masters stall at the uniform mechanism for many iterations.
    pub seed_decay_columns: bool,
    /// Price at Wentges-smoothed duals instead of the raw master duals.
    /// Disable only for ablation studies.
    pub dual_smoothing: bool,
    /// Reuse solver state across iterations (persistent
    /// [`IncrementalLp`] per pricing block and for the master) instead
    /// of rebuilding every LP from scratch. Disable to get the cold
    /// per-iteration solves as a baseline.
    pub warm_start: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        Self {
            xi: -1e-6,
            max_iterations: 60,
            parallel: true,
            gap_tol: 0.01,
            seed_decay_columns: true,
            dual_smoothing: true,
            warm_start: true,
        }
    }
}

/// Convergence telemetry for one column-generation run.
#[derive(Debug, Clone, Default)]
pub struct CgDiagnostics {
    /// Number of master iterations performed.
    pub iterations: usize,
    /// `min_l ζ_l` after each master solve (Fig. 13(b)).
    pub min_zeta_history: Vec<f64>,
    /// Restricted-master objective after each solve.
    pub master_objective_history: Vec<f64>,
    /// Dual lower bound ω of Theorem 4.4 after each solve.
    pub dual_bound_history: Vec<f64>,
    /// Total number of columns added across all iterations.
    pub columns_added: usize,
    /// Wall-clock time of the whole run.
    pub wall_time: Duration,
    /// Wall-clock time spent solving restricted masters.
    pub master_time: Duration,
    /// Wall-clock time spent in the pricing subproblems (all rounds,
    /// including mispricing retries).
    pub pricing_time: Duration,
    /// Number of threads the pricing fan-out used.
    pub threads: usize,
    /// Simplex pivots spent in master resolves (warm engine only; zero
    /// when `warm_start` is off — the cold path's pivots are tracked
    /// globally in `lpsolve.simplex.pivots`).
    pub master_pivots: u64,
    /// Simplex pivots spent in pricing resolves (warm engine only).
    pub pricing_pivots: u64,
    /// Warm-engine resolves that reused a previous basis.
    pub lp_warm_resolves: u64,
    /// Warm-engine resolves that ran cold (first solves of each
    /// persistent solver, plus any numerical fallbacks).
    pub lp_cold_solves: u64,
    /// Wall-clock time inside warm resolves.
    pub lp_warm_time: Duration,
    /// Wall-clock time inside the warm engine's cold solves.
    pub lp_cold_time: Duration,
}

impl CgDiagnostics {
    /// The best (largest) dual lower bound observed — the denominator
    /// of the approximation ratios in Fig. 13(e).
    pub fn best_dual_bound(&self) -> f64 {
        self.dual_bound_history
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Fraction of warm-engine resolves that reused a basis
    /// (`NaN`-free: returns 0 when the warm engine never ran).
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.lp_warm_resolves + self.lp_cold_solves;
        if total == 0 {
            0.0
        } else {
            self.lp_warm_resolves as f64 / total as f64
        }
    }

    /// Folds one warm-engine resolve into the tallies.
    fn absorb(&mut self, stats: &ResolveStats, master: bool) {
        if master {
            self.master_pivots += stats.pivots;
        } else {
            self.pricing_pivots += stats.pivots;
        }
        if stats.warm {
            self.lp_warm_resolves += 1;
            self.lp_warm_time += stats.duration;
        } else {
            self.lp_cold_solves += 1;
            self.lp_cold_time += stats.duration;
        }
    }

    /// Mirrors this run into the global telemetry registry.
    fn flush(&self) {
        let reg = vlp_obs::global();
        reg.incr(metrics::SOLVES, 1);
        reg.incr(metrics::ITERATIONS, self.iterations as u64);
        reg.incr(metrics::COLUMNS_ADDED, self.columns_added as u64);
        reg.incr(metrics::MASTER_PIVOTS, self.master_pivots);
        reg.incr(metrics::PRICING_PIVOTS, self.pricing_pivots);
        reg.extend(metrics::MASTER_OBJECTIVE, &self.master_objective_history);
        reg.extend(metrics::DUAL_BOUND, &self.dual_bound_history);
        reg.extend(metrics::MIN_ZETA, &self.min_zeta_history);
        reg.push(metrics::THREADS_USED, self.threads as f64);
        reg.record_duration(metrics::SOLVE_TIME, self.wall_time);
        reg.record_duration(metrics::MASTER_TIME, self.master_time);
        reg.record_duration(metrics::PRICING_TIME, self.pricing_time);
        reg.record_duration(metrics::WARM_TIME, self.lp_warm_time);
        reg.record_duration(metrics::COLD_TIME, self.lp_cold_time);
    }
}

/// One generated extreme-point column for block `l`.
#[derive(Debug, Clone)]
struct Column {
    l: usize,
    z: Vec<f64>,
    /// Objective contribution `Σ_i c_{i,l} ẑ_i`.
    cost: f64,
}

/// The master's column pool plus its per-block index: `by_block[l]`
/// holds the ids (positions in `columns`) of every column of block
/// `l`, so duplicate checks and convexity rows only touch the owning
/// block instead of scanning the whole pool.
#[derive(Debug, Default)]
struct ColumnPool {
    columns: Vec<Column>,
    by_block: Vec<Vec<usize>>,
}

impl ColumnPool {
    fn new(k: usize) -> Self {
        Self {
            columns: Vec::new(),
            by_block: vec![Vec::new(); k],
        }
    }

    fn len(&self) -> usize {
        self.columns.len()
    }

    fn push(&mut self, col: Column) {
        self.by_block[col.l].push(self.columns.len());
        self.columns.push(col);
    }

    /// Whether `z` duplicates an existing column of block `l` (within
    /// round-off). Re-adding identical columns bloats the master
    /// without changing its optimum — a hazard when the master is
    /// degenerate and pricing keeps rediscovering the same vertex.
    /// Only block `l`'s own columns are scanned.
    fn is_duplicate(&self, l: usize, z: &[f64]) -> bool {
        // The tolerance is deliberately coarse: *near*-duplicate
        // columns are as dangerous as exact ones — two of them in a
        // basis make the master matrix near-singular and its
        // "solutions" numerically infeasible.
        self.by_block[l].iter().any(|&t| {
            self.columns[t]
                .z
                .iter()
                .zip(z)
                .all(|(a, b)| (a - b).abs() <= 1e-6)
        })
    }
}

/// Solves D-VLP by column generation.
///
/// Returns the mechanism, its quality loss (restricted-master optimum),
/// and the run diagnostics.
///
/// # Errors
///
/// Same failure modes as [`crate::dvlp::solve_direct`]; additionally an
/// interrupted run that never produced a solvable master returns the
/// underlying [`VlpError::Lp`] error.
pub fn solve_column_generation(
    cost: &CostMatrix,
    spec: &PrivacySpec,
    opts: &CgOptions,
) -> Result<(Mechanism, f64, CgDiagnostics), VlpError> {
    let start = Instant::now();
    let k = cost.len();
    if k == 0 {
        return Err(VlpError::EmptyInstance);
    }
    for c in &spec.constraints {
        if c.i >= k || c.l >= k {
            return Err(VlpError::DimensionMismatch {
                expected: k,
                found: c.i.max(c.l) + 1,
            });
        }
    }
    let threads = pricing_threads(k, opts.parallel);

    // Initial restricted master. Two families of provably feasible
    // columns seed every block:
    //
    // * the uniform column (1/K everywhere) — feasible for any Geo-I
    //   spec and, taken across all blocks, feasible for the coupling
    //   rows, so no artificial variables are ever needed;
    // * exponential-decay columns `z_i = e^{−β·D(i, l)}` at several
    //   rates `β ≤ ε`, where `D` is the shortest-path distance in the
    //   *constraint graph* (edges = privacy pairs weighted by their
    //   exponent distances). The triangle inequality on `D` makes every
    //   such column satisfy all chained Geo-I constraints, and together
    //   they give the master genuine mixing freedom from iteration 1 —
    //   without them a degenerate master can sit at the uniform vertex
    //   for dozens of iterations while priced columns enter at zero
    //   step.
    let uniform = vec![1.0 / k as f64; k];
    let mut pool = ColumnPool::new(k);
    for l in 0..k {
        pool.push(Column {
            l,
            cost: column_cost(cost, l, &uniform),
            z: uniform.clone(),
        });
    }
    if opts.seed_decay_columns {
        let chain = chain_distances(k, spec, threads);
        // Candidate construction is embarrassingly parallel (each
        // candidate is a pure function of `chain` and `cost`); only the
        // order-dependent dedup below stays sequential, so the seeded
        // pool is identical for any thread count.
        let betas: Vec<f64> = [1.0, 0.5, 0.25].iter().map(|f| spec.epsilon * f).collect();
        let candidates = seed_candidates(cost, k, &chain, &betas, threads);
        for (idx, (z, col_cost)) in candidates.into_iter().enumerate() {
            let l = idx % k;
            if !pool.is_duplicate(l, &z) {
                pool.push(Column {
                    l,
                    cost: col_cost,
                    z,
                });
            }
        }
    }

    let mut diag = CgDiagnostics::default();
    // Persistent warm solvers: one master, one per pricing block (the
    // block solvers share a template so the constraint assembly cost is
    // paid once). `None` entries materialize lazily on first use.
    let mut warm_master: Option<IncrementalLp> = None;
    let mut pricers: Option<BlockPricers> = opts
        .warm_start
        .then(|| BlockPricers::build(k, spec))
        .transpose()?;
    // Fallback iterate: λ = 1 on each block's uniform column (always
    // feasible) until a master solve succeeds.
    let mut last_lambda: Vec<f64> = {
        let mut l = vec![0.0; pool.len()];
        for slot in l.iter_mut().take(k) {
            *slot = 1.0;
        }
        l
    };
    let mut last_columns = pool.len();
    let mut master_obj = pool.columns[..k].iter().map(|c| c.cost).sum::<f64>();
    let debug = std::env::var_os("VLP_CG_DEBUG").is_some();
    // Stall detection: degenerate masters can accept improving columns
    // at zero step length, leaving the objective flat while pricing
    // still reports negative ζ (the "long tail" of §4.3.3). After
    // several flat iterations we stop — the dual bound in the
    // diagnostics quantifies how much optimality that leaves behind.
    let mut best_obj = f64::INFINITY;
    let mut stalled = 0usize;
    // Generous: degenerate masters routinely sit flat for tens of
    // iterations (columns entering at zero step) before the objective
    // drops; the limit only guards against truly unbounded tailing.
    const STALL_LIMIT: usize = 30;
    // Wentges dual smoothing: price at a convex combination of the
    // incumbent best-bound duals and the (wandering) master duals.
    // Degenerate masters produce violently oscillating duals; smoothing
    // towards the best Lagrangian point is the standard stabilization
    // and collapses the oscillation without affecting correctness —
    // any vertex is a valid column, and mispricing falls back to the
    // exact master duals below.
    const SMOOTH_ALPHA: f64 = 0.7;
    let mut stab_pi: Option<Vec<f64>> = None;
    let mut best_bound = f64::NEG_INFINITY;
    loop {
        // --- Restricted master (RDW) ---
        if debug {
            eprintln!(
                "[cg] iter {} solving master with {} columns",
                diag.iterations + 1,
                pool.len()
            );
        }
        // Validate the master solution: with near-singular bases
        // (near-parallel columns are unavoidable in column generation)
        // the simplex can fail outright or report an "optimal" point
        // with large negative λ or violated coupling rows. Any such
        // iterate is useless for duals and reconstruction alike — stop
        // and fall back to the last healthy one.
        let master_started = Instant::now();
        let master_result = if opts.warm_start {
            let lp = match warm_master.as_mut() {
                Some(lp) => lp,
                None => warm_master.insert(build_master(k, &pool)?),
            };
            let r = lp.resolve().map_err(VlpError::from);
            diag.absorb(&lp.last_stats(), true);
            r
        } else {
            solve_master_cold(k, &pool)
        };
        diag.master_time += master_started.elapsed();
        let sol = match master_result {
            Ok(s) => s,
            Err(e) => {
                if debug {
                    eprintln!(
                        "[cg] iter {} master failed ({e:?}); stopping",
                        diag.iterations + 1
                    );
                }
                break;
            }
        };
        let min_lambda = sol.x.iter().cloned().fold(0.0f64, f64::min);
        let coupling_dev = {
            let mut worst = 0.0f64;
            for row in 0..k {
                let sum: f64 = pool
                    .columns
                    .iter()
                    .zip(&sol.x)
                    .map(|(c, &l)| c.z[row] * l.max(0.0))
                    .sum();
                worst = worst.max((sum - 1.0).abs());
            }
            worst
        };
        if coupling_dev > 1e-5 || min_lambda < -1e-6 {
            if debug {
                eprintln!(
                    "[cg] iter {} master unhealthy (coupling dev {coupling_dev:.3e}, min lambda {min_lambda:.3e}); stopping",
                    diag.iterations + 1
                );
            }
            break;
        }
        master_obj = sol.objective;
        let pi = &sol.duals[0..k];
        let mu = &sol.duals[k..2 * k];
        last_lambda = sol.x.clone();
        last_columns = pool.len();
        diag.master_objective_history.push(master_obj);
        diag.iterations += 1;

        // --- Pricing subproblems sub_1 … sub_K (parallel) ---
        if debug {
            let min_rc = pool
                .columns
                .iter()
                .map(|c| c.cost - pi.iter().zip(&c.z).map(|(p, z)| p * z).sum::<f64>() - mu[c.l])
                .fold(f64::INFINITY, f64::min);
            eprintln!(
                "[cg] iter {} master obj {master_obj:.6}; min existing rc {min_rc:.3e}; pricing",
                diag.iterations
            );
        }
        // Price at the smoothed duals; if that yields nothing new
        // (mispricing), retry at the exact master duals so termination
        // decisions are always made against a valid certificate.
        //
        // Chaos hook: a scripted failpoint can crash the pricing round
        // outright (a worker-panic stand-in); serving layers are
        // expected to contain the unwind and degrade, never to let it
        // take down the process.
        if vlp_obs::failpoint::should_fail(vlp_obs::failpoint::site::CG_PRICING_PANIC) {
            panic!("chaos: injected column-generation pricing panic");
        }
        let pricing_started = Instant::now();
        let mut min_zeta;
        let mut new_columns;
        let mut lagrangian;
        let mut attempt = 0usize;
        loop {
            let pihat: Vec<f64> = match (&stab_pi, attempt, opts.dual_smoothing) {
                (Some(stab), 0, true) => stab
                    .iter()
                    .zip(pi)
                    .map(|(s, p)| SMOOTH_ALPHA * s + (1.0 - SMOOTH_ALPHA) * p)
                    .collect(),
                _ => pi.to_vec(),
            };
            let priced = price_all(cost, spec, &pihat, threads, pricers.as_mut())?;
            for (_, _, stats) in &priced {
                if let Some(stats) = stats {
                    diag.absorb(stats, false);
                }
            }
            // Lagrangian bound at the pricing point (Theorem 4.4):
            // L(π̂) = Σ_k π̂_k + Σ_l min_{z ∈ Λ_l} (c_l − π̂)·z.
            lagrangian = pihat.iter().sum::<f64>() + priced.iter().map(|(s, _, _)| s).sum::<f64>();
            min_zeta = f64::INFINITY;
            new_columns = Vec::new();
            for (l, (sub_obj, z, _)) in priced.into_iter().enumerate() {
                // ζ_l: reduced cost of the found vertex against the
                // *master* duals — the quantity Proposition 4.3 tests.
                let zeta_master: f64 = column_cost(cost, l, &z)
                    - pi.iter().zip(&z).map(|(p, v)| p * v).sum::<f64>()
                    - mu[l];
                let zeta_hat = sub_obj - mu[l];
                let zeta = zeta_master.min(zeta_hat);
                if zeta < min_zeta {
                    min_zeta = zeta;
                }
                if zeta_master < opts.xi.min(-1e-9) && !pool.is_duplicate(l, &z) {
                    let c = column_cost(cost, l, &z);
                    new_columns.push(Column { l, z, cost: c });
                }
            }
            if lagrangian > best_bound {
                best_bound = lagrangian;
                stab_pi = Some(pihat);
            }
            let mispriced = new_columns.is_empty() && stab_pi.is_some() && attempt == 0;
            if !mispriced {
                break;
            }
            attempt += 1;
        }
        diag.pricing_time += pricing_started.elapsed();
        diag.min_zeta_history.push(min_zeta);
        diag.dual_bound_history.push(best_bound);

        if master_obj < best_obj - 1e-10 * best_obj.abs().max(1.0) {
            best_obj = master_obj;
            stalled = 0;
        } else {
            stalled += 1;
        }
        if debug {
            eprintln!(
                "[cg] iter {}: min_zeta {min_zeta:.3e}, {} new columns, stalled {stalled}",
                diag.iterations,
                new_columns.len()
            );
        }
        // Converged when: the Lagrangian gap closes, pricing certifies
        // ζ ≥ ξ, no improving column remains, the run stalls, or the
        // iteration budget runs out.
        let gap_closed =
            master_obj - best_bound <= opts.gap_tol.max(1e-12) * master_obj.abs().max(1e-9);
        if gap_closed
            || min_zeta >= opts.xi
            || new_columns.is_empty()
            || stalled >= STALL_LIMIT
            || diag.iterations >= opts.max_iterations
        {
            break;
        }
        diag.columns_added += new_columns.len();
        if let Some(lp) = warm_master.as_mut() {
            // Dual-feasible warm start: append the new columns to the
            // live master; the old basis stays primal-feasible and the
            // next resolve only has to price them in.
            let specs: Vec<ColumnSpec> = new_columns
                .iter()
                .map(|col| master_column_spec(k, col))
                .collect();
            lp.add_columns(&specs)?;
        }
        for col in new_columns {
            pool.push(col);
        }
    }
    diag.wall_time = start.elapsed();
    diag.threads = threads;
    diag.flush();

    // Reconstruct Z from the last master solution:
    // z_{i,l} = Σ_t λ_{l,t} ẑ^t_{i,l}.
    let mut z = vec![0.0; k * k];
    for (col, &lambda) in pool.columns[..last_columns].iter().zip(&last_lambda) {
        if lambda <= 0.0 {
            continue;
        }
        for i in 0..k {
            z[i * k + col.l] += lambda * col.z[i];
        }
    }
    let mech = Mechanism::from_matrix(k, z, 1e-4).ok_or(VlpError::MalformedSolution)?;
    Ok((mech, master_obj, diag))
}

/// All-pairs shortest-path distances over the privacy-constraint graph,
/// stored target-major: `out[j*k + i] = D(i, j)`, the tightest chained
/// Geo-I exponent between intervals `i` and `j` (`∞` when no chain
/// connects them). A constraint `z_a ≤ e^{ε·d} z_b` contributes the
/// edge `b → a` with weight `d`; `D(·, j)` is one reverse Dijkstra per
/// target `j`. Targets are independent, so they fan out across
/// `threads` workers (each with its own distance/heap scratch); the
/// per-target float operations are identical for any thread count.
fn chain_distances(k: usize, spec: &PrivacySpec, threads: usize) -> Vec<f64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    // Reverse adjacency: paths *towards* each target.
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); k];
    for c in &spec.constraints {
        adj[c.i].push((c.l, c.dist));
    }
    let adj = &adj;
    let mut out = vec![f64::INFINITY; k * k];
    let chunk = k.div_ceil(threads.max(1));
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, slice) in out.chunks_mut(chunk * k).enumerate() {
            let lo = t * chunk;
            handles.push(scope.spawn(move || {
                let mut dist = vec![f64::INFINITY; k];
                let mut heap = BinaryHeap::new();
                for (off, row) in slice.chunks_mut(k).enumerate() {
                    let j = lo + off;
                    dist.iter_mut().for_each(|d| *d = f64::INFINITY);
                    dist[j] = 0.0;
                    heap.push(Reverse((OrderedF64(0.0), j)));
                    while let Some(Reverse((OrderedF64(d), v))) = heap.pop() {
                        if d > dist[v] + 1e-15 {
                            continue;
                        }
                        for &(w, len) in &adj[v] {
                            let nd = d + len;
                            if nd < dist[w] - 1e-15 {
                                dist[w] = nd;
                                heap.push(Reverse((OrderedF64(nd), w)));
                            }
                        }
                    }
                    row.copy_from_slice(&dist);
                }
            }));
        }
        for h in handles {
            h.join().expect("chain-distance thread panicked");
        }
    });
    out
}

/// Builds the `betas.len() × k` decay-column candidates
/// `z_i = e^{−β·D(i, l)}` (slot `b*k + l`), each with its objective
/// cost, fanning the pure per-candidate computation across `threads`.
fn seed_candidates(
    cost: &CostMatrix,
    k: usize,
    chain: &[f64],
    betas: &[f64],
    threads: usize,
) -> Vec<(Vec<f64>, f64)> {
    let n = betas.len() * k;
    let mut out: Vec<Option<(Vec<f64>, f64)>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads.max(1));
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, slice) in out.chunks_mut(chunk).enumerate() {
            let lo = t * chunk;
            handles.push(scope.spawn(move || {
                for (off, slot) in slice.iter_mut().enumerate() {
                    let idx = lo + off;
                    let beta = betas[idx / k];
                    let l = idx % k;
                    let z: Vec<f64> = (0..k)
                        .map(|i| {
                            let d = chain[l * k + i];
                            if d.is_finite() {
                                (-beta * d).exp().max(FLOOR)
                            } else {
                                FLOOR
                            }
                        })
                        .collect();
                    let c = column_cost(cost, l, &z);
                    *slot = Some((z, c));
                }
            }));
        }
        for h in handles {
            h.join().expect("seed-candidate thread panicked");
        }
    });
    out.into_iter()
        .map(|s| s.expect("every candidate built"))
        .collect()
}

/// Total-order wrapper for non-NaN floats in the Dijkstra heap.
#[derive(PartialEq, PartialOrd)]
struct OrderedF64(f64);
impl Eq for OrderedF64 {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Objective coefficient of a column: `Σ_i c_{i,l} ẑ_i`.
fn column_cost(cost: &CostMatrix, l: usize, z: &[f64]) -> f64 {
    z.iter().enumerate().map(|(i, &v)| cost.get(i, l) * v).sum()
}

/// The master-row footprint of one column: its `k` coupling entries
/// plus the convexity entry of its block.
fn master_column_spec(k: usize, col: &Column) -> ColumnSpec {
    let mut entries: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
    for (row, &v) in col.z.iter().enumerate() {
        if v.abs() > 1e-15 {
            entries.push((row, v));
        }
    }
    entries.push((k + col.l, 1.0));
    ColumnSpec {
        cost: col.cost,
        entries,
    }
}

/// Master constraint rows, built in one pass over the column pool:
/// coupling rows `Σ λ_t ẑ^t_{row} = 1` from the columns themselves and
/// convexity rows `Σ_{t ∈ block l} λ_t = 1` straight from the per-block
/// index.
fn master_rows(k: usize, pool: &ColumnPool) -> Vec<Vec<(usize, f64)>> {
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 2 * k];
    for (t, c) in pool.columns.iter().enumerate() {
        for (row, &v) in c.z.iter().enumerate() {
            if v.abs() > 1e-15 {
                rows[row].push((t, v));
            }
        }
    }
    for (l, members) in pool.by_block.iter().enumerate() {
        rows[k + l] = members.iter().map(|&t| (t, 1.0)).collect();
    }
    rows
}

/// Builds the warm-startable restricted master over the current pool.
fn build_master(k: usize, pool: &ColumnPool) -> Result<IncrementalLp, VlpError> {
    let mut lp = IncrementalLp::new(pool.len());
    let obj: Vec<(usize, f64)> = pool
        .columns
        .iter()
        .enumerate()
        .map(|(t, c)| (t, c.cost))
        .collect();
    lp.set_objective(&obj)?;
    for row in master_rows(k, pool) {
        lp.add_constraint(&row, Relation::Eq, 1.0)?;
    }
    Ok(lp)
}

/// Solves the restricted master from scratch (`warm_start: false`
/// baseline) and returns its LP solution: variables λ in column order,
/// duals `[π (K rows); μ (K rows)]`.
fn solve_master_cold(k: usize, pool: &ColumnPool) -> Result<lpsolve::Solution, VlpError> {
    let mut lp = LinearProgram::new(pool.len());
    let obj: Vec<(usize, f64)> = pool
        .columns
        .iter()
        .enumerate()
        .map(|(t, c)| (t, c.cost))
        .collect();
    lp.set_objective(&obj)?;
    for row in master_rows(k, pool) {
        lp.add_constraint(&row, Relation::Eq, 1.0)?;
    }
    Ok(lp.solve()?)
}

/// A priced block: the subproblem's optimal value, its arg-min, and —
/// on the warm path — the resolve statistics.
type PricedBlock = (f64, Vec<f64>, Option<ResolveStats>);

/// Number of worker threads the pricing fan-out will use for a
/// `K`-block instance.
fn pricing_threads(k: usize, parallel: bool) -> usize {
    if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(k.max(1))
    } else {
        1
    }
}

/// Persistent pricing solvers, one per block. Every block shares the
/// same constraint matrix (only the objective `c_l − π` differs), so a
/// single never-solved template is assembled once and cloned into a
/// block's slot on first use; thereafter the block's solver re-prices
/// its own previous optimal basis each round. Block `l` always lives in
/// slot `l`, so results are independent of how blocks are distributed
/// over threads.
struct BlockPricers {
    template: IncrementalLp,
    slots: Vec<Option<IncrementalLp>>,
}

impl BlockPricers {
    fn build(k: usize, spec: &PrivacySpec) -> Result<Self, VlpError> {
        let mut template = IncrementalLp::new(k);
        for c in &spec.constraints {
            // z_i − α z_k ≤ 0 with z = y + FLOOR:
            // y_i − α y_k ≤ (α − 1)·FLOOR.
            let bound = spec.bound(c);
            template.add_constraint(
                &[(c.i, 1.0), (c.l, -bound)],
                Relation::Le,
                (bound - 1.0) * FLOOR,
            )?;
        }
        // Box bound making the region a polytope (valid: probabilities
        // ≤ 1).
        for i in 0..k {
            template.add_constraint(&[(i, 1.0)], Relation::Le, 1.0 - FLOOR)?;
        }
        Ok(Self {
            template,
            slots: (0..k).map(|_| None).collect(),
        })
    }
}

/// Solves all `K` pricing subproblems, returning per block the optimal
/// value of `min (c_l − π)·z over Λ_l` and its arg-min. With `pricers`
/// the persistent warm solvers are used (and updated); without, each
/// block is a fresh cold [`LinearProgram`].
fn price_all(
    cost: &CostMatrix,
    spec: &PrivacySpec,
    pi: &[f64],
    threads: usize,
    pricers: Option<&mut BlockPricers>,
) -> Result<Vec<PricedBlock>, VlpError> {
    let k = cost.len();
    match pricers {
        Some(pricers) => {
            let template = &pricers.template;
            if threads <= 1 {
                return pricers
                    .slots
                    .iter_mut()
                    .enumerate()
                    .map(|(l, slot)| price_one_warm(cost, pi, l, slot, template))
                    .collect();
            }
            let mut results: Vec<Option<Result<PricedBlock, VlpError>>> =
                (0..k).map(|_| None).collect();
            let chunk = k.div_ceil(threads);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (t, (out, slots)) in results
                    .chunks_mut(chunk)
                    .zip(pricers.slots.chunks_mut(chunk))
                    .enumerate()
                {
                    let lo = t * chunk;
                    handles.push(scope.spawn(move || {
                        for (off, (res, slot)) in out.iter_mut().zip(slots.iter_mut()).enumerate() {
                            *res = Some(price_one_warm(cost, pi, lo + off, slot, template));
                        }
                    }));
                }
                for h in handles {
                    h.join().expect("pricing thread panicked");
                }
            });
            results
                .into_iter()
                .map(|r| r.expect("every block priced"))
                .collect()
        }
        None => {
            if threads <= 1 {
                return (0..k).map(|l| price_one(cost, spec, pi, l)).collect();
            }
            let mut results: Vec<Option<Result<PricedBlock, VlpError>>> =
                (0..k).map(|_| None).collect();
            let chunk = k.div_ceil(threads);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (t, slice) in results.chunks_mut(chunk).enumerate() {
                    let lo = t * chunk;
                    handles.push(scope.spawn(move || {
                        for (off, slot) in slice.iter_mut().enumerate() {
                            *slot = Some(price_one(cost, spec, pi, lo + off));
                        }
                    }));
                }
                for h in handles {
                    h.join().expect("pricing thread panicked");
                }
            });
            results
                .into_iter()
                .map(|r| r.expect("every block priced"))
                .collect()
        }
    }
}

/// Numerical floor applied to subproblem variables: pricing searches
/// the truncated polytope `Λ_l ∩ {z ≥ FLOOR}` instead of `Λ_l`.
///
/// Without the floor, extreme points of `Λ_l` carry entries as small as
/// `e^{−ε·diameter}` (the chained Geo-I decay across the whole map,
/// easily `1e−16`), and the master program built from such columns is
/// catastrophically ill-conditioned — its duals explode and column
/// generation diverges. Flooring keeps every column entry in
/// `[FLOOR, 1]`, bounding the master's condition number, at an
/// optimality cost of at most `K · max(c) · FLOOR` (≈ 1e−4 km at the
/// scales used here). The truncated polytope is a subset of `Λ_l`, so
/// the returned mechanism still satisfies Geo-I exactly.
///
/// The floor also matters for warm starts: with every right-hand side
/// strictly positive, the slack basis is primal-feasible and
/// non-degenerate, so pricing subproblems never need artificial
/// variables — objective swaps can always reuse the previous basis.
const FLOOR: f64 = 1e-6;

/// Solves one pricing subproblem `sub_l` cold:
/// `min (c_l − π)·z` over `Λ_l ∩ {z ≥ FLOOR}` (see [`FLOOR`]).
///
/// Internally substitutes `y = z − FLOOR ≥ 0`, which turns every
/// right-hand side strictly positive — the subproblem needs no
/// phase 1 and its starting basis is non-degenerate.
fn price_one(
    cost: &CostMatrix,
    spec: &PrivacySpec,
    pi: &[f64],
    l: usize,
) -> Result<PricedBlock, VlpError> {
    let k = cost.len();
    let mut lp = LinearProgram::new(k);
    let w: Vec<f64> = (0..k).map(|i| cost.get(i, l) - pi[i]).collect();
    let obj: Vec<(usize, f64)> = w.iter().copied().enumerate().collect();
    lp.set_objective(&obj)?;
    for c in &spec.constraints {
        // z_i − α z_k ≤ 0 with z = y + FLOOR:
        // y_i − α y_k ≤ (α − 1)·FLOOR.
        let bound = spec.bound(c);
        lp.add_constraint(
            &[(c.i, 1.0), (c.l, -bound)],
            Relation::Le,
            (bound - 1.0) * FLOOR,
        )?;
    }
    // Box bound making the region a polytope (valid: probabilities ≤ 1).
    for i in 0..k {
        lp.add_constraint(&[(i, 1.0)], Relation::Le, 1.0 - FLOOR)?;
    }
    let sol = lp.solve()?;
    let z: Vec<f64> = sol.x.iter().map(|y| y + FLOOR).collect();
    let shift: f64 = w.iter().sum::<f64>() * FLOOR;
    Ok((sol.objective + shift, z, None))
}

/// Solves one pricing subproblem against the block's persistent solver
/// (cloned from `template` on first use): swap the objective in, then
/// re-price from the previous optimal basis.
fn price_one_warm(
    cost: &CostMatrix,
    pi: &[f64],
    l: usize,
    slot: &mut Option<IncrementalLp>,
    template: &IncrementalLp,
) -> Result<PricedBlock, VlpError> {
    let k = cost.len();
    let solver = slot.get_or_insert_with(|| template.clone());
    let w: Vec<f64> = (0..k).map(|i| cost.get(i, l) - pi[i]).collect();
    let obj: Vec<(usize, f64)> = w.iter().copied().enumerate().collect();
    solver.set_objective(&obj)?;
    let sol = solver.resolve()?;
    let z: Vec<f64> = sol.x.iter().map(|y| y + FLOOR).collect();
    let shift: f64 = w.iter().sum::<f64>() * FLOOR;
    Ok((sol.objective + shift, z, Some(solver.last_stats())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auxiliary::AuxiliaryGraph;
    use crate::constraint_reduction::reduced_spec;
    use crate::cost::{IntervalDistances, Prior};
    use crate::discretize::Discretization;
    use crate::dvlp::solve_direct;
    use roadnet::{generators, NodeDistances};

    fn instance(delta: f64) -> (AuxiliaryGraph, CostMatrix) {
        let g = generators::grid(2, 2, 0.5, true);
        let nd = NodeDistances::all_pairs(&g);
        let disc = Discretization::new(&g, delta);
        let aux = AuxiliaryGraph::build(&g, &disc);
        let id = IntervalDistances::build(&g, &nd, &disc);
        let k = disc.len();
        let cost = CostMatrix::build(&id, &Prior::uniform(k), &Prior::uniform(k));
        (aux, cost)
    }

    #[test]
    fn cg_matches_direct_lp() {
        let (aux, cost) = instance(0.5);
        let spec = reduced_spec(&aux, 2.0, f64::INFINITY);
        let (_, direct_obj) = solve_direct(&cost, &spec).unwrap();
        let opts = CgOptions {
            xi: -1e-9,
            max_iterations: 200,
            parallel: false,
            gap_tol: 1e-9,
            ..CgOptions::default()
        };
        let (mech, cg_obj, diag) = solve_column_generation(&cost, &spec, &opts).unwrap();
        assert!(
            (cg_obj - direct_obj).abs() < 1e-5,
            "cg {cg_obj} vs direct {direct_obj} after {} iters",
            diag.iterations
        );
        assert!(mech.is_row_stochastic(1e-6));
        assert!(mech.max_violation(&spec) <= 1e-6);
    }

    #[test]
    fn cg_parallel_matches_serial() {
        let (aux, cost) = instance(0.5);
        let spec = reduced_spec(&aux, 1.5, f64::INFINITY);
        let serial = CgOptions {
            parallel: false,
            ..CgOptions::default()
        };
        let par = CgOptions {
            parallel: true,
            ..CgOptions::default()
        };
        let (_, o1, _) = solve_column_generation(&cost, &spec, &serial).unwrap();
        let (_, o2, _) = solve_column_generation(&cost, &spec, &par).unwrap();
        assert!((o1 - o2).abs() < 1e-6);
    }

    #[test]
    fn cg_warm_matches_cold() {
        // The warm engine must not change what CG computes, only how
        // fast: identical mechanisms (bit-for-bit) and objective, with
        // the warm run actually reusing bases.
        let (aux, cost) = instance(0.5);
        let spec = reduced_spec(&aux, 2.0, f64::INFINITY);
        let cold = CgOptions {
            warm_start: false,
            parallel: false,
            ..CgOptions::default()
        };
        let warm = CgOptions {
            warm_start: true,
            parallel: false,
            ..CgOptions::default()
        };
        let (m1, o1, d1) = solve_column_generation(&cost, &spec, &cold).unwrap();
        let (m2, o2, d2) = solve_column_generation(&cost, &spec, &warm).unwrap();
        assert!(
            (o1 - o2).abs() <= 1e-9 * o1.abs().max(1.0),
            "cold {o1} vs warm {o2}"
        );
        assert_eq!(d1.iterations, d2.iterations);
        let k = m1.len();
        for i in 0..k {
            for l in 0..k {
                assert_eq!(
                    m1.prob(i, l).to_bits(),
                    m2.prob(i, l).to_bits(),
                    "mechanism entry ({i},{l}) differs between warm and cold"
                );
            }
        }
        // The cold run never touches the warm engine; the warm run
        // reuses bases from iteration 2 onwards.
        assert_eq!(d1.lp_warm_resolves + d1.lp_cold_solves, 0);
        if d2.iterations > 1 {
            assert!(d2.lp_warm_resolves > 0, "warm run never warm-started");
        }
        assert!(d2.lp_cold_solves > 0);
    }

    #[test]
    fn warm_parallel_matches_warm_serial() {
        // Persistent solvers are pinned to their block slot, so thread
        // count must not change anything — including pivot counts.
        let (aux, cost) = instance(0.5);
        let spec = reduced_spec(&aux, 1.5, f64::INFINITY);
        let serial = CgOptions {
            parallel: false,
            ..CgOptions::default()
        };
        let par = CgOptions {
            parallel: true,
            ..CgOptions::default()
        };
        let (m1, o1, d1) = solve_column_generation(&cost, &spec, &serial).unwrap();
        let (m2, o2, d2) = solve_column_generation(&cost, &spec, &par).unwrap();
        assert_eq!(o1.to_bits(), o2.to_bits());
        assert_eq!(d1.pricing_pivots, d2.pricing_pivots);
        assert_eq!(d1.master_pivots, d2.master_pivots);
        let k = m1.len();
        for i in 0..k {
            for l in 0..k {
                assert_eq!(m1.prob(i, l).to_bits(), m2.prob(i, l).to_bits());
            }
        }
    }

    #[test]
    fn dual_bound_stays_below_objective() {
        let (aux, cost) = instance(0.5);
        let spec = reduced_spec(&aux, 2.0, f64::INFINITY);
        let opts = CgOptions {
            xi: -1e-9,
            max_iterations: 100,
            parallel: false,
            gap_tol: 1e-9,
            ..CgOptions::default()
        };
        let (_, obj, diag) = solve_column_generation(&cost, &spec, &opts).unwrap();
        for &lb in &diag.dual_bound_history {
            assert!(lb <= obj + 1e-6, "dual bound {lb} exceeds optimum {obj}");
        }
        // At convergence the bound is tight-ish.
        assert!(diag.best_dual_bound() <= obj + 1e-6);
    }

    #[test]
    fn looser_xi_terminates_earlier() {
        let (aux, cost) = instance(0.25);
        let spec = reduced_spec(&aux, 3.0, f64::INFINITY);
        let tight = CgOptions {
            xi: -1e-9,
            max_iterations: 300,
            parallel: false,
            gap_tol: 1e-9,
            ..CgOptions::default()
        };
        let loose = CgOptions {
            xi: -0.5,
            max_iterations: 300,
            parallel: false,
            gap_tol: 1e-9,
            ..CgOptions::default()
        };
        let (_, obj_t, diag_t) = solve_column_generation(&cost, &spec, &tight).unwrap();
        let (_, obj_l, diag_l) = solve_column_generation(&cost, &spec, &loose).unwrap();
        assert!(diag_l.iterations <= diag_t.iterations);
        // Looser threshold can only be worse (higher loss), within noise.
        assert!(obj_l >= obj_t - 1e-7);
    }

    #[test]
    fn min_zeta_is_monotone_toward_zero_at_end() {
        let (aux, cost) = instance(0.5);
        let spec = reduced_spec(&aux, 2.0, f64::INFINITY);
        let opts = CgOptions {
            xi: -1e-9,
            max_iterations: 200,
            parallel: false,
            gap_tol: 1e-9,
            ..CgOptions::default()
        };
        let (_, _, diag) = solve_column_generation(&cost, &spec, &opts).unwrap();
        let last = *diag.min_zeta_history.last().unwrap();
        assert!(last >= -1e-6, "converged min zeta should be ~0, got {last}");
        // All zetas are non-positive (they price against an optimal
        // master).
        for &z in &diag.min_zeta_history {
            assert!(z <= 1e-7);
        }
    }

    #[test]
    fn diagnostics_populate_time_split_and_telemetry() {
        let (aux, cost) = instance(0.5);
        let spec = reduced_spec(&aux, 2.0, f64::INFINITY);
        let opts = CgOptions {
            parallel: true,
            ..CgOptions::default()
        };
        let reg = vlp_obs::global();
        let solves_before = reg.counter(metrics::SOLVES);
        let objective_samples_before = reg.series(metrics::MASTER_OBJECTIVE).len();
        let (_, _, diag) = solve_column_generation(&cost, &spec, &opts).unwrap();
        // The pricing/master wall-time split is populated and sane.
        assert!(diag.master_time > Duration::ZERO, "master time not tracked");
        assert!(
            diag.pricing_time > Duration::ZERO,
            "pricing time not tracked"
        );
        assert!(diag.master_time + diag.pricing_time <= diag.wall_time);
        assert!(diag.threads >= 1);
        // Warm-engine accounting is live (default options warm-start).
        assert!(diag.lp_cold_solves > 0);
        assert!(diag.warm_hit_rate() >= 0.0 && diag.warm_hit_rate() <= 1.0);
        // The run is mirrored into the global registry. Other tests in
        // this binary flush concurrently, so assert lower bounds only.
        assert!(reg.counter(metrics::SOLVES) > solves_before);
        assert!(
            reg.series(metrics::MASTER_OBJECTIVE).len()
                >= objective_samples_before + diag.master_objective_history.len()
        );
        assert!(reg.timer(metrics::PRICING_TIME).is_some());
        assert!(reg.timer(metrics::MASTER_TIME).is_some());
    }

    #[test]
    fn single_interval_instance() {
        let cost = CostMatrix::from_dense(1, vec![0.0]);
        let spec = PrivacySpec {
            epsilon: 1.0,
            radius: 1.0,
            constraints: vec![],
        };
        let (mech, obj, _) = solve_column_generation(&cost, &spec, &CgOptions::default()).unwrap();
        assert_eq!(mech.len(), 1);
        assert!((mech.prob(0, 0) - 1.0).abs() < 1e-9);
        assert!(obj.abs() < 1e-9);
    }
}
