//! Convenience bundle: a fully prepared VLP problem instance.

use roadnet::{NodeDistances, RoadGraph};

use crate::auxiliary::AuxiliaryGraph;
use crate::column_generation::{solve_column_generation, CgDiagnostics, CgOptions};
use crate::constraint_reduction::reduced_spec;
use crate::cost::{CostMatrix, IntervalDistances, Prior};
use crate::discretize::Discretization;
use crate::error::VlpError;
use crate::mechanism::Mechanism;
use crate::privacy::PrivacySpec;

/// Everything needed to pose and solve D-VLP on one map: the graph and
/// its distances, the discretization and auxiliary graph, the priors,
/// and the cost matrix.
///
/// # Example
///
/// ```
/// use roadnet::generators;
/// use vlp_core::{CgOptions, VlpInstance};
///
/// let graph = generators::grid(2, 2, 0.5, true);
/// let inst = VlpInstance::uniform(graph, 0.5);
/// let solved = inst.solve(2.0, f64::INFINITY, &CgOptions::default())?;
/// assert!(solved.mechanism.is_row_stochastic(1e-6));
/// # Ok::<(), vlp_core::VlpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VlpInstance {
    /// The road network.
    pub graph: RoadGraph,
    /// All-pairs connection distances on [`Self::graph`].
    pub node_dists: NodeDistances,
    /// The δ-interval partition.
    pub disc: Discretization,
    /// The auxiliary interval graph and its distances.
    pub aux: AuxiliaryGraph,
    /// Travel distances between interval representatives.
    pub interval_dists: IntervalDistances,
    /// Worker location prior `f_P` over intervals.
    pub f_p: Prior,
    /// Task location prior `f_Q` over intervals.
    pub f_q: Prior,
    /// The D-VLP cost matrix built from the above.
    pub cost: CostMatrix,
}

/// A solved instance: the mechanism plus solve metadata.
#[derive(Debug, Clone)]
pub struct SolvedVlp {
    /// The optimized obfuscation mechanism.
    pub mechanism: Mechanism,
    /// The achieved quality loss (ETDD).
    pub quality_loss: f64,
    /// The `(ε, r)`-Geo-I spec that was enforced (constraint-reduced).
    pub spec: PrivacySpec,
    /// Column-generation diagnostics.
    pub diagnostics: CgDiagnostics,
}

impl VlpInstance {
    /// Builds an instance with the given priors.
    ///
    /// # Panics
    ///
    /// Panics if the priors' dimension differs from the number of
    /// intervals produced by discretizing at `delta`.
    pub fn new(graph: RoadGraph, delta: f64, f_p: Prior, f_q: Prior) -> Self {
        let node_dists = NodeDistances::all_pairs(&graph);
        let disc = Discretization::new(&graph, delta);
        assert_eq!(f_p.len(), disc.len(), "f_P dimension mismatch");
        assert_eq!(f_q.len(), disc.len(), "f_Q dimension mismatch");
        let aux = AuxiliaryGraph::build(&graph, &disc);
        let interval_dists = IntervalDistances::build(&graph, &node_dists, &disc);
        let cost = CostMatrix::build(&interval_dists, &f_p, &f_q);
        Self {
            graph,
            node_dists,
            disc,
            aux,
            interval_dists,
            f_p,
            f_q,
            cost,
        }
    }

    /// Builds an instance with uniform worker and task priors.
    pub fn uniform(graph: RoadGraph, delta: f64) -> Self {
        let disc = Discretization::new(&graph, delta);
        let k = disc.len();
        Self::new(graph, delta, Prior::uniform(k), Prior::uniform(k))
    }

    /// Number of intervals `K`.
    pub fn len(&self) -> usize {
        self.disc.len()
    }

    /// Whether the instance has no intervals.
    pub fn is_empty(&self) -> bool {
        self.disc.is_empty()
    }

    /// Solves D-VLP at `(epsilon, radius)`-Geo-I via constraint
    /// reduction followed by column generation.
    ///
    /// # Errors
    ///
    /// Propagates solver failures as [`VlpError`].
    pub fn solve(
        &self,
        epsilon: f64,
        radius: f64,
        opts: &CgOptions,
    ) -> Result<SolvedVlp, VlpError> {
        let spec = reduced_spec(&self.aux, epsilon, radius);
        let (mechanism, quality_loss, diagnostics) =
            solve_column_generation(&self.cost, &spec, opts)?;
        Ok(SolvedVlp {
            mechanism,
            quality_loss,
            spec,
            diagnostics,
        })
    }

    /// The closed-form fallback mechanism for this instance at budget
    /// `epsilon`: the graph-Laplace construction
    /// ([`crate::baseline::graph_laplace`]), which satisfies
    /// `(ε, r)`-Geo-I for every radius without an LP solve. Serving
    /// layers return it when [`Self::solve`] cannot finish within a
    /// deadline — quality is sacrificed, ε never is.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not positive.
    pub fn fallback(&self, epsilon: f64) -> Mechanism {
        crate::baseline::graph_laplace(&self.aux, epsilon)
    }

    /// Replaces the worker prior `f_P` and rebuilds the cost matrix.
    /// The graph, discretization, and distances are untouched, so this
    /// is the cheap path for prior-drift refreshes.
    ///
    /// # Panics
    ///
    /// Panics if the prior's dimension differs from the interval
    /// count.
    pub fn set_worker_prior(&mut self, f_p: Prior) {
        assert_eq!(f_p.len(), self.disc.len(), "f_P dimension mismatch");
        self.f_p = f_p;
        self.cost = CostMatrix::build(&self.interval_dists, &self.f_p, &self.f_q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators;

    #[test]
    fn uniform_instance_solves() {
        let g = generators::grid(2, 2, 0.5, true);
        let inst = VlpInstance::uniform(g, 0.5);
        let solved = inst
            .solve(2.0, f64::INFINITY, &CgOptions::default())
            .unwrap();
        assert!(solved.quality_loss >= 0.0);
        assert!(solved.mechanism.max_violation(&solved.spec) <= 1e-6);
        assert!(solved.diagnostics.iterations >= 1);
    }

    #[test]
    #[should_panic(expected = "f_P dimension mismatch")]
    fn rejects_misdimensioned_priors() {
        let g = generators::grid(2, 2, 0.5, true);
        VlpInstance::new(g, 0.5, Prior::uniform(3), Prior::uniform(3));
    }
}
