//! Closed-form lower bounds on the achievable quality loss.
//!
//! Two bounds are provided:
//!
//! * [`tradeoff_lower_bound`] — the privacy/QoS trade-off bound of
//!   Proposition 4.5: for every Geo-I-feasible mechanism,
//!   `ETDD ≥ max_l min_j κ_{l,j}(ε)` with
//!   `κ_{l,j}(ε) = Σ_i c_{i,j} e^{-ε·d_min(u_i, u_l)}`.
//!
//!   *Deviation note.* The paper's statement takes `max_j κ_{l,j}`,
//!   but the derivation in its own proof needs the convex-combination
//!   step `Σ_j κ_{l,j} z_{l,j} ≥ min_j κ_{l,j}` (row `l` of `Z` sums to
//!   one), so the mathematically valid bound uses `min_j`; we implement
//!   that version and flag the discrepancy here and in EXPERIMENTS.md.
//!
//! * the iterative dual bound of Theorem 4.4, produced by column
//!   generation itself and exposed through
//!   [`crate::column_generation::CgDiagnostics::best_dual_bound`].

use crate::auxiliary::AuxiliaryGraph;
use crate::cost::CostMatrix;

/// The Proposition 4.5 trade-off lower bound on ETDD at privacy level
/// `epsilon`.
///
/// Monotonically non-increasing in `epsilon`: stronger privacy (smaller
/// `ε`) forces a higher floor on the quality loss.
///
/// # Panics
///
/// Panics if the cost matrix and auxiliary graph disagree on `K` or if
/// `epsilon` is not positive.
pub fn tradeoff_lower_bound(cost: &CostMatrix, aux: &AuxiliaryGraph, epsilon: f64) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert_eq!(cost.len(), aux.len(), "cost/auxiliary dimension mismatch");
    let k = cost.len();
    let mut best = 0.0f64;
    for l in 0..k {
        // κ_{l,j} = Σ_i c_{i,j} e^{-ε d_min(i,l)}; bound_l = min_j κ_{l,j}.
        let mut min_kappa = f64::INFINITY;
        // Precompute the attenuation once per l.
        let atten: Vec<f64> = (0..k)
            .map(|i| (-epsilon * aux.distance_min(i, l)).exp())
            .collect();
        for j in 0..k {
            let kappa: f64 = (0..k).map(|i| cost.get(i, j) * atten[i]).sum();
            if kappa < min_kappa {
                min_kappa = kappa;
            }
        }
        if min_kappa > best {
            best = min_kappa;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint_reduction::reduced_spec;
    use crate::cost::{IntervalDistances, Prior};
    use crate::discretize::Discretization;
    use crate::dvlp::solve_direct;
    use roadnet::{generators, NodeDistances};

    fn instance() -> (AuxiliaryGraph, CostMatrix) {
        let g = generators::grid(2, 2, 0.5, true);
        let nd = NodeDistances::all_pairs(&g);
        let disc = Discretization::new(&g, 0.5);
        let aux = AuxiliaryGraph::build(&g, &disc);
        let id = IntervalDistances::build(&g, &nd, &disc);
        let k = disc.len();
        let cost = CostMatrix::build(&id, &Prior::uniform(k), &Prior::uniform(k));
        (aux, cost)
    }

    #[test]
    fn bound_is_below_optimum() {
        let (aux, cost) = instance();
        for eps in [0.5, 1.0, 2.0, 5.0] {
            let spec = reduced_spec(&aux, eps, f64::INFINITY);
            let (_, opt) = solve_direct(&cost, &spec).unwrap();
            let lb = tradeoff_lower_bound(&cost, &aux, eps);
            assert!(
                lb <= opt + 1e-7,
                "eps {eps}: bound {lb} above optimum {opt}"
            );
            assert!(lb >= 0.0);
        }
    }

    #[test]
    fn bound_decreases_with_epsilon() {
        let (aux, cost) = instance();
        let mut prev = f64::INFINITY;
        for eps in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let lb = tradeoff_lower_bound(&cost, &aux, eps);
            assert!(lb <= prev + 1e-12, "bound must fall as eps grows");
            prev = lb;
        }
    }

    #[test]
    fn bound_is_positive_for_strong_privacy() {
        let (aux, cost) = instance();
        assert!(tradeoff_lower_bound(&cost, &aux, 0.2) > 0.0);
    }
}
