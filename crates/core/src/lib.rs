//! Vehicle-based spatial-crowdsourcing location privacy (VLP) via
//! geo-indistinguishability over road networks.
//!
//! This crate implements the primary contribution of *"Location Privacy
//! Protection in Vehicle-Based Spatial Crowdsourcing via
//! Geo-Indistinguishability"* (Qiu et al., ICDCS 2019 / TMC 2020): an
//! optimization pipeline that computes, for a vehicle constrained to a
//! road network, the location-obfuscation distribution that minimizes
//! the expected traveling-distance distortion (quality loss) while
//! satisfying `(ε, r)`-geo-indistinguishability measured by *road*
//! distance.
//!
//! # Pipeline
//!
//! 1. [`Discretization`] partitions every road segment into δ-length
//!    intervals (§4.1) and [`AuxiliaryGraph`] links adjacent intervals
//!    (Definition 4.1);
//! 2. [`CostMatrix`] assembles the discretized quality-loss
//!    coefficients `c_{i,l}` from the worker prior `f_P` and the task
//!    prior `f_Q` (Eq. 19);
//! 3. [`PrivacySpec`] carries the Geo-I constraints — either the full
//!    `O(K³)`-row set ([`PrivacySpec::full`]) or the loss-free reduced
//!    set of §4.2 ([`constraint_reduction::reduced_spec`]);
//! 4. the LP is solved either directly ([`dvlp::solve_direct`], for
//!    ground truth) or by Dantzig-Wolfe column generation
//!    ([`column_generation::solve_column_generation`], §4.3) with
//!    parallel pricing and the early-stopping threshold `ξ`;
//! 5. the resulting [`Mechanism`] is sampled per report
//!    ([`Mechanism::sample_location`]) and can be serialized for the
//!    worker-download flow of §2.
//!
//! [`VlpInstance`] bundles steps 1–4 behind one call. [`baseline`]
//! provides the 2-D-plane comparison mechanisms of §5 and the
//! closed-form [`baseline::graph_laplace`] fallback served under solve
//! deadlines ([`VlpInstance::fallback`]); [`bounds`] the closed-form
//! quality floors of §4.4. Served mechanisms — optimal or fallback —
//! are audited with [`privacy::verify`].
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use roadnet::generators;
//! use vlp_core::{CgOptions, VlpInstance};
//!
//! let graph = generators::grid(2, 2, 0.5, true);
//! let inst = VlpInstance::uniform(graph, 0.5);
//! let solved = inst.solve(2.0, f64::INFINITY, &CgOptions::default())?;
//!
//! // A worker samples an obfuscated location for a true location.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let p = inst.disc.interval(0).midpoint();
//! let reported = solved
//!     .mechanism
//!     .sample_location(&inst.graph, &inst.disc, p, &mut rng)
//!     .expect("p lies on the map");
//! assert!(inst.disc.locate(&inst.graph, reported).is_some());
//! # Ok::<(), vlp_core::VlpError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod auxiliary;
pub mod baseline;
pub mod bounds;
pub mod column_generation;
pub mod constraint_reduction;
mod cost;
mod discretize;
pub mod dvlp;
mod error;
mod instance;
pub mod local;
mod mechanism;
pub mod privacy;
pub mod tiers;

pub use auxiliary::{aux_road_graph, AuxiliaryGraph};
pub use column_generation::{solve_column_generation, CgDiagnostics, CgOptions};
pub use cost::{CostMatrix, IntervalDistances, Prior};
pub use discretize::{Discretization, Interval};
pub use error::VlpError;
pub use instance::{SolvedVlp, VlpInstance};
pub use local::{LocalShard, LocalSolve, LocalityPlan, Neighborhood};
pub use mechanism::Mechanism;
pub use privacy::{PrivacyConstraint, PrivacySpec};
pub use tiers::{clustered_mechanism, spanner_mechanism, support_d_hat, QualityTier, TierSolve};
