//! Constraint reduction for D-VLP (§4.2, Algorithm 1).
//!
//! The unreduced Geo-I constraint set pairs every two intervals within
//! the protection radius — `O(K²)` pairs, `O(K³)` LP rows. By the
//! transitivity of Geo-I along shortest paths of the auxiliary graph
//! (Theorem 4.2), it suffices to constrain *adjacent* interval pairs
//! lying on a chosen shortest path between each pair: chaining
//! `z_i ≤ e^{εδ} z_{i+1}` along the shorter-direction path of length
//! `d_min(u_i, u_l)` reproduces exactly `z_i ≤ e^{ε·d_min} z_l`, so the
//! reduced program has the same feasible region and the same optimum.
//!
//! Per Property 4.1 both directions of every marked adjacent pair are
//! constrained (each with exponent `ε·δ`), which makes the chained
//! implication available in both directions.

use std::collections::HashSet;

use roadnet::{NodeId, ShortestPathTree, TreeDirection};

use crate::auxiliary::AuxiliaryGraph;
use crate::privacy::{PrivacyConstraint, PrivacySpec};

/// Telemetry metric names recorded by constraint reduction.
pub mod metrics {
    /// Counter: number of `reduced_spec` invocations.
    pub const REDUCTIONS: &str = "cr.reductions";
    /// Series: directed pair count of the *unreduced* spec, `K·(K−1)`,
    /// one sample per reduction (the O(K²) baseline of Theorem 4.2).
    pub const CONSTRAINTS_FULL: &str = "cr.constraints_full";
    /// Series: directed pair count after reduction, one sample per
    /// reduction (the O(K) set of Algorithm 1).
    pub const CONSTRAINTS_REDUCED: &str = "cr.constraints_reduced";
    /// Timer: wall time of one `reduced_spec` call (SPT walks plus the
    /// unordered-pair collapse).
    pub const REDUCE_TIME: &str = "cr.reduce";
}

/// The output of Algorithm 1: which adjacent interval pairs carry a
/// Geo-I constraint.
#[derive(Debug, Clone)]
pub struct ReductionResult {
    /// Directed auxiliary-graph edges `(l, k)` marked by the traversal
    /// (the indicator matrix `U_con` of Algorithm 1, sparsely stored).
    pub marked: HashSet<(usize, usize)>,
    /// Number of interval vertices `K`.
    pub k: usize,
}

/// Runs Algorithm 1 on the auxiliary graph.
///
/// For every root vertex `u'_i` the algorithm builds SPT-Out(i) and
/// SPT-In(i), categorizes every other vertex by which direction gives
/// the shorter path (line 5–9), and marks the edges of the chosen
/// shortest path of every categorized vertex within `radius`
/// (line 10–13). Shared path suffixes are marked once per root, keeping
/// the whole run at `O(K·(M + K log K))`.
pub fn reduce_constraints(aux: &AuxiliaryGraph, radius: f64) -> ReductionResult {
    let graph = aux.graph();
    let k = graph.node_count();
    let mut marked: HashSet<(usize, usize)> = HashSet::new();
    // Scratch: whether a vertex's `via` edge was already marked during
    // the current root's traversal (separate flags per tree).
    let mut done_out = vec![false; k];
    let mut done_in = vec![false; k];
    for i in 0..k {
        let spt_out = ShortestPathTree::build(graph, NodeId(i), TreeDirection::Out);
        let spt_in = ShortestPathTree::build(graph, NodeId(i), TreeDirection::In);
        done_out.iter_mut().for_each(|f| *f = false);
        done_in.iter_mut().for_each(|f| *f = false);
        for j in 0..k {
            if j == i {
                continue;
            }
            let d_out = spt_out.distance(NodeId(j));
            let d_in = spt_in.distance(NodeId(j));
            if d_out.min(d_in) > radius {
                continue;
            }
            // Line 6–9: categorize into U'_Out (shorter from the root)
            // or U'_In (shorter towards the root); walk the chosen
            // path marking edges until a previously walked suffix.
            if d_out <= d_in {
                // Walk up the Out tree: via_edge(cur) enters cur.
                let mut cur = j;
                while cur != i && !done_out[cur] {
                    done_out[cur] = true;
                    let Some(eid) = spt_out.via_edge(NodeId(cur)) else {
                        break;
                    };
                    let e = graph.edge(eid);
                    marked.insert((e.start().index(), e.end().index()));
                    cur = e.start().index();
                }
            } else {
                // Walk down the In tree: via_edge(cur) leaves cur.
                let mut cur = j;
                while cur != i && !done_in[cur] {
                    done_in[cur] = true;
                    let Some(eid) = spt_in.via_edge(NodeId(cur)) else {
                        break;
                    };
                    let e = graph.edge(eid);
                    marked.insert((e.start().index(), e.end().index()));
                    cur = e.end().index();
                }
            }
        }
    }
    ReductionResult { marked, k }
}

impl ReductionResult {
    /// Number of distinct *unordered* adjacent pairs marked.
    pub fn pair_count(&self) -> usize {
        let mut pairs: HashSet<(usize, usize)> = HashSet::new();
        for &(a, b) in &self.marked {
            pairs.insert(if a < b { (a, b) } else { (b, a) });
        }
        pairs.len()
    }
}

/// Builds the constraint-reduced `(ε, r)`-Geo-I spec: both directions
/// of every marked adjacent pair, each with the exponent distance
/// `d_min(u_a, u_b)` of that adjacency (the auxiliary-graph edge
/// weight; `δ` in the paper's idealized uniform-weight setting, the
/// target interval's actual length here — see
/// [`crate::AuxiliaryGraph`]'s edge-weight notes).
///
/// # Panics
///
/// Panics if `epsilon` is not positive or `radius` is negative/NaN.
pub fn reduced_spec(aux: &AuxiliaryGraph, epsilon: f64, radius: f64) -> PrivacySpec {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(radius >= 0.0, "radius must be non-negative");
    let obs = vlp_obs::global();
    let _span = obs.start(metrics::REDUCE_TIME);
    // Weight of each directed adjacency.
    let mut edge_weight: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    for e in aux.graph().edges() {
        let key = (e.start().index(), e.end().index());
        let w = edge_weight.entry(key).or_insert(f64::INFINITY);
        *w = w.min(e.length());
    }
    let result = reduce_constraints(aux, radius);
    // Collapse to unordered pairs with the minimum adjacent weight
    // (d_min of the pair).
    let mut pairs: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    for &(a, b) in &result.marked {
        let w = edge_weight[&(a, b)];
        let key = if a < b { (a, b) } else { (b, a) };
        let cur = pairs.entry(key).or_insert(f64::INFINITY);
        *cur = cur.min(w);
    }
    let mut constraints = Vec::with_capacity(2 * pairs.len());
    let mut sorted: Vec<_> = pairs.into_iter().collect();
    sorted.sort_unstable_by_key(|&(key, _)| key);
    for ((a, b), w) in sorted {
        constraints.push(PrivacyConstraint {
            i: a,
            l: b,
            dist: w,
        });
        constraints.push(PrivacyConstraint {
            i: b,
            l: a,
            dist: w,
        });
    }
    let k = aux.len();
    obs.incr(metrics::REDUCTIONS, 1);
    obs.push(metrics::CONSTRAINTS_FULL, (k * k.saturating_sub(1)) as f64);
    obs.push(metrics::CONSTRAINTS_REDUCED, constraints.len() as f64);
    PrivacySpec {
        epsilon,
        radius,
        constraints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::Discretization;
    use roadnet::generators;

    fn aux(delta: f64) -> AuxiliaryGraph {
        let g = generators::grid(3, 3, 0.4, true);
        let d = Discretization::new(&g, delta);
        AuxiliaryGraph::build(&g, &d)
    }

    #[test]
    fn reduction_marks_only_adjacent_pairs() {
        let aux = aux(0.2);
        let res = reduce_constraints(&aux, f64::INFINITY);
        let adjacency: std::collections::HashSet<(usize, usize)> = aux
            .graph()
            .edges()
            .iter()
            .map(|e| (e.start().index(), e.end().index()))
            .collect();
        for pair in &res.marked {
            assert!(
                adjacency.contains(pair),
                "non-adjacent pair marked: {pair:?}"
            );
        }
    }

    #[test]
    fn reduction_is_dramatically_smaller_than_full() {
        let aux = aux(0.2);
        let k = aux.len();
        let full = PrivacySpec::full(&aux, 5.0, f64::INFINITY);
        let reduced = reduced_spec(&aux, 5.0, f64::INFINITY);
        // Fig. 13(a): CR removes the vast majority of constraints.
        assert!(reduced.lp_row_count(k) < full.lp_row_count(k) / 10);
        // Reduced stays O(K·M).
        assert!(reduced.pair_count() <= 2 * aux.edge_count());
    }

    #[test]
    fn reduction_records_telemetry() {
        let aux = aux(0.2);
        let obs = vlp_obs::global();
        let before_runs = obs.counter(metrics::REDUCTIONS);
        let before_full = obs.series(metrics::CONSTRAINTS_FULL).len();
        let before_red = obs.series(metrics::CONSTRAINTS_REDUCED).len();
        let reduced = reduced_spec(&aux, 5.0, f64::INFINITY);
        // Lower bounds only: other tests flush to the same global
        // registry concurrently.
        assert!(obs.counter(metrics::REDUCTIONS) > before_runs);
        assert!(obs.series(metrics::CONSTRAINTS_FULL).len() > before_full);
        assert!(obs.series(metrics::CONSTRAINTS_REDUCED).len() > before_red);
        let k = aux.len();
        assert!(reduced.constraints.len() <= k * (k - 1));
        assert!(obs.timer(metrics::REDUCE_TIME).is_some());
    }

    #[test]
    fn reduced_constraints_have_delta_distance() {
        let aux = aux(0.2);
        let reduced = reduced_spec(&aux, 5.0, f64::INFINITY);
        for c in &reduced.constraints {
            assert!((c.dist - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn reduced_set_contains_both_directions() {
        let aux = aux(0.2);
        let reduced = reduced_spec(&aux, 5.0, f64::INFINITY);
        let set: std::collections::HashSet<(usize, usize)> =
            reduced.constraints.iter().map(|c| (c.i, c.l)).collect();
        for &(i, l) in &set {
            assert!(set.contains(&(l, i)), "missing reverse of ({i},{l})");
        }
    }

    #[test]
    fn every_adjacent_pair_is_covered() {
        // Every auxiliary edge is itself a shortest path between its two
        // endpoints, so Algorithm 1 must mark (at least one direction
        // of) every adjacency.
        let aux = aux(0.2);
        let res = reduce_constraints(&aux, f64::INFINITY);
        for e in aux.graph().edges() {
            let (a, b) = (e.start().index(), e.end().index());
            assert!(
                res.marked.contains(&(a, b)) || res.marked.contains(&(b, a)),
                "adjacency ({a},{b}) uncovered"
            );
        }
    }

    #[test]
    fn radius_zero_marks_nothing() {
        let aux = aux(0.2);
        let res = reduce_constraints(&aux, 0.0);
        assert!(res.marked.is_empty());
    }

    #[test]
    fn chained_bound_reaches_every_pair_within_radius() {
        // Chaining the reduced constraints along a shortest path must
        // reproduce the full constraint exponent for every pair.
        let aux = aux(0.25);
        let eps = 3.0;
        let reduced = reduced_spec(&aux, eps, f64::INFINITY);
        // Build adjacency with bounds and run a min-plus closure on the
        // exponent distances (shortest path in "constraint space").
        let k = aux.len();
        let mut expdist = vec![f64::INFINITY; k * k];
        for i in 0..k {
            expdist[i * k + i] = 0.0;
        }
        for c in &reduced.constraints {
            let slot = &mut expdist[c.i * k + c.l];
            *slot = slot.min(c.dist);
        }
        // Floyd-Warshall (k is small in this test).
        for m in 0..k {
            for i in 0..k {
                let dim = expdist[i * k + m];
                if !dim.is_finite() {
                    continue;
                }
                for l in 0..k {
                    let cand = dim + expdist[m * k + l];
                    if cand < expdist[i * k + l] {
                        expdist[i * k + l] = cand;
                    }
                }
            }
        }
        for i in 0..k {
            for l in 0..k {
                if i == l {
                    continue;
                }
                let want = aux.distance_min(i, l);
                let got = expdist[i * k + l];
                assert!(
                    got <= want + 1e-9,
                    "pair ({i},{l}): chained exponent {got} exceeds d_min {want}"
                );
            }
        }
    }
}
