//! The auxiliary interval graph `G' = (U', E')` of Definition 4.1.
//!
//! `G'` has one vertex per route interval; a directed edge connects
//! `u'_i` to `u'_l` whenever a vehicle can travel directly from
//! interval `u_i` into interval `u_l` — either the next interval on the
//! same edge, or the first interval of a successor edge when `u_i` is
//! the last interval of its edge.
//!
//! Distances measured on `G'` are the distances the Geo-I constraints
//! of D-VLP use (Eq. 20); the paper's constraint-reduction algorithm
//! runs its shortest-path trees on `G'`.
//!
//! **Edge weights.** Definition 4.1 idealizes every edge weight to `δ`,
//! which is exact only when all road segments divide evenly into
//! δ-intervals. Real edges leave clipped intervals (footnote 1 of the
//! paper), and at coarse δ the uniform-weight idealization inflates
//! interval distances — silently *loosening* Geo-I. We therefore weight
//! the edge `u'_i → u'_l` by the travel distance between the intervals'
//! ending endpoints, `d_G(u_i^e, u_l^e)` = the length of `u_l` — which
//! is exactly the quantity Definition 4.2 places in the constraint
//! exponent, and equals `δ` in the paper's idealized setting.

use roadnet::{NodeDistances, RoadGraph, RoadGraphBuilder};

use crate::discretize::Discretization;

/// The auxiliary graph plus its all-pairs interval distances.
#[derive(Debug, Clone)]
pub struct AuxiliaryGraph {
    /// `G'` represented as a road graph over interval vertices (each
    /// vertex placed at its interval's midpoint for visualization).
    graph: RoadGraph,
    /// All-pairs directed distances on `G'`.
    dists: NodeDistances,
}

/// Builds the auxiliary graph `G'` itself, *without* its all-pairs
/// distance matrix — the `O(K)` construction shared by the dense
/// [`AuxiliaryGraph`] and the locally-relevant solver, which replaces
/// the `O(K²)` matrix with radius-bounded Dijkstra balls.
///
/// # Panics
///
/// Panics if the discretization does not belong to `graph` (interval
/// edge ids out of range).
pub fn aux_road_graph(graph: &RoadGraph, disc: &Discretization) -> RoadGraph {
    let mut b = RoadGraphBuilder::new();
    for u in disc.intervals() {
        let (x, y) = u.midpoint().point(graph);
        b.add_node(x, y);
    }
    // Edge weight into interval `l`: d_G(u_i^e, u_l^e) = |u_l|
    // (see the module notes). Clipped intervals can be arbitrarily
    // short; clamp to a metre so the graph stays valid.
    let weight_into = |l: usize| disc.interval(l).length().max(1e-3);
    for e in graph.edges() {
        let range = disc.intervals_on_edge(e.id());
        // Consecutive intervals along the edge.
        for k in range.clone().take(range.len().saturating_sub(1)) {
            b.add_edge(
                roadnet::NodeId(k),
                roadnet::NodeId(k + 1),
                weight_into(k + 1),
            )
            .expect("consecutive interval edge");
        }
        // Last interval of `e` connects to the first interval of
        // every successor edge.
        let last = range.end - 1;
        for &succ in graph.out_edges(e.end()) {
            let succ_first = disc.intervals_on_edge(succ).start;
            if succ_first != last {
                b.add_edge(
                    roadnet::NodeId(last),
                    roadnet::NodeId(succ_first),
                    weight_into(succ_first),
                )
                .expect("cross-connection interval edge");
            }
        }
    }
    b.build().expect("auxiliary graph is non-empty")
}

impl AuxiliaryGraph {
    /// Builds `G'` for the given discretized road network.
    ///
    /// # Panics
    ///
    /// Panics if the discretization does not belong to `graph` (interval
    /// edge ids out of range).
    pub fn build(graph: &RoadGraph, disc: &Discretization) -> Self {
        let aux = aux_road_graph(graph, disc);
        let dists = NodeDistances::all_pairs(&aux);
        Self { graph: aux, dists }
    }

    /// Number of interval vertices `K`.
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.graph.node_count() == 0
    }

    /// Number of directed adjacency edges `M = |E'|`.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The underlying graph over interval vertices (vertex `k`
    /// corresponds to interval `u_k`).
    pub fn graph(&self) -> &RoadGraph {
        &self.graph
    }

    /// Directed interval distance `d_{G'}(u_i, u_l)` in kilometres
    /// (hops × δ). Infinite when `u_l` is unreachable from `u_i`.
    pub fn distance(&self, i: usize, l: usize) -> f64 {
        self.dists.get(roadnet::NodeId(i), roadnet::NodeId(l))
    }

    /// Bidirectional interval distance
    /// `d^min(u_i, u_l) = min{d(u_i, u_l), d(u_l, u_i)}` (Eq. 1/20).
    pub fn distance_min(&self, i: usize, l: usize) -> f64 {
        self.distance(i, l).min(self.distance(l, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{generators, RoadGraphBuilder};

    #[test]
    fn chain_intervals_are_linked_in_order() {
        // Single loop: e0 = v0->v1 len 1.0, e1 = v1->v0 len 1.0.
        let mut b = RoadGraphBuilder::new();
        let v0 = b.add_node(0.0, 0.0);
        let v1 = b.add_node(1.0, 0.0);
        b.add_edge(v0, v1, 1.0).unwrap();
        b.add_edge(v1, v0, 1.0).unwrap();
        let g = b.build().unwrap();
        let d = Discretization::new(&g, 0.5);
        // 2 intervals per edge, K = 4: 0,1 on e0; 2,3 on e1.
        let aux = AuxiliaryGraph::build(&g, &d);
        assert_eq!(aux.len(), 4);
        // Ring: 0 -> 1 -> 2 -> 3 -> 0, all distance δ.
        assert_eq!(aux.distance(0, 1), 0.5);
        assert_eq!(aux.distance(1, 2), 0.5);
        assert_eq!(aux.distance(3, 0), 0.5);
        // Going backwards requires a full loop: 3 hops.
        assert_eq!(aux.distance(1, 0), 1.5);
        // d_min picks the shorter direction.
        assert_eq!(aux.distance_min(1, 0), 0.5);
        assert_eq!(aux.distance_min(0, 2), 1.0);
    }

    #[test]
    fn edge_count_near_vertex_count_on_real_maps() {
        // The paper argues M ≈ K because G' is close to planar; our
        // generators satisfy the same property.
        let g = generators::grid(4, 4, 0.4, true);
        let d = Discretization::new(&g, 0.1);
        let aux = AuxiliaryGraph::build(&g, &d);
        let ratio = aux.edge_count() as f64 / aux.len() as f64;
        assert!(ratio < 2.0, "M/K = {ratio} too large");
        assert!(ratio >= 1.0);
    }

    #[test]
    fn distances_are_finite_on_connected_maps() {
        let g = generators::downtown(3, 3, 0.3);
        let d = Discretization::new(&g, 0.1);
        let aux = AuxiliaryGraph::build(&g, &d);
        for i in 0..aux.len() {
            for l in 0..aux.len() {
                assert!(aux.distance(i, l).is_finite(), "unreachable {i}->{l}");
            }
        }
    }

    #[test]
    fn self_distance_is_zero() {
        let g = generators::grid(2, 2, 0.5, true);
        let d = Discretization::new(&g, 0.25);
        let aux = AuxiliaryGraph::build(&g, &d);
        for i in 0..aux.len() {
            assert_eq!(aux.distance(i, i), 0.0);
        }
    }

    #[test]
    fn distance_min_is_symmetric() {
        let g = generators::downtown(3, 3, 0.3);
        let d = Discretization::new(&g, 0.15);
        let aux = AuxiliaryGraph::build(&g, &d);
        for i in 0..aux.len() {
            for l in 0..aux.len() {
                assert_eq!(aux.distance_min(i, l), aux.distance_min(l, i));
            }
        }
    }
}
