//! Baseline obfuscation mechanisms the paper compares against.
//!
//! * [`two_d`] — the state-of-the-art 2-D-plane optimal mechanism of
//!   Bordenabe et al. (reference \[24\], called "2Db" in §5.1): the same
//!   global LP optimization as D-VLP but with *Euclidean* distance in
//!   both the quality objective and the Geo-I constraints, with a
//!   greedy spanner standing in for the full `O(K²)` constraint set
//!   exactly as \[24\] proposes;
//! * [`laplace`] — the discrete planar-Laplace mechanism of Andrés et
//!   al. (the original Geo-I paper), included as a second,
//!   optimization-free point of reference;
//! * [`graph`] — the graph-Laplace mechanism: closed-form like
//!   `laplace` but built on *road* distances so it satisfies the
//!   road-network `ε`-Geo-I constraints outright. It is not a paper
//!   baseline; it is the first-class **fallback** the serving layer
//!   returns when an optimal solve misses its deadline (quality is
//!   sacrificed, ε never is).

pub mod graph;
pub mod laplace;
pub mod two_d;

pub use graph::graph_laplace;
