//! The 2-D-plane optimal Geo-I mechanism of Bordenabe et al. ("2Db").
//!
//! Reference \[24\] formulates the same global optimization as D-VLP but
//! on a 2-D plane: quality loss is the expected *Euclidean* distance
//! between the true and reported locations, and Geo-I compares
//! locations by Euclidean distance. To tame the `O(K³)` constraint
//! count, \[24\] replaces the complete constraint graph with a greedy
//! *t-spanner*: constraining only spanner edges at budget `ε/t`
//! guarantees `ε`-Geo-I for every pair (the chained exponent along a
//! spanner path of stretch ≤ t recovers `ε·d_E`), at the price of a
//! *shrunken feasible region* — the very trait §6 contrasts with the
//! loss-free constraint reduction of this paper.
//!
//! The reported locations of 2Db live on the same interval set as ours
//! (the adversary's road-snapping step of the paper's footnote 3 is the
//! identity here), so its mechanisms can be evaluated directly against
//! road-network cost matrices and attacks.

use roadnet::RoadGraph;

use crate::column_generation::{solve_column_generation, CgOptions};
use crate::cost::CostMatrix;
use crate::discretize::Discretization;
use crate::error::VlpError;
use crate::mechanism::Mechanism;
use crate::privacy::{PrivacyConstraint, PrivacySpec};

/// Row-major `K × K` Euclidean distances between interval midpoints.
pub fn euclidean_matrix(graph: &RoadGraph, disc: &Discretization) -> Vec<f64> {
    let k = disc.len();
    let pts: Vec<(f64, f64)> = disc
        .intervals()
        .iter()
        .map(|u| u.midpoint().point(graph))
        .collect();
    let mut d = vec![0.0; k * k];
    for i in 0..k {
        for j in (i + 1)..k {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            let e = (dx * dx + dy * dy).sqrt();
            d[i * k + j] = e;
            d[j * k + i] = e;
        }
    }
    d
}

/// Greedy t-spanner over the complete Euclidean graph (Althöfer et
/// al.): pairs are scanned in increasing distance and an edge is kept
/// only when the spanner built so far cannot already connect the pair
/// within `stretch` times its Euclidean distance.
///
/// Returns the kept undirected edges `(i, j, d_E(i, j))`.
///
/// # Panics
///
/// Panics if `stretch < 1` or `k == 0`.
pub fn greedy_spanner(d_eucl: &[f64], k: usize, stretch: f64) -> Vec<(usize, usize, f64)> {
    assert!(stretch >= 1.0, "spanner stretch must be at least 1");
    assert!(
        k > 0 && d_eucl.len() == k * k,
        "distance matrix must be K×K"
    );
    let mut pairs: Vec<(usize, usize)> = (0..k)
        .flat_map(|i| ((i + 1)..k).map(move |j| (i, j)))
        .collect();
    pairs.sort_by(|&(a, b), &(c, d)| {
        d_eucl[a * k + b]
            .partial_cmp(&d_eucl[c * k + d])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); k];
    let mut edges = Vec::new();
    // Scratch for the bounded Dijkstra.
    let mut dist = vec![f64::INFINITY; k];
    let mut touched: Vec<usize> = Vec::new();
    for (i, j) in pairs {
        let d = d_eucl[i * k + j];
        let budget = stretch * d;
        // Bounded Dijkstra from i: does the current spanner reach j
        // within `budget`?
        let mut heap = std::collections::BinaryHeap::new();
        dist[i] = 0.0;
        touched.push(i);
        heap.push(std::cmp::Reverse((ordered(0.0), i)));
        let mut reached = false;
        while let Some(std::cmp::Reverse((dv, v))) = heap.pop() {
            let dv = dv.0;
            if dv > dist[v] + 1e-15 {
                continue;
            }
            if v == j {
                reached = dv <= budget + 1e-12;
                break;
            }
            if dv > budget {
                break;
            }
            for &(w, len) in &adj[v] {
                let nd = dv + len;
                if nd < dist[w] - 1e-15 && nd <= budget + 1e-12 {
                    dist[w] = nd;
                    touched.push(w);
                    heap.push(std::cmp::Reverse((ordered(nd), w)));
                }
            }
        }
        for &t in &touched {
            dist[t] = f64::INFINITY;
        }
        touched.clear();
        if !reached {
            adj[i].push((j, d));
            adj[j].push((i, d));
            edges.push((i, j, d));
        }
    }
    edges
}

/// `f64` wrapper ordered totally (NaN-free inputs by construction).
#[derive(PartialEq, PartialOrd)]
struct Ordered(f64);
impl Eq for Ordered {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).unwrap_or(std::cmp::Ordering::Equal)
    }
}
fn ordered(v: f64) -> Ordered {
    Ordered(v)
}

/// Builds the 2Db privacy spec: both directions of every spanner edge,
/// with exponent distance `d_E / stretch` so chained constraints imply
/// `ε · d_E` for all pairs.
pub fn spec_2db(d_eucl: &[f64], k: usize, epsilon: f64, stretch: f64) -> PrivacySpec {
    let edges = greedy_spanner(d_eucl, k, stretch);
    let mut constraints = Vec::with_capacity(2 * edges.len());
    for (i, j, d) in edges {
        let dist = d / stretch;
        constraints.push(PrivacyConstraint { i, l: j, dist });
        constraints.push(PrivacyConstraint { i: j, l: i, dist });
    }
    PrivacySpec {
        epsilon,
        radius: f64::INFINITY,
        constraints,
    }
}

/// The result of solving the 2Db baseline.
#[derive(Debug, Clone)]
pub struct TwoDbSolution {
    /// The optimal 2-D mechanism (defined over the same interval set).
    pub mechanism: Mechanism,
    /// Its quality loss *in the 2Db sense* (expected Euclidean
    /// distortion) — the objective 2Db optimizes.
    pub euclidean_loss: f64,
    /// The privacy spec (spanner constraints) it satisfies.
    pub spec: PrivacySpec,
}

/// Solves the 2Db baseline: minimize expected Euclidean distance
/// between true and reported interval subject to Euclidean Geo-I.
///
/// `f_p` weights the objective rows exactly as in \[24\]
/// (`Σ_i f_P(i) Σ_j z_{i,j} d_E(i,j)`).
///
/// # Errors
///
/// Propagates [`VlpError`] from the column-generation solver.
///
/// # Panics
///
/// Panics if `f_p.len()` differs from the discretization size.
pub fn solve_2db(
    graph: &RoadGraph,
    disc: &Discretization,
    f_p: &[f64],
    epsilon: f64,
    stretch: f64,
    opts: &CgOptions,
) -> Result<TwoDbSolution, VlpError> {
    let k = disc.len();
    assert_eq!(f_p.len(), k, "prior dimension mismatch");
    let d_eucl = euclidean_matrix(graph, disc);
    let mut cost = vec![0.0; k * k];
    for i in 0..k {
        for j in 0..k {
            cost[i * k + j] = f_p[i] * d_eucl[i * k + j];
        }
    }
    let cost = CostMatrix::from_dense(k, cost);
    let spec = spec_2db(&d_eucl, k, epsilon, stretch);
    let (mechanism, euclidean_loss, _) = solve_column_generation(&cost, &spec, opts)?;
    Ok(TwoDbSolution {
        mechanism,
        euclidean_loss,
        spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators;

    #[test]
    fn euclidean_matrix_is_symmetric_with_zero_diagonal() {
        let g = generators::grid(3, 2, 0.5, true);
        let disc = Discretization::new(&g, 0.25);
        let k = disc.len();
        let d = euclidean_matrix(&g, &disc);
        for i in 0..k {
            assert_eq!(d[i * k + i], 0.0);
            for j in 0..k {
                assert_eq!(d[i * k + j], d[j * k + i]);
            }
        }
    }

    #[test]
    fn spanner_preserves_stretch() {
        let g = generators::grid(3, 3, 0.4, true);
        let disc = Discretization::new(&g, 0.4);
        let k = disc.len();
        let d = euclidean_matrix(&g, &disc);
        let stretch = 1.5;
        let edges = greedy_spanner(&d, k, stretch);
        // Verify by Floyd-Warshall on the spanner.
        let mut sp = vec![f64::INFINITY; k * k];
        for i in 0..k {
            sp[i * k + i] = 0.0;
        }
        for &(i, j, len) in &edges {
            sp[i * k + j] = sp[i * k + j].min(len);
            sp[j * k + i] = sp[j * k + i].min(len);
        }
        for m in 0..k {
            for i in 0..k {
                for j in 0..k {
                    let cand = sp[i * k + m] + sp[m * k + j];
                    if cand < sp[i * k + j] {
                        sp[i * k + j] = cand;
                    }
                }
            }
        }
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    assert!(
                        sp[i * k + j] <= stretch * d[i * k + j] + 1e-9,
                        "pair ({i},{j}) stretched beyond t"
                    );
                }
            }
        }
    }

    #[test]
    fn spanner_is_sparse() {
        let g = generators::grid(3, 3, 0.4, true);
        let disc = Discretization::new(&g, 0.4);
        let k = disc.len();
        let d = euclidean_matrix(&g, &disc);
        let edges = greedy_spanner(&d, k, 1.5);
        assert!(edges.len() < k * (k - 1) / 2, "spanner should drop edges");
    }

    #[test]
    fn solve_2db_produces_feasible_mechanism() {
        let g = generators::grid(2, 2, 0.5, true);
        let disc = Discretization::new(&g, 0.5);
        let k = disc.len();
        let f_p = vec![1.0 / k as f64; k];
        let sol = solve_2db(&g, &disc, &f_p, 2.0, 1.5, &CgOptions::default()).unwrap();
        assert!(sol.mechanism.is_row_stochastic(1e-6));
        assert!(sol.mechanism.max_violation(&sol.spec) <= 1e-6);
        assert!(sol.euclidean_loss >= 0.0);
    }

    #[test]
    fn chained_spanner_constraints_imply_full_euclidean_geo_i() {
        // The spanner spec must imply z_i <= e^{eps d_E(i,j)} z_j for
        // *all* pairs. Verify on the solved mechanism.
        let g = generators::grid(2, 2, 0.5, true);
        let disc = Discretization::new(&g, 0.5);
        let k = disc.len();
        let f_p = vec![1.0 / k as f64; k];
        let eps = 2.0;
        let sol = solve_2db(&g, &disc, &f_p, eps, 1.5, &CgOptions::default()).unwrap();
        let d = euclidean_matrix(&g, &disc);
        for i in 0..k {
            for l in 0..k {
                if i == l {
                    continue;
                }
                let bound = (eps * d[i * k + l]).exp();
                for j in 0..k {
                    let v = sol.mechanism.prob(i, j) - bound * sol.mechanism.prob(l, j);
                    assert!(v <= 1e-6, "euclidean Geo-I violated at ({i},{l},{j})");
                }
            }
        }
    }
}
