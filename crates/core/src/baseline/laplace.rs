//! Discrete planar-Laplace mechanism (Andrés et al., the original
//! Geo-I construction).
//!
//! The continuous planar Laplace draws a reported point at planar
//! distance `d` from the truth with density `∝ e^{-ε d}`; restricted to
//! a finite interval set this becomes the exponential mechanism
//! `z_{i,j} ∝ e^{-ε · d_E(i, j)}`, row-normalized. It satisfies
//! `2ε`-Geo-I in the Euclidean metric (the classic factor-of-two loss
//! of the exponential mechanism) and serves as a cheap,
//! optimization-free baseline.

use roadnet::RoadGraph;

use crate::baseline::two_d::euclidean_matrix;
use crate::discretize::Discretization;
use crate::mechanism::Mechanism;

/// Builds the discrete planar-Laplace mechanism at budget `epsilon`
/// (per kilometre) over the given interval set.
///
/// # Panics
///
/// Panics if `epsilon` is not positive or the discretization is empty.
pub fn planar_laplace(graph: &RoadGraph, disc: &Discretization, epsilon: f64) -> Mechanism {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let k = disc.len();
    assert!(k > 0, "discretization is empty");
    let d = euclidean_matrix(graph, disc);
    let mut z = vec![0.0; k * k];
    for i in 0..k {
        let mut total = 0.0;
        for j in 0..k {
            let w = (-epsilon * d[i * k + j]).exp();
            z[i * k + j] = w;
            total += w;
        }
        for j in 0..k {
            z[i * k + j] /= total;
        }
    }
    Mechanism::from_matrix(k, z, 1e-9).expect("row-normalized by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators;

    fn setup() -> (RoadGraph, Discretization) {
        let g = generators::grid(3, 2, 0.5, true);
        let disc = Discretization::new(&g, 0.25);
        (g, disc)
    }

    #[test]
    fn is_row_stochastic() {
        let (g, disc) = setup();
        let m = planar_laplace(&g, &disc, 3.0);
        assert!(m.is_row_stochastic(1e-9));
    }

    #[test]
    fn truth_is_the_mode() {
        let (g, disc) = setup();
        let m = planar_laplace(&g, &disc, 3.0);
        for i in 0..m.len() {
            let row = m.row(i);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(row[i] >= max - 1e-12, "row {i} mode is not the truth");
        }
    }

    #[test]
    fn satisfies_two_epsilon_euclidean_geo_i() {
        let (g, disc) = setup();
        let eps = 2.0;
        let m = planar_laplace(&g, &disc, eps);
        let k = m.len();
        let d = euclidean_matrix(&g, &disc);
        for i in 0..k {
            for l in 0..k {
                if i == l {
                    continue;
                }
                let bound = (2.0 * eps * d[i * k + l]).exp();
                for j in 0..k {
                    assert!(
                        m.prob(i, j) <= bound * m.prob(l, j) + 1e-12,
                        "2ε-Geo-I violated at ({i},{l},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn higher_epsilon_concentrates_mass() {
        let (g, disc) = setup();
        let loose = planar_laplace(&g, &disc, 1.0);
        let tight = planar_laplace(&g, &disc, 10.0);
        for i in 0..loose.len() {
            assert!(tight.prob(i, i) > loose.prob(i, i));
        }
    }
}
