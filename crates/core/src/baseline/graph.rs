//! Graph-Laplace mechanism: the closed-form, road-distance exponential
//! mechanism used as the serving-layer fallback.
//!
//! Where [`super::laplace`] is the paper's 2-D comparison baseline
//! (Euclidean distances, `2ε`-Geo-I in the *Euclidean* metric only),
//! this mechanism is built to satisfy the *road-network* `ε`-Geo-I
//! constraints of [`crate::PrivacySpec`] outright, with no LP solve:
//!
//! `z_{i,j} ∝ e^{−(ε/2) · d̂(u_i, u_j)}`, rows normalized,
//!
//! where `d̂` is the **metric closure** of the bidirectional interval
//! distance `d^min` of the auxiliary graph — the shortest-path metric
//! over the complete graph whose edge weights are `d^min(u_i, u_l)`.
//! The closure is needed because `d^min` (a min over two directed
//! distances) can violate the triangle inequality on one-way-heavy
//! maps; `d̂` restores it while never exceeding `d^min`.
//!
//! **Privacy proof.** `d̂` is symmetric and satisfies the triangle
//! inequality, so for any intervals `i, l, j`:
//! `w_{i,j}/w_{l,j} = e^{(ε/2)(d̂(l,j) − d̂(i,j))} ≤ e^{(ε/2) d̂(i,l)}`
//! and the normalizers obey `T_l ≤ e^{(ε/2) d̂(i,l)} · T_i`, giving
//! `z_{i,j} ≤ e^{ε·d̂(i,l)} · z_{l,j}`. Every constraint of
//! [`crate::PrivacySpec::full`] and of the reduced spec carries an
//! exponent distance ≥ `d̂(i,l)` (full: `d^min ≥ d̂`; reduced: the
//! adjacency weight ≥ the shortest-path distance ≥ `d̂`), so the
//! mechanism satisfies `(ε, r)`-Geo-I *at the stated ε* for every
//! radius — the factor-of-two loss is absorbed into quality, never
//! into privacy. The cost is optimality: the quality loss is
//! typically well above the LP optimum, which is exactly the trade the
//! serving layer makes under a solve deadline.

use crate::auxiliary::AuxiliaryGraph;
use crate::mechanism::Mechanism;

/// Builds the graph-Laplace mechanism at budget `epsilon` (per
/// kilometre) over the auxiliary graph's intervals. Runs in `O(K³)`
/// (one Floyd-Warshall closure) — no LP involved.
///
/// # Panics
///
/// Panics if `epsilon` is not positive or the auxiliary graph is
/// empty.
pub fn graph_laplace(aux: &AuxiliaryGraph, epsilon: f64) -> Mechanism {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let k = aux.len();
    assert!(k > 0, "auxiliary graph is empty");
    let d = metric_closure(aux);
    let mut z = vec![0.0; k * k];
    let rate = 0.5 * epsilon;
    for i in 0..k {
        let mut total = 0.0;
        for j in 0..k {
            // e^{-rate·∞} = 0: unreachable intervals (disconnected
            // maps) simply receive no mass.
            let w = (-rate * d[i * k + j]).exp();
            z[i * k + j] = w;
            total += w;
        }
        for j in 0..k {
            z[i * k + j] /= total;
        }
    }
    Mechanism::from_matrix(k, z, 1e-9).expect("row-normalized by construction")
}

/// The metric closure of `d^min`: Floyd-Warshall over the complete
/// graph weighted by the bidirectional interval distances. Symmetric,
/// triangle-inequality-satisfying, and pointwise ≤ `d^min`.
fn metric_closure(aux: &AuxiliaryGraph) -> Vec<f64> {
    let k = aux.len();
    let mut d = vec![0.0; k * k];
    for i in 0..k {
        for j in (i + 1)..k {
            let v = aux.distance_min(i, j);
            d[i * k + j] = v;
            d[j * k + i] = v;
        }
    }
    for m in 0..k {
        for i in 0..k {
            let dim = d[i * k + m];
            if !dim.is_finite() {
                continue;
            }
            for j in 0..k {
                let via = dim + d[m * k + j];
                if via < d[i * k + j] {
                    d[i * k + j] = via;
                }
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint_reduction::reduced_spec;
    use crate::discretize::Discretization;
    use crate::privacy::{verify, PrivacySpec};
    use roadnet::generators;

    fn aux_for(graph: &roadnet::RoadGraph, delta: f64) -> AuxiliaryGraph {
        let disc = Discretization::new(graph, delta);
        AuxiliaryGraph::build(graph, &disc)
    }

    #[test]
    fn satisfies_full_geo_i_at_the_stated_epsilon() {
        // One-way-heavy downtown: the hard case for d^min's triangle
        // inequality.
        let g = generators::downtown(3, 3, 0.3);
        let aux = aux_for(&g, 0.15);
        for eps in [1.0, 5.0, 10.0] {
            let m = graph_laplace(&aux, eps);
            let full = PrivacySpec::full(&aux, eps, f64::INFINITY);
            assert!(verify(&m, &full, 1e-9), "full spec violated at eps={eps}");
        }
    }

    #[test]
    fn satisfies_the_reduced_spec_and_bounded_radii() {
        let g = generators::grid(3, 3, 0.4, true);
        let aux = aux_for(&g, 0.2);
        let m = graph_laplace(&aux, 5.0);
        for radius in [0.5, 1.0, f64::INFINITY] {
            let spec = reduced_spec(&aux, 5.0, radius);
            assert!(
                verify(&m, &spec, 1e-9),
                "reduced spec violated at r={radius}"
            );
        }
    }

    #[test]
    fn truth_is_the_mode_and_higher_epsilon_concentrates() {
        let g = generators::grid(2, 2, 0.5, true);
        let aux = aux_for(&g, 0.25);
        let loose = graph_laplace(&aux, 1.0);
        let tight = graph_laplace(&aux, 10.0);
        for i in 0..loose.len() {
            let row = tight.row(i);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(row[i] >= max - 1e-12, "row {i} mode is not the truth");
            assert!(tight.prob(i, i) > loose.prob(i, i));
        }
    }

    #[test]
    fn closure_never_exceeds_d_min_and_is_a_metric() {
        let g = generators::downtown(3, 3, 0.3);
        let aux = aux_for(&g, 0.15);
        let k = aux.len();
        let d = metric_closure(&aux);
        for i in 0..k {
            assert_eq!(d[i * k + i], 0.0);
            for j in 0..k {
                assert!(d[i * k + j] <= aux.distance_min(i, j) + 1e-12);
                assert!((d[i * k + j] - d[j * k + i]).abs() < 1e-12);
                for m in 0..k {
                    assert!(d[i * k + j] <= d[i * k + m] + d[m * k + j] + 1e-9);
                }
            }
        }
    }
}
