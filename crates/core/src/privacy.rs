//! Geo-Indistinguishability constraint sets over road networks
//! (Definition 3.1, Eq. 20).

use serde::{Deserialize, Serialize};

use crate::auxiliary::AuxiliaryGraph;
use crate::mechanism::Mechanism;

/// Audits a mechanism against a Geo-I spec: row-stochastic within
/// `tol` *and* no constraint violated by more than `tol`.
///
/// This is the acceptance gate every served mechanism must pass —
/// optimally solved or fallback alike: the serving layer may trade
/// *quality* under load, never ε.
///
/// # Example
///
/// ```
/// use roadnet::generators;
/// use vlp_core::{privacy, AuxiliaryGraph, Discretization, Mechanism, PrivacySpec};
///
/// let graph = generators::grid(2, 2, 0.5, true);
/// let disc = Discretization::new(&graph, 0.25);
/// let aux = AuxiliaryGraph::build(&graph, &disc);
/// let spec = PrivacySpec::full(&aux, 2.0, f64::INFINITY);
///
/// // The uniform mechanism satisfies every Geo-I spec...
/// assert!(privacy::verify(&Mechanism::uniform(disc.len()), &spec, 1e-9));
/// // ...truthful reporting satisfies none (over distinct intervals).
/// assert!(!privacy::verify(&Mechanism::identity(disc.len()), &spec, 1e-9));
/// ```
pub fn verify(mechanism: &Mechanism, spec: &PrivacySpec, tol: f64) -> bool {
    mechanism.is_row_stochastic(tol) && mechanism.max_violation(spec) <= tol
}

/// One directed Geo-I constraint: for every obfuscated interval `j`,
/// `z_{i,j} ≤ exp(ε · dist) · z_{l,j}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyConstraint {
    /// The constrained (numerator) interval `u_i`.
    pub i: usize,
    /// The bounding (denominator) interval `u_l`.
    pub l: usize,
    /// The distance term in the exponent, in kilometres.
    pub dist: f64,
}

/// A full `(ε, r)`-Geo-I specification: the privacy budget, the
/// protection radius, and the set of directed constraints to impose.
///
/// Two constructors are provided:
///
/// * [`PrivacySpec::full`] enumerates a constraint for every ordered
///   pair of distinct intervals within radius `r` — `O(K²)` pairs which
///   become `O(K³)` LP rows once instantiated per obfuscated interval;
/// * [`crate::constraint_reduction::reduced_spec`] produces the
///   constraint-reduced set of §4.2 (adjacent pairs on shortest paths),
///   `O(M)` pairs / `O(K·M)` LP rows, with no loss of optimality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacySpec {
    /// The privacy budget `ε` (per kilometre).
    pub epsilon: f64,
    /// The protection radius `r` in kilometres (`f64::INFINITY` for
    /// unbounded protection).
    pub radius: f64,
    /// The directed constraints to impose.
    pub constraints: Vec<PrivacyConstraint>,
}

impl PrivacySpec {
    /// Builds the *unreduced* Geo-I constraint set: for every ordered
    /// pair `(i, l)`, `i ≠ l`, with `d_min(u_i, u_l) ≤ radius`, one
    /// constraint with `dist = d_min(u_i, u_l)` (Eq. 20).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not positive or `radius` is negative/NaN.
    pub fn full(aux: &AuxiliaryGraph, epsilon: f64, radius: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(radius >= 0.0, "radius must be non-negative");
        let k = aux.len();
        let mut constraints = Vec::new();
        for i in 0..k {
            for l in 0..k {
                if i == l {
                    continue;
                }
                let d = aux.distance_min(i, l);
                if d <= radius {
                    constraints.push(PrivacyConstraint { i, l, dist: d });
                }
            }
        }
        Self {
            epsilon,
            radius,
            constraints,
        }
    }

    /// Number of directed pairwise constraints (each becomes `K` LP
    /// rows when instantiated per obfuscated interval).
    pub fn pair_count(&self) -> usize {
        self.constraints.len()
    }

    /// Total number of LP inequality rows this spec induces in D-VLP
    /// over `k` intervals: one per (pair, obfuscated interval).
    pub fn lp_row_count(&self, k: usize) -> usize {
        self.constraints.len() * k
    }

    /// The multiplicative bound `exp(ε · dist)` of a constraint.
    pub fn bound(&self, c: &PrivacyConstraint) -> f64 {
        (self.epsilon * c.dist).exp()
    }

    /// Checks a row-major `K × K` mechanism matrix against every
    /// constraint and returns the worst violation
    /// `max(z_{i,j} − e^{ε·dist} z_{l,j})` (non-positive means the
    /// mechanism satisfies this spec).
    pub fn max_violation(&self, k: usize, z: &[f64]) -> f64 {
        debug_assert_eq!(z.len(), k * k);
        let mut worst = f64::NEG_INFINITY;
        for c in &self.constraints {
            let bound = self.bound(c);
            for j in 0..k {
                let v = z[c.i * k + j] - bound * z[c.l * k + j];
                if v > worst {
                    worst = v;
                }
            }
        }
        if worst == f64::NEG_INFINITY {
            0.0
        } else {
            worst
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::Discretization;
    use roadnet::generators;

    fn aux() -> AuxiliaryGraph {
        let g = generators::grid(2, 2, 0.5, true);
        let d = Discretization::new(&g, 0.25);
        AuxiliaryGraph::build(&g, &d)
    }

    #[test]
    fn full_spec_covers_all_pairs_with_infinite_radius() {
        let aux = aux();
        let k = aux.len();
        let spec = PrivacySpec::full(&aux, 5.0, f64::INFINITY);
        assert_eq!(spec.pair_count(), k * (k - 1));
        assert_eq!(spec.lp_row_count(k), k * k * (k - 1));
    }

    #[test]
    fn radius_prunes_far_pairs() {
        let aux = aux();
        let spec_all = PrivacySpec::full(&aux, 5.0, f64::INFINITY);
        let spec_near = PrivacySpec::full(&aux, 5.0, 0.3);
        assert!(spec_near.pair_count() < spec_all.pair_count());
        assert!(spec_near.constraints.iter().all(|c| c.dist <= 0.3));
    }

    #[test]
    fn bound_is_exponential_in_distance() {
        let aux = aux();
        let spec = PrivacySpec::full(&aux, 2.0, f64::INFINITY);
        let c = &spec.constraints[0];
        assert!((spec.bound(c) - (2.0 * c.dist).exp()).abs() < 1e-12);
    }

    #[test]
    fn uniform_mechanism_satisfies_everything() {
        let aux = aux();
        let k = aux.len();
        let spec = PrivacySpec::full(&aux, 1.0, f64::INFINITY);
        let z = vec![1.0 / k as f64; k * k];
        assert!(spec.max_violation(k, &z) <= 1e-12);
    }

    #[test]
    fn identity_mechanism_violates() {
        let aux = aux();
        let k = aux.len();
        let spec = PrivacySpec::full(&aux, 1.0, f64::INFINITY);
        let mut z = vec![0.0; k * k];
        for i in 0..k {
            z[i * k + i] = 1.0;
        }
        // Truthful reporting is maximally distinguishable.
        assert!(spec.max_violation(k, &z) > 0.5);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_zero_epsilon() {
        PrivacySpec::full(&aux(), 0.0, 1.0);
    }

    #[test]
    fn verify_rejects_non_stochastic_matrices() {
        let aux = aux();
        let k = aux.len();
        let spec = PrivacySpec::full(&aux, 1.0, f64::INFINITY);
        assert!(verify(&Mechanism::uniform(k), &spec, 1e-12));
        // Deserialization does not re-validate rows; a sub-stochastic
        // matrix satisfies every ratio constraint yet must fail the
        // audit.
        let half = 0.5 / k as f64;
        let doc = format!("{{\"k\":{k},\"z\":{:?}}}", vec![half; k * k]);
        let m: Mechanism = serde_json::from_str(&doc).unwrap();
        assert!(!verify(&m, &spec, 1e-9));
    }
}
