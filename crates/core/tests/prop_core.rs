//! Property-based tests for the vlp-core pipeline pieces.

use proptest::prelude::*;
use roadnet::{generators, NodeDistances, RoadGraph};
use vlp_core::constraint_reduction::{reduce_constraints, reduced_spec};
use vlp_core::{AuxiliaryGraph, CostMatrix, Discretization, IntervalDistances, Mechanism, Prior};

fn arb_graph() -> impl Strategy<Value = RoadGraph> {
    prop_oneof![
        (2usize..4, 2usize..4, 0.3f64..0.7)
            .prop_map(|(nx, ny, s)| generators::grid(nx, ny, s, true)),
        (3usize..5, 3usize..5, 0.25f64..0.45)
            .prop_map(|(nx, ny, s)| generators::downtown(nx, ny, s)),
        (1usize..3, 3usize..6, 0.3f64..0.6, 0u64..50)
            .prop_map(|(r, s, g, seed)| generators::rome_like(r, s, g, seed)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every on-road location is covered by exactly the interval that
    /// `locate` reports, and transplanting preserves interval
    /// membership.
    #[test]
    fn discretization_covers_and_locates(
        graph in arb_graph(),
        delta in 0.15f64..0.6,
        ef in 0.0f64..1.0,
        xf in 0.0f64..1.0,
        lf in 0.0f64..1.0,
    ) {
        let disc = Discretization::new(&graph, delta);
        let e = ((graph.edge_count() as f64 - 1.0) * ef).round() as usize;
        let edge = graph.edges()[e];
        let p = roadnet::Location::new(edge.id(), edge.length() * xf);
        let k = disc.locate(&graph, p).expect("on-road location must locate");
        prop_assert!(disc.interval(k).contains(p));
        // Transplant to a random interval stays inside it.
        let target = ((disc.len() as f64 - 1.0) * lf).round() as usize;
        let t = disc.transplant(&graph, p, target).expect("transplant");
        prop_assert!(disc.interval(target).contains(t));
        // Interval lengths never exceed 1.5 delta (equal-split bound).
        for u in disc.intervals() {
            prop_assert!(u.length() <= 1.5 * delta + 1e-12);
        }
    }

    /// The auxiliary-graph distance is always at least the real road
    /// distance between interval representatives could allow… at
    /// minimum, aux distances are finite, non-negative, and satisfy
    /// the triangle inequality used by the transitivity theorem.
    #[test]
    fn auxiliary_distances_form_a_quasi_metric(
        graph in arb_graph(),
        delta in 0.2f64..0.5,
    ) {
        let disc = Discretization::new(&graph, delta);
        let aux = AuxiliaryGraph::build(&graph, &disc);
        let k = aux.len().min(10);
        for a in 0..k {
            prop_assert_eq!(aux.distance(a, a), 0.0);
            for b in 0..k {
                let d = aux.distance(a, b);
                prop_assert!(d.is_finite() && d >= 0.0);
                for c in 0..k {
                    prop_assert!(aux.distance(a, c) <= d + aux.distance(b, c) + 1e-9);
                }
            }
        }
    }

    /// Algorithm 1 marks only auxiliary-graph adjacencies, covers every
    /// adjacency, and the reduced spec implies the full Geo-I exponent
    /// for every pair (min-plus closure check).
    #[test]
    fn constraint_reduction_is_sound(
        graph in arb_graph(),
        delta in 0.25f64..0.5,
        eps in 1.0f64..8.0,
    ) {
        let disc = Discretization::new(&graph, delta);
        let aux = AuxiliaryGraph::build(&graph, &disc);
        let res = reduce_constraints(&aux, f64::INFINITY);
        let adjacency: std::collections::HashSet<(usize, usize)> = aux
            .graph()
            .edges()
            .iter()
            .map(|e| (e.start().index(), e.end().index()))
            .collect();
        for pair in &res.marked {
            prop_assert!(adjacency.contains(pair));
        }
        // Closure: chained reduced exponents reach d_min for all pairs.
        let spec = reduced_spec(&aux, eps, f64::INFINITY);
        let k = aux.len();
        prop_assume!(k <= 60); // keep the Floyd-Warshall cheap
        let mut ed = vec![f64::INFINITY; k * k];
        for i in 0..k {
            ed[i * k + i] = 0.0;
        }
        for c in &spec.constraints {
            let s = &mut ed[c.i * k + c.l];
            *s = s.min(c.dist);
        }
        for m in 0..k {
            for i in 0..k {
                let dim = ed[i * k + m];
                if !dim.is_finite() {
                    continue;
                }
                for l in 0..k {
                    let cand = dim + ed[m * k + l];
                    if cand < ed[i * k + l] {
                        ed[i * k + l] = cand;
                    }
                }
            }
        }
        for i in 0..k {
            for l in 0..k {
                if i != l {
                    prop_assert!(
                        ed[i * k + l] <= aux.distance_min(i, l) + 1e-9,
                        "pair ({i},{l}) chained {} > d_min {}",
                        ed[i * k + l],
                        aux.distance_min(i, l)
                    );
                }
            }
        }
    }

    /// Cost matrices are non-negative with zero diagonal, and the
    /// quality loss of any row-stochastic matrix is non-negative and
    /// bounded by the max cost.
    #[test]
    fn cost_matrix_invariants(
        graph in arb_graph(),
        delta in 0.25f64..0.5,
        wp in prop::collection::vec(0.01f64..3.0, 4),
        wq in prop::collection::vec(0.01f64..3.0, 4),
    ) {
        let nd = NodeDistances::all_pairs(&graph);
        let disc = Discretization::new(&graph, delta);
        let id = IntervalDistances::build(&graph, &nd, &disc);
        let k = disc.len();
        let f_p = Prior::from_weights(&(0..k).map(|i| wp[i % wp.len()]).collect::<Vec<_>>()).expect("positive");
        let f_q = Prior::from_weights(&(0..k).map(|i| wq[i % wq.len()]).collect::<Vec<_>>()).expect("positive");
        let cost = CostMatrix::build(&id, &f_p, &f_q);
        let mut max_c = 0.0f64;
        for i in 0..k {
            prop_assert_eq!(cost.get(i, i), 0.0);
            for l in 0..k {
                prop_assert!(cost.get(i, l) >= 0.0);
                max_c = max_c.max(cost.get(i, l));
            }
        }
        let uni = Mechanism::uniform(k);
        let ql = uni.quality_loss(&cost);
        prop_assert!(ql >= 0.0);
        prop_assert!(ql <= max_c * k as f64 + 1e-9);
        // Weighted cost with unit sensitivities equals the plain cost.
        let unit = vec![1.0; k];
        let w = CostMatrix::build_weighted(&id, &f_p, &f_q, &unit);
        for i in 0..k {
            for l in 0..k {
                prop_assert!((w.get(i, l) - cost.get(i, l)).abs() < 1e-12);
            }
        }
    }

    /// Mechanism sampling hits only intervals with positive mass, and
    /// serde round-trips exactly.
    #[test]
    fn mechanism_sampling_and_serde(
        rows in prop::collection::vec(0.0f64..1.0, 25),
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let k = 5;
        let mut z = rows;
        for r in 0..k {
            let s: f64 = z[r * k..(r + 1) * k].iter().sum();
            prop_assume!(s > 1e-9);
            for v in &mut z[r * k..(r + 1) * k] {
                *v /= s;
            }
        }
        let mech = Mechanism::from_matrix(k, z, 1e-9).expect("stochastic");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for i in 0..k {
            let j = mech.sample_interval(i, &mut rng);
            prop_assert!(mech.prob(i, j) > 0.0, "sampled zero-mass interval");
        }
        let json = serde_json::to_vec(&mech).expect("serialize");
        let back: Mechanism = serde_json::from_slice(&json).expect("parse");
        prop_assert_eq!(back, mech);
    }
}
