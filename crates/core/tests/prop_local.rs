//! Property-based tests for the locally-relevant solve mode
//! (`vlp_core::local`): radius-∞ equivalence with the full-shard solve
//! and ε-validity of restricted mechanisms at arbitrary finite radii.

use proptest::prelude::*;
use roadnet::{generators, RoadGraph};
use vlp_core::{privacy, CgOptions, LocalShard, VlpInstance};

fn arb_graph() -> impl Strategy<Value = RoadGraph> {
    prop_oneof![
        (2usize..4, 2usize..4, 0.3f64..0.7)
            .prop_map(|(nx, ny, s)| generators::grid(nx, ny, s, true)),
        (3usize..4, 3usize..4, 0.25f64..0.45)
            .prop_map(|(nx, ny, s)| generators::downtown(nx, ny, s)),
        (1usize..3, 3usize..5, 0.3f64..0.6, 0u64..50)
            .prop_map(|(r, s, g, seed)| generators::rome_like(r, s, g, seed)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (a) Radius-∞ equivalence: a locally-relevant solve whose support
    /// covers the whole map is bit-identical to the full-shard solve —
    /// on both engines. The dense engine delegates; the sparse engine
    /// (one ∞-radius neighborhood) must reproduce the exact same
    /// mechanism through its lazily built dense instance.
    #[test]
    fn radius_infinity_is_bit_identical_to_full_shard(
        graph in arb_graph(),
        delta in 0.25f64..0.5,
        eps in 1.0f64..8.0,
        radius in 0.2f64..0.8,
    ) {
        let inst = VlpInstance::uniform(graph.clone(), delta);
        let opts = CgOptions::default();
        let full_support: Vec<usize> = (0..inst.len()).collect();
        let baseline = inst.solve(eps, radius, &opts).unwrap();
        let dense = inst.solve_local(eps, radius, &full_support, &opts).unwrap();
        prop_assert_eq!(&baseline.mechanism, &dense.mechanism);
        prop_assert_eq!(
            baseline.quality_loss.to_bits(),
            dense.quality_loss.to_bits()
        );

        let shard = LocalShard::uniform(graph, delta, f64::INFINITY, radius);
        prop_assert_eq!(shard.plan().neighborhood_count(), 1);
        let sparse = shard.solve_neighborhood(0, eps, &opts).unwrap();
        prop_assert_eq!(&baseline.mechanism, &sparse.mechanism);
        prop_assert_eq!(
            baseline.quality_loss.to_bits(),
            sparse.quality_loss.to_bits()
        );
    }

    /// (b) Finite-radius safety: for arbitrary finite assignment and
    /// protection radii, every neighborhood the sparse engine can serve
    /// — optimally solved or fallback — passes `privacy::verify`
    /// against the unreduced restricted spec with full-graph `d_min`
    /// exponents, and every interval's `r`-ball is inside its assigned
    /// support (the locality theorem).
    #[test]
    fn finite_radii_never_yield_invalid_mechanisms(
        graph in arb_graph(),
        delta in 0.25f64..0.5,
        eps in 1.0f64..8.0,
        rho in 0.1f64..0.6,
        protection in 0.1f64..0.6,
    ) {
        let inst = VlpInstance::uniform(graph.clone(), delta);
        let shard = LocalShard::uniform(graph, delta, rho, protection);
        let plan = shard.plan();

        // Locality theorem, exhaustively on the dense distances.
        for i in 0..inst.len() {
            let hood = plan.neighborhood(plan.assignment(i));
            for l in 0..inst.len() {
                if inst.aux.distance_min(i, l) <= protection {
                    prop_assert!(
                        hood.members.binary_search(&l).is_ok(),
                        "interval {} within r of {} but outside its support",
                        l, i
                    );
                }
            }
        }

        // Solve + audit a deterministic sample of neighborhoods (all of
        // them when few) and the fallback of every sampled one.
        let n = plan.neighborhood_count() as u32;
        let step = (n / 3).max(1);
        let mut nb = 0;
        while nb < n {
            let solved = shard.solve_neighborhood(nb, eps, &CgOptions::default()).unwrap();
            let spec = shard.audit_spec(nb, eps);
            prop_assert!(
                privacy::verify(&solved.mechanism, &spec, 1e-6),
                "solved mechanism for nb {} violates its restricted spec", nb
            );
            let k = solved.support.len();
            prop_assert_eq!(solved.lp_vars, k * k);
            let fallback = shard.fallback_neighborhood(nb, eps);
            prop_assert!(
                privacy::verify(&fallback, &spec, 1e-9),
                "fallback for nb {} violates its restricted spec", nb
            );
            nb += step;
        }
    }
}
