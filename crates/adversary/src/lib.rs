//! Inference attacks against road-network location obfuscation.
//!
//! Implements the two threat models of §3.2.2:
//!
//! * [`bayes`] — the single-report Bayesian attack: the adversary knows
//!   the obfuscation mechanism and the worker's prior, computes the
//!   posterior over true intervals for each report (Eq. 4), and issues
//!   the *optimal remapping* guess that minimizes its own expected
//!   error. The resulting expected distance between guess and truth is
//!   the paper's **AdvError** privacy metric (§5.1);
//! * [`hmm`] — the multi-report spatial-correlation attack: vehicle
//!   motion is modelled as a hidden Markov chain whose transition
//!   matrix is learned from floating-vehicle data (Eq. 5), and the true
//!   trajectory is decoded from a sequence of obfuscated reports with
//!   the Viterbi algorithm (Fig. 15).
//!
//! Both attacks operate on interval indices: the adversary sees the
//! same discretized world the mechanism is defined on.
//!
//! # Example
//!
//! ```
//! use vlp_core::{Mechanism, Prior};
//!
//! // Against the uniform mechanism a report carries no information:
//! // the Bayesian posterior collapses back to the prior.
//! let mechanism = Mechanism::uniform(4);
//! let prior = Prior::uniform(4);
//! let post = adversary::posterior(&mechanism, &prior, 1);
//! assert!(post.iter().all(|&p| (p - 0.25).abs() < 1e-12));
//!
//! // Against truthful reporting the posterior is a point mass.
//! let post = adversary::posterior(&Mechanism::identity(4), &prior, 1);
//! assert_eq!(post, vec![0.0, 1.0, 0.0, 0.0]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bayes;
pub mod hmm;

pub use bayes::{adv_error, conditional_entropy, optimal_estimates, posterior};
pub use hmm::{
    decode_marginals, forward_backward, forward_backward_seq, trajectory_error, viterbi,
    viterbi_seq, TransitionMatrix,
};
