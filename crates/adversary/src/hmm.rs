//! Spatial-correlation-aware attack: HMM + Viterbi (§3.2.2(b)).
//!
//! The vehicle's true interval sequence is a hidden Markov chain; the
//! obfuscated reports are its observations with emission probabilities
//! `Pr(report j | true i) = z_{i,j}`. The adversary learns the
//! transition matrix from floating-vehicle data (Eq. 5) and decodes the
//! maximum-likelihood trajectory with the Viterbi algorithm.

// Dense numeric kernels below index several parallel arrays in one
// loop; iterator rewrites would obscure the linear-algebra intent.
#![allow(clippy::needless_range_loop)]

use vlp_core::{Mechanism, Prior};

/// A row-stochastic interval-to-interval transition matrix
/// `H = {h_{i,j}}`, learned from observed trajectories.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionMatrix {
    k: usize,
    h: Vec<f64>,
}

impl TransitionMatrix {
    /// Learns transition probabilities from interval-index trajectories
    /// by the empirical-frequency estimator of Eq. 5,
    ///
    /// `h_{i,j} = #(moves i→j) / #(visits to i)`,
    ///
    /// with additive smoothing `alpha` so that unseen transitions keep
    /// a small positive probability (the decoder needs full support).
    ///
    /// # Example
    ///
    /// ```
    /// use adversary::TransitionMatrix;
    ///
    /// // Two floating-vehicle traces over 3 intervals.
    /// let h = TransitionMatrix::learn(3, &[vec![0, 1, 2], vec![0, 1]], 0.0);
    /// // Every observed move out of interval 0 went to interval 1.
    /// assert_eq!(h.prob(0, 1), 1.0);
    /// // Interval 2 was never left: without smoothing it self-loops.
    /// assert_eq!(h.prob(2, 2), 1.0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `alpha < 0`, or a trajectory mentions an
    /// interval `≥ k`.
    pub fn learn(k: usize, traces: &[Vec<usize>], alpha: f64) -> Self {
        assert!(k > 0, "need at least one interval");
        assert!(alpha >= 0.0, "smoothing must be non-negative");
        let mut counts = vec![alpha; k * k];
        for trace in traces {
            for w in trace.windows(2) {
                let (a, b) = (w[0], w[1]);
                assert!(a < k && b < k, "trace interval out of range");
                counts[a * k + b] += 1.0;
            }
        }
        let mut h = counts;
        for i in 0..k {
            let row = &mut h[i * k..(i + 1) * k];
            let total: f64 = row.iter().sum();
            if total > 0.0 {
                for v in row.iter_mut() {
                    *v /= total;
                }
            } else {
                // Never visited and no smoothing: stay put.
                row[i] = 1.0;
            }
        }
        Self { k, h }
    }

    /// Builds a matrix directly from a row-major table, normalizing
    /// each row. Returns `None` for invalid input.
    pub fn from_rows(k: usize, rows: Vec<f64>) -> Option<Self> {
        if rows.len() != k * k || k == 0 {
            return None;
        }
        if rows.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return None;
        }
        let mut h = rows;
        for i in 0..k {
            let row = &mut h[i * k..(i + 1) * k];
            let total: f64 = row.iter().sum();
            if total <= 0.0 {
                return None;
            }
            for v in row.iter_mut() {
                *v /= total;
            }
        }
        Some(Self { k, h })
    }

    /// Transition probability `Pr(next = j | current = i)`.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.h[i * self.k + j]
    }

    /// Number of intervals `K`.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }
}

/// Viterbi decoding: the maximum-likelihood hidden interval sequence
/// given a sequence of reported intervals.
///
/// Works in log space. States with zero prior, transition, or emission
/// probability are assigned `-∞` and never selected unless every state
/// is impossible at some step (in which case the decoder restarts the
/// step from emissions only, which keeps the output well-defined under
/// model mismatch).
///
/// # Panics
///
/// Panics if dimensions disagree or `observations` mention an interval
/// `≥ K`.
pub fn viterbi(
    trans: &TransitionMatrix,
    prior: &Prior,
    mechanism: &Mechanism,
    observations: &[usize],
) -> Vec<usize> {
    let mechanisms = vec![mechanism; observations.len()];
    viterbi_seq(trans, prior, &mechanisms, observations)
}

/// [`viterbi`] against a *per-step* emission model: `mechanisms[t]` is
/// the obfuscation mechanism report `t` was served from.
///
/// A continuous-trace service does not hold ε constant — a
/// velocity-aware adapter or a trace-budget throttle serves each
/// report at its own canonical ε, hence from a different mechanism.
/// The adversary observing such a trace knows which mechanism
/// produced each report (mechanisms are public), so its emission
/// probabilities vary per step; this is the decoder `bench_traces`
/// attacks the velocity-adaptive regime with.
///
/// # Panics
///
/// Panics if dimensions disagree, `mechanisms` and `observations`
/// lengths differ, or an observation is out of range.
pub fn viterbi_seq(
    trans: &TransitionMatrix,
    prior: &Prior,
    mechanisms: &[&Mechanism],
    observations: &[usize],
) -> Vec<usize> {
    let k = trans.len();
    assert_eq!(prior.len(), k, "prior dimension mismatch");
    assert_eq!(
        mechanisms.len(),
        observations.len(),
        "one mechanism per observation"
    );
    assert!(
        mechanisms.iter().all(|m| m.len() == k),
        "mechanism dimension mismatch"
    );
    if observations.is_empty() {
        return Vec::new();
    }
    let ln = |v: f64| if v > 0.0 { v.ln() } else { f64::NEG_INFINITY };
    let t_len = observations.len();
    let mut score = vec![f64::NEG_INFINITY; k];
    let mut back: Vec<Vec<usize>> = vec![vec![0; k]; t_len];
    let o0 = observations[0];
    assert!(o0 < k, "observation out of range");
    for i in 0..k {
        score[i] = ln(prior.get(i)) + ln(mechanisms[0].prob(i, o0));
    }
    rescue_if_dead(&mut score, mechanisms[0], o0, k, &ln);
    for (t, &obs) in observations.iter().enumerate().skip(1) {
        assert!(obs < k, "observation out of range");
        let mechanism = mechanisms[t];
        let mut next = vec![f64::NEG_INFINITY; k];
        for j in 0..k {
            let emit = ln(mechanism.prob(j, obs));
            if emit == f64::NEG_INFINITY {
                continue;
            }
            let mut best = (0usize, f64::NEG_INFINITY);
            for i in 0..k {
                if score[i] == f64::NEG_INFINITY {
                    continue;
                }
                let cand = score[i] + ln(trans.prob(i, j));
                if cand > best.1 {
                    best = (i, cand);
                }
            }
            if best.1 > f64::NEG_INFINITY {
                next[j] = best.1 + emit;
                back[t][j] = best.0;
            }
        }
        score = next;
        rescue_if_dead(&mut score, mechanism, obs, k, &ln);
    }
    // Backtrack from the best terminal state.
    let mut best_state = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for (i, &s) in score.iter().enumerate() {
        if s > best_score {
            best_score = s;
            best_state = i;
        }
    }
    let mut path = vec![0usize; t_len];
    path[t_len - 1] = best_state;
    for t in (1..t_len).rev() {
        path[t - 1] = back[t][path[t]];
    }
    path
}

/// If every state became impossible (model mismatch — e.g. the observed
/// report is unreachable under the learned transitions), restart the
/// step from the emission likelihood alone.
fn rescue_if_dead(
    score: &mut [f64],
    mechanism: &Mechanism,
    obs: usize,
    k: usize,
    ln: &dyn Fn(f64) -> f64,
) {
    if score.iter().all(|&s| s == f64::NEG_INFINITY) {
        for (i, slot) in score.iter_mut().enumerate().take(k) {
            *slot = ln(mechanism.prob(i, obs));
        }
    }
}

/// Forward-backward smoothing: the posterior marginal distribution of
/// the hidden interval at every step given the whole report sequence.
///
/// Complements [`viterbi`]: Viterbi finds the jointly most likely
/// *trajectory*, the marginals minimize *per-step* error. Returns a
/// `T × K` row-stochastic matrix (empty for an empty observation
/// sequence). Scaled (normalized) forward/backward passes keep the
/// computation stable for long sequences.
///
/// # Panics
///
/// Panics if dimensions disagree or an observation is out of range.
pub fn forward_backward(
    trans: &TransitionMatrix,
    prior: &Prior,
    mechanism: &Mechanism,
    observations: &[usize],
) -> Vec<Vec<f64>> {
    let mechanisms = vec![mechanism; observations.len()];
    forward_backward_seq(trans, prior, &mechanisms, observations)
}

/// [`forward_backward`] against a *per-step* emission model:
/// `mechanisms[t]` is the mechanism report `t` was served from. See
/// [`viterbi_seq`] for why continuous-trace serving needs this.
///
/// # Panics
///
/// Panics if dimensions disagree, `mechanisms` and `observations`
/// lengths differ, or an observation is out of range.
pub fn forward_backward_seq(
    trans: &TransitionMatrix,
    prior: &Prior,
    mechanisms: &[&Mechanism],
    observations: &[usize],
) -> Vec<Vec<f64>> {
    let k = trans.len();
    assert_eq!(prior.len(), k, "prior dimension mismatch");
    assert_eq!(
        mechanisms.len(),
        observations.len(),
        "one mechanism per observation"
    );
    assert!(
        mechanisms.iter().all(|m| m.len() == k),
        "mechanism dimension mismatch"
    );
    let t_len = observations.len();
    if t_len == 0 {
        return Vec::new();
    }
    let normalize = |v: &mut Vec<f64>| {
        let s: f64 = v.iter().sum();
        if s > 0.0 {
            v.iter_mut().for_each(|x| *x /= s);
        } else {
            let u = 1.0 / k as f64;
            v.iter_mut().for_each(|x| *x = u);
        }
    };
    // Forward pass (scaled).
    let mut alpha: Vec<Vec<f64>> = Vec::with_capacity(t_len);
    let o0 = observations[0];
    assert!(o0 < k, "observation out of range");
    let mut a0: Vec<f64> = (0..k)
        .map(|i| prior.get(i) * mechanisms[0].prob(i, o0))
        .collect();
    normalize(&mut a0);
    alpha.push(a0);
    for (t, &obs) in observations.iter().enumerate().skip(1) {
        assert!(obs < k, "observation out of range");
        let mechanism = mechanisms[t];
        let prev = alpha.last().expect("nonempty");
        let mut a: Vec<f64> = (0..k)
            .map(|j| {
                let inflow: f64 = (0..k).map(|i| prev[i] * trans.prob(i, j)).sum();
                inflow * mechanism.prob(j, obs)
            })
            .collect();
        normalize(&mut a);
        alpha.push(a);
    }
    // Backward pass (scaled).
    let mut beta = vec![vec![1.0 / k as f64; k]; t_len];
    for t in (0..t_len - 1).rev() {
        let obs_next = observations[t + 1];
        let mech_next = mechanisms[t + 1];
        let next = beta[t + 1].clone();
        let mut b: Vec<f64> = (0..k)
            .map(|i| {
                (0..k)
                    .map(|j| trans.prob(i, j) * mech_next.prob(j, obs_next) * next[j])
                    .sum()
            })
            .collect();
        normalize(&mut b);
        beta[t] = b;
    }
    // Combine.
    (0..t_len)
        .map(|t| {
            let mut m: Vec<f64> = (0..k).map(|i| alpha[t][i] * beta[t][i]).collect();
            normalize(&mut m);
            m
        })
        .collect()
}

/// Per-step MAP decoding from forward-backward marginals: the state
/// maximizing each step's posterior marginal.
pub fn decode_marginals(marginals: &[Vec<f64>]) -> Vec<usize> {
    marginals
        .iter()
        .map(|m| {
            m.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// Mean road distance between a decoded trajectory and the truth — the
/// multi-report AdvError of Fig. 15.
///
/// # Panics
///
/// Panics if the two sequences have different lengths.
pub fn trajectory_error(
    truth: &[usize],
    decoded: &[usize],
    dists: &vlp_core::IntervalDistances,
) -> f64 {
    assert_eq!(truth.len(), decoded.len(), "sequence length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let total: f64 = truth
        .iter()
        .zip(decoded)
        .map(|(&a, &b)| dists.get_min(a, b))
        .sum();
    total / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learn_counts_transitions() {
        let traces = vec![vec![0, 1, 2], vec![0, 1, 1]];
        let t = TransitionMatrix::learn(3, &traces, 0.0);
        // From 0: always to 1.
        assert!((t.prob(0, 1) - 1.0).abs() < 1e-12);
        // From 1: once to 2, once to 1.
        assert!((t.prob(1, 2) - 0.5).abs() < 1e-12);
        assert!((t.prob(1, 1) - 0.5).abs() < 1e-12);
        // Unvisited state 2 self-loops.
        assert!((t.prob(2, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn learn_smoothing_gives_full_support() {
        let t = TransitionMatrix::learn(3, &[vec![0, 1]], 0.1);
        for i in 0..3 {
            for j in 0..3 {
                assert!(t.prob(i, j) > 0.0);
            }
        }
    }

    #[test]
    fn rows_are_stochastic() {
        let t = TransitionMatrix::learn(4, &[vec![0, 1, 2, 3, 0]], 0.5);
        for i in 0..4 {
            let s: f64 = (0..4).map(|j| t.prob(i, j)).sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn from_rows_rejects_bad_input() {
        assert!(TransitionMatrix::from_rows(2, vec![1.0; 3]).is_none());
        assert!(TransitionMatrix::from_rows(2, vec![-1.0, 1.0, 0.5, 0.5]).is_none());
        assert!(TransitionMatrix::from_rows(2, vec![0.0, 0.0, 0.5, 0.5]).is_none());
    }

    #[test]
    fn viterbi_with_identity_emissions_recovers_observations() {
        let k = 3;
        let t = TransitionMatrix::from_rows(k, vec![1.0; k * k]).unwrap();
        let m = Mechanism::identity(k);
        let p = Prior::uniform(k);
        let obs = vec![0, 2, 1, 1];
        assert_eq!(viterbi(&t, &p, &m, &obs), obs);
    }

    #[test]
    fn viterbi_uses_transitions_to_denoise() {
        // Two states; motion strongly prefers staying; the mechanism is
        // noisy. A single outlier report should be smoothed away.
        let k = 2;
        let t = TransitionMatrix::from_rows(k, vec![0.95, 0.05, 0.05, 0.95]).unwrap();
        let m = Mechanism::from_matrix(k, vec![0.7, 0.3, 0.3, 0.7], 1e-9).unwrap();
        let p = Prior::from_weights(&[1.0, 0.0]).unwrap();
        let obs = vec![0, 0, 1, 0, 0];
        let decoded = viterbi(&t, &p, &m, &obs);
        assert_eq!(decoded, vec![0, 0, 0, 0, 0], "outlier should be smoothed");
    }

    #[test]
    fn viterbi_empty_observation_sequence() {
        let k = 2;
        let t = TransitionMatrix::from_rows(k, vec![0.5; 4]).unwrap();
        let m = Mechanism::uniform(k);
        let p = Prior::uniform(k);
        assert!(viterbi(&t, &p, &m, &[]).is_empty());
    }

    #[test]
    fn viterbi_survives_impossible_observations() {
        // Transition matrix forbids leaving state 0, but the reports
        // come from state 1's row; the rescue path must keep decoding.
        let k = 2;
        let t = TransitionMatrix::from_rows(k, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let m = Mechanism::from_matrix(k, vec![1.0, 0.0, 0.0, 1.0], 1e-9).unwrap();
        let p = Prior::from_weights(&[1.0, 0.0]).unwrap();
        let decoded = viterbi(&t, &p, &m, &[0, 1, 1]);
        assert_eq!(decoded.len(), 3);
    }

    #[test]
    fn forward_backward_marginals_are_distributions() {
        let k = 3;
        let t = TransitionMatrix::from_rows(k, vec![1.0; k * k]).unwrap();
        let m = Mechanism::from_matrix(k, vec![0.6, 0.2, 0.2, 0.2, 0.6, 0.2, 0.2, 0.2, 0.6], 1e-9)
            .unwrap();
        let p = Prior::uniform(k);
        let obs = vec![0, 1, 2, 1, 0];
        let marg = forward_backward(&t, &p, &m, &obs);
        assert_eq!(marg.len(), obs.len());
        for row in &marg {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn forward_backward_with_identity_emissions_recovers_observations() {
        let k = 3;
        let t = TransitionMatrix::from_rows(k, vec![1.0; k * k]).unwrap();
        let m = Mechanism::identity(k);
        let p = Prior::uniform(k);
        let obs = vec![2, 0, 1];
        let decoded = decode_marginals(&forward_backward(&t, &p, &m, &obs));
        assert_eq!(decoded, obs);
    }

    #[test]
    fn forward_backward_smooths_outliers_like_viterbi() {
        let k = 2;
        let t = TransitionMatrix::from_rows(k, vec![0.95, 0.05, 0.05, 0.95]).unwrap();
        let m = Mechanism::from_matrix(k, vec![0.7, 0.3, 0.3, 0.7], 1e-9).unwrap();
        let p = Prior::from_weights(&[1.0, 0.0]).unwrap();
        let obs = vec![0, 0, 1, 0, 0];
        let decoded = decode_marginals(&forward_backward(&t, &p, &m, &obs));
        assert_eq!(decoded, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn seq_decoders_with_one_mechanism_match_the_uniform_api() {
        let k = 3;
        let t = TransitionMatrix::learn(k, &[vec![0, 1, 2, 1, 0]], 0.1);
        let m = Mechanism::from_matrix(k, vec![0.6, 0.2, 0.2, 0.2, 0.6, 0.2, 0.2, 0.2, 0.6], 1e-9)
            .unwrap();
        let p = Prior::uniform(k);
        let obs = vec![0, 1, 2, 1, 0, 0];
        let mechs: Vec<&Mechanism> = obs.iter().map(|_| &m).collect();
        assert_eq!(viterbi(&t, &p, &m, &obs), viterbi_seq(&t, &p, &mechs, &obs));
        assert_eq!(
            forward_backward(&t, &p, &m, &obs),
            forward_backward_seq(&t, &p, &mechs, &obs)
        );
    }

    #[test]
    fn seq_decoders_honor_the_per_step_mechanism() {
        // Step 1's mechanism is the identity, so whatever the
        // transitions prefer, the decoders must pin step 1 to its
        // report; a noisy-mechanism decode of the same stream does not.
        let k = 2;
        let t = TransitionMatrix::from_rows(k, vec![0.95, 0.05, 0.05, 0.95]).unwrap();
        let noisy = Mechanism::from_matrix(k, vec![0.7, 0.3, 0.3, 0.7], 1e-9).unwrap();
        let exact = Mechanism::identity(k);
        let p = Prior::from_weights(&[1.0, 0.0]).unwrap();
        let obs = vec![0, 1, 0];
        let mechs = vec![&noisy, &exact, &noisy];
        let decoded = viterbi_seq(&t, &p, &mechs, &obs);
        assert_eq!(decoded[1], 1, "identity emission pins the state");
        let marg = forward_backward_seq(&t, &p, &mechs, &obs);
        assert!(marg[1][1] > 0.999, "marginal mass follows the emission");
        // The uniform-mechanism decode smooths the outlier away instead.
        assert_eq!(viterbi(&t, &p, &noisy, &obs), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "one mechanism per observation")]
    fn seq_decoder_rejects_length_mismatch() {
        let k = 2;
        let t = TransitionMatrix::from_rows(k, vec![0.5; 4]).unwrap();
        let m = Mechanism::uniform(k);
        viterbi_seq(&t, &Prior::uniform(k), &[&m], &[0, 1]);
    }

    #[test]
    fn forward_backward_empty_sequence() {
        let k = 2;
        let t = TransitionMatrix::from_rows(k, vec![0.5; 4]).unwrap();
        assert!(forward_backward(&t, &Prior::uniform(k), &Mechanism::uniform(k), &[]).is_empty());
    }

    #[test]
    fn trajectory_error_zero_for_perfect_decode() {
        use roadnet::{generators, NodeDistances};
        use vlp_core::Discretization;
        let g = generators::grid(2, 2, 0.5, true);
        let nd = NodeDistances::all_pairs(&g);
        let disc = Discretization::new(&g, 0.25);
        let dists = vlp_core::IntervalDistances::build(&g, &nd, &disc);
        assert_eq!(trajectory_error(&[0, 1, 2], &[0, 1, 2], &dists), 0.0);
        assert!(trajectory_error(&[0, 1, 2], &[0, 1, 3], &dists) > 0.0);
    }
}
