//! Single-report Bayesian inference attack (§3.2.2(a)) and the
//! AdvError privacy metric (§5.1).

// Dense numeric kernels below index several parallel arrays in one
// loop; iterator rewrites would obscure the linear-algebra intent.
#![allow(clippy::needless_range_loop)]

use vlp_core::{IntervalDistances, Mechanism, Prior};

/// The adversary's posterior over true intervals given reported
/// interval `j` (Eq. 4): `f(i | j) ∝ z_{i,j} · f_P(i)`.
///
/// Returns a length-`K` distribution. If the report `j` has zero
/// marginal probability under `(mechanism, prior)` the posterior falls
/// back to the prior (the report can never be observed, so any
/// convention works; the prior keeps downstream averages finite).
///
/// # Panics
///
/// Panics if dimensions disagree or `j ≥ K`.
pub fn posterior(mechanism: &Mechanism, prior: &Prior, j: usize) -> Vec<f64> {
    let k = mechanism.len();
    assert_eq!(prior.len(), k, "prior dimension mismatch");
    assert!(j < k, "reported interval out of range");
    let mut post: Vec<f64> = (0..k)
        .map(|i| mechanism.prob(i, j) * prior.get(i))
        .collect();
    let total: f64 = post.iter().sum();
    if total <= 0.0 {
        return prior.as_slice().to_vec();
    }
    for p in &mut post {
        *p /= total;
    }
    post
}

/// The optimal inference attack: for every possible report `j`, the
/// interval `p̂(j)` minimizing the adversary's posterior expected
/// distance `Σ_i f(i|j) · d_min(i, p̂)`.
///
/// This is the "best guess of the adversary given the reported
/// location" used to define AdvError; remapping the posterior through
/// a distance-minimizing point estimate is exactly the optimal attack
/// of Shokri et al. adopted by the paper.
pub fn optimal_estimates(
    mechanism: &Mechanism,
    prior: &Prior,
    dists: &IntervalDistances,
) -> Vec<usize> {
    let k = mechanism.len();
    assert_eq!(dists.len(), k, "distance matrix dimension mismatch");
    (0..k)
        .map(|j| {
            let post = posterior(mechanism, prior, j);
            let mut best = (0usize, f64::INFINITY);
            for cand in 0..k {
                let exp_err: f64 = post
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| {
                        if p > 0.0 {
                            p * dists.get_min(i, cand)
                        } else {
                            0.0
                        }
                    })
                    .sum();
                if exp_err < best.1 {
                    best = (cand, exp_err);
                }
            }
            best.0
        })
        .collect()
}

/// AdvError: the expected road distance between the adversary's optimal
/// guess and the vehicle's true interval,
///
/// `AdvError = Σ_i Σ_j f_P(i) · z_{i,j} · d_min(i, p̂(j))`.
///
/// Higher values mean more privacy (§5.1). Computed in closed form —
/// no sampling.
pub fn adv_error(mechanism: &Mechanism, prior: &Prior, dists: &IntervalDistances) -> f64 {
    let k = mechanism.len();
    let estimates = optimal_estimates(mechanism, prior, dists);
    let mut err = 0.0;
    for i in 0..k {
        let fp = prior.get(i);
        if fp <= 0.0 {
            continue;
        }
        for j in 0..k {
            let z = mechanism.prob(i, j);
            if z > 0.0 {
                err += fp * z * dists.get_min(i, estimates[j]);
            }
        }
    }
    err
}

/// Conditional entropy `H(P | P̃)` of the true interval given the
/// report, in nats — an information-theoretic privacy companion to
/// AdvError (0 = the report reveals everything; `ln K` = reveals
/// nothing beyond a uniform prior).
///
/// `H(P | P̃) = −Σ_j Pr(j) Σ_i f(i|j) ln f(i|j)`.
pub fn conditional_entropy(mechanism: &Mechanism, prior: &Prior) -> f64 {
    let k = mechanism.len();
    assert_eq!(prior.len(), k, "prior dimension mismatch");
    let mut h = 0.0;
    for j in 0..k {
        let pr_j: f64 = (0..k).map(|i| prior.get(i) * mechanism.prob(i, j)).sum();
        if pr_j <= 0.0 {
            continue;
        }
        let post = posterior(mechanism, prior, j);
        let h_j: f64 = post
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.ln())
            .sum();
        h += pr_j * h_j;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{generators, NodeDistances};
    use vlp_core::Discretization;

    fn setup() -> (IntervalDistances, usize) {
        let g = generators::grid(2, 2, 0.5, true);
        let nd = NodeDistances::all_pairs(&g);
        let disc = Discretization::new(&g, 0.25);
        let k = disc.len();
        (IntervalDistances::build(&g, &nd, &disc), k)
    }

    #[test]
    fn posterior_normalizes() {
        let (_, k) = setup();
        let m = Mechanism::uniform(k);
        let p = Prior::uniform(k);
        for j in 0..k {
            let post = posterior(&m, &p, j);
            let s: f64 = post.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_mechanism_posterior_is_prior() {
        let (_, k) = setup();
        let m = Mechanism::uniform(k);
        let mut w = vec![1.0; k];
        w[0] = 5.0;
        let p = Prior::from_weights(&w).unwrap();
        let post = posterior(&m, &p, 2);
        for i in 0..k {
            assert!((post[i] - p.get(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_mechanism_is_fully_inferable() {
        let (dists, k) = setup();
        let m = Mechanism::identity(k);
        let p = Prior::uniform(k);
        // Perfect posterior: the report is the truth.
        let est = optimal_estimates(&m, &p, &dists);
        for (j, &e) in est.iter().enumerate() {
            assert_eq!(e, j);
        }
        assert!(adv_error(&m, &p, &dists) < 1e-12);
    }

    #[test]
    fn uniform_mechanism_gives_positive_adv_error() {
        let (dists, k) = setup();
        let m = Mechanism::uniform(k);
        let p = Prior::uniform(k);
        assert!(adv_error(&m, &p, &dists) > 0.0);
    }

    #[test]
    fn adv_error_orders_mechanisms_sensibly() {
        // The uniform mechanism hides more than a near-identity one.
        let (dists, k) = setup();
        let p = Prior::uniform(k);
        let mut near_identity = vec![0.0; k * k];
        for i in 0..k {
            for j in 0..k {
                near_identity[i * k + j] = if i == j { 0.9 } else { 0.1 / (k - 1) as f64 };
            }
        }
        let near = Mechanism::from_matrix(k, near_identity, 1e-9).unwrap();
        let uni = Mechanism::uniform(k);
        assert!(adv_error(&uni, &p, &dists) > adv_error(&near, &p, &dists));
    }

    #[test]
    fn zero_probability_report_falls_back_to_prior() {
        let k = 2;
        // Both rows always report interval 0; interval 1 is never seen.
        let m = Mechanism::from_matrix(k, vec![1.0, 0.0, 1.0, 0.0], 1e-9).unwrap();
        let p = Prior::uniform(k);
        let post = posterior(&m, &p, 1);
        assert_eq!(post, p.as_slice().to_vec());
    }

    #[test]
    fn entropy_anchors_at_identity_and_uniform() {
        let (_, k) = setup();
        let p = Prior::uniform(k);
        // Identity: the report determines the truth — zero entropy.
        assert!(conditional_entropy(&Mechanism::identity(k), &p) < 1e-12);
        // Uniform: the report says nothing — prior entropy ln K.
        let h = conditional_entropy(&Mechanism::uniform(k), &p);
        assert!((h - (k as f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn entropy_orders_with_adv_error() {
        let (dists, k) = setup();
        let p = Prior::uniform(k);
        let mut near_identity = vec![0.0; k * k];
        for i in 0..k {
            for j in 0..k {
                near_identity[i * k + j] = if i == j { 0.9 } else { 0.1 / (k - 1) as f64 };
            }
        }
        let near = Mechanism::from_matrix(k, near_identity, 1e-9).unwrap();
        let uni = Mechanism::uniform(k);
        // Both privacy metrics rank uniform above near-identity.
        assert!(conditional_entropy(&uni, &p) > conditional_entropy(&near, &p));
        assert!(adv_error(&uni, &p, &dists) > adv_error(&near, &p, &dists));
    }

    #[test]
    fn concentrated_prior_dominates_inference() {
        let (dists, k) = setup();
        // Prior almost certain the vehicle is in interval 3.
        let mut w = vec![1e-6; k];
        w[3] = 1.0;
        let p = Prior::from_weights(&w).unwrap();
        let m = Mechanism::uniform(k);
        let est = optimal_estimates(&m, &p, &dists);
        // Whatever is reported, the best guess is (near) interval 3.
        for &e in &est {
            assert!(dists.get_min(e, 3) < 0.3, "guess {e} far from prior mode");
        }
        assert!(adv_error(&m, &p, &dists) < 0.05);
    }
}
