//! Cross-layer tests of the per-vehicle trace-budget accountant:
//! the disabled path is bit-identical to an unaccounted service, and
//! property tests pin the ledger's two safety invariants — a vehicle
//! is never served past its budget, and terminal exhaustion is final.

use std::collections::HashMap;
use std::time::Duration;

use platform::{
    MechanismService, Response, ServiceConfig, TraceBudgetConfig, VelocityEpsilon, WorkerId,
};
use proptest::prelude::*;
use rand::SeedableRng;
use roadnet::{generators, EdgeId, Location};

/// ε-bucket width shared by every service in this file.
const BUCKET: f64 = 0.5;

fn service(budget: Option<TraceBudgetConfig>) -> MechanismService {
    MechanismService::new(
        generators::grid(3, 3, 0.4, true),
        ServiceConfig {
            n_shards: 1,
            delta: 0.3,
            epsilon_bucket: BUCKET,
            // Zero logical deadline: every cold key serves the cheap
            // graph-Laplace rung, so these tests never wait on a CG
            // solve and the serving order is trivially deterministic.
            solve_deadline: Duration::ZERO,
            budget,
            ..ServiceConfig::default()
        },
    )
}

/// A few on-partition request locations spread over the map.
fn locations(svc: &MechanismService) -> Vec<Location> {
    let g = generators::grid(3, 3, 0.4, true);
    (0..g.edge_count())
        .map(|e| Location::new(EdgeId(e), 0.1))
        .filter(|&loc| svc.partition().to_local(loc).is_some())
        .collect()
}

/// The bit-identity pin: with `budget: None` the accountant is absent
/// and the serving path must produce exactly the responses of the
/// pre-accountant service. An infinite budget admits every request at
/// its untouched canonical ε, so comparing the two configurations
/// report-for-report (same seeds, same submit order) pins both claims
/// at once — any accounting interference would break the equality.
#[test]
fn disabled_accountant_is_bit_identical_to_infinite_budget() {
    let unaccounted = service(None);
    let accounted = service(Some(TraceBudgetConfig {
        trace_budget: f64::INFINITY,
        throttle_start: 0.5,
    }));
    let locs = locations(&unaccounted);
    assert!(!locs.is_empty());
    let epsilons = [0.7, 2.0, 3.3, 5.0];
    let mut rng_a = rand::rngs::StdRng::seed_from_u64(99);
    let mut rng_b = rand::rngs::StdRng::seed_from_u64(99);
    for i in 0..80 {
        let worker = WorkerId(i % 5);
        let loc = locs[i % locs.len()];
        let eps = epsilons[i % epsilons.len()];
        let a = unaccounted.submit(worker, loc, eps, &mut rng_a);
        let b = accounted.submit(worker, loc, eps, &mut rng_b);
        assert_eq!(a, b, "request {i}: accountant wiring changed a response");
        assert!(matches!(a, Response::Served(_)), "request {i} served");
    }
    assert_eq!(unaccounted.budget_spent(WorkerId(0)), None);
    assert!(accounted.budget_spent(WorkerId(0)).unwrap() > 0.0);
}

/// The velocity adapter composes with the ledger: adapted requests are
/// served at no more than the adapted ε, and the ledger bound holds.
#[test]
fn velocity_adapter_requests_stay_within_ledger() {
    let budget = 8.0;
    let svc = service(Some(TraceBudgetConfig {
        trace_budget: budget,
        throttle_start: 0.25,
    }));
    let va = VelocityEpsilon::default();
    let locs = locations(&svc);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut served_eps = 0.0;
    for i in 0..40 {
        let speed = (i as f64 * 3.7) % 90.0;
        let eps = va.epsilon_for(speed);
        match svc.submit(WorkerId(0), locs[i % locs.len()], eps, &mut rng) {
            Response::Served(o) => {
                assert!(o.epsilon <= eps + 1e-12);
                served_eps += o.epsilon;
            }
            Response::BudgetExhausted { .. } => {}
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(served_eps <= budget + 1e-9);
    let ledger = svc.budget_spent(WorkerId(0)).unwrap();
    assert!((served_eps - ledger).abs() < 1e-9);
}

proptest! {
    // Each case builds a (cheap, fallback-only) service, so keep the
    // case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Safety invariants over arbitrary interleaved submit schedules:
    ///
    /// * a vehicle's cumulative served ε never exceeds the budget;
    /// * the service ledger agrees with an external tally;
    /// * terminal exhaustion (a refusal with less than one bucket
    ///   width remaining) is final — that vehicle is never served
    ///   again, whatever it asks for.
    #[test]
    fn ledger_never_overspends_and_exhaustion_is_final(
        schedule in proptest::collection::vec((0usize..3, 0usize..4), 1..120),
        seed in 0u64..1_000,
    ) {
        let budget = 6.0;
        let svc = service(Some(TraceBudgetConfig {
            trace_budget: budget,
            throttle_start: 0.4,
        }));
        let locs = locations(&svc);
        let epsilons = [0.6, 1.0, 2.7, 5.0];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut tally: HashMap<usize, f64> = HashMap::new();
        let mut dead: [bool; 3] = [false; 3];
        for (i, &(v, e)) in schedule.iter().enumerate() {
            let eps = epsilons[e];
            match svc.submit(WorkerId(v), locs[i % locs.len()], eps, &mut rng) {
                Response::Served(o) => {
                    prop_assert!(!dead[v], "vehicle {v} served after terminal exhaustion");
                    prop_assert!(o.epsilon <= eps + 1e-12);
                    let spent = tally.entry(v).or_insert(0.0);
                    *spent += o.epsilon;
                    prop_assert!(
                        *spent <= budget + 1e-9,
                        "vehicle {v} served {} over budget {budget}", *spent
                    );
                }
                Response::BudgetExhausted { remaining, .. } => {
                    if remaining < BUCKET {
                        dead[v] = true;
                    }
                }
                other => prop_assert!(false, "unexpected response {other:?}"),
            }
        }
        for v in 0..3 {
            let external = tally.get(&v).copied().unwrap_or(0.0);
            let ledger = svc.budget_spent(WorkerId(v)).unwrap_or(0.0);
            prop_assert!(
                (external - ledger).abs() < 1e-9,
                "vehicle {v}: tally {external} != ledger {ledger}"
            );
        }
    }
}
