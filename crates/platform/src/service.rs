//! The sharded mechanism-serving layer: many regions, one service.
//!
//! A city-scale deployment does not solve one giant D-VLP over the
//! whole map — it partitions the road network into region shards
//! ([`roadnet::Partition`]), poses an independent instance per shard,
//! and serves vehicles from whichever shard they drive in.
//! [`MechanismService`] is that serving layer:
//!
//! * **Sharding** — the graph is split into bands of near-equal node
//!   count; each shard owns its own [`VlpInstance`] (discretization,
//!   interval distances, cost matrix) and its own task queue.
//! * **LRU caching** — solved mechanisms are cached per
//!   `(shard, ε-bucket)` with a capacity bound; hits, misses, and
//!   evictions are counted in [`vlp_obs`]. Requested budgets are
//!   rounded *down* to the bucket grid, so the cached mechanism is
//!   always at least as private as requested.
//! * **Deadline fallback** — cache misses are solved on a worker pool
//!   (`std::thread::scope`); a request whose solve misses the
//!   configured deadline is served immediately from the closed-form
//!   graph-Laplace baseline ([`VlpInstance::fallback`]) at the same
//!   canonical ε. The deadline trades *quality* (the fallback is
//!   sub-optimal), never privacy. Late solves still land in the cache
//!   before the batch returns, so the next batch hits.
//! * **Assignment** — obfuscated reports feed the same
//!   Hungarian-matching snapshot path the single-region [`Server`]
//!   uses, per shard.
//!
//! # The resilience ladder
//!
//! Failure is a first-class input: solver errors, pricing panics,
//! shard blackouts, cache purges, and deadline jitter can all be
//! scripted deterministically through [`vlp_obs::failpoint`]
//! ([`ServiceConfig::chaos`]), and the service climbs a fixed ladder
//! of degradations to survive them — each rung trades more *quality*,
//! never privacy (see `OPERATIONS.md` for the full runbook):
//!
//! 1. **Retry** — a failed or panicking solve is retried up to
//!    [`ResilienceConfig::max_attempts`] times with deterministic
//!    exponential backoff plus seeded jitter;
//! 2. **Circuit breaker** — each shard carries a
//!    closed → open → half-open breaker
//!    ([`BreakerState`]); after
//!    [`ResilienceConfig::breaker_threshold`] consecutive solve
//!    failures the shard's solves are shed entirely for
//!    [`ResilienceConfig::breaker_cooldown`] batches, then probed with
//!    a single solve before re-closing;
//! 3. **Stale serving** — mechanisms displaced from the cache
//!    (LRU eviction, prior invalidation, evict storms) are demoted to
//!    a bounded *stale* store instead of dropped; when a solve fails
//!    or is shed, the stale mechanism is served with explicit
//!    staleness accounting ([`Served::Stale`]) — it was solved at the
//!    same canonical ε against the same interval graph, so it is
//!    exactly as private as a fresh optimum, merely suboptimal;
//! 4. **Fallback** — with nothing cached and nothing stale, the
//!    closed-form graph-Laplace fallback serves at the same ε, as
//!    before.
//!
//! The invariant at every rung: **the served mechanism satisfies
//! full-spec ε-Geo-I at the canonical ε**. With no faults injected the
//! ladder is inert and the service behaves bit-identically to the
//! ladder-free implementation (`bench_chaos` gates this in CI).
//!
//! [`Server`]: crate::Server

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::RngExt;
use roadnet::{Location, Partition, RoadGraph};
use vlp_core::{CgOptions, Mechanism, Prior, VlpInstance};
use vlp_obs::failpoint::{self, site, FaultPlan};

use crate::server::assign_snapshot;
use crate::{SnapshotOutcome, Task, TaskId, WorkerId};

/// Telemetry metric names recorded by [`MechanismService`].
pub mod metrics {
    /// Counter: obfuscation requests received across batches.
    pub const REQUESTS: &str = "service.requests";
    /// Timer: wall time of one `obfuscate_batch` call.
    pub const BATCH_TIME: &str = "service.batch";
    /// Counter: requests whose `(shard, ε-bucket)` mechanism was
    /// already cached when the batch arrived.
    pub const CACHE_HITS: &str = "service.cache_hits";
    /// Counter: requests that found no cached mechanism.
    pub const CACHE_MISSES: &str = "service.cache_misses";
    /// Counter: cache entries evicted to respect the capacity bound.
    pub const CACHE_EVICTIONS: &str = "service.cache_evictions";
    /// Counter: requests served from an optimally solved mechanism
    /// (cached or solved within the deadline).
    pub const OPTIMAL_SERVED: &str = "service.optimal_served";
    /// Counter: requests served from the graph-Laplace fallback
    /// because the solve missed the deadline (or failed).
    pub const FALLBACK_SERVED: &str = "service.fallback_served";
    /// Timer: wall time of one per-shard mechanism solve on the
    /// worker pool.
    pub const SOLVE_TIME: &str = "service.solve";
    /// Counter: solves that returned an error (the request falls back;
    /// nothing is cached).
    pub const SOLVE_ERRORS: &str = "service.solve_errors";
    /// Counter: requests whose location could not be mapped into any
    /// shard (e.g. on a dropped cross-boundary edge); they are skipped.
    pub const OFF_PARTITION: &str = "service.off_partition";
    /// Counter: cache entries invalidated by a shard prior update.
    pub const PRIOR_INVALIDATIONS: &str = "service.prior_invalidations";
    /// Counter: solve attempts beyond the first (ladder rung 1). Each
    /// retry is preceded by deterministic exponential backoff.
    pub const RETRY_ATTEMPTS: &str = "service.retry.attempts";
    /// Counter: solve attempts that panicked (e.g. an injected pricing
    /// panic) and were contained by the worker's unwind boundary.
    pub const PANICS_CAUGHT: &str = "service.solve_panics";
    /// Counter: requests served from the stale store (ladder rung 3):
    /// a previously optimal mechanism for the same `(shard, ε-bucket)`
    /// that had been displaced from the cache.
    pub const STALE_SERVED: &str = "service.stale_served";
    /// Counter: cache entries demoted to the stale store (LRU
    /// eviction, prior invalidation, or an evict storm).
    pub const STALE_DEMOTIONS: &str = "service.stale_demotions";
    /// Counter: breaker transitions into `Open` (ladder rung 2).
    pub const BREAKER_OPENED: &str = "service.breaker.opened";
    /// Counter: breaker transitions `Open` → `HalfOpen` after the
    /// cooldown, admitting one probe solve.
    pub const BREAKER_HALF_OPEN: &str = "service.breaker.half_open";
    /// Counter: breaker transitions `HalfOpen` → `Closed` (a probe
    /// solve succeeded; the shard recovered).
    pub const BREAKER_RECLOSED: &str = "service.breaker.reclosed";
    /// Counter: cache-miss solves shed without an attempt because the
    /// shard's breaker was open (or its half-open probe slot was
    /// taken).
    pub const BREAKER_SHED: &str = "service.breaker.shed";

    /// Series name recording shard `s`'s breaker state once per batch:
    /// `0` closed, `1` half-open, `2` open. Part of the service's
    /// health snapshot in the `vlp-obs` schema.
    pub fn breaker_state_series(s: usize) -> String {
        format!("service.breaker.state.{s}")
    }
}

/// Configuration for [`MechanismService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of region shards to partition the map into.
    pub n_shards: usize,
    /// Interval length δ for each shard's discretization, km.
    pub delta: f64,
    /// Geo-I protection radius, km.
    pub radius: f64,
    /// Column-generation options for cache-miss solves.
    pub cg: CgOptions,
    /// Width of the ε cache buckets (per km). A requested ε is rounded
    /// *down* to a multiple of this width, so the served mechanism is
    /// never less private than asked for. Requests below one bucket
    /// width are rejected.
    pub epsilon_bucket: f64,
    /// Maximum number of `(shard, ε-bucket)` mechanisms kept in the
    /// LRU cache.
    pub cache_capacity: usize,
    /// How long one `obfuscate_batch` call synchronously waits for
    /// cache-miss solves before serving the fallback. `ZERO` means
    /// "never wait": every cold request is served from the fallback
    /// (the solves still complete and populate the cache before the
    /// call returns).
    pub solve_deadline: Duration,
    /// Worker threads for cache-miss solves within one batch.
    pub solver_threads: usize,
    /// Retry, breaker, and stale-store tuning for the resilience
    /// ladder (see the [module docs](self)).
    pub resilience: ResilienceConfig,
    /// Deterministic fault-injection schedule. The default (empty)
    /// plan injects nothing and leaves every ladder rung inert; chaos
    /// harnesses like `bench_chaos` script solver faults, shard
    /// blackouts, evict storms, and deadline jitter through it.
    pub chaos: FaultPlan,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            n_shards: 2,
            delta: 0.2,
            radius: f64::INFINITY,
            cg: CgOptions::default(),
            epsilon_bucket: 0.25,
            cache_capacity: 64,
            solve_deadline: Duration::from_millis(200),
            solver_threads: 2,
            resilience: ResilienceConfig::default(),
            chaos: FaultPlan::default(),
        }
    }
}

/// Tuning for the resilience ladder: bounded retry (rung 1), the
/// per-shard circuit breaker (rung 2), and the stale store (rung 3).
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Total solve attempts per `(shard, ε-bucket)` per batch,
    /// including the first (≥ 1). Attempts beyond the first are
    /// counted as [`metrics::RETRY_ATTEMPTS`].
    pub max_attempts: u32,
    /// Base backoff before the first retry; attempt `n` waits
    /// `min(backoff_base · 2ⁿ⁻¹, backoff_cap)` plus deterministic
    /// jitter in `[0, backoff_base)` seeded from the chaos plan.
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff term.
    pub backoff_cap: Duration,
    /// Consecutive solve failures (retries exhausted) that trip a
    /// shard's breaker from `Closed` to `Open`.
    pub breaker_threshold: u32,
    /// Batches a breaker stays `Open` before moving to `HalfOpen` and
    /// admitting a single probe solve.
    pub breaker_cooldown: u64,
    /// Maximum `(shard, ε-bucket)` entries kept in the stale store;
    /// the oldest demotion is dropped first.
    pub stale_capacity: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base: Duration::from_micros(500),
            backoff_cap: Duration::from_millis(10),
            breaker_threshold: 3,
            breaker_cooldown: 2,
            stale_capacity: 64,
        }
    }
}

/// The per-shard circuit-breaker state (ladder rung 2).
///
/// ```text
///            ≥ threshold consecutive
///            solve failures
///  Closed ───────────────────────────► Open
///    ▲                                  │ cooldown batches elapse
///    │ probe solve                      ▼
///    └────────────────────────────── HalfOpen
///      succeeds          (probe fails: back to Open)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: cache-miss solves run on the worker pool.
    Closed,
    /// The shard's solves are shed without an attempt; requests are
    /// served from the stale store or the fallback.
    Open,
    /// The cooldown elapsed: exactly one probe solve per batch is
    /// admitted; success re-closes, failure re-opens.
    HalfOpen,
}

impl BreakerState {
    /// Numeric encoding used by [`metrics::breaker_state_series`]:
    /// `0` closed, `1` half-open, `2` open.
    pub fn as_f64(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

/// One shard's circuit breaker. All transitions happen at
/// deterministic points of `obfuscate_batch` (tick at batch start,
/// success/failure accounting in solve-key order), so breaker
/// trajectories are reproducible for a given fault schedule.
#[derive(Debug, Clone)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: u64,
}

impl Breaker {
    fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: 0,
        }
    }

    /// Batch-start transition: `Open` → `HalfOpen` once the cooldown
    /// has elapsed. Returns whether the transition happened.
    fn tick(&mut self, batch: u64, cooldown: u64) -> bool {
        if self.state == BreakerState::Open && batch >= self.opened_at.saturating_add(cooldown) {
            self.state = BreakerState::HalfOpen;
            true
        } else {
            false
        }
    }

    /// Records one solve failure (retries exhausted, or a blackout).
    /// Returns whether the breaker transitioned to `Open`.
    fn on_failure(&mut self, batch: u64, threshold: u32) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::Closed if self.consecutive_failures >= threshold => {
                self.state = BreakerState::Open;
                self.opened_at = batch;
                true
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = batch;
                true
            }
            _ => false,
        }
    }

    /// Records one successful solve. Returns whether a half-open
    /// breaker re-closed. A success while `Open` (a solve raced the
    /// trip in the same batch) resets the failure run but stays open —
    /// recovery is only ever declared by a half-open probe.
    fn on_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            true
        } else {
            false
        }
    }
}

/// Where a served mechanism came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// The optimally solved mechanism for the request's
    /// `(shard, ε-bucket)`; `cached` is true when it was already in
    /// the cache before this batch.
    Optimal {
        /// Whether the mechanism was a cache hit (vs. solved within
        /// this batch's deadline).
        cached: bool,
    },
    /// A previously solved optimal mechanism for the same
    /// `(shard, ε-bucket)`, served from the stale store because the
    /// fresh solve failed or was shed by an open breaker. Same
    /// canonical ε and interval graph as a fresh optimum — identical
    /// privacy, possibly suboptimal quality (e.g. solved under an
    /// outdated prior).
    Stale {
        /// Batches elapsed since the mechanism was demoted from the
        /// primary cache.
        age_batches: u64,
    },
    /// The graph-Laplace fallback: the solve missed the deadline (or
    /// failed with nothing stale to serve), so quality was sacrificed
    /// to keep ε intact.
    Fallback,
}

/// One served obfuscation: the reported (obfuscated) position plus
/// provenance. Locations and intervals are in the shard's local frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obfuscation {
    /// The requesting worker.
    pub worker: WorkerId,
    /// The shard the worker's true location fell in.
    pub shard: usize,
    /// The reported interval, indexed in the shard's discretization.
    pub interval: usize,
    /// The reported location on the shard's local graph.
    pub location: Location,
    /// The canonical (bucketed) ε the served mechanism enforces —
    /// at most the requested ε.
    pub epsilon: f64,
    /// Which mechanism served the request.
    pub served: Served,
}

/// A mechanism held in the service cache.
#[derive(Debug, Clone)]
struct CachedSolve {
    mechanism: Mechanism,
    quality_loss: f64,
}

/// What happened to one distinct cache-miss `(shard, ε-bucket)` key.
/// `Solved`/`Failed` carry `(elapsed, retries, panics-caught)` from the
/// worker; `Blackout` and `Shed` never reached the pool.
enum MissOutcome {
    Solved(CachedSolve, Duration, u32, u32),
    Failed(Duration, u32, u32),
    Blackout,
    Shed,
}

/// The failpoint evaluation key for one solve attempt: a pure mix of
/// `(batch, shard, ε-bucket, attempt)`, so fault schedules are
/// independent of how solves are distributed over worker threads.
fn solve_key(batch: u64, key: (usize, u64), attempt: u32) -> u64 {
    batch
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((key.0 as u64).rotate_left(40))
        .wrapping_add(key.1.rotate_left(20))
        .wrapping_add(u64::from(attempt))
}

/// A minimal LRU map over `(shard, ε-bucket)` keys: recency is a
/// monotonic tick; eviction scans for the minimum (capacities are
/// small, and the scan is deterministic because ticks are unique).
#[derive(Debug)]
struct LruCache {
    capacity: usize,
    tick: u64,
    map: HashMap<(usize, u64), (CachedSolve, u64)>,
}

impl LruCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn contains(&self, key: (usize, u64)) -> bool {
        self.map.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn get(&mut self, key: (usize, u64)) -> Option<&CachedSolve> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|entry| {
            entry.1 = tick;
            &entry.0
        })
    }

    /// Inserts (or refreshes) an entry; returns the entry evicted to
    /// make room, if any, so the caller can demote it to the stale
    /// store instead of losing it.
    fn insert(
        &mut self,
        key: (usize, u64),
        value: CachedSolve,
    ) -> Option<((usize, u64), CachedSolve)> {
        self.tick += 1;
        let mut evicted = None;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(&k, _)| k)
            {
                let (entry, _) = self.map.remove(&oldest).expect("oldest key present");
                evicted = Some((oldest, entry));
            }
        }
        self.map.insert(key, (value, self.tick));
        evicted
    }

    /// Removes every entry belonging to `shard` and returns them (in
    /// key order) for demotion to the stale store.
    fn invalidate_shard(&mut self, shard: usize) -> Vec<((usize, u64), CachedSolve)> {
        self.drain_where(|&(s, _)| s == shard)
    }

    /// Removes every entry (an evict storm) and returns them in key
    /// order.
    fn drain_all(&mut self) -> Vec<((usize, u64), CachedSolve)> {
        self.drain_where(|_| true)
    }

    fn drain_where(
        &mut self,
        pred: impl Fn(&(usize, u64)) -> bool,
    ) -> Vec<((usize, u64), CachedSolve)> {
        let mut keys: Vec<(usize, u64)> = self.map.keys().filter(|k| pred(k)).copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(|k| {
                let (entry, _) = self.map.remove(&k).expect("key listed above");
                (k, entry)
            })
            .collect()
    }
}

/// One region shard: its VLP instance, its task queue, and its
/// circuit breaker. Task ids are numbered per shard.
#[derive(Debug)]
struct Shard {
    instance: VlpInstance,
    tasks: Vec<Task>,
    pending: Vec<TaskId>,
    breaker: Breaker,
}

/// One shard's slice of the service health snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// The shard index.
    pub shard: usize,
    /// The shard's breaker state.
    pub breaker: BreakerState,
    /// Consecutive solve failures in the current run (resets on any
    /// success).
    pub consecutive_failures: u32,
    /// The batch at which the breaker last opened, when not `Closed`.
    pub opened_at_batch: Option<u64>,
    /// Solved mechanisms currently cached for this shard.
    pub cached: usize,
    /// Mechanisms held in the stale store for this shard.
    pub stale: usize,
}

/// A readiness/health snapshot of the service, for operators and
/// harnesses. The same information is exported per batch through the
/// `vlp-obs` registry (`service.breaker.state.<s>` series plus the
/// `service.*`/`chaos.*` counters) — see `OPERATIONS.md`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceHealth {
    /// Batches served so far.
    pub batches: u64,
    /// Whether every shard's breaker is closed (full capacity; no
    /// degraded serving beyond deadline fallbacks).
    pub ready: bool,
    /// Per-shard detail, in shard order.
    pub shards: Vec<ShardHealth>,
}

/// The concurrent, sharded mechanism-serving layer. See the
/// [module docs](self) for the serving model and the resilience
/// ladder.
#[derive(Debug)]
pub struct MechanismService {
    partition: Partition,
    shards: Vec<Shard>,
    cache: LruCache,
    /// Ladder rung 3: mechanisms displaced from the primary cache,
    /// keyed like it, each tagged with the batch of its demotion.
    stale: HashMap<(usize, u64), (CachedSolve, u64)>,
    fallbacks: HashMap<(usize, u64), Mechanism>,
    /// The fault-injection schedule, shared with solver workers.
    chaos: Arc<FaultPlan>,
    /// Batches served so far; the key for batch-scoped failpoints and
    /// staleness ages.
    batches: u64,
    config: ServiceConfig,
}

impl MechanismService {
    /// Boots a service over `graph`: partitions it into
    /// `config.n_shards` region shards and prepares one uniform-prior
    /// [`VlpInstance`] per shard. No mechanism is solved yet — the
    /// cache starts cold and fills on demand.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero shards, bucket
    /// width, capacity, or threads; non-positive δ) or the graph is too
    /// small to partition into `n_shards` bands.
    pub fn new(graph: RoadGraph, config: ServiceConfig) -> Self {
        assert!(config.n_shards > 0, "need at least one shard");
        assert!(config.delta > 0.0, "delta must be positive");
        assert!(config.epsilon_bucket > 0.0, "bucket width must be positive");
        assert!(config.cache_capacity > 0, "cache capacity must be positive");
        assert!(config.solver_threads > 0, "need at least one solver thread");
        assert!(
            config.resilience.max_attempts > 0,
            "need at least one solve attempt"
        );
        assert!(
            config.resilience.breaker_threshold > 0,
            "breaker threshold must be positive"
        );
        assert!(
            config.resilience.stale_capacity > 0,
            "stale capacity must be positive"
        );
        let partition = Partition::by_bands(&graph, config.n_shards);
        let shards = partition
            .shards()
            .iter()
            .map(|s| Shard {
                instance: VlpInstance::uniform(s.graph().clone(), config.delta),
                tasks: Vec::new(),
                pending: Vec::new(),
                breaker: Breaker::new(),
            })
            .collect();
        let chaos = Arc::new(config.chaos.clone());
        Self {
            partition,
            shards,
            cache: LruCache::new(config.cache_capacity),
            stale: HashMap::new(),
            fallbacks: HashMap::new(),
            chaos,
            batches: 0,
            config,
        }
    }

    /// The region partition the service shards over.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of region shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The VLP instance of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn shard_instance(&self, s: usize) -> &VlpInstance {
        &self.shards[s].instance
    }

    /// Number of solved mechanisms currently cached.
    pub fn cached_mechanisms(&self) -> usize {
        self.cache.len()
    }

    /// The quality loss (ETDD) of the cached optimal mechanism for
    /// shard `s` at `epsilon`'s bucket, if one is cached. Does not
    /// touch LRU recency.
    pub fn cached_quality_loss(&self, s: usize, epsilon: f64) -> Option<f64> {
        let (bucket, _) = self.bucket(epsilon);
        self.cache
            .map
            .get(&(s, bucket))
            .map(|entry| entry.0.quality_loss)
    }

    /// The cached optimal mechanism for shard `s` at `epsilon`'s
    /// bucket, if one is cached. Does not touch LRU recency — use for
    /// auditing (e.g. [`vlp_core::privacy::verify`]), not serving.
    pub fn cached_mechanism(&self, s: usize, epsilon: f64) -> Option<&Mechanism> {
        let (bucket, _) = self.bucket(epsilon);
        self.cache
            .map
            .get(&(s, bucket))
            .map(|entry| &entry.0.mechanism)
    }

    /// The graph-Laplace fallback mechanism for shard `s` at
    /// `epsilon`'s bucket, if one has been built (fallbacks are built
    /// lazily, on the first deadline miss of their key).
    pub fn fallback_mechanism(&self, s: usize, epsilon: f64) -> Option<&Mechanism> {
        let (bucket, _) = self.bucket(epsilon);
        self.fallbacks.get(&(s, bucket))
    }

    /// Number of mechanisms currently held in the stale store.
    pub fn stale_mechanisms(&self) -> usize {
        self.stale.len()
    }

    /// The stale mechanism for shard `s` at `epsilon`'s bucket, if one
    /// is held, with the batch it was demoted at.
    pub fn stale_mechanism(&self, s: usize, epsilon: f64) -> Option<(&Mechanism, u64)> {
        let (bucket, _) = self.bucket(epsilon);
        self.stale
            .get(&(s, bucket))
            .map(|(entry, demoted)| (&entry.mechanism, *demoted))
    }

    /// Batches served so far.
    pub fn batches_served(&self) -> u64 {
        self.batches
    }

    /// The breaker state of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn breaker_state(&self, s: usize) -> BreakerState {
        self.shards[s].breaker.state
    }

    /// A point-in-time health/readiness snapshot: per-shard breaker
    /// states, failure runs, and cache/stale occupancy. The same data
    /// lands in the `vlp-obs` registry every batch.
    pub fn health(&self) -> ServiceHealth {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, shard)| ShardHealth {
                shard: s,
                breaker: shard.breaker.state,
                consecutive_failures: shard.breaker.consecutive_failures,
                opened_at_batch: (shard.breaker.state != BreakerState::Closed)
                    .then_some(shard.breaker.opened_at),
                cached: self.cache.map.keys().filter(|&&(sh, _)| sh == s).count(),
                stale: self.stale.keys().filter(|&&(sh, _)| sh == s).count(),
            })
            .collect::<Vec<_>>();
        ServiceHealth {
            batches: self.batches,
            ready: shards.iter().all(|h| h.breaker == BreakerState::Closed),
            shards,
        }
    }

    /// Every mechanism the service currently holds — cached optima,
    /// stale entries, and built fallbacks — as
    /// `(shard, canonical ε, mechanism)`, in a deterministic order.
    /// Chaos harnesses audit each against full-spec
    /// [`vlp_core::privacy::verify`]: everything servable must satisfy
    /// ε-Geo-I at its canonical ε, whatever rung it sits on.
    pub fn live_mechanisms(&self) -> Vec<(usize, f64, &Mechanism)> {
        let width = self.config.epsilon_bucket;
        let mut out: Vec<(usize, u64, &Mechanism)> = Vec::new();
        out.extend(
            self.cache
                .map
                .iter()
                .map(|(&(s, b), (entry, _))| (s, b, &entry.mechanism)),
        );
        out.extend(
            self.stale
                .iter()
                .map(|(&(s, b), (entry, _))| (s, b, &entry.mechanism)),
        );
        out.extend(self.fallbacks.iter().map(|(&(s, b), m)| (s, b, m)));
        out.sort_by_key(|&(s, b, _)| (s, b));
        out.into_iter()
            .map(|(s, b, m)| (s, b as f64 * width, m))
            .collect()
    }

    /// Demotes a displaced cache entry into the bounded stale store
    /// (ladder rung 3), evicting the oldest demotion on overflow.
    fn demote(&mut self, key: (usize, u64), entry: CachedSolve, batch: u64) {
        if !self.stale.contains_key(&key)
            && self.stale.len() >= self.config.resilience.stale_capacity
        {
            if let Some(&victim) = self
                .stale
                .iter()
                .map(|(k, &(_, demoted))| (demoted, k))
                .min()
                .map(|(_, k)| k)
            {
                self.stale.remove(&victim);
            }
        }
        self.stale.insert(key, (entry, batch));
        vlp_obs::global().incr(metrics::STALE_DEMOTIONS, 1);
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The canonical ε a request for `epsilon` is served at: `epsilon`
    /// rounded down to the bucket grid. Always `≤ epsilon`, so the
    /// served mechanism is at least as private as requested.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is below one bucket width (rounding down
    /// would hit ε = 0, which no mechanism can satisfy usefully).
    pub fn canonical_epsilon(&self, epsilon: f64) -> f64 {
        self.bucket(epsilon).1
    }

    fn bucket(&self, epsilon: f64) -> (u64, f64) {
        let width = self.config.epsilon_bucket;
        assert!(
            epsilon >= width,
            "requested epsilon {epsilon} is below the bucket width {width}"
        );
        // The nudge keeps exact multiples (5.0 / 0.25) from flooring
        // into the bucket below through float error.
        let bucket = (epsilon / width + 1e-9).floor() as u64;
        (bucket, bucket as f64 * width)
    }

    /// Updates shard `s`'s worker prior and invalidates its cached
    /// mechanisms (they were optimal for the old prior). Fallbacks are
    /// prior-free and stay.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or the prior's dimension does not
    /// match the shard's interval count.
    pub fn set_worker_prior(&mut self, s: usize, f_p: Prior) {
        self.shards[s].instance.set_worker_prior(f_p);
        let dropped = self.cache.invalidate_shard(s);
        vlp_obs::global().incr(metrics::PRIOR_INVALIDATIONS, dropped.len() as u64);
        // The displaced mechanisms are optimal for the *old* prior:
        // stale in quality, identical in privacy — demote, don't drop.
        let batch = self.batches;
        for (key, entry) in dropped {
            self.demote(key, entry, batch);
        }
    }

    /// Serves a batch of obfuscation requests `(worker, true location,
    /// requested ε)` — the batch API vehicles hit each reporting round.
    ///
    /// Cache hits are served directly. Distinct missing
    /// `(shard, ε-bucket)` keys are solved on a pool of
    /// [`ServiceConfig::solver_threads`] scoped threads; requests whose
    /// solve finishes within [`ServiceConfig::solve_deadline`] are
    /// served optimally, the rest from the graph-Laplace fallback at
    /// the same canonical ε. All finished solves are cached before the
    /// call returns. Requests whose location lies on no shard (dropped
    /// cross-boundary edges) are skipped and counted as
    /// `service.off_partition`.
    ///
    /// Under an injected fault schedule ([`ServiceConfig::chaos`]) the
    /// resilience ladder engages: failed solve attempts retry with
    /// backoff, shards with open breakers shed their solves, and keys
    /// whose solve failed (or was shed) are served from the stale store
    /// when possible ([`Served::Stale`]) — otherwise from the fallback.
    /// A plain deadline miss is *not* a failure: it serves the fallback
    /// exactly as in the fault-free service.
    ///
    /// Sampling uses the caller's `rng`, so runs are reproducible.
    pub fn obfuscate_batch<R: RngExt + ?Sized>(
        &mut self,
        requests: &[(WorkerId, Location, f64)],
        rng: &mut R,
    ) -> Vec<Obfuscation> {
        let obs = vlp_obs::global();
        let _span = obs.start(metrics::BATCH_TIME);
        obs.incr(metrics::REQUESTS, requests.len() as u64);
        let batch = self.batches;
        self.batches += 1;

        // Batch-scoped chaos: deadline jitter, evict storms, and shard
        // blackouts are keyed by the batch index, so a schedule reads
        // as a timeline. With an empty plan this block is inert.
        let plan = Arc::clone(&self.chaos);
        let chaos_on = !plan.is_empty();
        let mut effective_deadline = self.config.solve_deadline;
        let mut blackout: HashSet<usize> = HashSet::new();
        if chaos_on {
            if plan.evaluate(site::SERVICE_DEADLINE_JITTER, batch) {
                effective_deadline = Duration::ZERO;
            }
            if plan.evaluate(site::SERVICE_EVICT_STORM, batch) {
                for (key, entry) in self.cache.drain_all() {
                    self.demote(key, entry, batch);
                }
            }
            for s in 0..self.shards.len() {
                if plan.evaluate(&site::shard_blackout(s), batch) {
                    blackout.insert(s);
                }
            }
        }

        // Breaker tick: open breakers whose cooldown elapsed admit one
        // probe this batch.
        let cooldown = self.config.resilience.breaker_cooldown;
        for shard in &mut self.shards {
            if shard.breaker.tick(batch, cooldown) {
                obs.incr(metrics::BREAKER_HALF_OPEN, 1);
            }
        }

        // Phase A: map requests into shards and classify hit/miss.
        struct Resolved {
            worker: WorkerId,
            shard: usize,
            local: Location,
            key: (usize, u64),
            canonical: f64,
            was_hit: bool,
        }
        let mut resolved: Vec<Resolved> = Vec::with_capacity(requests.len());
        let mut missing: Vec<((usize, u64), f64)> = Vec::new();
        let mut missing_seen: HashSet<(usize, u64)> = HashSet::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for &(worker, loc, epsilon) in requests {
            let Some((shard, local)) = self.partition.to_local(loc) else {
                obs.incr(metrics::OFF_PARTITION, 1);
                continue;
            };
            let (bucket, canonical) = self.bucket(epsilon);
            let key = (shard, bucket);
            let was_hit = self.cache.contains(key);
            if was_hit {
                hits += 1;
            } else {
                misses += 1;
                if missing_seen.insert(key) {
                    missing.push((key, canonical));
                }
            }
            resolved.push(Resolved {
                worker,
                shard,
                local,
                key,
                canonical,
                was_hit,
            });
        }
        obs.incr(metrics::CACHE_HITS, hits);
        obs.incr(metrics::CACHE_MISSES, misses);

        // Gate misses through the breakers: open shards shed, half-open
        // shards admit one probe, blacked-out shards fail instantly.
        let mut to_solve: Vec<((usize, u64), f64)> = Vec::new();
        let mut outcomes: Vec<((usize, u64), MissOutcome)> = Vec::new();
        let mut probe_used: HashSet<usize> = HashSet::new();
        for &(key, eps) in &missing {
            match self.shards[key.0].breaker.state {
                BreakerState::Open => outcomes.push((key, MissOutcome::Shed)),
                BreakerState::HalfOpen if !probe_used.insert(key.0) => {
                    outcomes.push((key, MissOutcome::Shed));
                }
                _ if blackout.contains(&key.0) => outcomes.push((key, MissOutcome::Blackout)),
                _ => to_solve.push((key, eps)),
            }
        }

        // Phase B: solve the admitted misses on the worker pool,
        // waiting at most the (possibly jittered) deadline before
        // moving on. The channel drain after the deadline blocks until
        // every solve lands, so the cache is fully warm when this call
        // returns — only *serving* is deadline-bound. Each attempt runs
        // under a failpoint scope keyed by `(batch, key, attempt)` and
        // an unwind boundary, so injected errors and panics retry with
        // deterministic backoff (ladder rung 1).
        let mut in_time: HashSet<(usize, u64)> = HashSet::new();
        if !to_solve.is_empty() {
            let shards = &self.shards;
            let cg = &self.config.cg;
            let radius = self.config.radius;
            let max_attempts = self.config.resilience.max_attempts;
            let base_ns = self.config.resilience.backoff_base.as_nanos() as u64;
            let cap_ns = self.config.resilience.backoff_cap.as_nanos() as u64;
            let n_threads = self.config.solver_threads.min(to_solve.len());
            let chunk_len = to_solve.len().div_ceil(n_threads);
            thread::scope(|scope| {
                let (tx, rx) = mpsc::channel();
                for chunk in to_solve.chunks(chunk_len) {
                    let tx = tx.clone();
                    let plan = Arc::clone(&plan);
                    scope.spawn(move || {
                        for &(key, eps) in chunk {
                            let started = Instant::now();
                            let mut retries = 0u32;
                            let mut panics = 0u32;
                            let mut solved: Option<CachedSolve> = None;
                            for attempt in 1..=max_attempts {
                                if attempt > 1 {
                                    retries += 1;
                                    let exp = base_ns
                                        .saturating_mul(1u64 << (attempt - 2).min(20))
                                        .min(cap_ns);
                                    let jitter = failpoint::backoff_jitter_ns(
                                        plan.seed(),
                                        solve_key(batch, key, 0),
                                        attempt,
                                        base_ns,
                                    );
                                    thread::sleep(Duration::from_nanos(exp + jitter));
                                }
                                let _scope = chaos_on.then(|| {
                                    failpoint::activate(
                                        Arc::clone(&plan),
                                        solve_key(batch, key, attempt),
                                    )
                                });
                                let result = catch_unwind(AssertUnwindSafe(|| {
                                    shards[key.0].instance.solve(eps, radius, cg)
                                }));
                                match result {
                                    Ok(Ok(s)) => {
                                        solved = Some(CachedSolve {
                                            mechanism: s.mechanism,
                                            quality_loss: s.quality_loss,
                                        });
                                        break;
                                    }
                                    Ok(Err(_)) => {}
                                    Err(_) => panics += 1,
                                }
                            }
                            let outcome = match solved {
                                Some(s) => {
                                    MissOutcome::Solved(s, started.elapsed(), retries, panics)
                                }
                                None => MissOutcome::Failed(started.elapsed(), retries, panics),
                            };
                            let _ = tx.send((key, outcome));
                        }
                    });
                }
                drop(tx);
                let deadline_at = Instant::now() + effective_deadline;
                if !effective_deadline.is_zero() {
                    loop {
                        let now = Instant::now();
                        if now >= deadline_at {
                            break;
                        }
                        match rx.recv_timeout(deadline_at - now) {
                            Ok(item) => {
                                if matches!(item.1, MissOutcome::Solved(..)) {
                                    in_time.insert(item.0);
                                }
                                outcomes.push(item);
                            }
                            Err(_) => break, // timeout or all senders done
                        }
                    }
                }
                // Late solves: not served this batch, but cached for
                // the next one.
                for item in rx {
                    outcomes.push(item);
                }
            });
        }

        // Phase C: account outcomes in solve-key order (channel arrival
        // order depends on thread timing; breaker and cache state must
        // not), cache everything that solved, then serve.
        outcomes.sort_by_key(|o| o.0);
        let threshold = self.config.resilience.breaker_threshold;
        let mut fresh: HashMap<(usize, u64), CachedSolve> = HashMap::new();
        let mut failed_keys: HashSet<(usize, u64)> = HashSet::new();
        for (key, outcome) in outcomes {
            match outcome {
                MissOutcome::Solved(solve, elapsed, retries, panics) => {
                    obs.record_duration(metrics::SOLVE_TIME, elapsed);
                    if retries > 0 {
                        obs.incr(metrics::RETRY_ATTEMPTS, u64::from(retries));
                    }
                    if panics > 0 {
                        obs.incr(metrics::PANICS_CAUGHT, u64::from(panics));
                    }
                    if self.shards[key.0].breaker.on_success() {
                        obs.incr(metrics::BREAKER_RECLOSED, 1);
                    }
                    if let Some((evicted_key, evicted)) = self.cache.insert(key, solve.clone()) {
                        obs.incr(metrics::CACHE_EVICTIONS, 1);
                        self.demote(evicted_key, evicted, batch);
                    }
                    // A fresh optimum supersedes any stale copy.
                    self.stale.remove(&key);
                    fresh.insert(key, solve);
                }
                MissOutcome::Failed(elapsed, retries, panics) => {
                    obs.record_duration(metrics::SOLVE_TIME, elapsed);
                    if retries > 0 {
                        obs.incr(metrics::RETRY_ATTEMPTS, u64::from(retries));
                    }
                    if panics > 0 {
                        obs.incr(metrics::PANICS_CAUGHT, u64::from(panics));
                    }
                    obs.incr(metrics::SOLVE_ERRORS, 1);
                    if self.shards[key.0].breaker.on_failure(batch, threshold) {
                        obs.incr(metrics::BREAKER_OPENED, 1);
                    }
                    failed_keys.insert(key);
                }
                MissOutcome::Blackout => {
                    obs.incr(metrics::SOLVE_ERRORS, 1);
                    if self.shards[key.0].breaker.on_failure(batch, threshold) {
                        obs.incr(metrics::BREAKER_OPENED, 1);
                    }
                    failed_keys.insert(key);
                }
                MissOutcome::Shed => {
                    obs.incr(metrics::BREAKER_SHED, 1);
                    failed_keys.insert(key);
                }
            }
        }

        let mut out = Vec::with_capacity(resolved.len());
        let (mut optimal, mut stale_served, mut fallback) = (0u64, 0u64, 0u64);
        for r in resolved {
            let instance = &self.shards[r.shard].instance;
            let i = instance
                .disc
                .locate(&instance.graph, r.local)
                .expect("shard-local location lies on the shard");
            let optimal_entry = if r.was_hit || in_time.contains(&r.key) {
                // A hit can still have been evicted by this batch's own
                // inserts; `fresh` keeps same-batch solves reachable.
                self.cache.get(r.key).or_else(|| fresh.get(&r.key))
            } else {
                None
            };
            // Stale serving (rung 3) only engages when the key's solve
            // *failed* or was shed — a plain deadline miss still falls
            // back, exactly as the fault-free service does.
            let stale_entry = if optimal_entry.is_none() && failed_keys.contains(&r.key) {
                self.stale.get(&r.key)
            } else {
                None
            };
            let (mechanism, served) = match (optimal_entry, stale_entry) {
                (Some(entry), _) => (&entry.mechanism, Served::Optimal { cached: r.was_hit }),
                (None, Some((entry, demoted))) => (
                    &entry.mechanism,
                    Served::Stale {
                        age_batches: batch.saturating_sub(*demoted),
                    },
                ),
                (None, None) => {
                    let m = self
                        .fallbacks
                        .entry(r.key)
                        .or_insert_with(|| instance.fallback(r.canonical));
                    (&*m, Served::Fallback)
                }
            };
            match served {
                Served::Optimal { .. } => optimal += 1,
                Served::Stale { .. } => stale_served += 1,
                Served::Fallback => fallback += 1,
            }
            let j = mechanism.sample_interval(i, rng);
            let location = instance
                .disc
                .transplant(&instance.graph, r.local, j)
                .expect("reported interval lies on the shard");
            out.push(Obfuscation {
                worker: r.worker,
                shard: r.shard,
                interval: j,
                location,
                epsilon: r.canonical,
                served,
            });
        }
        obs.incr(metrics::OPTIMAL_SERVED, optimal);
        obs.incr(metrics::STALE_SERVED, stale_served);
        obs.incr(metrics::FALLBACK_SERVED, fallback);

        // Export the health snapshot: one breaker-state sample per
        // shard per batch.
        for (s, shard) in self.shards.iter().enumerate() {
            obs.push(
                &metrics::breaker_state_series(s),
                shard.breaker.state.as_f64(),
            );
        }
        out
    }

    /// Publishes a task at `interval` of shard `s`; ids are numbered
    /// per shard.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `interval` is out of range.
    pub fn publish_task(&mut self, s: usize, interval: usize) -> TaskId {
        let shard = &mut self.shards[s];
        assert!(
            interval < shard.instance.len(),
            "task interval out of range"
        );
        let id = TaskId(shard.tasks.len());
        shard.tasks.push(Task { id, interval });
        shard.pending.push(id);
        id
    }

    /// Tasks of shard `s` waiting for assignment.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn pending_tasks(&self, s: usize) -> &[TaskId] {
        &self.shards[s].pending
    }

    /// Runs one assignment snapshot on shard `s` over reports
    /// `(worker, reported interval)` — the same Hungarian-matching
    /// path as [`crate::Server::snapshot`], scoped to the shard.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn snapshot(&mut self, s: usize, reports: &[(WorkerId, usize)]) -> SnapshotOutcome {
        let shard = &mut self.shards[s];
        assign_snapshot(
            &shard.instance.interval_dists,
            &shard.tasks,
            &mut shard.pending,
            reports,
        )
    }

    /// Fans a batch of served obfuscations out into per-shard
    /// assignment snapshots. Returns `(shard, outcome)` for every
    /// shard that received at least one report, in shard order.
    pub fn snapshot_batch(&mut self, reports: &[Obfuscation]) -> Vec<(usize, SnapshotOutcome)> {
        let mut by_shard: Vec<Vec<(WorkerId, usize)>> = vec![Vec::new(); self.shards.len()];
        for r in reports {
            by_shard[r.shard].push((r.worker, r.interval));
        }
        by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, reports)| !reports.is_empty())
            .map(|(s, reports)| {
                let outcome = self.snapshot(s, &reports);
                (s, outcome)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use roadnet::generators;
    use vlp_core::privacy;
    use vlp_obs::failpoint::FaultMode;

    fn service(deadline: Duration) -> MechanismService {
        let g = generators::grid(3, 4, 0.4, true);
        MechanismService::new(
            g,
            ServiceConfig {
                n_shards: 2,
                delta: 0.2,
                solve_deadline: deadline,
                ..ServiceConfig::default()
            },
        )
    }

    /// One request per shard, placed on the first global edge that
    /// maps into each shard (same 3×4 grid as [`service`]).
    fn requests(svc: &MechanismService, epsilon: f64) -> Vec<(WorkerId, Location, f64)> {
        let g = generators::grid(3, 4, 0.4, true);
        let mut per_shard: HashMap<usize, Location> = HashMap::new();
        for e in 0..g.edge_count() {
            let loc = Location::new(roadnet::EdgeId(e), 0.1);
            if let Some((s, _)) = svc.partition().to_local(loc) {
                per_shard.entry(s).or_insert(loc);
            }
        }
        (0..svc.shard_count())
            .filter_map(|s| per_shard.get(&s).map(|&loc| (WorkerId(s), loc, epsilon)))
            .collect()
    }

    #[test]
    fn zero_deadline_serves_fallback_then_cache_hits() {
        let mut svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let reqs = requests(&svc, 5.0);
        assert_eq!(reqs.len(), 2, "one request per shard");

        let cold = svc.obfuscate_batch(&reqs, &mut rng);
        assert_eq!(cold.len(), 2);
        assert!(cold.iter().all(|o| o.served == Served::Fallback));
        // The solves still landed in the cache.
        assert_eq!(svc.cached_mechanisms(), 2);

        let warm = svc.obfuscate_batch(&reqs, &mut rng);
        assert!(warm
            .iter()
            .all(|o| o.served == Served::Optimal { cached: true }));
    }

    #[test]
    fn generous_deadline_serves_optimal_on_cold_cache() {
        let mut svc = service(Duration::from_secs(60));
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let reqs = requests(&svc, 5.0);
        let out = svc.obfuscate_batch(&reqs, &mut rng);
        assert!(out
            .iter()
            .all(|o| o.served == Served::Optimal { cached: false }));
    }

    #[test]
    fn epsilon_buckets_round_down_and_share_cache_entries() {
        let mut svc = service(Duration::ZERO);
        assert_eq!(svc.canonical_epsilon(5.0), 5.0);
        assert_eq!(svc.canonical_epsilon(5.1), 5.0);
        assert_eq!(svc.canonical_epsilon(5.24), 5.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut reqs = requests(&svc, 5.0);
        let extra: Vec<_> = reqs.iter().map(|&(w, l, _)| (w, l, 5.2)).collect();
        reqs.extend(extra);
        let out = svc.obfuscate_batch(&reqs, &mut rng);
        // 5.0 and 5.2 share a bucket: one entry per shard, and every
        // outcome reports the canonical ε.
        assert_eq!(svc.cached_mechanisms(), 2);
        assert!(out.iter().all(|o| o.epsilon == 5.0));
    }

    #[test]
    #[should_panic(expected = "below the bucket width")]
    fn sub_bucket_epsilon_is_rejected() {
        let svc = service(Duration::ZERO);
        svc.canonical_epsilon(0.1);
    }

    #[test]
    fn lru_evicts_least_recently_used_entry() {
        let mut cache = LruCache::new(2);
        let entry = || CachedSolve {
            mechanism: Mechanism::uniform(2),
            quality_loss: 0.0,
        };
        assert!(cache.insert((0, 1), entry()).is_none());
        assert!(cache.insert((0, 2), entry()).is_none());
        assert!(cache.get((0, 1)).is_some()); // bump (0, 1)
        let evicted = cache.insert((0, 3), entry()); // evicts (0, 2)
        assert_eq!(evicted.map(|(key, _)| key), Some((0, 2)));
        assert!(cache.contains((0, 1)));
        assert!(!cache.contains((0, 2)));
        assert!(cache.contains((0, 3)));
    }

    #[test]
    fn every_served_mechanism_passes_privacy_verify() {
        let mut svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let reqs = requests(&svc, 5.0);
        let _ = svc.obfuscate_batch(&reqs, &mut rng); // fallback round
        let _ = svc.obfuscate_batch(&reqs, &mut rng); // cached round
        for &(_, loc, eps) in &reqs {
            let (s, _) = svc.partition().to_local(loc).unwrap();
            let canonical = svc.canonical_epsilon(eps);
            let inst = svc.shard_instance(s);
            let spec = vlp_core::PrivacySpec::full(&inst.aux, canonical, f64::INFINITY);
            let fallback = svc.fallbacks.get(&(s, 20)).expect("fallback built");
            assert!(privacy::verify(fallback, &spec, 1e-6));
            let cached = svc.cache.get((s, 20)).expect("solve cached");
            assert!(privacy::verify(&cached.mechanism, &spec, 1e-6));
        }
    }

    #[test]
    fn prior_update_invalidates_only_that_shard() {
        let mut svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let reqs = requests(&svc, 5.0);
        let _ = svc.obfuscate_batch(&reqs, &mut rng);
        assert_eq!(svc.cached_mechanisms(), 2);
        let k = svc.shard_instance(0).len();
        svc.set_worker_prior(0, Prior::uniform(k));
        assert_eq!(svc.cached_mechanisms(), 1);
        assert!(!svc.cache.contains((0, 20)));
        assert!(svc.cache.contains((1, 20)));
    }

    #[test]
    fn snapshot_batch_feeds_per_shard_assignment() {
        let mut svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for s in 0..svc.shard_count() {
            svc.publish_task(s, 0);
        }
        let reqs = requests(&svc, 5.0);
        let served = svc.obfuscate_batch(&reqs, &mut rng);
        let outcomes = svc.snapshot_batch(&served);
        assert_eq!(outcomes.len(), 2);
        for (s, outcome) in outcomes {
            assert_eq!(outcome.assignments.len(), 1, "shard {s} assigns its task");
            assert!(svc.pending_tasks(s).is_empty());
        }
    }

    /// The full ladder, scripted end to end: an evict storm forces a
    /// miss every batch, a shard-0 blackout over batches `[1, 4)`
    /// drives three consecutive failures (threshold) so the breaker
    /// opens, the stale store serves through the outage with growing
    /// age, and the half-open probe after the cooldown re-closes it.
    #[test]
    fn breaker_opens_serves_stale_and_recloses_after_probe() {
        let g = generators::grid(3, 4, 0.4, true);
        let chaos = FaultPlan::new(7)
            .with(site::SERVICE_EVICT_STORM, FaultMode::Every(1))
            .with(
                site::shard_blackout(0),
                FaultMode::Window { from: 1, to: 4 },
            );
        let mut svc = MechanismService::new(
            g,
            ServiceConfig {
                n_shards: 2,
                delta: 0.2,
                solve_deadline: Duration::ZERO,
                resilience: ResilienceConfig {
                    breaker_threshold: 3,
                    breaker_cooldown: 2,
                    ..ResilienceConfig::default()
                },
                chaos,
                ..ServiceConfig::default()
            },
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let reqs = requests(&svc, 5.0);
        assert_eq!(reqs.len(), 2, "one request per shard");

        let mut shard0_served = Vec::new();
        let mut states = Vec::new();
        for _ in 0..6 {
            let out = svc.obfuscate_batch(&reqs, &mut rng);
            shard0_served.push(out[0].served);
            states.push(svc.breaker_state(0));
        }
        assert_eq!(
            states,
            [
                BreakerState::Closed, // batch 0: clean solve (zero deadline)
                BreakerState::Closed, // batch 1: blackout failure 1
                BreakerState::Closed, // batch 2: blackout failure 2
                BreakerState::Open,   // batch 3: failure 3 trips it
                BreakerState::Open,   // batch 4: cooling down (shed)
                BreakerState::Closed, // batch 5: half-open probe re-closes
            ]
        );
        assert_eq!(
            shard0_served,
            [
                Served::Fallback, // cold, zero deadline
                Served::Stale { age_batches: 0 },
                Served::Stale { age_batches: 1 },
                Served::Stale { age_batches: 2 },
                Served::Stale { age_batches: 3 }, // shed while open
                Served::Fallback,                 // probe solved late (zero deadline)
            ]
        );
        // Shard 1 is untouched by the blackout and stays closed.
        assert_eq!(svc.breaker_state(1), BreakerState::Closed);
        // The health snapshot reflected the outage and the recovery.
        let health = svc.health();
        assert!(health.ready);
        assert_eq!(health.batches, 6);
        assert_eq!(health.shards[0].consecutive_failures, 0);
    }

    #[test]
    fn health_snapshot_reports_open_breaker_as_not_ready() {
        let g = generators::grid(3, 4, 0.4, true);
        let chaos = FaultPlan::new(1)
            .with(site::SERVICE_EVICT_STORM, FaultMode::Every(1))
            .with(site::shard_blackout(0), FaultMode::Always);
        let mut svc = MechanismService::new(
            g,
            ServiceConfig {
                n_shards: 2,
                delta: 0.2,
                solve_deadline: Duration::ZERO,
                resilience: ResilienceConfig {
                    breaker_threshold: 1,
                    breaker_cooldown: 100,
                    ..ResilienceConfig::default()
                },
                chaos,
                ..ServiceConfig::default()
            },
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let reqs = requests(&svc, 5.0);
        let _ = svc.obfuscate_batch(&reqs, &mut rng);
        let health = svc.health();
        assert!(!health.ready, "an open breaker must clear readiness");
        assert_eq!(health.shards[0].breaker, BreakerState::Open);
        assert_eq!(health.shards[0].opened_at_batch, Some(0));
        assert_eq!(health.shards[1].breaker, BreakerState::Closed);
    }

    /// An empty fault plan must leave the ladder fully inert: the
    /// service's outputs are identical to a service that has no chaos
    /// configured at all, batch for batch, bit for bit.
    #[test]
    fn empty_fault_plan_is_bit_identical_to_no_plan() {
        let mk = |chaos: FaultPlan| {
            MechanismService::new(
                generators::grid(3, 4, 0.4, true),
                ServiceConfig {
                    n_shards: 2,
                    delta: 0.2,
                    solve_deadline: Duration::ZERO,
                    chaos,
                    ..ServiceConfig::default()
                },
            )
        };
        let mut a = mk(FaultPlan::default());
        let mut b = mk(FaultPlan::new(0xDEAD_BEEF)); // seeded but empty
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(31);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(31);
        let reqs = requests(&a, 5.0);
        for _ in 0..3 {
            let out_a = a.obfuscate_batch(&reqs, &mut rng_a);
            let out_b = b.obfuscate_batch(&reqs, &mut rng_b);
            assert_eq!(out_a, out_b);
        }
    }

    /// Pins the direction of ε-bucket rounding: requested budgets round
    /// *down* to the grid, so the canonical ε is never larger than the
    /// request — the served mechanism is never *less* private than
    /// asked for. A mechanism valid at the canonical ε is automatically
    /// valid at the (larger) requested ε because ε-Geo-I constraints
    /// relax monotonically in ε.
    #[test]
    fn epsilon_bucket_rounding_direction_is_never_less_private() {
        let svc = service(Duration::ZERO);
        let width = svc.config().epsilon_bucket;
        for step in 0..40 {
            let requested = 0.25 + 0.17 * step as f64;
            let canonical = svc.canonical_epsilon(requested);
            assert!(
                canonical <= requested + 1e-12,
                "canonical ε {canonical} must not exceed requested {requested}"
            );
            let grid = (canonical / width).round();
            assert!(
                (canonical - grid * width).abs() < 1e-9,
                "canonical ε {canonical} must sit on the bucket grid"
            );
        }
        // Monotonicity makes the rounding safe: a mechanism built at
        // the canonical (smaller) ε still verifies at the requested ε.
        let requested = 5.24;
        let canonical = svc.canonical_epsilon(requested);
        assert_eq!(canonical, 5.0);
        let inst = svc.shard_instance(0);
        let mechanism = inst.fallback(canonical);
        for eps in [canonical, requested] {
            let spec = vlp_core::PrivacySpec::full(&inst.aux, eps, f64::INFINITY);
            assert!(privacy::verify(&mechanism, &spec, 1e-6));
        }
    }

    /// Every rung's product — cached optimum, stale entry, fallback —
    /// satisfies full-spec ε-Geo-I at its canonical ε, even mid-outage.
    #[test]
    fn live_mechanisms_stay_epsilon_valid_under_faults() {
        let g = generators::grid(3, 4, 0.4, true);
        let chaos = FaultPlan::new(99)
            .with(site::SERVICE_EVICT_STORM, FaultMode::Every(2))
            .with(
                site::shard_blackout(0),
                FaultMode::Window { from: 1, to: 3 },
            );
        let mut svc = MechanismService::new(
            g,
            ServiceConfig {
                n_shards: 2,
                delta: 0.2,
                solve_deadline: Duration::ZERO,
                chaos,
                ..ServiceConfig::default()
            },
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let reqs = requests(&svc, 5.0);
        for _ in 0..4 {
            let _ = svc.obfuscate_batch(&reqs, &mut rng);
            for (s, eps, mechanism) in svc.live_mechanisms() {
                let inst = svc.shard_instance(s);
                let spec = vlp_core::PrivacySpec::full(&inst.aux, eps, f64::INFINITY);
                assert!(
                    privacy::verify(mechanism, &spec, 1e-6),
                    "shard {s} mechanism at ε={eps} must stay ε-Geo-I valid"
                );
            }
        }
    }

    #[test]
    fn off_partition_requests_are_skipped() {
        let mut svc = service(Duration::ZERO);
        let cross = svc.partition().cross_edges().to_vec();
        if cross.is_empty() {
            return; // nothing to test on this map
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let out = svc.obfuscate_batch(
            &[(WorkerId(0), Location::new(cross[0], 0.1), 5.0)],
            &mut rng,
        );
        assert!(out.is_empty());
    }
}
