//! The sharded mechanism-serving layer: many regions, one service.
//!
//! A city-scale deployment does not solve one giant D-VLP over the
//! whole map — it partitions the road network into region shards
//! ([`roadnet::Partition`]), poses an independent instance per shard,
//! and serves vehicles from whichever shard they drive in.
//! [`MechanismService`] is that serving layer:
//!
//! * **Sharding** — the graph is split into bands of near-equal node
//!   count; each shard owns its own [`VlpInstance`] (discretization,
//!   interval distances, cost matrix) and its own task queue.
//! * **LRU caching** — solved mechanisms are cached per
//!   `(shard, ε-bucket)` with a capacity bound; hits, misses, and
//!   evictions are counted in [`vlp_obs`]. Requested budgets are
//!   rounded *down* to the bucket grid, so the cached mechanism is
//!   always at least as private as requested.
//! * **Deadline fallback** — cache misses are solved on a worker pool
//!   (`std::thread::scope`); a request whose solve misses the
//!   configured deadline is served immediately from the closed-form
//!   graph-Laplace baseline ([`VlpInstance::fallback`]) at the same
//!   canonical ε. The deadline trades *quality* (the fallback is
//!   sub-optimal), never privacy. Late solves still land in the cache
//!   before the batch returns, so the next batch hits.
//! * **Assignment** — obfuscated reports feed the same
//!   Hungarian-matching snapshot path the single-region [`Server`]
//!   uses, per shard.
//!
//! [`Server`]: crate::Server

use std::collections::{HashMap, HashSet};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use rand::RngExt;
use roadnet::{Location, Partition, RoadGraph};
use vlp_core::{CgOptions, Mechanism, Prior, VlpInstance};

use crate::server::assign_snapshot;
use crate::{SnapshotOutcome, Task, TaskId, WorkerId};

/// Telemetry metric names recorded by [`MechanismService`].
pub mod metrics {
    /// Counter: obfuscation requests received across batches.
    pub const REQUESTS: &str = "service.requests";
    /// Timer: wall time of one `obfuscate_batch` call.
    pub const BATCH_TIME: &str = "service.batch";
    /// Counter: requests whose `(shard, ε-bucket)` mechanism was
    /// already cached when the batch arrived.
    pub const CACHE_HITS: &str = "service.cache_hits";
    /// Counter: requests that found no cached mechanism.
    pub const CACHE_MISSES: &str = "service.cache_misses";
    /// Counter: cache entries evicted to respect the capacity bound.
    pub const CACHE_EVICTIONS: &str = "service.cache_evictions";
    /// Counter: requests served from an optimally solved mechanism
    /// (cached or solved within the deadline).
    pub const OPTIMAL_SERVED: &str = "service.optimal_served";
    /// Counter: requests served from the graph-Laplace fallback
    /// because the solve missed the deadline (or failed).
    pub const FALLBACK_SERVED: &str = "service.fallback_served";
    /// Timer: wall time of one per-shard mechanism solve on the
    /// worker pool.
    pub const SOLVE_TIME: &str = "service.solve";
    /// Counter: solves that returned an error (the request falls back;
    /// nothing is cached).
    pub const SOLVE_ERRORS: &str = "service.solve_errors";
    /// Counter: requests whose location could not be mapped into any
    /// shard (e.g. on a dropped cross-boundary edge); they are skipped.
    pub const OFF_PARTITION: &str = "service.off_partition";
    /// Counter: cache entries invalidated by a shard prior update.
    pub const PRIOR_INVALIDATIONS: &str = "service.prior_invalidations";
}

/// Configuration for [`MechanismService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of region shards to partition the map into.
    pub n_shards: usize,
    /// Interval length δ for each shard's discretization, km.
    pub delta: f64,
    /// Geo-I protection radius, km.
    pub radius: f64,
    /// Column-generation options for cache-miss solves.
    pub cg: CgOptions,
    /// Width of the ε cache buckets (per km). A requested ε is rounded
    /// *down* to a multiple of this width, so the served mechanism is
    /// never less private than asked for. Requests below one bucket
    /// width are rejected.
    pub epsilon_bucket: f64,
    /// Maximum number of `(shard, ε-bucket)` mechanisms kept in the
    /// LRU cache.
    pub cache_capacity: usize,
    /// How long one `obfuscate_batch` call synchronously waits for
    /// cache-miss solves before serving the fallback. `ZERO` means
    /// "never wait": every cold request is served from the fallback
    /// (the solves still complete and populate the cache before the
    /// call returns).
    pub solve_deadline: Duration,
    /// Worker threads for cache-miss solves within one batch.
    pub solver_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            n_shards: 2,
            delta: 0.2,
            radius: f64::INFINITY,
            cg: CgOptions::default(),
            epsilon_bucket: 0.25,
            cache_capacity: 64,
            solve_deadline: Duration::from_millis(200),
            solver_threads: 2,
        }
    }
}

/// Where a served mechanism came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// The optimally solved mechanism for the request's
    /// `(shard, ε-bucket)`; `cached` is true when it was already in
    /// the cache before this batch.
    Optimal {
        /// Whether the mechanism was a cache hit (vs. solved within
        /// this batch's deadline).
        cached: bool,
    },
    /// The graph-Laplace fallback: the solve missed the deadline (or
    /// failed), so quality was sacrificed to keep ε intact.
    Fallback,
}

/// One served obfuscation: the reported (obfuscated) position plus
/// provenance. Locations and intervals are in the shard's local frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obfuscation {
    /// The requesting worker.
    pub worker: WorkerId,
    /// The shard the worker's true location fell in.
    pub shard: usize,
    /// The reported interval, indexed in the shard's discretization.
    pub interval: usize,
    /// The reported location on the shard's local graph.
    pub location: Location,
    /// The canonical (bucketed) ε the served mechanism enforces —
    /// at most the requested ε.
    pub epsilon: f64,
    /// Which mechanism served the request.
    pub served: Served,
}

/// A mechanism held in the service cache.
#[derive(Debug, Clone)]
struct CachedSolve {
    mechanism: Mechanism,
    quality_loss: f64,
}

/// A minimal LRU map over `(shard, ε-bucket)` keys: recency is a
/// monotonic tick; eviction scans for the minimum (capacities are
/// small, and the scan is deterministic because ticks are unique).
#[derive(Debug)]
struct LruCache {
    capacity: usize,
    tick: u64,
    map: HashMap<(usize, u64), (CachedSolve, u64)>,
}

impl LruCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn contains(&self, key: (usize, u64)) -> bool {
        self.map.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn get(&mut self, key: (usize, u64)) -> Option<&CachedSolve> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|entry| {
            entry.1 = tick;
            &entry.0
        })
    }

    /// Inserts (or refreshes) an entry; returns whether another entry
    /// was evicted to make room.
    fn insert(&mut self, key: (usize, u64), value: CachedSolve) -> bool {
        self.tick += 1;
        let mut evicted = false;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(&k, _)| k)
            {
                self.map.remove(&oldest);
                evicted = true;
            }
        }
        self.map.insert(key, (value, self.tick));
        evicted
    }

    /// Drops every entry belonging to `shard`; returns how many.
    fn invalidate_shard(&mut self, shard: usize) -> usize {
        let before = self.map.len();
        self.map.retain(|&(s, _), _| s != shard);
        before - self.map.len()
    }
}

/// One region shard: its VLP instance plus its task queue. Task ids
/// are numbered per shard.
#[derive(Debug)]
struct Shard {
    instance: VlpInstance,
    tasks: Vec<Task>,
    pending: Vec<TaskId>,
}

/// The concurrent, sharded mechanism-serving layer. See the
/// [module docs](self) for the serving model.
#[derive(Debug)]
pub struct MechanismService {
    partition: Partition,
    shards: Vec<Shard>,
    cache: LruCache,
    fallbacks: HashMap<(usize, u64), Mechanism>,
    config: ServiceConfig,
}

impl MechanismService {
    /// Boots a service over `graph`: partitions it into
    /// `config.n_shards` region shards and prepares one uniform-prior
    /// [`VlpInstance`] per shard. No mechanism is solved yet — the
    /// cache starts cold and fills on demand.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero shards, bucket
    /// width, capacity, or threads; non-positive δ) or the graph is too
    /// small to partition into `n_shards` bands.
    pub fn new(graph: RoadGraph, config: ServiceConfig) -> Self {
        assert!(config.n_shards > 0, "need at least one shard");
        assert!(config.delta > 0.0, "delta must be positive");
        assert!(config.epsilon_bucket > 0.0, "bucket width must be positive");
        assert!(config.cache_capacity > 0, "cache capacity must be positive");
        assert!(config.solver_threads > 0, "need at least one solver thread");
        let partition = Partition::by_bands(&graph, config.n_shards);
        let shards = partition
            .shards()
            .iter()
            .map(|s| Shard {
                instance: VlpInstance::uniform(s.graph().clone(), config.delta),
                tasks: Vec::new(),
                pending: Vec::new(),
            })
            .collect();
        Self {
            partition,
            shards,
            cache: LruCache::new(config.cache_capacity),
            fallbacks: HashMap::new(),
            config,
        }
    }

    /// The region partition the service shards over.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of region shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The VLP instance of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn shard_instance(&self, s: usize) -> &VlpInstance {
        &self.shards[s].instance
    }

    /// Number of solved mechanisms currently cached.
    pub fn cached_mechanisms(&self) -> usize {
        self.cache.len()
    }

    /// The quality loss (ETDD) of the cached optimal mechanism for
    /// shard `s` at `epsilon`'s bucket, if one is cached. Does not
    /// touch LRU recency.
    pub fn cached_quality_loss(&self, s: usize, epsilon: f64) -> Option<f64> {
        let (bucket, _) = self.bucket(epsilon);
        self.cache
            .map
            .get(&(s, bucket))
            .map(|entry| entry.0.quality_loss)
    }

    /// The cached optimal mechanism for shard `s` at `epsilon`'s
    /// bucket, if one is cached. Does not touch LRU recency — use for
    /// auditing (e.g. [`vlp_core::privacy::verify`]), not serving.
    pub fn cached_mechanism(&self, s: usize, epsilon: f64) -> Option<&Mechanism> {
        let (bucket, _) = self.bucket(epsilon);
        self.cache
            .map
            .get(&(s, bucket))
            .map(|entry| &entry.0.mechanism)
    }

    /// The graph-Laplace fallback mechanism for shard `s` at
    /// `epsilon`'s bucket, if one has been built (fallbacks are built
    /// lazily, on the first deadline miss of their key).
    pub fn fallback_mechanism(&self, s: usize, epsilon: f64) -> Option<&Mechanism> {
        let (bucket, _) = self.bucket(epsilon);
        self.fallbacks.get(&(s, bucket))
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The canonical ε a request for `epsilon` is served at: `epsilon`
    /// rounded down to the bucket grid. Always `≤ epsilon`, so the
    /// served mechanism is at least as private as requested.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is below one bucket width (rounding down
    /// would hit ε = 0, which no mechanism can satisfy usefully).
    pub fn canonical_epsilon(&self, epsilon: f64) -> f64 {
        self.bucket(epsilon).1
    }

    fn bucket(&self, epsilon: f64) -> (u64, f64) {
        let width = self.config.epsilon_bucket;
        assert!(
            epsilon >= width,
            "requested epsilon {epsilon} is below the bucket width {width}"
        );
        // The nudge keeps exact multiples (5.0 / 0.25) from flooring
        // into the bucket below through float error.
        let bucket = (epsilon / width + 1e-9).floor() as u64;
        (bucket, bucket as f64 * width)
    }

    /// Updates shard `s`'s worker prior and invalidates its cached
    /// mechanisms (they were optimal for the old prior). Fallbacks are
    /// prior-free and stay.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or the prior's dimension does not
    /// match the shard's interval count.
    pub fn set_worker_prior(&mut self, s: usize, f_p: Prior) {
        self.shards[s].instance.set_worker_prior(f_p);
        let dropped = self.cache.invalidate_shard(s);
        vlp_obs::global().incr(metrics::PRIOR_INVALIDATIONS, dropped as u64);
    }

    /// Serves a batch of obfuscation requests `(worker, true location,
    /// requested ε)` — the batch API vehicles hit each reporting round.
    ///
    /// Cache hits are served directly. Distinct missing
    /// `(shard, ε-bucket)` keys are solved on a pool of
    /// [`ServiceConfig::solver_threads`] scoped threads; requests whose
    /// solve finishes within [`ServiceConfig::solve_deadline`] are
    /// served optimally, the rest from the graph-Laplace fallback at
    /// the same canonical ε. All finished solves are cached before the
    /// call returns. Requests whose location lies on no shard (dropped
    /// cross-boundary edges) are skipped and counted as
    /// `service.off_partition`.
    ///
    /// Sampling uses the caller's `rng`, so runs are reproducible.
    pub fn obfuscate_batch<R: RngExt + ?Sized>(
        &mut self,
        requests: &[(WorkerId, Location, f64)],
        rng: &mut R,
    ) -> Vec<Obfuscation> {
        let obs = vlp_obs::global();
        let _span = obs.start(metrics::BATCH_TIME);
        obs.incr(metrics::REQUESTS, requests.len() as u64);

        // Phase A: map requests into shards and classify hit/miss.
        struct Resolved {
            worker: WorkerId,
            shard: usize,
            local: Location,
            key: (usize, u64),
            canonical: f64,
            was_hit: bool,
        }
        let mut resolved: Vec<Resolved> = Vec::with_capacity(requests.len());
        let mut missing: Vec<((usize, u64), f64)> = Vec::new();
        let mut missing_seen: HashSet<(usize, u64)> = HashSet::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for &(worker, loc, epsilon) in requests {
            let Some((shard, local)) = self.partition.to_local(loc) else {
                obs.incr(metrics::OFF_PARTITION, 1);
                continue;
            };
            let (bucket, canonical) = self.bucket(epsilon);
            let key = (shard, bucket);
            let was_hit = self.cache.contains(key);
            if was_hit {
                hits += 1;
            } else {
                misses += 1;
                if missing_seen.insert(key) {
                    missing.push((key, canonical));
                }
            }
            resolved.push(Resolved {
                worker,
                shard,
                local,
                key,
                canonical,
                was_hit,
            });
        }
        obs.incr(metrics::CACHE_HITS, hits);
        obs.incr(metrics::CACHE_MISSES, misses);

        // Phase B: solve distinct misses on the worker pool, waiting
        // at most `solve_deadline` before moving on. The channel drain
        // after the deadline blocks until every solve lands, so the
        // cache is fully warm when this call returns — only *serving*
        // is deadline-bound.
        type SolveOutcome = ((usize, u64), Result<CachedSolve, ()>, Duration);
        let mut in_time: HashSet<(usize, u64)> = HashSet::new();
        let mut finished: Vec<SolveOutcome> = Vec::new();
        if !missing.is_empty() {
            let shards = &self.shards;
            let cg = &self.config.cg;
            let radius = self.config.radius;
            let deadline = self.config.solve_deadline;
            let n_threads = self.config.solver_threads.min(missing.len());
            let chunk_len = missing.len().div_ceil(n_threads);
            thread::scope(|scope| {
                let (tx, rx) = mpsc::channel();
                for chunk in missing.chunks(chunk_len) {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        for &(key, eps) in chunk {
                            let started = Instant::now();
                            let result = shards[key.0]
                                .instance
                                .solve(eps, radius, cg)
                                .map(|s| CachedSolve {
                                    mechanism: s.mechanism,
                                    quality_loss: s.quality_loss,
                                })
                                .map_err(|_| ());
                            let _ = tx.send((key, result, started.elapsed()));
                        }
                    });
                }
                drop(tx);
                let deadline_at = Instant::now() + deadline;
                if !deadline.is_zero() {
                    loop {
                        let now = Instant::now();
                        if now >= deadline_at {
                            break;
                        }
                        match rx.recv_timeout(deadline_at - now) {
                            Ok(item) => {
                                if item.1.is_ok() {
                                    in_time.insert(item.0);
                                }
                                finished.push(item);
                            }
                            Err(_) => break, // timeout or all senders done
                        }
                    }
                }
                // Late solves: not served this batch, but cached for
                // the next one.
                for item in rx {
                    finished.push(item);
                }
            });
        }

        // Phase C: cache everything that solved, then serve.
        let mut fresh: HashMap<(usize, u64), CachedSolve> = HashMap::new();
        for (key, result, elapsed) in finished {
            obs.record_duration(metrics::SOLVE_TIME, elapsed);
            match result {
                Ok(solve) => {
                    if self.cache.insert(key, solve.clone()) {
                        obs.incr(metrics::CACHE_EVICTIONS, 1);
                    }
                    fresh.insert(key, solve);
                }
                Err(()) => obs.incr(metrics::SOLVE_ERRORS, 1),
            }
        }

        let mut out = Vec::with_capacity(resolved.len());
        let (mut optimal, mut fallback) = (0u64, 0u64);
        for r in resolved {
            let instance = &self.shards[r.shard].instance;
            let i = instance
                .disc
                .locate(&instance.graph, r.local)
                .expect("shard-local location lies on the shard");
            let optimal_entry = if r.was_hit || in_time.contains(&r.key) {
                // A hit can still have been evicted by this batch's own
                // inserts; `fresh` keeps same-batch solves reachable.
                self.cache.get(r.key).or_else(|| fresh.get(&r.key))
            } else {
                None
            };
            let (mechanism, served) = match optimal_entry {
                Some(entry) => (&entry.mechanism, Served::Optimal { cached: r.was_hit }),
                None => {
                    let m = self
                        .fallbacks
                        .entry(r.key)
                        .or_insert_with(|| instance.fallback(r.canonical));
                    (&*m, Served::Fallback)
                }
            };
            match served {
                Served::Optimal { .. } => optimal += 1,
                Served::Fallback => fallback += 1,
            }
            let j = mechanism.sample_interval(i, rng);
            let location = instance
                .disc
                .transplant(&instance.graph, r.local, j)
                .expect("reported interval lies on the shard");
            out.push(Obfuscation {
                worker: r.worker,
                shard: r.shard,
                interval: j,
                location,
                epsilon: r.canonical,
                served,
            });
        }
        obs.incr(metrics::OPTIMAL_SERVED, optimal);
        obs.incr(metrics::FALLBACK_SERVED, fallback);
        out
    }

    /// Publishes a task at `interval` of shard `s`; ids are numbered
    /// per shard.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `interval` is out of range.
    pub fn publish_task(&mut self, s: usize, interval: usize) -> TaskId {
        let shard = &mut self.shards[s];
        assert!(
            interval < shard.instance.len(),
            "task interval out of range"
        );
        let id = TaskId(shard.tasks.len());
        shard.tasks.push(Task { id, interval });
        shard.pending.push(id);
        id
    }

    /// Tasks of shard `s` waiting for assignment.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn pending_tasks(&self, s: usize) -> &[TaskId] {
        &self.shards[s].pending
    }

    /// Runs one assignment snapshot on shard `s` over reports
    /// `(worker, reported interval)` — the same Hungarian-matching
    /// path as [`crate::Server::snapshot`], scoped to the shard.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn snapshot(&mut self, s: usize, reports: &[(WorkerId, usize)]) -> SnapshotOutcome {
        let shard = &mut self.shards[s];
        assign_snapshot(
            &shard.instance.interval_dists,
            &shard.tasks,
            &mut shard.pending,
            reports,
        )
    }

    /// Fans a batch of served obfuscations out into per-shard
    /// assignment snapshots. Returns `(shard, outcome)` for every
    /// shard that received at least one report, in shard order.
    pub fn snapshot_batch(&mut self, reports: &[Obfuscation]) -> Vec<(usize, SnapshotOutcome)> {
        let mut by_shard: Vec<Vec<(WorkerId, usize)>> = vec![Vec::new(); self.shards.len()];
        for r in reports {
            by_shard[r.shard].push((r.worker, r.interval));
        }
        by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, reports)| !reports.is_empty())
            .map(|(s, reports)| {
                let outcome = self.snapshot(s, &reports);
                (s, outcome)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use roadnet::generators;
    use vlp_core::privacy;

    fn service(deadline: Duration) -> MechanismService {
        let g = generators::grid(3, 4, 0.4, true);
        MechanismService::new(
            g,
            ServiceConfig {
                n_shards: 2,
                delta: 0.2,
                solve_deadline: deadline,
                ..ServiceConfig::default()
            },
        )
    }

    /// One request per shard, placed on the first global edge that
    /// maps into each shard (same 3×4 grid as [`service`]).
    fn requests(svc: &MechanismService, epsilon: f64) -> Vec<(WorkerId, Location, f64)> {
        let g = generators::grid(3, 4, 0.4, true);
        let mut per_shard: HashMap<usize, Location> = HashMap::new();
        for e in 0..g.edge_count() {
            let loc = Location::new(roadnet::EdgeId(e), 0.1);
            if let Some((s, _)) = svc.partition().to_local(loc) {
                per_shard.entry(s).or_insert(loc);
            }
        }
        (0..svc.shard_count())
            .filter_map(|s| per_shard.get(&s).map(|&loc| (WorkerId(s), loc, epsilon)))
            .collect()
    }

    #[test]
    fn zero_deadline_serves_fallback_then_cache_hits() {
        let mut svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let reqs = requests(&svc, 5.0);
        assert_eq!(reqs.len(), 2, "one request per shard");

        let cold = svc.obfuscate_batch(&reqs, &mut rng);
        assert_eq!(cold.len(), 2);
        assert!(cold.iter().all(|o| o.served == Served::Fallback));
        // The solves still landed in the cache.
        assert_eq!(svc.cached_mechanisms(), 2);

        let warm = svc.obfuscate_batch(&reqs, &mut rng);
        assert!(warm
            .iter()
            .all(|o| o.served == Served::Optimal { cached: true }));
    }

    #[test]
    fn generous_deadline_serves_optimal_on_cold_cache() {
        let mut svc = service(Duration::from_secs(60));
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let reqs = requests(&svc, 5.0);
        let out = svc.obfuscate_batch(&reqs, &mut rng);
        assert!(out
            .iter()
            .all(|o| o.served == Served::Optimal { cached: false }));
    }

    #[test]
    fn epsilon_buckets_round_down_and_share_cache_entries() {
        let mut svc = service(Duration::ZERO);
        assert_eq!(svc.canonical_epsilon(5.0), 5.0);
        assert_eq!(svc.canonical_epsilon(5.1), 5.0);
        assert_eq!(svc.canonical_epsilon(5.24), 5.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut reqs = requests(&svc, 5.0);
        let extra: Vec<_> = reqs.iter().map(|&(w, l, _)| (w, l, 5.2)).collect();
        reqs.extend(extra);
        let out = svc.obfuscate_batch(&reqs, &mut rng);
        // 5.0 and 5.2 share a bucket: one entry per shard, and every
        // outcome reports the canonical ε.
        assert_eq!(svc.cached_mechanisms(), 2);
        assert!(out.iter().all(|o| o.epsilon == 5.0));
    }

    #[test]
    #[should_panic(expected = "below the bucket width")]
    fn sub_bucket_epsilon_is_rejected() {
        let svc = service(Duration::ZERO);
        svc.canonical_epsilon(0.1);
    }

    #[test]
    fn lru_evicts_least_recently_used_entry() {
        let mut cache = LruCache::new(2);
        let entry = || CachedSolve {
            mechanism: Mechanism::uniform(2),
            quality_loss: 0.0,
        };
        assert!(!cache.insert((0, 1), entry()));
        assert!(!cache.insert((0, 2), entry()));
        assert!(cache.get((0, 1)).is_some()); // bump (0, 1)
        assert!(cache.insert((0, 3), entry())); // evicts (0, 2)
        assert!(cache.contains((0, 1)));
        assert!(!cache.contains((0, 2)));
        assert!(cache.contains((0, 3)));
    }

    #[test]
    fn every_served_mechanism_passes_privacy_verify() {
        let mut svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let reqs = requests(&svc, 5.0);
        let _ = svc.obfuscate_batch(&reqs, &mut rng); // fallback round
        let _ = svc.obfuscate_batch(&reqs, &mut rng); // cached round
        for &(_, loc, eps) in &reqs {
            let (s, _) = svc.partition().to_local(loc).unwrap();
            let canonical = svc.canonical_epsilon(eps);
            let inst = svc.shard_instance(s);
            let spec = vlp_core::PrivacySpec::full(&inst.aux, canonical, f64::INFINITY);
            let fallback = svc.fallbacks.get(&(s, 20)).expect("fallback built");
            assert!(privacy::verify(fallback, &spec, 1e-6));
            let cached = svc.cache.get((s, 20)).expect("solve cached");
            assert!(privacy::verify(&cached.mechanism, &spec, 1e-6));
        }
    }

    #[test]
    fn prior_update_invalidates_only_that_shard() {
        let mut svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let reqs = requests(&svc, 5.0);
        let _ = svc.obfuscate_batch(&reqs, &mut rng);
        assert_eq!(svc.cached_mechanisms(), 2);
        let k = svc.shard_instance(0).len();
        svc.set_worker_prior(0, Prior::uniform(k));
        assert_eq!(svc.cached_mechanisms(), 1);
        assert!(!svc.cache.contains((0, 20)));
        assert!(svc.cache.contains((1, 20)));
    }

    #[test]
    fn snapshot_batch_feeds_per_shard_assignment() {
        let mut svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for s in 0..svc.shard_count() {
            svc.publish_task(s, 0);
        }
        let reqs = requests(&svc, 5.0);
        let served = svc.obfuscate_batch(&reqs, &mut rng);
        let outcomes = svc.snapshot_batch(&served);
        assert_eq!(outcomes.len(), 2);
        for (s, outcome) in outcomes {
            assert_eq!(outcome.assignments.len(), 1, "shard {s} assigns its task");
            assert!(svc.pending_tasks(s).is_empty());
        }
    }

    #[test]
    fn off_partition_requests_are_skipped() {
        let mut svc = service(Duration::ZERO);
        let cross = svc.partition().cross_edges().to_vec();
        if cross.is_empty() {
            return; // nothing to test on this map
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let out = svc.obfuscate_batch(
            &[(WorkerId(0), Location::new(cross[0], 0.1), 5.0)],
            &mut rng,
        );
        assert!(out.is_empty());
    }
}
