//! End-to-end platform simulation: workers drive, report, get
//! assigned, and complete tasks; the server refreshes the mechanism on
//! prior drift.

use mobility::{generate_trace, TraceConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::server::Server;
use crate::worker::{Worker, WorkerId};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Number of vehicle workers.
    pub n_workers: usize,
    /// Kilometres an occupied worker covers per tick.
    pub drive_km_per_tick: f64,
    /// Ticks between assignment snapshots.
    pub snapshot_every: usize,
    /// Probability per tick that a new task is published (at an
    /// interval drawn uniformly).
    pub task_rate: f64,
    /// Idle-motion configuration for the workers.
    pub trace: TraceConfig,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            n_workers: 8,
            drive_km_per_tick: 0.15,
            snapshot_every: 3,
            task_rate: 0.6,
            trace: TraceConfig {
                reports: 300,
                ..TraceConfig::default()
            },
        }
    }
}

/// Aggregated outcome of a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimulationReport {
    /// Tasks published over the run.
    pub published_tasks: usize,
    /// Tasks assigned to a worker.
    pub assigned_tasks: usize,
    /// Tasks whose worker arrived.
    pub completed_tasks: usize,
    /// Sum of *true* travel distances of all assignments, km.
    pub true_travel_km: f64,
    /// Sum of the server's *estimated* travel distances, km.
    pub estimated_travel_km: f64,
    /// Mechanism refreshes triggered during the run.
    pub mechanism_refreshes: u64,
}

impl SimulationReport {
    /// Mean absolute gap between estimated and true assignment
    /// distance — the end-to-end realization of the ETDD metric.
    pub fn mean_estimate_gap(&self) -> f64 {
        if self.assigned_tasks == 0 {
            return 0.0;
        }
        (self.estimated_travel_km - self.true_travel_km).abs() / self.assigned_tasks as f64
    }
}

/// The running simulation: one server plus a fleet of workers.
#[derive(Debug)]
pub struct Simulation {
    server: Server,
    workers: Vec<Worker>,
    config: SimulationConfig,
    rng: StdRng,
    report: SimulationReport,
    tick: usize,
}

impl Simulation {
    /// Spawns `config.n_workers` workers on the server's map, each with
    /// its own trace-driven idle motion and a downloaded mechanism.
    pub fn new(server: Server, config: SimulationConfig, seed: u64) -> Self {
        let mut workers = Vec::with_capacity(config.n_workers);
        for w in 0..config.n_workers {
            let trace = generate_trace(
                server.graph(),
                &config.trace,
                seed.wrapping_mul(31).wrapping_add(w as u64),
            );
            workers.push(Worker::new(
                WorkerId(w),
                trace.locations,
                server.mechanism().clone(),
                server.epoch(),
            ));
        }
        Self {
            server,
            workers,
            config,
            rng: StdRng::seed_from_u64(seed ^ 0xD1CE),
            report: SimulationReport::default(),
            tick: 0,
        }
    }

    /// Runs `ticks` simulation steps and returns the accumulated
    /// report.
    pub fn run(&mut self, ticks: usize) -> SimulationReport {
        for _ in 0..ticks {
            self.step();
        }
        self.report.mechanism_refreshes = self.server.refreshes();
        self.report.clone()
    }

    /// Advances the world by one tick.
    pub fn step(&mut self) {
        self.tick += 1;
        // Task arrivals.
        if self.rng.random_range(0.0..1.0) < self.config.task_rate {
            let k = self.server.disc().len();
            let interval = self.rng.random_range(0..k);
            self.server.publish_task(interval);
            self.report.published_tasks += 1;
        }
        // Worker motion and completions.
        for w in &mut self.workers {
            if w.tick(self.config.drive_km_per_tick).is_some() {
                self.report.completed_tasks += 1;
            }
        }
        // Snapshot assignment.
        if self.tick.is_multiple_of(self.config.snapshot_every) {
            self.snapshot();
        }
    }

    fn snapshot(&mut self) {
        let graph = self.server.graph().clone();
        let disc = self.server.disc().clone();
        let mut reports = Vec::new();
        for w in &self.workers {
            if let Some(j) = w.report(&graph, &disc, &mut self.rng) {
                reports.push((w.id(), j));
            }
        }
        let outcome = self.server.snapshot(&reports);
        for (task, worker, est) in outcome.assignments {
            let t = self.server.task(task);
            let widx = worker.0;
            let true_iv = disc
                .locate(&graph, self.workers[widx].true_location())
                .expect("worker stays on the map");
            let true_km = self.server.interval_dists().get(true_iv, t.interval);
            self.workers[widx].assign(task, true_km);
            self.report.assigned_tasks += 1;
            self.report.true_travel_km += true_km;
            self.report.estimated_travel_km += est;
            vlp_obs::global().push(
                crate::server::metrics::ASSIGNMENT_DISTORTION_KM,
                (est - true_km).abs(),
            );
        }
        // Prior-drift check; workers re-download on refresh.
        if self.server.maybe_refresh().unwrap_or(false) {
            let mech = self.server.mechanism().clone();
            let epoch = self.server.epoch();
            for w in &mut self.workers {
                w.download_mechanism(mech.clone(), epoch);
            }
        }
    }

    /// The server, for inspection.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// The workers, for inspection.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use roadnet::generators;

    fn sim() -> Simulation {
        let g = generators::grid(3, 3, 0.4, true);
        let server = Server::bootstrap(
            g,
            ServerConfig {
                delta: 0.2,
                refresh_min_reports: 10_000,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        Simulation::new(
            server,
            SimulationConfig {
                n_workers: 5,
                ..SimulationConfig::default()
            },
            3,
        )
    }

    #[test]
    fn simulation_completes_tasks() {
        let mut s = sim();
        let report = s.run(60);
        assert!(report.published_tasks > 0);
        assert!(report.assigned_tasks > 0);
        assert!(report.completed_tasks > 0);
        assert!(report.completed_tasks <= report.assigned_tasks);
        assert!(report.true_travel_km >= 0.0);
    }

    #[test]
    fn estimates_track_truth_loosely() {
        let mut s = sim();
        let report = s.run(80);
        // The mechanism is Geo-I-constrained, so estimates are noisy but
        // bounded by the map scale per assignment.
        assert!(
            report.mean_estimate_gap() < 3.0,
            "gap {}",
            report.mean_estimate_gap()
        );
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let g = generators::grid(3, 3, 0.4, true);
        let mk = || {
            let server = Server::bootstrap(
                g.clone(),
                ServerConfig {
                    delta: 0.2,
                    refresh_min_reports: 10_000,
                    ..ServerConfig::default()
                },
            )
            .unwrap();
            Simulation::new(
                server,
                SimulationConfig {
                    n_workers: 4,
                    ..SimulationConfig::default()
                },
                11,
            )
            .run(40)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn refresh_propagates_to_workers() {
        let g = generators::grid(2, 2, 0.5, true);
        let server = Server::bootstrap(
            g,
            ServerConfig {
                delta: 0.25,
                refresh_min_reports: 5,
                refresh_tv_threshold: 0.05,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut sim = Simulation::new(
            server,
            SimulationConfig {
                n_workers: 6,
                snapshot_every: 1,
                ..SimulationConfig::default()
            },
            21,
        );
        let report = sim.run(60);
        if report.mechanism_refreshes > 0 {
            let epoch = sim.server().epoch();
            for w in sim.workers() {
                assert_eq!(w.mechanism_epoch(), epoch, "worker missed a refresh");
            }
        }
    }
}
