//! The worker side of the framework (§2): status lifecycle and
//! obfuscated reporting.

use rand::RngExt;
use roadnet::{Location, RoadGraph};
use vlp_core::{Discretization, Mechanism};

use crate::TaskId;

/// Identifier of a registered worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub usize);

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker{}", self.0)
    }
}

/// The worker's status per §2: only `Available` workers are candidates
/// for assignment and report locations; an assigned worker is
/// `Occupied` until the task completes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkerStatus {
    /// Ready for assignment; reports obfuscated locations.
    Available,
    /// Heading to (or working on) a task; silent until done.
    Occupied {
        /// The assigned task.
        task: TaskId,
        /// Remaining travel distance to the task location, km.
        remaining_km: f64,
    },
    /// Off-shift: not a candidate and not reporting.
    Unavailable,
}

/// One vehicle worker: true position (never shared), motion along a
/// pre-generated trace while available, and the downloaded obfuscation
/// mechanism.
#[derive(Debug, Clone)]
pub struct Worker {
    id: WorkerId,
    status: WorkerStatus,
    /// The idle-motion trajectory; `cursor` indexes the current point.
    route: Vec<Location>,
    cursor: usize,
    /// The obfuscation function downloaded from the server.
    mechanism: Mechanism,
    /// Epoch of the downloaded mechanism (for refresh bookkeeping).
    mechanism_epoch: u64,
}

impl Worker {
    /// Creates an available worker that moves along `route` while idle.
    ///
    /// # Panics
    ///
    /// Panics if `route` is empty.
    pub fn new(id: WorkerId, route: Vec<Location>, mechanism: Mechanism, epoch: u64) -> Self {
        assert!(!route.is_empty(), "worker needs at least one route point");
        Self {
            id,
            status: WorkerStatus::Available,
            route,
            cursor: 0,
            mechanism,
            mechanism_epoch: epoch,
        }
    }

    /// This worker's identifier.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// Current status.
    pub fn status(&self) -> WorkerStatus {
        self.status
    }

    /// The worker's true location (private — the platform simulation
    /// uses it only to measure ground-truth outcomes).
    pub fn true_location(&self) -> Location {
        self.route[self.cursor]
    }

    /// Epoch of the mechanism this worker currently holds.
    pub fn mechanism_epoch(&self) -> u64 {
        self.mechanism_epoch
    }

    /// Downloads a fresh obfuscation function from the server (§2's
    /// "downloaded by the worker" step).
    pub fn download_mechanism(&mut self, mechanism: Mechanism, epoch: u64) {
        self.mechanism = mechanism;
        self.mechanism_epoch = epoch;
    }

    /// Produces the obfuscated report for the current location, or
    /// `None` when the worker is not available (occupied or off-shift
    /// workers do not report, per §2).
    pub fn report<R: RngExt + ?Sized>(
        &self,
        graph: &RoadGraph,
        disc: &Discretization,
        rng: &mut R,
    ) -> Option<usize> {
        if self.status != WorkerStatus::Available {
            return None;
        }
        let i = disc.locate(graph, self.true_location())?;
        Some(self.mechanism.sample_interval(i, rng))
    }

    /// Accepts an assignment: switches to `Occupied` with the true
    /// travel distance to the task (§2: the worker "will head towards
    /// the assigned task location instantly").
    pub fn assign(&mut self, task: TaskId, travel_km: f64) {
        self.status = WorkerStatus::Occupied {
            task,
            remaining_km: travel_km.max(0.0),
        };
    }

    /// Advances the worker by one tick: available workers move along
    /// their idle route; occupied workers burn down their remaining
    /// travel distance and return `Some(task)` when they arrive.
    pub fn tick(&mut self, drive_km: f64) -> Option<TaskId> {
        match self.status {
            WorkerStatus::Available => {
                self.cursor = (self.cursor + 1) % self.route.len();
                None
            }
            WorkerStatus::Occupied { task, remaining_km } => {
                let left = remaining_km - drive_km;
                if left <= 0.0 {
                    self.status = WorkerStatus::Available;
                    Some(task)
                } else {
                    self.status = WorkerStatus::Occupied {
                        task,
                        remaining_km: left,
                    };
                    None
                }
            }
            WorkerStatus::Unavailable => None,
        }
    }

    /// Takes the worker off shift.
    pub fn go_off_shift(&mut self) {
        self.status = WorkerStatus::Unavailable;
    }

    /// Brings the worker back on shift.
    pub fn go_on_shift(&mut self) {
        if self.status == WorkerStatus::Unavailable {
            self.status = WorkerStatus::Available;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use roadnet::generators;

    fn setup() -> (RoadGraph, Discretization, Worker) {
        let g = generators::grid(2, 2, 0.5, true);
        let disc = Discretization::new(&g, 0.25);
        let k = disc.len();
        let route: Vec<Location> = (0..4).map(|i| disc.interval(i).midpoint()).collect();
        let w = Worker::new(WorkerId(0), route, Mechanism::identity(k), 1);
        (g, disc, w)
    }

    #[test]
    fn available_worker_reports_truth_under_identity() {
        let (g, disc, w) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = w.report(&g, &disc, &mut rng).unwrap();
        assert_eq!(r, disc.locate(&g, w.true_location()).unwrap());
    }

    #[test]
    fn occupied_worker_is_silent_and_completes() {
        let (g, disc, mut w) = setup();
        w.assign(TaskId(9), 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(w.report(&g, &disc, &mut rng).is_none());
        assert_eq!(w.tick(0.3), None);
        assert_eq!(w.tick(0.3), Some(TaskId(9)));
        assert_eq!(w.status(), WorkerStatus::Available);
    }

    #[test]
    fn idle_worker_advances_route_cyclically() {
        let (_, _, mut w) = setup();
        let first = w.true_location();
        for _ in 0..4 {
            w.tick(0.1);
        }
        assert_eq!(w.true_location(), first);
    }

    #[test]
    fn off_shift_worker_neither_reports_nor_moves() {
        let (g, disc, mut w) = setup();
        w.go_off_shift();
        let loc = w.true_location();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(w.report(&g, &disc, &mut rng).is_none());
        w.tick(1.0);
        assert_eq!(w.true_location(), loc);
        w.go_on_shift();
        assert_eq!(w.status(), WorkerStatus::Available);
    }

    #[test]
    fn mechanism_download_bumps_epoch() {
        let (_, _, mut w) = setup();
        assert_eq!(w.mechanism_epoch(), 1);
        w.download_mechanism(Mechanism::uniform(8), 2);
        assert_eq!(w.mechanism_epoch(), 2);
    }
}
