//! The server side of the framework (§2): task publication, snapshot
//! assignment from obfuscated reports, and mechanism lifecycle.

use roadnet::RoadGraph;
use vlp_core::{
    CgOptions, Discretization, IntervalDistances, Mechanism, Prior, VlpError, VlpInstance,
};

use crate::{Task, TaskId, WorkerId};

/// Telemetry metric names recorded by the platform server (and, for
/// [`ASSIGNMENT_DISTORTION_KM`](metrics::ASSIGNMENT_DISTORTION_KM), by the surrounding simulation which
/// alone can see true worker locations).
pub mod metrics {
    /// Counter: assignment snapshots served.
    pub const SNAPSHOTS: &str = "platform.snapshots";
    /// Timer: wall time of one `Server::snapshot` call (report intake
    /// plus Hungarian matching) — the per-request report latency.
    pub const SNAPSHOT_TIME: &str = "platform.snapshot";
    /// Counter: obfuscated worker reports received across snapshots.
    pub const REPORTS_RECEIVED: &str = "platform.reports_received";
    /// Counter: task-worker assignments made.
    pub const ASSIGNMENTS: &str = "platform.assignments";
    /// Series: the server's estimated travel distance per assignment,
    /// km (computed from the *reported* interval).
    pub const ASSIGNMENT_EST_KM: &str = "platform.assignment_est_km";
    /// Series: per-assignment distortion `|estimated − true|` travel
    /// km — recorded by [`crate::Simulation`], which knows true
    /// locations; the server itself never does.
    pub const ASSIGNMENT_DISTORTION_KM: &str = "platform.assignment_distortion_km";
    /// Counter: mechanism refreshes triggered by prior drift.
    pub const REFRESHES: &str = "platform.refreshes";
    /// Timer: wall time of one mechanism (re-)solve, including
    /// constraint reduction and column generation.
    pub const RESOLVE_TIME: &str = "platform.mechanism_resolve";
}

/// Server-side configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Interval length δ for the discretization, km.
    pub delta: f64,
    /// Geo-I privacy budget ε, per km.
    pub epsilon: f64,
    /// Geo-I protection radius, km.
    pub radius: f64,
    /// Column-generation options for (re-)solving the mechanism.
    pub cg: CgOptions,
    /// Total-variation drift between the assumed prior's report
    /// marginal and the observed report histogram that triggers a
    /// mechanism refresh (§2: the function "is updated by the server
    /// based on the change of the worker's location distribution").
    pub refresh_tv_threshold: f64,
    /// Minimum number of collected reports before drift is evaluated.
    pub refresh_min_reports: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            delta: 0.2,
            epsilon: 5.0,
            radius: f64::INFINITY,
            cg: CgOptions::default(),
            refresh_tv_threshold: 0.2,
            refresh_min_reports: 50,
        }
    }
}

/// The outcome of one assignment snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotOutcome {
    /// `(task, worker, estimated travel km)` triples, one per assigned
    /// task. The estimate is computed from the *reported* interval —
    /// the server never sees true locations.
    pub assignments: Vec<(TaskId, WorkerId, f64)>,
    /// Tasks left unassigned (no reporting workers remained).
    pub unassigned: Vec<TaskId>,
}

/// The crowdsourcing server: owns the map model, the task queue, the
/// obfuscation mechanism, and the report statistics driving refreshes.
#[derive(Debug, Clone)]
pub struct Server {
    instance: VlpInstance,
    config: ServerConfig,
    mechanism: Mechanism,
    epoch: u64,
    /// Quality loss of the current mechanism under the assumed priors.
    quality_loss: f64,
    /// Observed report histogram since the last refresh.
    report_counts: Vec<f64>,
    report_total: f64,
    tasks: Vec<Task>,
    pending: Vec<TaskId>,
    refreshes: u64,
}

impl Server {
    /// Boots a server with uniform worker and task priors.
    ///
    /// # Errors
    ///
    /// Propagates [`VlpError`] from the initial mechanism solve.
    pub fn bootstrap(graph: RoadGraph, config: ServerConfig) -> Result<Self, VlpError> {
        let disc = Discretization::new(&graph, config.delta);
        let k = disc.len();
        Self::with_priors(graph, config, Prior::uniform(k), Prior::uniform(k))
    }

    /// Boots a server with explicit priors (e.g. estimated from
    /// historical traces).
    ///
    /// # Errors
    ///
    /// Propagates [`VlpError`] from the initial mechanism solve.
    ///
    /// # Panics
    ///
    /// Panics if the priors do not match the discretization size.
    pub fn with_priors(
        graph: RoadGraph,
        config: ServerConfig,
        f_p: Prior,
        f_q: Prior,
    ) -> Result<Self, VlpError> {
        let instance = VlpInstance::new(graph, config.delta, f_p, f_q);
        let k = instance.len();
        let mut server = Self {
            instance,
            config,
            mechanism: Mechanism::uniform(k),
            epoch: 0,
            quality_loss: f64::INFINITY,
            report_counts: vec![0.0; k],
            report_total: 0.0,
            tasks: Vec::new(),
            pending: Vec::new(),
            refreshes: 0,
        };
        server.resolve_mechanism()?;
        Ok(server)
    }

    /// Re-solves the mechanism for the current priors and bumps the
    /// epoch.
    fn resolve_mechanism(&mut self) -> Result<(), VlpError> {
        let _span = vlp_obs::global().start(metrics::RESOLVE_TIME);
        let solved =
            self.instance
                .solve(self.config.epsilon, self.config.radius, &self.config.cg)?;
        self.mechanism = solved.mechanism;
        self.quality_loss = solved.quality_loss;
        self.epoch += 1;
        Ok(())
    }

    /// The fully prepared VLP problem instance the server solves over.
    pub fn instance(&self) -> &VlpInstance {
        &self.instance
    }

    /// The road network this server operates on.
    pub fn graph(&self) -> &RoadGraph {
        &self.instance.graph
    }

    /// The interval partition workers report against.
    pub fn disc(&self) -> &Discretization {
        &self.instance.disc
    }

    /// Travel distances between intervals (server's cost model).
    pub fn interval_dists(&self) -> &IntervalDistances {
        &self.instance.interval_dists
    }

    /// The current obfuscation function, ready for worker download.
    pub fn mechanism(&self) -> &Mechanism {
        &self.mechanism
    }

    /// Epoch of the current mechanism (bumps on every refresh).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Expected quality loss of the current mechanism under the
    /// server's assumed priors.
    pub fn quality_loss(&self) -> f64 {
        self.quality_loss
    }

    /// Number of mechanism refreshes triggered by prior drift.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// The server's current belief about the worker location prior.
    pub fn assumed_prior(&self) -> &Prior {
        &self.instance.f_p
    }

    /// Publishes a task at the given interval and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `interval ≥ K`.
    pub fn publish_task(&mut self, interval: usize) -> TaskId {
        assert!(interval < self.instance.len(), "task interval out of range");
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task { id, interval });
        self.pending.push(id);
        id
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this server.
    pub fn task(&self, id: TaskId) -> Task {
        self.tasks[id.0]
    }

    /// Tasks waiting for assignment.
    pub fn pending_tasks(&self) -> &[TaskId] {
        &self.pending
    }

    /// Runs one assignment snapshot over the collected reports:
    /// Hungarian matching of pending tasks to reporting workers using
    /// travel costs estimated *from the reported intervals*.
    ///
    /// Every report is also folded into the drift statistics.
    pub fn snapshot(&mut self, reports: &[(WorkerId, usize)]) -> SnapshotOutcome {
        for &(_, j) in reports {
            if j < self.report_counts.len() {
                self.report_counts[j] += 1.0;
                self.report_total += 1.0;
            }
        }
        assign_snapshot(
            &self.instance.interval_dists,
            &self.tasks,
            &mut self.pending,
            reports,
        )
    }

    /// Checks the drift between the assumed prior's report marginal and
    /// the observed histogram; if it exceeds the configured threshold,
    /// re-estimates the prior from the reports (one EM step through the
    /// current mechanism) and re-solves the mechanism.
    ///
    /// Returns whether a refresh happened.
    ///
    /// # Errors
    ///
    /// Propagates [`VlpError`] from the re-solve.
    pub fn maybe_refresh(&mut self) -> Result<bool, VlpError> {
        if self.report_total < self.config.refresh_min_reports as f64 {
            return Ok(false);
        }
        let k = self.instance.len();
        // Expected report marginal under the assumed prior.
        let mut expected = vec![0.0; k];
        for i in 0..k {
            let fp = self.instance.f_p.get(i);
            if fp > 0.0 {
                for (j, e) in expected.iter_mut().enumerate() {
                    *e += fp * self.mechanism.prob(i, j);
                }
            }
        }
        let tv: f64 = expected
            .iter()
            .enumerate()
            .map(|(j, e)| (e - self.report_counts[j] / self.report_total).abs())
            .sum::<f64>()
            / 2.0;
        if tv <= self.config.refresh_tv_threshold {
            return Ok(false);
        }
        // One EM step: fold the observed reports back through the
        // posterior to a new prior estimate.
        let mut new_prior = vec![0.0; k];
        for (j, &count) in self.report_counts.iter().enumerate() {
            if count > 0.0 {
                let post = adversary::posterior(&self.mechanism, &self.instance.f_p, j);
                for (i, p) in post.iter().enumerate() {
                    new_prior[i] += count * p;
                }
            }
        }
        if let Some(p) = Prior::from_weights(&new_prior) {
            self.instance.set_worker_prior(p);
        }
        self.report_counts.iter_mut().for_each(|c| *c = 0.0);
        self.report_total = 0.0;
        self.resolve_mechanism()?;
        self.refreshes += 1;
        vlp_obs::global().incr(metrics::REFRESHES, 1);
        Ok(true)
    }
}

/// The shared snapshot-assignment path: Hungarian matching of the
/// oldest pending tasks to reporting workers using travel costs
/// estimated from the *reported* intervals, with the standard
/// `platform.*` telemetry. Assigned tasks are drained from `pending`.
///
/// Used by both [`Server::snapshot`] and the per-shard snapshot of
/// [`crate::MechanismService`].
pub(crate) fn assign_snapshot(
    interval_dists: &IntervalDistances,
    tasks: &[Task],
    pending: &mut Vec<TaskId>,
    reports: &[(WorkerId, usize)],
) -> SnapshotOutcome {
    let obs = vlp_obs::global();
    let _span = obs.start(metrics::SNAPSHOT_TIME);
    obs.incr(metrics::SNAPSHOTS, 1);
    obs.incr(metrics::REPORTS_RECEIVED, reports.len() as u64);
    if reports.is_empty() || pending.is_empty() {
        return SnapshotOutcome {
            assignments: Vec::new(),
            unassigned: pending.clone(),
        };
    }
    // Hungarian needs rows ≤ columns: assign at most as many tasks
    // as there are reporting workers, oldest tasks first.
    let n_assign = pending.len().min(reports.len());
    let rows: Vec<TaskId> = pending[..n_assign].to_vec();
    let cost: Vec<Vec<f64>> = rows
        .iter()
        .map(|&tid| {
            let t = tasks[tid.0].interval;
            reports
                .iter()
                .map(|&(_, j)| interval_dists.get(j, t))
                .collect()
        })
        .collect();
    let matched = assignment::hungarian(&cost).expect("tasks <= reporting workers");
    let mut assignments = Vec::with_capacity(n_assign);
    for (row, &col) in matched.pairs.iter().enumerate() {
        let (worker, reported) = reports[col];
        let task = rows[row];
        let est = interval_dists.get(reported, tasks[task.0].interval);
        assignments.push((task, worker, est));
    }
    obs.incr(metrics::ASSIGNMENTS, assignments.len() as u64);
    let est_kms: Vec<f64> = assignments.iter().map(|&(_, _, est)| est).collect();
    obs.extend(metrics::ASSIGNMENT_EST_KM, &est_kms);
    pending.drain(..n_assign);
    SnapshotOutcome {
        assignments,
        unassigned: pending.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators;

    fn server() -> Server {
        let g = generators::grid(2, 2, 0.5, true);
        Server::bootstrap(
            g,
            ServerConfig {
                delta: 0.25,
                ..ServerConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn bootstrap_produces_feasible_mechanism() {
        let s = server();
        assert!(s.mechanism().is_row_stochastic(1e-6));
        assert_eq!(s.epoch(), 1);
        assert!(s.quality_loss().is_finite());
    }

    #[test]
    fn publish_and_snapshot_assigns_nearest_by_estimate() {
        let mut s = server();
        let t = s.publish_task(0);
        // Two reporting workers: one reports interval 0 (on the task),
        // one reports the farthest interval.
        let far = s.disc().len() - 1;
        let out = s.snapshot(&[(WorkerId(1), far), (WorkerId(2), 0)]);
        assert_eq!(out.assignments.len(), 1);
        let (task, worker, est) = out.assignments[0];
        assert_eq!(task, t);
        assert_eq!(worker, WorkerId(2));
        assert_eq!(est, 0.0);
        assert!(s.pending_tasks().is_empty());
    }

    #[test]
    fn snapshot_without_reports_leaves_tasks_pending() {
        let mut s = server();
        let t = s.publish_task(1);
        let out = s.snapshot(&[]);
        assert!(out.assignments.is_empty());
        assert_eq!(out.unassigned, vec![t]);
        assert_eq!(s.pending_tasks(), &[t]);
    }

    #[test]
    fn more_tasks_than_workers_assigns_oldest_first() {
        let mut s = server();
        let t0 = s.publish_task(0);
        let _t1 = s.publish_task(1);
        let out = s.snapshot(&[(WorkerId(0), 2)]);
        assert_eq!(out.assignments.len(), 1);
        assert_eq!(out.assignments[0].0, t0);
        assert_eq!(s.pending_tasks().len(), 1);
    }

    #[test]
    fn refresh_fires_on_drifted_reports() {
        let mut s = server();
        // Uniform assumed prior, but every report points at interval 0:
        // drift is large once enough reports accumulate.
        let reports: Vec<(WorkerId, usize)> = (0..60).map(|w| (WorkerId(w), 0)).collect();
        let _ = s.snapshot(&reports);
        let refreshed = s.maybe_refresh().unwrap();
        assert!(refreshed, "strong drift must trigger a refresh");
        assert_eq!(s.epoch(), 2);
        assert_eq!(s.refreshes(), 1);
        // The new prior leans towards interval 0.
        let p = s.assumed_prior();
        let uniform = 1.0 / s.disc().len() as f64;
        assert!(p.get(0) > uniform);
    }

    #[test]
    fn refresh_does_not_fire_without_enough_reports() {
        let mut s = server();
        let _ = s.snapshot(&[(WorkerId(0), 0)]);
        assert!(!s.maybe_refresh().unwrap());
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn refresh_does_not_fire_on_matching_distribution() {
        use rand::SeedableRng;
        let mut s = server();
        // Feed reports drawn from the model itself (true interval from
        // the assumed prior, report through the mechanism): observed and
        // expected marginals then agree up to sampling noise.
        let mech = s.mechanism().clone();
        let prior = s.assumed_prior().clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let reports: Vec<(WorkerId, usize)> = (0..2000)
            .map(|w| {
                let i = prior.sample(&mut rng);
                (WorkerId(w), mech.sample_interval(i, &mut rng))
            })
            .collect();
        let _ = s.snapshot(&reports);
        assert!(
            !s.maybe_refresh().unwrap(),
            "model-consistent reports should not drift"
        );
    }

    #[test]
    fn snapshot_records_latency_and_assignment_telemetry() {
        let obs = vlp_obs::global();
        let snapshots = obs.counter(metrics::SNAPSHOTS);
        let reports = obs.counter(metrics::REPORTS_RECEIVED);
        let assigned = obs.counter(metrics::ASSIGNMENTS);
        let est_len = obs.series(metrics::ASSIGNMENT_EST_KM).len();
        let mut s = server();
        s.publish_task(0);
        let out = s.snapshot(&[(WorkerId(0), 0), (WorkerId(1), 1)]);
        assert_eq!(out.assignments.len(), 1);
        // Lower bounds only: tests share the global registry.
        assert!(obs.counter(metrics::SNAPSHOTS) > snapshots);
        assert!(obs.counter(metrics::REPORTS_RECEIVED) >= reports + 2);
        assert!(obs.counter(metrics::ASSIGNMENTS) > assigned);
        assert!(obs.series(metrics::ASSIGNMENT_EST_KM).len() > est_len);
        assert!(obs.timer(metrics::SNAPSHOT_TIME).is_some());
        assert!(obs.timer(metrics::RESOLVE_TIME).is_some());
    }

    #[test]
    #[should_panic(expected = "task interval out of range")]
    fn publishing_off_map_task_panics() {
        let mut s = server();
        s.publish_task(10_000);
    }
}
