//! The vehicle-based spatial-crowdsourcing platform of the paper's
//! framework section (§2, Fig. 2).
//!
//! The paper's system has two sides:
//!
//! * **Server** — publishes tasks, computes the obfuscation function
//!   (via `vlp-core`), distributes it to workers, collects obfuscated
//!   reports before each *snapshot* of task assignment, assigns tasks
//!   by estimated travel cost, and *updates the obfuscation function
//!   when the workers' location distribution drifts* ("the function is
//!   updated by the server based on the change of the worker's location
//!   distribution (estimated by the worker's reported location)");
//! * **Workers** — label themselves `available` / `occupied`, report
//!   obfuscated locations only while available, head to the assigned
//!   task instantly upon assignment, and return to `available` after
//!   completion.
//!
//! [`Simulation`] wires both sides over a road network with
//! trace-driven worker motion and reports end-to-end metrics (true
//! travel distance of assignments, completion counts, mechanism
//! refreshes). Every piece of the workspace participates: `roadnet`
//! supplies the map, `mobility` the motion, `vlp-core` the mechanism,
//! `assignment` the matching.
//!
//! For city-scale serving, [`MechanismService`] shards the map into
//! regions, caches solved mechanisms per `(shard, ε-bucket)` in a
//! bounded LRU, and serves under a solve deadline with a
//! privacy-preserving graph-Laplace fallback — see [`service`]. The
//! service also climbs a *resilience ladder* (retry → circuit breaker →
//! stale serving → fallback) under injected faults, degrading utility
//! but never the ε-Geo-I guarantee; `OPERATIONS.md` is the runbook.
//!
//! # Example
//!
//! ```
//! use platform::{Server, ServerConfig, Simulation, SimulationConfig};
//! use roadnet::generators;
//!
//! let graph = generators::grid(3, 3, 0.4, true);
//! let server = Server::bootstrap(graph, ServerConfig {
//!     delta: 0.2,
//!     epsilon: 5.0,
//!     ..ServerConfig::default()
//! })?;
//! let mut sim = Simulation::new(server, SimulationConfig {
//!     n_workers: 4,
//!     ..SimulationConfig::default()
//! }, 7);
//! let report = sim.run(40);
//! assert!(report.completed_tasks > 0);
//! # Ok::<(), vlp_core::VlpError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod server;
pub mod service;
mod simulation;
mod worker;

pub use server::metrics;
pub use server::{Server, ServerConfig, SnapshotOutcome};
pub use service::{
    BreakerState, LocalConfig, MechanismService, Obfuscation, ResilienceConfig, Response, Served,
    ServiceConfig, ServiceHandle, ServiceHealth, ShardHealth, ShutdownReport, TierPolicy,
    TraceBudgetConfig, VelocityEpsilon,
};
pub use simulation::{Simulation, SimulationConfig, SimulationReport};
pub use worker::{Worker, WorkerId, WorkerStatus};

/// Identifier of a published task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// A spatial task: something a worker must physically reach.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Identifier assigned at publication.
    pub id: TaskId,
    /// The interval the task is located in.
    pub interval: usize,
}
