//! Building blocks of the resilience ladder shared by the batch and
//! open-loop frontends: the per-shard circuit breaker (rung 2), the
//! bounded LRU mechanism cache whose displacements feed the stale
//! store (rung 3), and the vocabulary of cache-miss solve outcomes.
//!
//! Everything here is single-threaded state; the serving core wraps it
//! in per-shard locks (see [`super::core`]).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use vlp_core::{Mechanism, QualityTier};

/// The per-shard circuit-breaker state (ladder rung 2).
///
/// ```text
///            ≥ threshold consecutive
///            solve failures
///  Closed ───────────────────────────► Open
///    ▲                                  │ cooldown epochs elapse
///    │ probe solve                      ▼
///    └────────────────────────────── HalfOpen
///      succeeds          (probe fails: back to Open)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: cache-miss solves are admitted to the shard's
    /// solve queue.
    Closed,
    /// The shard's solves are shed without an attempt; requests are
    /// served from the stale store or the fallback.
    Open,
    /// The cooldown elapsed: exactly one probe solve per epoch is
    /// admitted; success re-closes, failure re-opens.
    HalfOpen,
}

impl BreakerState {
    /// Numeric encoding used by the `service.breaker.state.<s>` series:
    /// `0` closed, `1` half-open, `2` open.
    pub fn as_f64(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

/// One shard's circuit breaker. All transitions happen under the
/// shard's table lock at deterministic points (epoch tick, then
/// success/failure accounting in solve-key order within a batch), so
/// breaker trajectories are reproducible for a given fault schedule.
#[derive(Debug, Clone)]
pub(crate) struct Breaker {
    pub(crate) state: BreakerState,
    pub(crate) consecutive_failures: u32,
    pub(crate) opened_at: u64,
}

impl Breaker {
    pub(crate) fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: 0,
        }
    }

    /// Epoch-start transition: `Open` → `HalfOpen` once the cooldown
    /// has elapsed. Returns whether the transition happened.
    pub(crate) fn tick(&mut self, epoch: u64, cooldown: u64) -> bool {
        if self.state == BreakerState::Open && epoch >= self.opened_at.saturating_add(cooldown) {
            self.state = BreakerState::HalfOpen;
            true
        } else {
            false
        }
    }

    /// Records one solve failure (retries exhausted, or a blackout).
    /// Returns whether the breaker transitioned to `Open`.
    pub(crate) fn on_failure(&mut self, epoch: u64, threshold: u32) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::Closed if self.consecutive_failures >= threshold => {
                self.state = BreakerState::Open;
                self.opened_at = epoch;
                true
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = epoch;
                true
            }
            _ => false,
        }
    }

    /// Records one successful solve. Returns whether a half-open
    /// breaker re-closed. A success while `Open` (a solve raced the
    /// trip in the same epoch) resets the failure run but stays open —
    /// recovery is only ever declared by a half-open probe.
    pub(crate) fn on_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            true
        } else {
            false
        }
    }
}

/// One shard-local mechanism cache key. In full-shard mode `nb` is
/// always `0`; in locally-relevant mode it is the canonical
/// neighborhood id from the shard's `LocalityPlan`, so nearby vehicles
/// assigned to the same ρ-net center share one entry per ε-bucket.
/// Distinct quality tiers cache separately — a clustered mechanism
/// must never masquerade as the exact one — with the tier *last* in
/// the derived ordering so `(nb, bucket)` remains the primary sort and
/// all-`Exact` traffic (the default tier policy) orders exactly as
/// before the tier field existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct MechKey {
    /// Canonical neighborhood id (`0` in full-shard mode).
    pub(crate) nb: u32,
    /// ε-bucket (rounded-down canonical budget index).
    pub(crate) bucket: u64,
    /// Quality tier the cached mechanism was solved at.
    pub(crate) tier: QualityTier,
}

impl MechKey {
    /// The full-shard exact-tier key for an ε-bucket.
    pub(crate) fn full(bucket: u64) -> Self {
        Self {
            nb: 0,
            bucket,
            tier: QualityTier::Exact,
        }
    }

    /// The same `(nb, bucket)` slot at another tier.
    pub(crate) fn at_tier(self, tier: QualityTier) -> Self {
        Self { tier, ..self }
    }
}

/// Per-solve LP shape, recorded so the `O(K²) → O(k²)` claim is
/// measurable from telemetry and bench artifacts rather than asserted:
/// the support size `k`, the LP variable count (`k²`), and the
/// instantiated inequality-row count of the solved constraint set.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SolveStats {
    pub(crate) support: u64,
    pub(crate) lp_vars: u64,
    pub(crate) lp_rows: u64,
}

/// A mechanism held in the service cache. The mechanism is shared by
/// `Arc` so the caller path serves a cache hit by bumping a refcount,
/// never by copying the obfuscation matrix.
#[derive(Debug, Clone)]
pub(crate) struct CachedSolve {
    pub(crate) mechanism: Arc<Mechanism>,
    pub(crate) quality_loss: f64,
    pub(crate) stats: SolveStats,
}

/// What happened to one distinct cache-miss `(shard, ε-bucket)` key.
/// `Solved`/`Failed` carry `(elapsed, retries, panics-caught)` from the
/// solver worker; `Blackout` and `Shed` never reached a queue.
pub(crate) enum MissOutcome {
    Solved(CachedSolve, Duration, u32, u32),
    Failed(Duration, u32, u32),
    Blackout,
    Shed,
}

/// The failpoint evaluation key for one solve attempt: a pure mix of
/// `(epoch, shard, neighborhood, ε-bucket, tier, attempt)`, so fault
/// schedules are independent of how solves are distributed over worker
/// threads. The neighborhood term is zero in full-shard mode and the
/// tier term is zero for `Exact` (discriminant 0), keeping committed
/// fault schedules byte-stable across both the locally-relevant and
/// the quality-tier refactors.
pub(crate) fn solve_key(epoch: u64, key: (usize, MechKey), attempt: u32) -> u64 {
    epoch
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((key.0 as u64).rotate_left(40))
        .wrapping_add(key.1.bucket.rotate_left(20))
        .wrapping_add(u64::from(key.1.nb).rotate_left(52))
        .wrapping_add((key.1.tier as u64).rotate_left(33))
        .wrapping_add(u64::from(attempt))
}

/// A minimal LRU map over `(neighborhood, ε-bucket)` keys (one cache
/// per shard): recency is a monotonic tick; eviction scans for the
/// minimum (capacities are small, and the scan is deterministic because
/// ticks are unique).
#[derive(Debug)]
pub(crate) struct LruCache {
    capacity: usize,
    tick: u64,
    pub(crate) map: HashMap<MechKey, (CachedSolve, u64)>,
}

impl LruCache {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    pub(crate) fn contains(&self, key: MechKey) -> bool {
        self.map.contains_key(&key)
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn get(&mut self, key: MechKey) -> Option<&CachedSolve> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|entry| {
            entry.1 = tick;
            &entry.0
        })
    }

    /// Inserts (or refreshes) an entry; returns the entry evicted to
    /// make room, if any, so the caller can demote it to the stale
    /// store instead of losing it.
    pub(crate) fn insert(
        &mut self,
        key: MechKey,
        value: CachedSolve,
    ) -> Option<(MechKey, CachedSolve)> {
        self.tick += 1;
        let mut evicted = None;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(&k, _)| k)
            {
                let (entry, _) = self.map.remove(&oldest).expect("oldest key present");
                evicted = Some((oldest, entry));
            }
        }
        self.map.insert(key, (value, self.tick));
        evicted
    }

    /// Removes every entry (a prior invalidation or an evict storm)
    /// and returns them in key order for demotion.
    pub(crate) fn drain_all(&mut self) -> Vec<(MechKey, CachedSolve)> {
        let mut keys: Vec<MechKey> = self.map.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(|k| {
                let (entry, _) = self.map.remove(&k).expect("key listed above");
                (k, entry)
            })
            .collect()
    }
}
