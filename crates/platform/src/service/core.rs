//! The always-on serving core: long-lived per-shard solver workers fed
//! by bounded MPSC queues, per-shard-locked routing tables that serve
//! cache hits on the caller path, admission control with explicit
//! backpressure, and a graceful draining shutdown.
//!
//! ```text
//!              ┌────────────────────────── CoreShared ──────────────┐
//!  submit ───► │ route → shard table (Mutex)                        │
//!              │   hit  ── Arc clone ──────────────► sample, return │
//!              │   miss ── admission ─┬─ try_send ─► bounded queue  │
//!              │                      │              │              │
//!              │                      └─ shed ─► stale / fallback / │
//!              │                                 Rejected           │
//!              │ solver workers (N per shard) ◄──┘                  │
//!              │   solve w/ retry ladder → publish → cache/stale    │
//!              └────────────────────────────────────────────────────┘
//! ```
//!
//! Lock discipline: a thread holds at most one shard's table lock at a
//! time, never acquires an instance `RwLock` while holding a table
//! lock, and the global in-flight counter is only taken after (or
//! without) a table lock — so there is no cycle and no deadlock. Cache
//! hits touch exactly one short table-lock critical section and never
//! enter a queue.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use rand::RngExt;
use roadnet::{Location, Partition, RoadGraph};
use vlp_core::local::local_index;
use vlp_core::{LocalShard, Mechanism, Prior, QualityTier, VlpError, VlpInstance};
use vlp_obs::failpoint::{self, site, FaultPlan};

use super::ladder::{
    solve_key, Breaker, BreakerState, CachedSolve, LruCache, MechKey, MissOutcome, SolveStats,
};
use super::trace::{Admission, TraceLedger};
use super::{metrics, Obfuscation, Response, Served, ServiceConfig, TierPolicy};
use crate::WorkerId;

/// Locks a mutex, recovering the data on poison: core state is kept
/// consistent under panic by construction (injected solver panics are
/// contained by the worker's unwind boundary before any lock is held).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Per-shard counters accumulated under the table lock and published
/// to the `vlp-obs` registry on [`CoreShared::flush_metrics`] — the
/// hot path never touches the global registry mutex.
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    pub(crate) requests: u64,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
    pub(crate) served_optimal: u64,
    pub(crate) served_stale: u64,
    pub(crate) served_fallback: u64,
    pub(crate) enqueued: u64,
    pub(crate) coalesced: u64,
    pub(crate) queue_full: u64,
    pub(crate) breaker_shed: u64,
    pub(crate) rejected: u64,
    pub(crate) degraded: u64,
    /// Serves per quality tier, indexed by the `QualityTier`
    /// discriminant (`Exact`, `Clustered`, `Spanner`, `Laplace`).
    pub(crate) served_tier: [u64; 4],
}

impl ShardStats {
    fn flush(&mut self, obs: &vlp_obs::Registry) {
        let pairs = [
            (metrics::REQUESTS, self.requests),
            (metrics::CACHE_HITS, self.hits),
            (metrics::CACHE_MISSES, self.misses),
            (metrics::OPTIMAL_SERVED, self.served_optimal),
            (metrics::STALE_SERVED, self.served_stale),
            (metrics::FALLBACK_SERVED, self.served_fallback),
            (metrics::QUEUE_ENQUEUED, self.enqueued),
            (metrics::QUEUE_COALESCED, self.coalesced),
            (metrics::QUEUE_FULL, self.queue_full),
            (metrics::BREAKER_SHED, self.breaker_shed),
            (metrics::SHED_REJECTED, self.rejected),
            (metrics::SHED_DEGRADED, self.degraded),
        ];
        for (name, value) in pairs {
            if value > 0 {
                obs.incr(name, value);
            }
        }
        for (tier, served) in QualityTier::ALL.into_iter().zip(self.served_tier) {
            if served > 0 {
                obs.incr(metrics::tier_served_metric(tier), served);
            }
        }
        *self = ShardStats::default();
    }
}

/// One shard's routing table: everything the caller path and the
/// publish path share, behind a single per-shard mutex.
#[derive(Debug)]
pub(crate) struct ShardTable {
    pub(crate) cache: LruCache,
    /// Ladder rung 3: mechanisms displaced from the cache, each tagged
    /// with the epoch of its demotion.
    pub(crate) stale: HashMap<MechKey, (CachedSolve, u64)>,
    pub(crate) fallbacks: HashMap<MechKey, Arc<Mechanism>>,
    pub(crate) breaker: Breaker,
    /// `(neighborhood, ε-bucket)` keys with a solve currently queued or
    /// running; duplicate misses coalesce onto it instead of enqueueing
    /// again.
    pub(crate) inflight: HashSet<MechKey>,
    /// The epoch whose half-open probe slot has been used, if any.
    probe_epoch: Option<u64>,
    /// The epoch this shard is blacked out for, if any (set by `tick`
    /// from the chaos plan).
    blackout_epoch: Option<u64>,
    /// Keys whose blackout failure was already accounted this epoch
    /// (one breaker failure per key per epoch, like the batch path).
    blackout_accounted: HashSet<MechKey>,
    /// Bumped by each prior update; solves started under an older
    /// generation are demoted to stale instead of cached as fresh.
    pub(crate) instance_gen: u64,
    pub(crate) stats: ShardStats,
}

impl ShardTable {
    fn new(config: &ServiceConfig) -> Self {
        Self {
            cache: LruCache::new(config.cache_capacity),
            stale: HashMap::new(),
            fallbacks: HashMap::new(),
            breaker: Breaker::new(),
            inflight: HashSet::new(),
            probe_epoch: None,
            blackout_epoch: None,
            blackout_accounted: HashSet::new(),
            instance_gen: 0,
            stats: ShardStats::default(),
        }
    }

    /// Demotes a displaced cache entry into the bounded stale store
    /// (ladder rung 3), evicting the oldest demotion on overflow.
    pub(crate) fn demote(&mut self, capacity: usize, key: MechKey, entry: CachedSolve, epoch: u64) {
        if !self.stale.contains_key(&key) && self.stale.len() >= capacity {
            if let Some(&victim) = self
                .stale
                .iter()
                .map(|(k, &(_, demoted))| (demoted, k))
                .min()
                .map(|(_, k)| k)
            {
                self.stale.remove(&victim);
            }
        }
        self.stale.insert(key, (entry, epoch));
        vlp_obs::global().incr(metrics::STALE_DEMOTIONS, 1);
    }

    /// The fallback mechanism for `key`'s `(neighborhood, ε-bucket)`
    /// slot, built lazily on first use. Fallbacks are stored at the
    /// `Laplace` tier whatever tier the requesting key carried — one
    /// closed-form mechanism per slot, shared by every tier that sheds
    /// to it.
    pub(crate) fn fallback_entry(
        &mut self,
        engine: &EngineSnapshot,
        key: MechKey,
        canonical: f64,
    ) -> Arc<Mechanism> {
        let key = key.at_tier(QualityTier::Laplace);
        Arc::clone(
            self.fallbacks
                .entry(key)
                .or_insert_with(|| Arc::new(engine.build_fallback(key.nb, canonical))),
        )
    }
}

/// One queued cache-miss solve. `reply: Some` is batch mode — the
/// worker only reports the outcome and the batch frontend applies it
/// in deterministic key order; `reply: None` is open-loop mode — the
/// worker publishes the outcome into the shard table itself.
pub(crate) struct SolveJob {
    pub(crate) key: MechKey,
    /// The canonical (bucketed) ε to solve at.
    pub(crate) epsilon: f64,
    /// The epoch (or batch index) keying failpoint evaluation.
    pub(crate) epoch: u64,
    pub(crate) reply: Option<mpsc::Sender<((usize, MechKey), MissOutcome)>>,
}

/// One shard's solve engine: the classic full-shard instance (one
/// `O(K²)` LP per ε-bucket), or the locally-relevant engine that
/// restricts every solve to a ρ-net neighborhood and never materializes
/// an `O(K²)` object. Both sit behind an `RwLock` so prior updates are
/// copy-on-write and never block readers for the clone.
#[derive(Debug)]
pub(crate) enum ShardEngine {
    Full(RwLock<Arc<VlpInstance>>),
    Local(RwLock<Arc<LocalShard>>),
}

/// A point-in-time snapshot of one shard's engine (cheap: one refcount
/// bump), carrying everything a request or a solver worker needs —
/// locating/transplanting on the shard map, routing intervals to
/// neighborhoods, solving, and building per-neighborhood fallbacks.
#[derive(Debug, Clone)]
pub(crate) enum EngineSnapshot {
    Full(Arc<VlpInstance>),
    Local(Arc<LocalShard>),
}

impl EngineSnapshot {
    /// Locates a shard-local location's interval on the shard map.
    pub(crate) fn locate(&self, local: Location) -> Option<usize> {
        match self {
            EngineSnapshot::Full(inst) => inst.disc.locate(&inst.graph, local),
            EngineSnapshot::Local(shard) => shard.disc().locate(shard.graph(), local),
        }
    }

    /// Transplants a location onto (global) interval `j`.
    pub(crate) fn transplant(&self, local: Location, j: usize) -> Option<Location> {
        match self {
            EngineSnapshot::Full(inst) => inst.disc.transplant(&inst.graph, local, j),
            EngineSnapshot::Local(shard) => shard.disc().transplant(shard.graph(), local, j),
        }
    }

    /// The neighborhood serving interval `i`: always `0` in full-shard
    /// mode, the ρ-net assignment in locally-relevant mode.
    pub(crate) fn neighborhood_of(&self, i: usize) -> u32 {
        match self {
            EngineSnapshot::Full(_) => 0,
            EngineSnapshot::Local(shard) => shard.neighborhood_of(i),
        }
    }

    /// Maps global interval `i` to its row in neighborhood `nb`'s
    /// mechanism. Identity in full-shard mode.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside `nb`'s support — impossible for the
    /// serving path, which derives `nb` from `i`'s own assignment (an
    /// interval is always ρ-covered by its assigned center, hence in
    /// the ρ+r ball).
    pub(crate) fn local_row(&self, nb: u32, i: usize) -> usize {
        match self {
            EngineSnapshot::Full(_) => i,
            EngineSnapshot::Local(shard) => local_index(shard.members(nb), i)
                .expect("an interval is in its assigned neighborhood's support"),
        }
    }

    /// Maps a sampled mechanism column of neighborhood `nb` back to a
    /// global interval id. Identity in full-shard mode.
    pub(crate) fn global_interval(&self, nb: u32, col: usize) -> usize {
        match self {
            EngineSnapshot::Full(_) => col,
            EngineSnapshot::Local(shard) => shard.members(nb)[col],
        }
    }

    /// Builds neighborhood `nb`'s closed-form fallback at `canonical`.
    pub(crate) fn build_fallback(&self, nb: u32, canonical: f64) -> Mechanism {
        match self {
            EngineSnapshot::Full(inst) => inst.fallback(canonical),
            EngineSnapshot::Local(shard) => shard.fallback_neighborhood(nb, canonical),
        }
    }

    /// Runs one solve for `key` at `key.tier` and packages it with its
    /// LP-shape stats. `radius` is only read in full-shard mode; the
    /// local engine's protection radius is fixed at boot. The
    /// intermediate tiers read their LP-reduction knobs from `tiers`.
    ///
    /// # Panics
    ///
    /// Panics on a `Laplace`-tier key: the graph-Laplace mechanism is
    /// closed-form and built by [`EngineSnapshot::build_fallback`] —
    /// it never occupies a solver worker.
    pub(crate) fn solve(
        &self,
        key: MechKey,
        epsilon: f64,
        radius: f64,
        cg: &vlp_core::CgOptions,
        tiers: &TierPolicy,
    ) -> Result<CachedSolve, VlpError> {
        match self {
            EngineSnapshot::Full(inst) => {
                let k = inst.len();
                let from_tier = |ts: vlp_core::TierSolve| CachedSolve {
                    mechanism: Arc::new(ts.mechanism),
                    quality_loss: ts.quality_loss,
                    stats: SolveStats {
                        support: k as u64,
                        lp_vars: ts.lp_vars as u64,
                        lp_rows: ts.lp_rows as u64,
                    },
                };
                match key.tier {
                    QualityTier::Exact => inst.solve(epsilon, radius, cg).map(|sv| CachedSolve {
                        mechanism: Arc::new(sv.mechanism),
                        quality_loss: sv.quality_loss,
                        stats: SolveStats {
                            support: k as u64,
                            lp_vars: (k * k) as u64,
                            lp_rows: sv.spec.lp_row_count(k) as u64,
                        },
                    }),
                    QualityTier::Clustered => inst
                        .solve_clustered(epsilon, radius, tiers.cluster_width, cg)
                        .map(from_tier),
                    QualityTier::Spanner => inst
                        .solve_spanner(epsilon, tiers.spanner_stretch, cg)
                        .map(from_tier),
                    QualityTier::Laplace => {
                        unreachable!("Laplace is built closed-form, never queued as a solve")
                    }
                }
            }
            EngineSnapshot::Local(shard) => {
                let ls = match key.tier {
                    QualityTier::Exact => shard.solve_neighborhood(key.nb, epsilon, cg),
                    QualityTier::Clustered => {
                        shard.clustered_neighborhood(key.nb, epsilon, tiers.cluster_width, cg)
                    }
                    QualityTier::Spanner => {
                        shard.spanner_neighborhood(key.nb, epsilon, tiers.spanner_stretch, cg)
                    }
                    QualityTier::Laplace => {
                        unreachable!("Laplace is built closed-form, never queued as a solve")
                    }
                };
                ls.map(|ls| CachedSolve {
                    mechanism: Arc::new(ls.mechanism),
                    quality_loss: ls.quality_loss,
                    stats: SolveStats {
                        support: ls.support.len() as u64,
                        lp_vars: ls.lp_vars as u64,
                        lp_rows: ls.lp_rows as u64,
                    },
                })
            }
        }
    }
}

/// One region shard's runtime: its solve engine (copy-on-write behind
/// an `RwLock` so prior updates never block readers for the clone), its
/// routing table, and the sending half of its bounded solve queue.
#[derive(Debug)]
pub(crate) struct ShardRuntime {
    engine: ShardEngine,
    pub(crate) table: Mutex<ShardTable>,
    sender: Mutex<Option<SyncSender<SolveJob>>>,
    /// Jobs completed after shutdown began (the drain).
    drained: AtomicU64,
}

impl ShardRuntime {
    /// A snapshot of the shard's engine (cheap: one refcount bump).
    pub(crate) fn engine(&self) -> EngineSnapshot {
        match &self.engine {
            ShardEngine::Full(slot) => {
                EngineSnapshot::Full(Arc::clone(&slot.read().unwrap_or_else(|p| p.into_inner())))
            }
            ShardEngine::Local(slot) => {
                EngineSnapshot::Local(Arc::clone(&slot.read().unwrap_or_else(|p| p.into_inner())))
            }
        }
    }

    /// A snapshot of the shard's full-shard instance.
    ///
    /// # Panics
    ///
    /// Panics in locally-relevant mode, which never materializes an
    /// `O(K²)` instance — use the [`LocalShard`] accessors instead.
    pub(crate) fn instance(&self) -> Arc<VlpInstance> {
        match &self.engine {
            ShardEngine::Full(slot) => Arc::clone(&slot.read().unwrap_or_else(|p| p.into_inner())),
            ShardEngine::Local(_) => panic!(
                "shard_instance is a full-shard accessor; \
                 locally-relevant shards expose LocalShard instead"
            ),
        }
    }

    /// A snapshot of the shard's locally-relevant engine, when the
    /// service runs in that mode.
    pub(crate) fn local_shard(&self) -> Option<Arc<LocalShard>> {
        match &self.engine {
            ShardEngine::Full(_) => None,
            ShardEngine::Local(slot) => {
                Some(Arc::clone(&slot.read().unwrap_or_else(|p| p.into_inner())))
            }
        }
    }

    fn sender(&self) -> Option<SyncSender<SolveJob>> {
        lock(&self.sender).clone()
    }
}

/// What a graceful [`MechanismService::shutdown`] drained: queued or
/// running solve jobs completed between the shutdown request and the
/// last worker exiting, per shard. Shards are drained and joined in
/// shard order, each queue in FIFO order, so given a quiesced set of
/// queued jobs the drain is deterministic.
///
/// [`MechanismService::shutdown`]: super::MechanismService::shutdown
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Solve jobs completed during the drain, indexed by shard.
    pub drained: Vec<u64>,
}

impl ShutdownReport {
    /// Total jobs drained across shards.
    pub fn total(&self) -> u64 {
        self.drained.iter().sum()
    }
}

/// State shared between submitters, solver workers, and the batch
/// frontend.
#[derive(Debug)]
pub(crate) struct CoreShared {
    pub(crate) partition: Partition,
    pub(crate) shards: Vec<ShardRuntime>,
    pub(crate) chaos: Arc<FaultPlan>,
    pub(crate) config: ServiceConfig,
    /// The logical clock: batch index for the batch frontend, tick
    /// count for the open-loop frontend. Chaos schedules, breaker
    /// cooldowns, and staleness ages are all keyed by it.
    pub(crate) epoch: AtomicU64,
    /// Per-vehicle trace-budget ledgers, present only when
    /// [`ServiceConfig::budget`] is `Some` — the disabled path never
    /// takes this lock and is bit-identical to the unaccounted
    /// service.
    accountant: Option<Mutex<TraceLedger>>,
    inflight_jobs: Mutex<u64>,
    idle: Condvar,
    shutting_down: AtomicBool,
}

impl CoreShared {
    /// The ε-bucket and canonical ε for a requested `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is below one bucket width.
    pub(crate) fn bucket(&self, epsilon: f64) -> (u64, f64) {
        let width = self.config.epsilon_bucket;
        assert!(
            epsilon >= width,
            "requested epsilon {epsilon} is below the bucket width {width}"
        );
        // The nudge keeps exact multiples (5.0 / 0.25) from flooring
        // into the bucket below through float error.
        let bucket = (epsilon / width + 1e-9).floor() as u64;
        (bucket, bucket as f64 * width)
    }

    fn inflight_add(&self) {
        *lock(&self.inflight_jobs) += 1;
    }

    fn inflight_undo(&self) {
        let mut n = lock(&self.inflight_jobs);
        *n -= 1;
        if *n == 0 {
            self.idle.notify_all();
        }
    }

    fn note_done(&self, s: usize) {
        if self.shutting_down.load(Ordering::Relaxed) {
            self.shards[s].drained.fetch_add(1, Ordering::Relaxed);
        }
        self.inflight_undo();
    }

    /// Blocks until no solve job is queued or running.
    pub(crate) fn quiesce(&self) {
        let mut n = lock(&self.inflight_jobs);
        while *n > 0 {
            n = self.idle.wait(n).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Serves one open-loop request on the caller path. See
    /// [`MechanismService::submit`] for the contract.
    ///
    /// [`MechanismService::submit`]: super::MechanismService::submit
    pub(crate) fn submit<R: RngExt + ?Sized>(
        &self,
        worker: WorkerId,
        loc: Location,
        epsilon: f64,
        rng: &mut R,
    ) -> Response {
        let Some((s, local)) = self.partition.to_local(loc) else {
            vlp_obs::global().incr(metrics::OFF_PARTITION, 1);
            return Response::OffPartition { worker };
        };
        // Trace accounting (enabled only): throttle the requested ε
        // against the vehicle's ledger and reserve the grant. The
        // reservation is committed on a serve and released on a
        // rejection, so the ledger equals exactly what was revealed.
        let mut reservation = None;
        let epsilon = match &self.accountant {
            None => epsilon,
            Some(acct) => match lock(acct).admit(worker, epsilon, self.config.epsilon_bucket) {
                Admission::Granted { epsilon, throttled } => {
                    reservation = Some((epsilon, throttled));
                    epsilon
                }
                Admission::Refused { remaining } => {
                    return Response::BudgetExhausted {
                        worker,
                        shard: s,
                        remaining,
                    }
                }
            },
        };
        let (bucket, canonical) = self.bucket(epsilon);
        let epoch = self.epoch.load(Ordering::Relaxed);
        let shard = &self.shards[s];
        let engine = shard.engine();
        let i = engine
            .locate(local)
            .expect("shard-local location lies on the shard");
        let slot = MechKey {
            nb: engine.neighborhood_of(i),
            bucket,
            tier: QualityTier::Exact,
        };

        let served: Option<(Arc<Mechanism>, QualityTier, Served)> = {
            let mut t = lock(&shard.table);
            t.stats.requests += 1;
            // Best-tier-first hit scan: a cached clustered or spanner
            // mechanism still beats the fallback. With the default
            // (all-Exact) policy only the first probe ever exists.
            let hit_tier = QualityTier::ALL
                .into_iter()
                .take_while(|&tier| tier < QualityTier::Laplace)
                .find(|&tier| t.cache.contains(slot.at_tier(tier)));
            if let Some(tier) = hit_tier {
                let hit = t
                    .cache
                    .get(slot.at_tier(tier))
                    .map(|e| Arc::clone(&e.mechanism))
                    .expect("contains() above");
                // The hot path: one refcount bump under the table lock,
                // sampling happens outside it. No queue is touched.
                t.stats.hits += 1;
                t.stats.served_optimal += 1;
                t.stats.served_tier[tier as usize] += 1;
                Some((hit, tier, Served::Optimal { cached: true }))
            } else {
                t.stats.misses += 1;
                let key = slot.at_tier(self.config.tiers.background_tier());
                self.admit_miss(&mut t, shard, &engine, key, canonical, epoch)
            }
        };
        match served {
            None => {
                if let (Some(acct), Some((granted, _))) = (&self.accountant, reservation) {
                    // Nothing was revealed; return the reservation.
                    lock(acct).release(worker, granted);
                }
                Response::Rejected {
                    worker,
                    shard: s,
                    epsilon: canonical,
                }
            }
            Some((mechanism, tier, served)) => {
                if let (Some(acct), Some((_, throttled))) = (&self.accountant, reservation) {
                    lock(acct).commit(throttled);
                }
                let row = engine.local_row(slot.nb, i);
                let j = engine.global_interval(slot.nb, mechanism.sample_interval(row, rng));
                let location = engine
                    .transplant(local, j)
                    .expect("reported interval lies on the shard");
                Response::Served(Obfuscation {
                    worker,
                    shard: s,
                    interval: j,
                    location,
                    epsilon: canonical,
                    tier,
                    served,
                })
            }
        }
    }

    /// The cache-miss half of `submit`: admission control, then a
    /// degraded serve (stale → prebuilt fallback → `None` = reject).
    /// Called with the shard's table lock held.
    fn admit_miss(
        &self,
        t: &mut ShardTable,
        shard: &ShardRuntime,
        engine: &EngineSnapshot,
        key: MechKey,
        canonical: f64,
        epoch: u64,
    ) -> Option<(Arc<Mechanism>, QualityTier, Served)> {
        // Rung 2 gate: open breakers shed without an attempt; half-open
        // breakers admit one probe solve per epoch.
        let admitted = match t.breaker.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                t.stats.breaker_shed += 1;
                false
            }
            BreakerState::HalfOpen => {
                if t.probe_epoch == Some(epoch) {
                    t.stats.breaker_shed += 1;
                    false
                } else {
                    t.probe_epoch = Some(epoch);
                    true
                }
            }
        };
        let mut solve_pending = false;
        let mut shed = !admitted;
        if admitted && t.blackout_epoch == Some(epoch) {
            // An injected blackout fails the miss without a solve
            // attempt; the breaker hears about it once per key per
            // epoch, mirroring the batch path's accounting.
            if t.blackout_accounted.insert(key) {
                let obs = vlp_obs::global();
                obs.incr(metrics::SOLVE_ERRORS, 1);
                if t.breaker
                    .on_failure(epoch, self.config.resilience.breaker_threshold)
                {
                    obs.incr(metrics::BREAKER_OPENED, 1);
                }
            }
            shed = true;
        } else if admitted {
            if t.inflight.contains(&key) {
                // A solve for this key is already queued or running.
                t.stats.coalesced += 1;
                solve_pending = true;
            } else {
                self.inflight_add();
                let job = SolveJob {
                    key,
                    epsilon: canonical,
                    epoch,
                    reply: None,
                };
                match shard.sender().map(|tx| tx.try_send(job)) {
                    Some(Ok(())) => {
                        t.inflight.insert(key);
                        t.stats.enqueued += 1;
                        solve_pending = true;
                    }
                    Some(Err(TrySendError::Full(_))) => {
                        self.inflight_undo();
                        t.stats.queue_full += 1;
                        shed = true;
                    }
                    Some(Err(TrySendError::Disconnected(_))) | None => {
                        // Shutting down: no new solves are admitted.
                        self.inflight_undo();
                        shed = true;
                    }
                }
            }
        }
        if solve_pending && !shed {
            // Warming: the optimum is on its way; hold the line with
            // the fallback floor at the same canonical ε (rung 4).
            t.stats.served_fallback += 1;
            t.stats.served_tier[QualityTier::Laplace as usize] += 1;
            return Some((
                t.fallback_entry(engine, key, canonical),
                QualityTier::Laplace,
                Served::Fallback,
            ));
        }
        // Shed: rung 3 (stale) if available, else a *prebuilt* fallback.
        // Nothing is constructed under backpressure — a cold shed key is
        // rejected outright, which is the explicit-backpressure contract.
        if let Some((entry, demoted)) = t.stale.get(&key) {
            t.stats.served_stale += 1;
            t.stats.degraded += 1;
            t.stats.served_tier[key.tier as usize] += 1;
            let age = epoch.saturating_sub(*demoted);
            return Some((
                Arc::clone(&entry.mechanism),
                key.tier,
                Served::Stale { age_batches: age },
            ));
        }
        if let Some(m) = t.fallbacks.get(&key.at_tier(QualityTier::Laplace)) {
            t.stats.served_fallback += 1;
            t.stats.degraded += 1;
            t.stats.served_tier[QualityTier::Laplace as usize] += 1;
            return Some((Arc::clone(m), QualityTier::Laplace, Served::Fallback));
        }
        t.stats.rejected += 1;
        None
    }

    /// Blocking enqueue for the batch frontend (reply mode). Returns
    /// `false` if the shard's queue is gone (shutdown).
    pub(crate) fn enqueue_batch(
        &self,
        s: usize,
        key: MechKey,
        epsilon: f64,
        epoch: u64,
        reply: mpsc::Sender<((usize, MechKey), MissOutcome)>,
    ) -> bool {
        let job = SolveJob {
            key,
            epsilon,
            epoch,
            reply: Some(reply),
        };
        self.inflight_add();
        match self.shards[s].sender().map(|tx| tx.send(job)) {
            Some(Ok(())) => true,
            _ => {
                self.inflight_undo();
                false
            }
        }
    }

    /// Advances the logical clock by one epoch: evaluates epoch-scoped
    /// chaos (evict storms, shard blackouts), ticks every breaker, and
    /// samples the per-shard health series. Returns the new epoch.
    pub(crate) fn tick(&self) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let obs = vlp_obs::global();
        let chaos_on = !self.chaos.is_empty();
        let storm = chaos_on && self.chaos.evaluate(site::SERVICE_EVICT_STORM, epoch);
        let cooldown = self.config.resilience.breaker_cooldown;
        let stale_capacity = self.config.resilience.stale_capacity;
        for (s, shard) in self.shards.iter().enumerate() {
            let mut t = lock(&shard.table);
            if chaos_on {
                if storm {
                    for (bucket, entry) in t.cache.drain_all() {
                        t.demote(stale_capacity, bucket, entry, epoch);
                    }
                }
                if self.chaos.evaluate(&site::shard_blackout(s), epoch) {
                    t.blackout_epoch = Some(epoch);
                    t.blackout_accounted.clear();
                }
            }
            if t.breaker.tick(epoch, cooldown) {
                obs.incr(metrics::BREAKER_HALF_OPEN, 1);
            }
            obs.push(&metrics::breaker_state_series(s), t.breaker.state.as_f64());
            obs.push(&metrics::queue_depth_series(s), t.inflight.len() as f64);
            t.stats.flush(obs);
        }
        if let Some(acct) = &self.accountant {
            let mut a = lock(acct);
            obs.push(metrics::TRACE_FILL, a.mean_fill());
            a.stats.flush(obs);
        }
        epoch
    }

    /// Publishes accumulated per-shard counters into the `vlp-obs`
    /// registry without advancing the epoch.
    pub(crate) fn flush_metrics(&self) {
        let obs = vlp_obs::global();
        for shard in &self.shards {
            lock(&shard.table).stats.flush(obs);
        }
        if let Some(acct) = &self.accountant {
            lock(acct).stats.flush(obs);
        }
    }

    /// Cumulative ε charged to `worker`'s trace budget; `None` when
    /// accounting is disabled.
    pub(crate) fn budget_spent(&self, worker: WorkerId) -> Option<f64> {
        self.accountant.as_ref().map(|a| lock(a).spent(worker))
    }

    /// The trace-budget ledger as a sorted `(vehicle, spent ε)` list;
    /// empty when accounting is disabled.
    pub(crate) fn budget_ledger(&self) -> Vec<(WorkerId, f64)> {
        self.accountant
            .as_ref()
            .map(|a| lock(a).entries())
            .unwrap_or_default()
    }

    /// Swaps shard `s`'s instance for one with the new worker prior
    /// (copy-on-write) and invalidates its cached mechanisms — they
    /// were optimal for the old prior. Fallbacks are prior-free and
    /// stay. In-flight solves against the old instance are demoted to
    /// the stale store when they land (generation check).
    pub(crate) fn set_worker_prior(&self, s: usize, f_p: Prior) {
        let shard = &self.shards[s];
        match &shard.engine {
            ShardEngine::Full(slot) => {
                let mut slot = slot.write().unwrap_or_else(|p| p.into_inner());
                let mut inst = (**slot).clone();
                inst.set_worker_prior(f_p);
                *slot = Arc::new(inst);
            }
            ShardEngine::Local(slot) => {
                let mut slot = slot.write().unwrap_or_else(|p| p.into_inner());
                let mut sh = (**slot).clone();
                sh.set_worker_prior(f_p);
                *slot = Arc::new(sh);
            }
        }
        let epoch = self.epoch.load(Ordering::Relaxed);
        let stale_capacity = self.config.resilience.stale_capacity;
        let mut t = lock(&shard.table);
        t.instance_gen += 1;
        let dropped = t.cache.drain_all();
        vlp_obs::global().incr(metrics::PRIOR_INVALIDATIONS, dropped.len() as u64);
        // The displaced mechanisms are optimal for the *old* prior:
        // stale in quality, identical in privacy — demote, don't drop.
        for (bucket, entry) in dropped {
            t.demote(stale_capacity, bucket, entry, epoch);
        }
    }

    /// Runs one solve job through the retry ladder (rung 1): up to
    /// `max_attempts` attempts with deterministic exponential backoff
    /// plus seeded jitter, each under a failpoint scope keyed by
    /// `(epoch, shard, bucket, attempt)` and an unwind boundary.
    /// Returns the outcome and the instance generation it solved under.
    fn run_solve(&self, s: usize, job: &SolveJob) -> (MissOutcome, u64) {
        let shard = &self.shards[s];
        let gen = lock(&shard.table).instance_gen;
        let engine = shard.engine();
        let chaos_on = !self.chaos.is_empty();
        let res = &self.config.resilience;
        let base_ns = res.backoff_base.as_nanos() as u64;
        let cap_ns = res.backoff_cap.as_nanos() as u64;
        let key = (s, job.key);
        let started = Instant::now();
        let mut retries = 0u32;
        let mut panics = 0u32;
        let mut solved: Option<CachedSolve> = None;
        for attempt in 1..=res.max_attempts {
            if attempt > 1 {
                retries += 1;
                let exp = base_ns
                    .saturating_mul(1u64 << (attempt - 2).min(20))
                    .min(cap_ns);
                let jitter = failpoint::backoff_jitter_ns(
                    self.chaos.seed(),
                    solve_key(job.epoch, key, 0),
                    attempt,
                    base_ns,
                );
                thread::sleep(Duration::from_nanos(exp + jitter));
            }
            let _scope = chaos_on.then(|| {
                failpoint::activate(Arc::clone(&self.chaos), solve_key(job.epoch, key, attempt))
            });
            let result = catch_unwind(AssertUnwindSafe(|| {
                engine.solve(
                    job.key,
                    job.epsilon,
                    self.config.radius,
                    &self.config.cg,
                    &self.config.tiers,
                )
            }));
            match result {
                Ok(Ok(sv)) => {
                    solved = Some(sv);
                    break;
                }
                Ok(Err(_)) => {}
                Err(_) => panics += 1,
            }
        }
        let outcome = match solved {
            Some(sv) => MissOutcome::Solved(sv, started.elapsed(), retries, panics),
            None => MissOutcome::Failed(started.elapsed(), retries, panics),
        };
        (outcome, gen)
    }

    /// Applies an open-loop solve outcome to the shard table: cache on
    /// success (demoting any eviction and any superseded-generation
    /// solve), breaker accounting on failure.
    fn publish(&self, s: usize, key: MechKey, gen: u64, outcome: MissOutcome) {
        let obs = vlp_obs::global();
        let res = &self.config.resilience;
        let epoch = self.epoch.load(Ordering::Relaxed);
        let shard = &self.shards[s];
        let mut t = lock(&shard.table);
        t.inflight.remove(&key);
        match outcome {
            MissOutcome::Solved(solve, elapsed, retries, panics) => {
                obs.record_duration(metrics::SOLVE_TIME, elapsed);
                metrics::record_solve_stats(obs, &solve.stats, self.config.local.is_some());
                if retries > 0 {
                    obs.incr(metrics::RETRY_ATTEMPTS, u64::from(retries));
                }
                if panics > 0 {
                    obs.incr(metrics::PANICS_CAUGHT, u64::from(panics));
                }
                if t.breaker.on_success() {
                    obs.incr(metrics::BREAKER_RECLOSED, 1);
                }
                if gen == t.instance_gen {
                    if let Some((evicted_key, evicted)) = t.cache.insert(key, solve) {
                        obs.incr(metrics::CACHE_EVICTIONS, 1);
                        t.demote(res.stale_capacity, evicted_key, evicted, epoch);
                    }
                    // A fresh optimum supersedes any stale copy.
                    t.stale.remove(&key);
                } else {
                    // Solved under a superseded prior: privacy-equal,
                    // quality-stale — demote instead of caching fresh.
                    t.demote(res.stale_capacity, key, solve, epoch);
                }
            }
            MissOutcome::Failed(elapsed, retries, panics) => {
                obs.record_duration(metrics::SOLVE_TIME, elapsed);
                if retries > 0 {
                    obs.incr(metrics::RETRY_ATTEMPTS, u64::from(retries));
                }
                if panics > 0 {
                    obs.incr(metrics::PANICS_CAUGHT, u64::from(panics));
                }
                obs.incr(metrics::SOLVE_ERRORS, 1);
                if t.breaker.on_failure(epoch, res.breaker_threshold) {
                    obs.incr(metrics::BREAKER_OPENED, 1);
                }
            }
            MissOutcome::Blackout | MissOutcome::Shed => {
                debug_assert!(false, "blackout/shed outcomes are never queued");
            }
        }
    }
}

/// The solver-worker main loop: receive, solve through the retry
/// ladder, publish (open-loop) or reply (batch), repeat until the
/// queue disconnects.
fn worker_loop(shared: Arc<CoreShared>, s: usize, rx: Arc<Mutex<Receiver<SolveJob>>>) {
    loop {
        // Workers of one shard share the receiver behind a mutex; recv
        // blocks while holding it, which is exactly the work-stealing
        // we want (any idle worker takes the next job).
        let job = match lock(&rx).recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        let (outcome, gen) = shared.run_solve(s, &job);
        match &job.reply {
            Some(tx) => {
                // Batch mode: the frontend applies the outcome in
                // deterministic key order; a dropped receiver means the
                // batch gave up waiting, which cannot happen (it drains
                // exactly the jobs it enqueued).
                let _ = tx.send(((s, job.key), outcome));
            }
            None => shared.publish(s, job.key, gen, outcome),
        }
        shared.note_done(s);
    }
}

/// The owning handle of the serving core: shared state plus the worker
/// threads. Dropping it shuts the core down gracefully.
#[derive(Debug)]
pub(crate) struct ServingCore {
    pub(crate) shared: Arc<CoreShared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServingCore {
    pub(crate) fn new(graph: RoadGraph, config: ServiceConfig) -> Self {
        assert!(config.n_shards > 0, "need at least one shard");
        assert!(config.delta > 0.0, "delta must be positive");
        assert!(config.epsilon_bucket > 0.0, "bucket width must be positive");
        assert!(config.cache_capacity > 0, "cache capacity must be positive");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.solver_threads > 0, "need at least one solver thread");
        assert!(
            config.resilience.max_attempts > 0,
            "need at least one solve attempt"
        );
        assert!(
            config.resilience.breaker_threshold > 0,
            "breaker threshold must be positive"
        );
        assert!(
            config.resilience.stale_capacity > 0,
            "stale capacity must be positive"
        );
        assert!(
            config.tiers.cluster_width >= 0.0 && config.tiers.cluster_width.is_finite(),
            "cluster width must be finite and non-negative"
        );
        assert!(
            config.tiers.spanner_stretch >= 1.0 && config.tiers.spanner_stretch.is_finite(),
            "spanner stretch must be finite and at least 1"
        );
        if let Some(budget) = &config.budget {
            budget.validate(config.epsilon_bucket);
        }
        if let Some(local) = &config.local {
            assert!(local.rho > 0.0, "assignment radius rho must be positive");
            assert!(
                local.rho.is_infinite() || config.radius.is_finite(),
                "locally-relevant mode with a finite rho requires a finite \
                 protection radius (the support of a neighborhood is its \
                 rho + radius ball)"
            );
        }
        let partition = Partition::by_bands(&graph, config.n_shards);
        let chaos = Arc::new(config.chaos.clone());
        let mut receivers = Vec::new();
        let mut neighborhoods = 0u64;
        let shards: Vec<ShardRuntime> = partition
            .shards()
            .iter()
            .map(|s| {
                let (tx, rx) = mpsc::sync_channel(config.queue_capacity);
                receivers.push(Arc::new(Mutex::new(rx)));
                let engine = match &config.local {
                    None => ShardEngine::Full(RwLock::new(Arc::new(VlpInstance::uniform(
                        s.graph().clone(),
                        config.delta,
                    )))),
                    Some(local) => {
                        let shard = LocalShard::uniform(
                            s.graph().clone(),
                            config.delta,
                            local.rho,
                            config.radius,
                        );
                        neighborhoods += shard.plan().neighborhood_count() as u64;
                        ShardEngine::Local(RwLock::new(Arc::new(shard)))
                    }
                };
                ShardRuntime {
                    engine,
                    table: Mutex::new(ShardTable::new(&config)),
                    sender: Mutex::new(Some(tx)),
                    drained: AtomicU64::new(0),
                }
            })
            .collect();
        if config.local.is_some() {
            vlp_obs::global().incr(metrics::LOCAL_NEIGHBORHOODS, neighborhoods);
        }
        let accountant = config
            .budget
            .map(|budget| Mutex::new(TraceLedger::new(budget)));
        let shared = Arc::new(CoreShared {
            partition,
            shards,
            chaos,
            config,
            epoch: AtomicU64::new(0),
            accountant,
            inflight_jobs: Mutex::new(0),
            idle: Condvar::new(),
            shutting_down: AtomicBool::new(false),
        });
        let mut workers = Vec::new();
        for (s, rx) in receivers.into_iter().enumerate() {
            for w in 0..shared.config.solver_threads {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                let handle = thread::Builder::new()
                    .name(format!("vlp-solve-{s}.{w}"))
                    .spawn(move || worker_loop(shared, s, rx))
                    .expect("spawn solver worker");
                workers.push(handle);
            }
        }
        Self { shared, workers }
    }

    /// Graceful shutdown: stops admitting solves, drops the queue
    /// senders in shard order, and joins every worker — each drains
    /// its queue FIFO before exiting. Idempotent.
    pub(crate) fn shutdown(&mut self) -> ShutdownReport {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        for shard in &self.shared.shards {
            lock(&shard.sender).take();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        let drained: Vec<u64> = self
            .shared
            .shards
            .iter()
            .map(|shard| shard.drained.swap(0, Ordering::Relaxed))
            .collect();
        let total: u64 = drained.iter().sum();
        if total > 0 {
            vlp_obs::global().incr(metrics::QUEUE_DRAINED, total);
        }
        ShutdownReport { drained }
    }
}

impl Drop for ServingCore {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}
